// Package flexflow is a Go reproduction of "Beyond Data and Model
// Parallelism for Deep Neural Networks" (Jia, Zaharia, Aiken; MLSys
// 2019): the SOAP search space of parallelization strategies, the
// execution simulator with its full and delta algorithms, and the MCMC
// execution optimizer, together with the baselines the paper evaluates
// against and an emulated distributed runtime.
//
// The top-level package is a facade over the internal packages; see
// README.md for a tour and docs/ARCHITECTURE.md for the architecture
// and the paper-to-module map.
//
// Every strategy-search algorithm — the paper's MCMC optimizer and the
// baselines it is evaluated against (exhaustive DFS with pruning, the
// OptCNN dynamic program, REINFORCE device placement, local-descent
// polishing) — is an Optimizer: one context-driven contract constructed
// by name from a registry. A minimal end-to-end use:
//
//	g := flexflow.NewGraph("mlp")
//	x := g.Input4D("images", 64, 3, 32, 32)
//	c := g.Conv2D("conv1", x, 32, 3, 3, 1, 1, 1, 1)
//	f := g.Flatten("flat", c)
//	g.Dense("fc", f, 128)
//
//	topo := flexflow.NewSingleNode(4, "P100")
//	opt, _ := flexflow.GetOptimizer("mcmc")
//	res, err := opt.Optimize(ctx, flexflow.Problem{Graph: g, Topology: topo},
//		flexflow.OptimizeOptions{MaxIters: 2000})
//	if err == nil {
//		fmt.Println("best per-iteration time:", res.BestCost)
//	}
//
// Cancelling ctx (a ^C handler, a deadline) stops the search promptly
// and returns the best strategy found so far; OptimizeOptions.OnEvent
// streams best-so-far progress while the search runs; and MCMC budgets
// are charged in deterministic virtual time, so a budgeted run replays
// bit-identically for any worker count. Budgets are priced by a cost
// profile: Calibrate fits one from measured proposal costs,
// SetCostProfile installs it (and Save/LoadCostProfile persist it), so
// a virtual budget of N seconds tracks wall-clock N seconds on the
// calibrated machine. Search and SearchOptions remain as deprecated
// shims over the "mcmc" optimizer.
//
// All parallelism — MCMC chains, DFS subtrees, REINFORCE rollouts,
// Neighborhood sweeps, experiment cells — runs on one process-wide
// worker pool sized by SetWorkers (default: all CPUs). Nested fan-out
// composes under that single bound without deadlocking, and results
// never depend on the pool size; docs/CONCURRENCY.md documents the
// concurrency and determinism contract.
package flexflow

import (
	"context"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/exec"
	"flexflow/internal/graph"
	"flexflow/internal/memory"
	"flexflow/internal/models"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
	"flexflow/internal/runtime"
	"flexflow/internal/search"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
	"flexflow/internal/viz"
)

// Core model/machine types.
type (
	// Graph is an operator graph (Section 3.1).
	Graph = graph.Graph
	// Op is an operation node of the graph.
	Op = graph.Op
	// Topology is a device topology D = (D_N, D_E).
	Topology = device.Topology
	// Device is a compute device.
	Device = device.Device
	// Strategy maps every operation to a parallelization configuration.
	Strategy = config.Strategy
	// Config is one operation's parallelization configuration.
	Config = config.Config
	// Metrics aggregates per-strategy statistics (transfers, compute).
	Metrics = taskgraph.Metrics
	// Estimator predicts task execution times.
	Estimator = perfmodel.Estimator
)

// NewGraph creates an empty operator graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// SetWorkers sizes the process-wide worker pool every parallel loop in
// this package draws from — optimizer chains and sweeps, the
// experiments harness, nested fan-out of any depth (n <= 0 resets to
// the number of CPUs). It returns the effective bound. The bound
// counts the calling goroutine: one Optimize or experiments run never
// executes more than n loop bodies at once, however deeply its levels
// nest, while each additional goroutine concurrently running its own
// top-level search adds itself on top of the pool's n-1 helpers. The
// bound only changes wall-clock time, never results: every search is
// bit-identical for every pool size (see docs/CONCURRENCY.md for the
// contract). Call it once at startup; it is safe, but rarely useful,
// to call concurrently with running searches.
func SetWorkers(n int) int { return par.SetWorkers(n) }

// WorkerBound reports the current process-wide worker bound set by
// SetWorkers (the number of CPUs if never set).
func WorkerBound() int { return par.WorkerBound() }

// Localities lists the recognized values of OptimizeOptions.Locality —
// MCMC's proposal-locality policies — in documentation order:
// "uniform", "late-biased", "stratified", "measured".
func Localities() []string {
	locs := search.Localities()
	out := make([]string, len(locs))
	for i, l := range locs {
		out[i] = string(l)
	}
	return out
}

// ParseLocality validates and normalizes an OptimizeOptions.Locality
// value ("" normalizes to "uniform"); unknown names return an error
// listing the recognized policies.
func ParseLocality(s string) (string, error) {
	loc, err := search.ParseLocality(s)
	return string(loc), err
}

// NewSingleNode builds a single machine with n GPUs ("P100" or "K80").
func NewSingleNode(gpus int, model string) *Topology { return device.NewSingleNode(gpus, model) }

// NewP100Cluster builds the paper's P100 cluster (Figure 6a) with the
// given node count (4 GPUs per node, NVLink intra-node, EDR IB across).
func NewP100Cluster(nodes int) *Topology { return device.NewP100Cluster(nodes) }

// NewK80Cluster builds the paper's K80 cluster (Figure 6b).
func NewK80Cluster(nodes int) *Topology { return device.NewK80Cluster(nodes) }

// NewEstimator returns the default performance model: a measuring
// estimator (one measurement per distinct task signature, cached — the
// paper's profiling flow) over the synthetic analytic device model.
func NewEstimator() Estimator {
	return perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
}

// Baseline strategies.

// DataParallel returns the default strategy of existing frameworks.
func DataParallel(g *Graph, topo *Topology) *Strategy { return config.DataParallel(g, topo) }

// ModelParallel returns whole-op placement round-robin over GPUs.
func ModelParallel(g *Graph, topo *Topology) *Strategy { return config.ModelParallel(g, topo) }

// ExpertDesigned returns the expert-designed strategy the paper
// benchmarks (one-weird-trick for CNNs, the GNMT scheme for RNNs).
func ExpertDesigned(g *Graph, topo *Topology) *Strategy { return config.Expert(g, topo) }

// Model builds one of the paper's benchmark DNNs ("alexnet",
// "inception-v3", "resnet-101", "rnntc", "rnnlm", "nmt", "lenet") at its
// paper-scale batch size and unroll length.
func Model(name string) (*Graph, error) {
	spec, err := models.Get(name)
	if err != nil {
		return nil, err
	}
	return spec.BuildPaper(), nil
}

// ModelScaled builds a benchmark DNN with batch/steps divided by factor
// (for quick experiments).
func ModelScaled(name string, factor int) (*Graph, error) {
	spec, err := models.Get(name)
	if err != nil {
		return nil, err
	}
	return spec.BuildScaled(factor), nil
}

// Simulate predicts the per-iteration execution time of a strategy with
// the execution simulator and reports strategy metrics.
func Simulate(g *Graph, topo *Topology, s *Strategy) (time.Duration, Metrics) {
	return search.Evaluate(g, topo, NewEstimator(), s, taskgraph.Options{})
}

// SearchOptions configure the execution optimizer.
//
// Deprecated: use OptimizeOptions with GetOptimizer("mcmc"), which adds
// streaming progress, pluggable algorithms and context-based
// cancellation; SearchOptions remains as a shim over it.
type SearchOptions struct {
	// MaxIters caps MCMC proposals per initial strategy (default 2000).
	MaxIters int
	// Budget caps search time per chain in deterministic virtual time
	// (0 = none): proposals are priced by the installed cost profile
	// (SetCostProfile; built-in defaults otherwise), so a budgeted run
	// executes a fixed proposal count and replays exactly. For a
	// wall-clock limit, use Optimize with a deadline context.
	Budget time.Duration
	// Beta is the Metropolis-Hastings temperature (default 15).
	Beta float64
	// Seed makes the search reproducible (default 1).
	Seed int64
	// IncludeExpert adds the expert-designed strategy to the initial
	// candidates alongside data parallelism and a random strategy.
	IncludeExpert bool
	// Workers caps this search's share of the process-wide worker pool
	// (0 = the pool's full bound). Results are identical for every
	// value: chain RNG seeds are derived up front from Seed, so the
	// parallel search is bit-identical to the serial one.
	//
	// Deprecated: size the shared pool once with SetWorkers instead.
	Workers int
	// Cancel, when non-nil, stops the search early once closed; the
	// best strategy found so far is returned.
	//
	// Deprecated: pass a cancellable context.Context to
	// Optimizer.Optimize instead. Cancel is bridged onto a context
	// internally and keeps working.
	Cancel <-chan struct{}
}

// SearchResult is the outcome of the execution optimizer.
type SearchResult struct {
	// Best is the best strategy discovered.
	Best *Strategy
	// BestCost is its simulated per-iteration time.
	BestCost time.Duration
	// Iters counts evaluated proposals; SearchTime the wall clock spent.
	Iters      int
	SearchTime time.Duration
}

// Search runs the FlexFlow execution optimizer (Section 6) and returns
// the best strategy discovered.
//
// Deprecated: use GetOptimizer("mcmc") and Optimize, which accept a
// context for cancellation and stream progress events. Search remains a
// thin shim over that path.
func Search(g *Graph, topo *Topology, o SearchOptions) SearchResult {
	ctx := context.Background()
	if o.Cancel != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		select {
		case <-o.Cancel:
			// Already closed: cancel synchronously so the search sees it
			// before its first proposal, exactly like the old channel
			// check did.
			cancel()
		default:
			done := make(chan struct{})
			defer close(done)
			go func() {
				select {
				case <-o.Cancel:
					cancel()
				case <-done:
				}
			}()
		}
	}
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		panic(err) // unreachable: "mcmc" registers at init
	}
	res, _ := opt.Optimize(ctx, Problem{Graph: g, Topology: topo}, OptimizeOptions{
		MaxIters: o.MaxIters, Budget: o.Budget, Beta: o.Beta, Seed: o.Seed,
		IncludeExpert: o.IncludeExpert, Workers: o.Workers,
	})
	return SearchResult{Best: res.Best, BestCost: res.BestCost, Iters: res.Iters, SearchTime: res.SearchTime}
}

// EmulateHardware runs one training iteration of the strategy on the
// emulated distributed runtime (noisy task times, dispatch overhead,
// imperfect bandwidth) and returns the "measured" iteration time — the
// ground truth the simulator is validated against in Figure 11.
func EmulateHardware(g *Graph, topo *Topology, s *Strategy, seed int64) time.Duration {
	tg := taskgraph.Build(g, topo, s, NewEstimator(), taskgraph.Options{})
	return runtime.Execute(tg, runtime.DefaultOptions(seed)).Makespan
}

// VerifyStrategy numerically executes the forward pass under the
// strategy (real float32 kernels, tasks restricted to their inferred
// input regions) and confirms it equals the unpartitioned computation.
func VerifyStrategy(g *Graph, s *Strategy) error { return exec.Check(g, s) }

// CriticalPath returns the dependency-chain lower bound of a strategy's
// iteration time (no schedule can beat it).
func CriticalPath(g *Graph, topo *Topology, s *Strategy) time.Duration {
	tg := taskgraph.Build(g, topo, s, NewEstimator(), taskgraph.Options{})
	return sim.CriticalPathLowerBound(tg)
}

// MemoryModel configures memory-footprint accounting.
type MemoryModel = memory.Model

// CheckMemory verifies the strategy's per-device footprint (weights,
// gradients, optimizer state, retained activations) fits every device's
// capacity. The returned error names the first overflowing device.
func CheckMemory(g *Graph, topo *Topology, s *Strategy, m MemoryModel) error {
	return memory.Check(g, topo, s, m)
}

// MemoryFootprint returns per-device memory usage in bytes.
func MemoryFootprint(g *Graph, topo *Topology, s *Strategy, m MemoryModel) map[int]int64 {
	out := map[int]int64{}
	for dev, u := range memory.Footprint(g, topo, s, m) {
		out[dev] = u.Total()
	}
	return out
}

// RenderTimeline simulates the strategy and renders its per-device
// schedule as an ASCII Gantt chart (the textual Figure 5).
func RenderTimeline(g *Graph, topo *Topology, s *Strategy, width int, showLinks bool) string {
	tg := taskgraph.Build(g, topo, s, NewEstimator(), taskgraph.Options{})
	st := sim.NewState(tg)
	st.Simulate()
	return viz.Timeline(st, viz.Options{Width: width, ShowLinks: showLinks})
}

// ExportStrategy serializes a strategy as JSON (op-name keyed, stable
// across graph rebuilds).
func ExportStrategy(g *Graph, s *Strategy) ([]byte, error) {
	return config.MarshalStrategy(g, s)
}

// ImportStrategy parses a strategy exported by ExportStrategy and
// validates it against the graph and topology.
func ImportStrategy(data []byte, g *Graph, topo *Topology) (*Strategy, error) {
	return config.UnmarshalStrategy(data, g, topo)
}

// ExportGraph serializes an operator graph as JSON — the wire format
// the strategy server (cmd/flexflowd) accepts for custom graphs; see
// docs/SERVER.md. Op names must be unique (the model builders
// guarantee this).
func ExportGraph(g *Graph) ([]byte, error) { return config.MarshalGraph(g) }

// ImportGraph parses a graph exported by ExportGraph and validates its
// structural invariants.
func ImportGraph(data []byte) (*Graph, error) { return config.UnmarshalGraph(data) }

// ExportTopology serializes a device topology as JSON — the wire
// format the strategy server accepts for custom machines.
func ExportTopology(t *Topology) ([]byte, error) { return config.MarshalTopology(t) }

// ImportTopology parses a topology exported by ExportTopology and
// validates it (connectivity, positive bandwidths).
func ImportTopology(data []byte) (*Topology, error) { return config.UnmarshalTopology(data) }
