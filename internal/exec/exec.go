// Package exec executes operator graphs numerically — both unpartitioned
// (the reference semantics) and under an arbitrary SOAP parallelization
// strategy, task by task. Its equivalence checker proves the property
// the paper relies on but never verifies mechanically: partitioning an
// operation along any combination of sample, attribute and parameter
// dimensions, with halo regions and weight shards inferred by
// graph.InputRegions, computes exactly the same result as the
// unpartitioned operator graph.
//
// In strict mode every task's inputs are masked with NaN outside the
// regions InputRegions inferred for it, so a task that reads even one
// element beyond its declared input requirements poisons the output and
// fails the check — a direct mechanical test of the region-inference
// (halo) math.
package exec

import (
	"fmt"
	"math"

	"flexflow/internal/config"
	"flexflow/internal/graph"
	"flexflow/internal/kernels"
	"flexflow/internal/tensor"
)

// opWeights holds the parameter tensors of one op.
type opWeights struct {
	w, b          *kernels.Tensor // conv / matmul / softmax
	wx, wh        *kernels.Tensor // recurrent cell
	wScore, wProj *kernels.Tensor // attention
	table         *kernels.Tensor // embedding
}

// Executor owns deterministic inputs and weights for a graph.
type Executor struct {
	G       *graph.Graph
	inputs  map[int]*kernels.Tensor
	weights map[int]*opWeights
}

// New builds an executor with deterministic pseudo-random inputs and
// weights (seeded by op ID), so runs are reproducible.
func New(g *graph.Graph) *Executor {
	e := &Executor{G: g, inputs: map[int]*kernels.Tensor{}, weights: map[int]*opWeights{}}
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.Input:
			t := kernels.FromShape(op.Out)
			if vocab := embeddingVocab(g, op); vocab > 0 {
				t.PseudoRandomIDs(uint64(op.ID)+1, vocab)
			} else {
				t.PseudoRandomFill(uint64(op.ID) + 1)
			}
			e.inputs[op.ID] = t
		case graph.Conv2D:
			w := &opWeights{
				w: kernels.NewTensor(op.Out.Size(1), op.Inputs[0].Out.Size(1), op.KernelH, op.KernelW),
				b: kernels.NewTensor(op.Out.Size(1)),
			}
			w.w.PseudoRandomFill(uint64(op.ID)*31 + 1)
			w.b.PseudoRandomFill(uint64(op.ID)*31 + 2)
			scale(w.w, 0.2)
			e.weights[op.ID] = w
		case graph.MatMul, graph.Softmax:
			w := &opWeights{
				w: kernels.NewTensor(op.InChannels, op.Out.Size(1)),
				b: kernels.NewTensor(op.Out.Size(1)),
			}
			w.w.PseudoRandomFill(uint64(op.ID)*31 + 1)
			w.b.PseudoRandomFill(uint64(op.ID)*31 + 2)
			scale(w.w, float32(1.0/math.Sqrt(float64(op.InChannels))))
			e.weights[op.ID] = w
		case graph.Embedding:
			w := &opWeights{table: kernels.NewTensor(op.InChannels, op.Out.Size(2))}
			w.table.PseudoRandomFill(uint64(op.ID)*31 + 1)
			e.weights[op.ID] = w
		case graph.LSTM:
			hidden := op.Out.Size(1)
			w := &opWeights{
				wx: kernels.NewTensor(op.InChannels, hidden),
				wh: kernels.NewTensor(hidden, hidden),
				b:  kernels.NewTensor(hidden),
			}
			w.wx.PseudoRandomFill(uint64(op.ID)*31 + 1)
			w.wh.PseudoRandomFill(uint64(op.ID)*31 + 2)
			w.b.PseudoRandomFill(uint64(op.ID)*31 + 3)
			scale(w.wx, float32(1.0/math.Sqrt(float64(op.InChannels))))
			scale(w.wh, float32(1.0/math.Sqrt(float64(hidden))))
			e.weights[op.ID] = w
		case graph.Attention:
			hidden := op.Out.Size(1)
			w := &opWeights{
				wScore: kernels.NewTensor(hidden, hidden),
				wProj:  kernels.NewTensor(hidden, hidden),
			}
			w.wScore.PseudoRandomFill(uint64(op.ID)*31 + 1)
			w.wProj.PseudoRandomFill(uint64(op.ID)*31 + 2)
			scale(w.wScore, float32(1.0/float64(hidden)))
			scale(w.wProj, float32(1.0/math.Sqrt(float64(hidden))))
			e.weights[op.ID] = w
		}
	}
	return e
}

func scale(t *kernels.Tensor, f float32) {
	for i := range t.Data {
		t.Data[i] *= f
	}
}

// embeddingVocab returns the vocabulary size if the input op feeds an
// embedding (its values must then be token ids), else 0.
func embeddingVocab(g *graph.Graph, in *graph.Op) int {
	for _, c := range g.Consumers(in) {
		if c.Kind == graph.Embedding {
			return c.InChannels
		}
	}
	return 0
}

// compute evaluates the given output region of op into out, reading the
// provided input tensors (parallel to op.Inputs).
func (e *Executor) compute(op *graph.Op, ins []*kernels.Tensor, out *kernels.Tensor, region tensor.Region) {
	w := e.weights[op.ID]
	switch op.Kind {
	case graph.Conv2D:
		kernels.Conv2D(out, ins[0], w.w, w.b, region, op.StrideH, op.StrideW, op.PadH, op.PadW)
	case graph.Pool2D:
		kernels.MaxPool2D(out, ins[0], region, op.KernelH, op.KernelW, op.StrideH, op.StrideW, op.PadH, op.PadW)
	case graph.MatMul:
		kernels.MatMul(out, ins[0], w.w, w.b, region)
	case graph.Softmax:
		kernels.SoftmaxLinear(out, ins[0], w.w, w.b, region)
	case graph.Embedding:
		kernels.Embedding(out, ins[0], w.table, region)
	case graph.LSTM:
		var prev *kernels.Tensor
		if len(ins) == 2 {
			prev = ins[1]
		}
		kernels.RecurrentCell(out, ins[0], prev, w.wx, w.wh, w.b, region, op.Step)
	case graph.Attention:
		kernels.Attention(out, ins[0], ins[1], w.wScore, w.wProj, region)
	case graph.Concat:
		kernels.ConcatChannels(out, ins, region)
	case graph.Add:
		kernels.Add(out, ins[0], ins[1], region)
	case graph.Activation:
		kernels.ReLU(out, ins[0], region)
	case graph.Flatten:
		kernels.Flatten(out, ins[0], region)
	case graph.Stack:
		kernels.Stack(out, ins, region)
	default:
		panic(fmt.Sprintf("exec: no kernel for %v", op.Kind))
	}
}

// gatherInputs returns the value tensors feeding op from prior results.
func (e *Executor) gatherInputs(op *graph.Op, results map[int]*kernels.Tensor) []*kernels.Tensor {
	ins := make([]*kernels.Tensor, len(op.Inputs))
	for i, in := range op.Inputs {
		if in.Kind == graph.Input {
			ins[i] = e.inputs[in.ID]
		} else {
			ins[i] = results[in.ID]
		}
	}
	return ins
}

// Reference executes the graph unpartitioned and returns every op's full
// output tensor.
func (e *Executor) Reference() map[int]*kernels.Tensor {
	results := map[int]*kernels.Tensor{}
	for _, op := range e.G.Ops {
		if op.Kind == graph.Input {
			results[op.ID] = e.inputs[op.ID]
			continue
		}
		out := kernels.FromShape(op.Out)
		e.compute(op, e.gatherInputs(op, results), out, op.Out.FullRegion())
		results[op.ID] = out
	}
	return results
}

// RunStrategy executes the graph under a parallelization strategy: each
// op is computed task-by-task, each task producing exactly its output
// region, and the shards are assembled. In strict mode every task sees
// input copies poisoned with NaN outside its inferred input regions.
func (e *Executor) RunStrategy(s *config.Strategy, strict bool) map[int]*kernels.Tensor {
	results := map[int]*kernels.Tensor{}
	for _, op := range e.G.Ops {
		if op.Kind == graph.Input {
			results[op.ID] = e.inputs[op.ID]
			continue
		}
		c := s.Config(op.ID)
		out := kernels.FromShape(op.Out)
		ins := e.gatherInputs(op, results)
		for k := 0; k < c.NumTasks(); k++ {
			region := tensor.GridRegion(op.Out, c.Degrees, k)
			taskIns := ins
			if strict {
				needs := graph.InputRegions(op, region)
				taskIns = make([]*kernels.Tensor, len(ins))
				for i := range ins {
					taskIns[i] = maskOutside(ins[i], needs[i])
				}
			}
			e.compute(op, taskIns, out, region)
		}
		results[op.ID] = out
	}
	return results
}

// maskOutside copies t with NaN everywhere outside region.
func maskOutside(t *kernels.Tensor, region tensor.Region) *kernels.Tensor {
	out := t.Clone()
	nan := float32(math.NaN())
	coords := make([]int, len(out.Dims))
	var visit func(d, base int)
	visit = func(d, base int) {
		if d == len(out.Dims) {
			return
		}
		for c := 0; c < out.Dims[d]; c++ {
			coords[d] = c
			if d == len(out.Dims)-1 {
				inside := true
				for i, iv := range region.Iv {
					if coords[i] < iv.Lo || coords[i] >= iv.Hi {
						inside = false
						break
					}
				}
				if !inside {
					out.Data[base*out.Dims[d]+c] = nan
				}
			} else {
				visit(d+1, base*out.Dims[d]+c)
			}
		}
	}
	visit(0, 0)
	return out
}

// Check runs the reference and the strategy execution (strict mode) and
// returns an error naming the first op whose outputs diverge.
func Check(g *graph.Graph, s *config.Strategy) error {
	e := New(g)
	ref := e.Reference()
	got := e.RunStrategy(s, true)
	const tol = 1e-4
	for _, op := range g.Ops {
		if op.Kind == graph.Input {
			continue
		}
		if !got[op.ID].Equal(ref[op.ID], tol) {
			return fmt.Errorf("exec: op %q (%v) diverges under strategy (max |diff| = %g, config %v)",
				op.Name, op.Kind, got[op.ID].MaxAbsDiff(ref[op.ID]), s.Config(op.ID))
		}
	}
	return nil
}
