package exec

import (
	"math/rand"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

func cnnGraph() *graph.Graph {
	g := graph.New("cnn")
	x := g.Input4D("x", 4, 3, 12, 12)
	c1 := g.Conv2D("c1", x, 6, 3, 3, 1, 1, 1, 1)
	p1 := g.Pool2D("p1", c1, 2, 2, 2, 2, 0, 0)
	c2 := g.Conv2D("c2", p1, 8, 3, 3, 1, 1, 1, 1)
	r := g.Activation("relu", c2)
	f := g.Flatten("f", r)
	d := g.Dense("fc1", f, 16)
	g.SoftmaxClassifier("sm", d, 10)
	return g
}

func rnnGraph() *graph.Graph {
	g := graph.New("rnn")
	ids := g.InputSeq("tok", 4, 3)
	emb := g.Embedding("emb", ids, 20, 8)
	var prev *graph.Op
	steps := make([]*graph.Op, 3)
	for s := 0; s < 3; s++ {
		prev = g.LSTMStep("l0", emb, prev, s, 8)
		steps[s] = prev
	}
	// Stacked second layer over 2D per-step inputs.
	var prev2 *graph.Op
	for s := 0; s < 3; s++ {
		prev2 = g.LSTMStep("l1", steps[s], prev2, s, 8)
		steps[s] = prev2
	}
	mem := g.StackSteps("stack", steps...)
	attn := g.AttentionStep("attn", steps[2], mem)
	g.SoftmaxClassifier("sm", attn, 20)
	return g
}

func inceptionishGraph() *graph.Graph {
	g := graph.New("branchy")
	x := g.Input4D("x", 4, 4, 10, 10)
	a := g.Conv2D("a", x, 4, 1, 1, 1, 1, 0, 0)
	b := g.Conv2D("b", x, 6, 3, 3, 1, 1, 1, 1)
	cat := g.ConcatChannels("cat", a, b)
	c := g.Conv2D("c", cat, 4, 1, 1, 1, 1, 0, 0)
	proj := g.Conv2D("proj", cat, 4, 1, 1, 1, 1, 0, 0)
	g.Add("res", c, proj)
	return g
}

func TestReferenceDeterministic(t *testing.T) {
	g := cnnGraph()
	a := New(g).Reference()
	b := New(g).Reference()
	for id, ta := range a {
		if !ta.Equal(b[id], 0) {
			t.Fatalf("op %d reference not deterministic", id)
		}
	}
}

func TestSingleTaskStrategyMatchesReference(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(1, "P100")
	s := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		s.Set(op.ID, config.OnDevice(op, 0))
	}
	if err := Check(g, s); err != nil {
		t.Fatal(err)
	}
	_ = topo
}

func TestDataParallelMatchesReference(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"cnn": cnnGraph(), "rnn": rnnGraph(), "branchy": inceptionishGraph(),
	} {
		topo := device.NewSingleNode(4, "P100")
		if err := Check(g, config.DataParallel(g, topo)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestExpertStrategyMatchesReference(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	if err := Check(g, config.Expert(g, topo)); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStrategiesMatchReference is the headline property: ANY SOAP
// strategy computes exactly what the unpartitioned graph computes, with
// tasks restricted (via NaN poisoning) to the input regions the halo
// inference grants them.
func TestRandomStrategiesMatchReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cnn": cnnGraph(), "rnn": rnnGraph(), "branchy": inceptionishGraph(),
	}
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(99))
	for name, g := range graphs {
		for trial := 0; trial < 8; trial++ {
			s := config.Random(g, topo, rng)
			if err := Check(g, s); err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
		}
	}
}

// Hybrid sample x attribute x parameter partitioning of a conv exercises
// halo regions in both spatial dimensions simultaneously.
func TestHybridConvPartitioning(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(8, "P100")
	s := config.DataParallel(g, topo)
	conv := g.Op(1) // c1: (4, 6, 12, 12)
	s.Set(conv.ID, &config.Config{
		Degrees: []int{2, 2, 2, 1},
		Devices: []int{0, 1, 2, 3, 4, 5, 6, 7},
	})
	if err := Check(g, s); err != nil {
		t.Fatal(err)
	}
	// Spatial split in both height and width.
	s.Set(conv.ID, &config.Config{
		Degrees: []int{1, 1, 2, 2},
		Devices: []int{0, 1, 2, 3},
	})
	if err := Check(g, s); err != nil {
		t.Fatal(err)
	}
}

// A task reading beyond its inferred input region must be caught by the
// NaN poisoning. Simulate the bug by shrinking a conv's halo: partition
// the height dim and verify the masked input actually contains NaN
// outside the halo (i.e. the mask is active, not vacuous).
func TestMaskingIsActive(t *testing.T) {
	g := cnnGraph()
	e := New(g)
	ref := e.Reference()
	conv := g.Op(1)
	in := ref[g.Op(0).ID]
	region := conv.Out.FullRegion()
	region.Iv[2] = tensor.Interval{Lo: 0, Hi: 6}
	need := graph.InputRegions(conv, region)[0]
	masked := maskOutside(in, need)
	// Rows beyond the halo (7..12) must be NaN.
	if v := masked.At(0, 0, 8, 0); v == v { // NaN != NaN
		t.Fatal("mask did not poison out-of-halo rows")
	}
	// Rows inside the halo are preserved.
	if masked.At(0, 0, 3, 3) != in.At(0, 0, 3, 3) {
		t.Fatal("mask damaged in-halo data")
	}
}

func TestCheckReportsDivergence(t *testing.T) {
	// Build a strategy, then corrupt the checker by constructing an
	// impossible config via a doctored InputRegions path: instead,
	// verify Check fails when we lie about the graph by comparing two
	// different graphs' strategies. Simplest real negative: craft a
	// graph where a strict-mode task WOULD read outside its region if
	// regions were wrong — covered above — so here just assert Check's
	// error path formats correctly using a mismatched manual comparison.
	g := cnnGraph()
	e := New(g)
	ref := e.Reference()
	got := e.Reference()
	conv := g.Op(1)
	got[conv.ID].Data[0] += 1 // corrupt
	if got[conv.ID].Equal(ref[conv.ID], 1e-6) {
		t.Fatal("corruption not detected by Equal")
	}
}

func TestEmbeddingInputsAreIDs(t *testing.T) {
	g := rnnGraph()
	e := New(g)
	ids := e.inputs[g.Op(0).ID]
	for _, v := range ids.Data {
		if v != float32(int(v)) || v < 0 || v >= 20 {
			t.Fatalf("embedding input not an id: %v", v)
		}
	}
}

func TestParamParallelDenseMatchesReference(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	s := config.DataParallel(g, topo)
	for _, op := range g.ComputeOps() {
		if op.Kind == graph.MatMul || op.Kind == graph.Softmax {
			s.Set(op.ID, config.ParamParallel(op, topo.GPUs()))
		}
	}
	if err := Check(g, s); err != nil {
		t.Fatal(err)
	}
}
