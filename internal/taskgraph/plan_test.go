package taskgraph

import (
	"math/rand"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
)

func TestPlanBaseIsFrozen(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	fc1 := g.Op(1)
	t.Run("replace-config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("ReplaceConfig on a frozen plan graph did not panic")
			}
		}()
		plan.Base().ReplaceConfig(fc1.ID, config.OnDevice(fc1, 0))
	})
	t.Run("compact", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Compact on a frozen plan graph did not panic")
			}
		}()
		plan.Base().Compact()
	})
}

// TestPlanInstanceMatchesBuild: an instance is structurally identical to
// the base — same task count, IDs, slots, metrics, adjacency — and a
// fresh Build of the same strategy agrees on everything ID-independent.
// Tasks are immutable, so base and instance intentionally share them by
// pointer (the copy-on-write design); the structure views must still be
// independent in effect, which TestPlanInstanceIsolation pins.
func TestPlanInstanceMatchesBuild(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	s := config.DataParallel(g, topo)
	plan := Compile(g, topo, s.Clone(), perfmodel.NewAnalyticModel(), Options{})
	inst := plan.Instance()

	base := plan.Base()
	if len(inst.Tasks) != len(base.Tasks) || inst.NumSlots() != base.NumSlots() {
		t.Fatalf("instance shape %d/%d != base %d/%d",
			len(inst.Tasks), inst.NumSlots(), len(base.Tasks), base.NumSlots())
	}
	for i, bt := range base.Tasks {
		if it := inst.Tasks[i]; it != bt {
			t.Fatalf("task %d not shared by pointer: instances must reuse the base's immutable tasks", i)
		}
	}
	checkGraphsIdentical(t, base, inst)
	checkAdjInvariants(t, inst)
	if got, want := inst.Metrics(), base.Metrics(); got != want {
		t.Fatalf("instance metrics %+v != base %+v", got, want)
	}
	fresh := Build(g, topo, s.Clone(), perfmodel.NewAnalyticModel(), Options{})
	if got, want := inst.Metrics(), fresh.Metrics(); got != want {
		t.Fatalf("instance metrics %+v != fresh build %+v", got, want)
	}
}

// TestPlanInstanceIsolation: mutating one instance never leaks into the
// base or into sibling instances, across random mutation sequences.
func TestPlanInstanceIsolation(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	baseMetrics := plan.Base().Metrics()
	ref := plan.Instance() // untouched sibling

	rng := rand.New(rand.NewSource(9))
	ops := g.ComputeOps()
	mutated := plan.Instance()
	for i := 0; i < 20; i++ {
		op := ops[rng.Intn(len(ops))]
		mutated.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
	}
	if got := plan.Base().Metrics(); got != baseMetrics {
		t.Fatalf("mutating an instance changed the base: %+v vs %+v", got, baseMetrics)
	}
	if got := ref.Metrics(); got != baseMetrics {
		t.Fatalf("mutating an instance changed a sibling: %+v vs %+v", got, baseMetrics)
	}
	// The mutated instance still agrees with a fresh build of its
	// accumulated strategy.
	fresh := Build(g, topo, mutated.Strat.Clone(), perfmodel.NewAnalyticModel(), Options{})
	if got, want := mutated.Metrics(), fresh.Metrics(); got != want {
		t.Fatalf("mutated instance metrics %+v != fresh build %+v", got, want)
	}
}

// TestPlanInstancesBitIdentical: two instances applying the same
// ReplaceConfig sequence assign identical task IDs and slots — the
// property the parallel Neighborhood sweep's determinism rests on.
func TestPlanInstancesBitIdentical(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	ops := g.ComputeOps()

	run := func() *TaskGraph {
		inst := plan.Instance()
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 15; i++ {
			op := ops[rng.Intn(len(ops))]
			inst.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		}
		return inst
	}
	a, b := run(), run()
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts diverged: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		at, bt := a.Tasks[i], b.Tasks[i]
		if at.ID != bt.ID || at.Slot != bt.Slot || at.Kind != bt.Kind || at.Exe != bt.Exe || a.Live(at) != b.Live(bt) {
			t.Fatalf("task %d diverged: %v (slot %d) vs %v (slot %d)", i, at, at.Slot, bt, bt.Slot)
		}
	}
	checkGraphsIdentical(t, a, b)
}

// TestSlotRecycling: slots stay bounded by the peak alive count across
// many ReplaceConfig calls, while IDs keep growing — the split that
// keeps simulator state arrays compact.
func TestSlotRecycling(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	fc1 := g.Op(1)
	peak := tg.NumSlots()
	for i := 0; i < 40; i++ {
		tg.ReplaceConfig(fc1.ID, config.OnDevice(fc1, i%2))
		if tg.NumSlots() > peak {
			peak = tg.NumSlots()
		}
	}
	if tg.NumSlots() > 2*len(tg.Tasks) {
		t.Fatalf("slot space %d not bounded by live structure (%d tasks)", tg.NumSlots(), len(tg.Tasks))
	}
	// Live tasks always hold distinct slots below NumSlots.
	seen := map[int]bool{}
	for _, task := range tg.Tasks {
		if !tg.Live(task) {
			continue
		}
		if task.Slot < 0 || task.Slot >= tg.NumSlots() {
			t.Fatalf("task %v slot %d outside [0,%d)", task, task.Slot, tg.NumSlots())
		}
		if seen[task.Slot] {
			t.Fatalf("slot %d held by two live tasks", task.Slot)
		}
		seen[task.Slot] = true
	}
}
