// Package taskgraph constructs the task graph of Section 5.1: given an
// operator graph, a device topology and a parallelization strategy, it
// derives per-task compute work (forward, backward and weight-update
// tasks), the communication tasks implied by overlapping sub-tensors on
// different devices, and the parameter-synchronization traffic of
// replicated weights. Hardware connections are treated as communication
// devices so computation and communication can overlap.
//
// The builder also supports the incremental update the delta simulation
// algorithm needs (Section 5.3): ReplaceConfig rebuilds exactly the
// tasks belonging to one operation and the communication attached to it.
package taskgraph

import (
	"fmt"
	"math"
	"sort"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/tensor"
)

// TaskKind classifies tasks.
type TaskKind uint8

const (
	// Compute is a normal task: a shard of an operation's forward or
	// backward work.
	Compute TaskKind = iota
	// Comm is a communication task: a tensor transfer over a connection.
	Comm
	// Update applies a synchronized gradient shard to local weights.
	Update
)

// String names the task kind.
func (k TaskKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Update:
		return "update"
	default:
		return fmt.Sprintf("TaskKind(%d)", uint8(k))
	}
}

// Task is a node of the task graph. Tasks are immutable once built:
// adjacency lives in the graph's slot-indexed CSR view (Adj), all
// simulation timing lives in sim.State's slot-indexed arrays (see the
// Slot field), and liveness is derived from the Adj slot table — never
// stored in the task itself. A Task struct is therefore shared freely:
// between a frozen Plan base and every copy-on-write Instance, and
// between concurrent simulations.
type Task struct {
	ID int
	// Slot indexes the simulator's per-task state arrays. Unlike IDs
	// (unique forever, the ready-time tie-breaker), slots of dead tasks
	// are recycled, so the slot space stays as dense as the peak alive
	// count no matter how many ReplaceConfig calls a graph absorbs.
	Slot int
	Kind TaskKind
	Op   *graph.Op // owning op (nil for cross-op comm tasks)
	Pass perfmodel.Pass
	// Index is the flat grid index of compute tasks within their config.
	Index int
	// Device is the compute device for Compute/Update tasks, -1 for Comm.
	Device int
	// Link is the bottleneck link a Comm task is scheduled on, -1 otherwise.
	Link int
	// SrcDev/DstDev are the endpoints of a Comm task.
	SrcDev, DstDev int
	// Exe is the task's predicted execution time.
	Exe time.Duration
	// Bytes is the payload of a Comm task.
	Bytes int64
	// Sync marks parameter-synchronization traffic (vs activation
	// transfers); Figure 8b and the Figure 13 discussion separate them.
	Sync bool

	// staged holds successors wired by Connect before Manual assigns
	// slots; Manual moves them into the Adj rows and clears the field.
	staged []*Task
}

// String renders the task with its id, kind, pass, op, device and
// exe-time fields for debugging and timeline dumps.
func (t *Task) String() string {
	opName := "-"
	if t.Op != nil {
		opName = t.Op.Name
	}
	return fmt.Sprintf("t%d[%s/%s %s idx=%d dev=%d link=%d exe=%v]",
		t.ID, t.Kind, t.Pass, opName, t.Index, t.Device, t.Link, t.Exe)
}

// ScheduleKey returns the resource the task occupies: compute tasks
// occupy their device, communication tasks their bottleneck link.
// Resources are numbered devices first, then links.
func (t *Task) ScheduleKey(numDevices int) int {
	if t.Kind == Comm {
		return numDevices + t.Link
	}
	return t.Device
}

// Adj is the slot-indexed, CSR-style flat view of the live task
// structure — the authoritative adjacency representation (tasks carry
// no pointer lists) and the one the simulator's hot loops traverse.
// Every array is indexed by Task.Slot, and the adjacency rows hold
// predecessor/successor slots as contiguous int32s, so recomputing a
// ready time or releasing successors touches a handful of dense cache
// lines rather than one scattered Task struct per edge.
//
// Invariants, maintained incrementally by the builder and
// ReplaceConfig and packed contiguously by Build/Manual:
//
//   - ID[slot] is the live task's ID at that slot, or -1 while the
//     slot is free. Because IDs are unique forever and slots are
//     recycled, comparing a remembered (slot, id) pair against
//     ID[slot] is an O(1) is-this-task-still-alive test — and the
//     only liveness record there is (see TaskGraph.Live).
//   - In[slot]/Out[slot] reference live slots only: removing a task
//     scrubs it from every surviving neighbour's row before its slot
//     is freed, so traversals never need a dead check.
//   - Exe[slot] and Key[slot] cache the task's execution time and
//     schedule resource (device, or numDevices+link for Comm tasks).
//   - Task[slot] maps back to the owning *Task for API boundaries
//     (timelines, error messages); it is nil for free slots.
//
// The view is owned by its TaskGraph: read-only for everyone else,
// safe for concurrent readers on a frozen Plan base, private to the
// owning goroutine on a mutable Instance.
//
// # Copy-on-write
//
// A Plan.Instance shares the frozen base's arrays and row backing
// verbatim (see TaskGraph.clone); the first ReplaceConfig privatizes
// the slot-indexed arrays and row headers (TaskGraph.materialize) and
// allocates the inOwned/outOwned bitsets. Row *contents* stay shared
// until a mutation touches them: in-place writes (removeIn/removeOut,
// noteDead, noteNew's row reset) fault the row private first, while
// appends never need a fault because every shared row is cut with its
// capacity pinned to its length, so append reallocates instead of
// writing into the shared backing.
type Adj struct {
	// In and Out are the per-slot predecessor and successor slot rows.
	In, Out [][]int32
	// ID holds the live task ID per slot (-1 = free slot).
	ID []int32
	// Exe caches Task.Exe per slot.
	Exe []time.Duration
	// Key caches Task.ScheduleKey per slot.
	Key []int32
	// Task maps slots back to live tasks (nil = free slot).
	Task []*Task

	// inOwned/outOwned, when non-nil, mark rows whose backing is
	// private to this graph; unmarked rows still alias the frozen base
	// plan's backing and must be faulted before any in-place write.
	// Both are nil on a graph that owns every row (a fresh Build).
	inOwned, outOwned []bool
}

// noteNew registers a freshly created task, growing the arrays to
// cover its slot and resetting any recycled rows.
func (a *Adj) noteNew(t *Task, key int) {
	for len(a.ID) <= t.Slot {
		a.In = append(a.In, nil)
		a.Out = append(a.Out, nil)
		a.ID = append(a.ID, -1)
		a.Exe = append(a.Exe, 0)
		a.Key = append(a.Key, 0)
		a.Task = append(a.Task, nil)
		if a.inOwned != nil {
			// Fresh slots start with nil rows, trivially private.
			a.inOwned = append(a.inOwned, true)
			a.outOwned = append(a.outOwned, true)
		}
	}
	a.ID[t.Slot] = int32(t.ID)
	a.Exe[t.Slot] = t.Exe
	a.Key[t.Slot] = int32(key)
	a.Task[t.Slot] = t
	a.resetRows(t.Slot)
}

// resetRows empties a slot's rows for reuse. Owned rows keep their
// backing (appends refill it in place); rows still aliasing the base
// are dropped to nil so future appends allocate privately.
func (a *Adj) resetRows(slot int) {
	if a.inOwned != nil && !a.inOwned[slot] {
		a.In[slot] = nil
		a.inOwned[slot] = true
	} else {
		a.In[slot] = a.In[slot][:0]
	}
	if a.outOwned != nil && !a.outOwned[slot] {
		a.Out[slot] = nil
		a.outOwned[slot] = true
	} else {
		a.Out[slot] = a.Out[slot][:0]
	}
}

// noteDead frees a removed task's slot. The caller must already have
// scrubbed the slot from every surviving neighbour's row.
func (a *Adj) noteDead(t *Task) {
	a.ID[t.Slot] = -1
	a.Task[t.Slot] = nil
	a.resetRows(t.Slot)
}

// removeIn deletes one occurrence of victim from slot's In row,
// faulting the row private first when it still aliases shared backing.
func (a *Adj) removeIn(slot int, victim int32) {
	row := a.In[slot]
	if a.inOwned != nil && !a.inOwned[slot] {
		row = append(make([]int32, 0, len(row)), row...)
		a.inOwned[slot] = true
	}
	a.In[slot] = removeSlot(row, victim)
}

// removeOut is removeIn for the Out row.
func (a *Adj) removeOut(slot int, victim int32) {
	row := a.Out[slot]
	if a.outOwned != nil && !a.outOwned[slot] {
		row = append(make([]int32, 0, len(row)), row...)
		a.outOwned[slot] = true
	}
	a.Out[slot] = removeSlot(row, victim)
}

// removeSlot deletes one occurrence of slot from a row the caller
// owns. Rows are unordered multisets (ready times are max/count
// reductions), so the removal swaps with the tail instead of shifting.
func removeSlot(row []int32, slot int32) []int32 {
	for i, s := range row {
		if s == slot {
			row[i] = row[len(row)-1]
			return row[:len(row)-1]
		}
	}
	return row
}

// Options control task-graph construction.
type Options struct {
	// SkipBackward limits the graph to the forward pass (used by the
	// inference examples and some unit tests). Training graphs include
	// forward, backward and parameter synchronization, like the paper's.
	SkipBackward bool
	// SkipParamSync omits gradient synchronization (ablation).
	SkipParamSync bool
	// StarSync replaces the ring all-reduce with a star (all replicas
	// send to the primary, which broadcasts back) — the
	// parameter-server-style ablation (the "ablation-sync" experiment,
	// docs/EXPERIMENTS.md).
	StarSync bool
}

// TaskGraph is the constructed graph plus the indexes needed for
// incremental updates.
type TaskGraph struct {
	G     *graph.Graph
	Topo  *device.Topology
	Strat *config.Strategy
	Est   perfmodel.Estimator
	Opts  Options

	Tasks  []*Task
	nextID int

	// Slot allocator: dead tasks return their slot to the free list, so
	// numSlots (the size a simulator state array needs) tracks the peak
	// alive count rather than the total tasks ever created.
	numSlots  int
	freeSlots []int

	// frozen marks the immutable base graph of a Plan: structural
	// mutation (ReplaceConfig, Compact) panics. Simulation still works —
	// sim.State keeps all timing in its own arrays.
	frozen bool

	// Per-op task groups, indexed by op ID.
	fwd    [][]*Task // forward compute tasks, by grid index
	bwd    [][]*Task // backward compute tasks, by grid index
	extras [][]*Task // sync comm + update tasks owned by the op

	// Cross-op communication tasks, keyed by (producer, consumer) op IDs.
	edgeComm map[[2]int][]*Task

	// adj is the slot-indexed flat structure view the simulator hot
	// path reads — and the only adjacency representation (see Adj). It
	// is maintained through every ReplaceConfig.
	adj Adj

	// shared marks an Instance still aliasing its frozen base Plan's
	// arrays; the first structural mutation calls materialize to
	// privatize them (copy-on-write).
	shared bool

	numDead int
}

// Live reports whether t is a live member of this graph: the adjacency
// slot table still maps t's slot to t's ID. Deadness is graph-relative
// — a task removed by one Instance's ReplaceConfig stays live in the
// base Plan and in every other instance.
func (tg *TaskGraph) Live(t *Task) bool {
	return t.Slot < len(tg.adj.ID) && tg.adj.ID[t.Slot] == int32(t.ID)
}

// Preds returns t's predecessors in this graph, freshly allocated.
// It exists for API boundaries and tests; hot paths read the Adj rows
// directly.
func (tg *TaskGraph) Preds(t *Task) []*Task {
	row := tg.adj.In[t.Slot]
	out := make([]*Task, len(row))
	for i, s := range row {
		out[i] = tg.adj.Task[s]
	}
	return out
}

// Succs returns t's successors in this graph, freshly allocated.
func (tg *TaskGraph) Succs(t *Task) []*Task {
	row := tg.adj.Out[t.Slot]
	out := make([]*Task, len(row))
	for i, s := range row {
		out[i] = tg.adj.Task[s]
	}
	return out
}

// VisitOpTasks calls visit for every task owned by op opID or by an
// edge adjacent to it: forward/backward compute, the op's update/sync
// extras, and the communication tasks of each incoming and outgoing
// edge. This is exactly the set ReplaceConfig(opID, ...) would tear
// down and rebuild — the tasks whose timing a config change at the op
// perturbs directly — so a caller can locate an op in the current
// timeline (e.g. its earliest task start) without a full-graph scan.
// Tasks are visited in a fixed order (fwd, bwd, extras, then edges in
// input/consumer order) that depends only on the graph and the current
// strategy, never on map iteration.
func (tg *TaskGraph) VisitOpTasks(opID int, visit func(*Task)) {
	each := func(ts []*Task) {
		for _, t := range ts {
			visit(t)
		}
	}
	each(tg.fwd[opID])
	each(tg.bwd[opID])
	each(tg.extras[opID])
	op := tg.G.Op(opID)
	for _, in := range op.Inputs {
		if in.Kind != graph.Input {
			each(tg.edgeComm[[2]int{in.ID, opID}])
		}
	}
	for _, consumer := range tg.G.Consumers(op) {
		each(tg.edgeComm[[2]int{opID, consumer.ID}])
	}
}

// Adj returns the slot-indexed flat view of the live task structure.
// The view is read-only for callers and shares the graph's ownership
// rules: safe for concurrent readers on a frozen Plan base, single-
// goroutine on a mutable Instance. The inner slices are reallocated
// by structural mutation, so callers must re-read them through the
// returned pointer after any ReplaceConfig.
func (tg *TaskGraph) Adj() *Adj { return &tg.adj }

// Build constructs the task graph for a strategy. The strategy must be
// valid for (g, topo); Build panics otherwise, since the search layer
// only ever proposes valid configs.
func Build(g *graph.Graph, topo *device.Topology, strat *config.Strategy, est perfmodel.Estimator, opts Options) *TaskGraph {
	if err := strat.Validate(g, topo); err != nil {
		panic(fmt.Sprintf("taskgraph: %v", err))
	}
	tg := &TaskGraph{
		G: g, Topo: topo, Strat: strat, Est: est, Opts: opts,
		fwd:      make([][]*Task, g.NumOps()),
		bwd:      make([][]*Task, g.NumOps()),
		extras:   make([][]*Task, g.NumOps()),
		edgeComm: make(map[[2]int][]*Task),
	}
	for _, op := range g.ComputeOps() {
		tg.buildComputeTasks(op)
	}
	for _, op := range g.ComputeOps() {
		for _, in := range op.Inputs {
			if in.Kind != graph.Input {
				tg.buildEdge(in, op)
			}
		}
		tg.buildSync(op)
	}
	// Repack the incrementally grown adjacency rows into one contiguous
	// CSR backing array: paid once per Build, read by every simulation.
	tg.reindex()
	return tg
}

func (tg *TaskGraph) newTask(t *Task) *Task {
	t.ID = tg.nextID
	tg.nextID++
	if t.ID > math.MaxInt32 {
		// The flat adjacency view stores IDs as int32; 2^31 tasks over
		// a graph's lifetime is far beyond any search budget.
		panic("taskgraph: task ID overflows int32")
	}
	if n := len(tg.freeSlots); n > 0 {
		t.Slot = tg.freeSlots[n-1]
		tg.freeSlots = tg.freeSlots[:n-1]
	} else {
		t.Slot = tg.numSlots
		tg.numSlots++
	}
	tg.Tasks = append(tg.Tasks, t)
	tg.adj.noteNew(t, t.ScheduleKey(tg.Topo.NumDevices()))
	return t
}

// NumSlots returns the size of the per-task state arrays a simulator
// needs to cover every live task's Slot.
func (tg *TaskGraph) NumSlots() int { return tg.numSlots }

// dep wires a dependency into the slot-indexed adjacency rows — the
// single adjacency representation. Every builder edge goes through
// here.
func (tg *TaskGraph) dep(from, to *Task) {
	tg.adj.Out[from.Slot] = append(tg.adj.Out[from.Slot], int32(to.Slot))
	tg.adj.In[to.Slot] = append(tg.adj.In[to.Slot], int32(from.Slot))
}

// Connect stages an ordering dependency between two tasks. It exists
// for hand-assembled task graphs (tests, worked examples); Build wires
// dependencies itself. The edge is recorded on the task and moved into
// the adjacency rows by Manual, once slots exist.
func Connect(from, to *Task) { from.staged = append(from.staged, to) }

// Manual wraps hand-assembled tasks into a TaskGraph for direct
// simulation (e.g. reproducing the worked example of Figure 5). Task IDs
// are assigned in slice order. Dependencies (Connect) must already be
// wired when Manual is called.
func Manual(topo *device.Topology, tasks []*Task) *TaskGraph {
	tg := &TaskGraph{Topo: topo, edgeComm: make(map[[2]int][]*Task)}
	for _, t := range tasks {
		tg.newTask(t)
	}
	for _, t := range tasks {
		for _, to := range t.staged {
			tg.dep(t, to)
		}
		t.staged = nil
	}
	tg.reindex()
	return tg
}

// reindex repacks the incrementally grown adjacency rows into one
// contiguous backing array (the CSR layout the simulator sweeps).
// Rows are cut with their capacity pinned to their length, which is
// also what makes copy-on-write sharing safe: a later incremental
// append (ReplaceConfig rewiring a survivor — in this graph or in an
// Instance sharing the backing) reallocates that row instead of
// clobbering its neighbour.
func (tg *TaskGraph) reindex() {
	a := &tg.adj
	total := 0
	for slot := 0; slot < tg.numSlots; slot++ {
		if a.ID[slot] >= 0 {
			total += len(a.In[slot]) + len(a.Out[slot])
		}
	}
	backing := make([]int32, 0, total)
	newIn := make([][]int32, tg.numSlots)
	newOut := make([][]int32, tg.numSlots)
	for slot := 0; slot < tg.numSlots; slot++ {
		if a.ID[slot] < 0 {
			continue
		}
		lo := len(backing)
		backing = append(backing, a.In[slot]...)
		newIn[slot] = backing[lo:len(backing):len(backing)]
		lo = len(backing)
		backing = append(backing, a.Out[slot]...)
		newOut[slot] = backing[lo:len(backing):len(backing)]
	}
	a.In = newIn
	a.Out = newOut
	a.inOwned, a.outOwned = nil, nil
}

// regionOf returns the output region of task index k of op.
func (tg *TaskGraph) regionOf(op *graph.Op, k int) tensor.Region {
	c := tg.Strat.Config(op.ID)
	return tensor.GridRegion(op.Out, c.Degrees, k)
}

// buildComputeTasks creates the forward (and backward) compute tasks of
// an op, with the forward->backward dependency per task index.
func (tg *TaskGraph) buildComputeTasks(op *graph.Op) {
	c := tg.Strat.Config(op.ID)
	n := c.NumTasks()
	fwd := make([]*Task, n)
	for k := 0; k < n; k++ {
		region := tensor.GridRegion(op.Out, c.Degrees, k)
		dev := tg.Topo.Device(c.Devices[k])
		fwd[k] = tg.newTask(&Task{
			Kind: Compute, Op: op, Pass: perfmodel.Forward, Index: k,
			Device: c.Devices[k], Link: -1,
			Exe: tg.Est.ExecTime(op, region, dev, perfmodel.Forward),
		})
	}
	tg.fwd[op.ID] = fwd
	if tg.Opts.SkipBackward {
		tg.bwd[op.ID] = nil
		return
	}
	bwd := make([]*Task, n)
	for k := 0; k < n; k++ {
		region := tensor.GridRegion(op.Out, c.Degrees, k)
		dev := tg.Topo.Device(c.Devices[k])
		bwd[k] = tg.newTask(&Task{
			Kind: Compute, Op: op, Pass: perfmodel.Backward, Index: k,
			Device: c.Devices[k], Link: -1,
			Exe: tg.Est.ExecTime(op, region, dev, perfmodel.Backward),
		})
		tg.dep(fwd[k], bwd[k])
	}
	tg.bwd[op.ID] = bwd
}

// buildEdge wires dependencies (and communication tasks) between the
// tasks of producer prod and consumer cons for the tensor flowing
// between them (Section 5.1 step 2): for every task pair with shared
// sub-tensors, a direct dependency if co-located, otherwise a
// communication task on the connection between their devices. The
// backward pass mirrors each transfer in the reverse direction.
func (tg *TaskGraph) buildEdge(prod, cons *graph.Op) {
	key := [2]int{prod.ID, cons.ID}
	inputIdx := -1
	for i, in := range cons.Inputs {
		if in.ID == prod.ID {
			inputIdx = i
			break
		}
	}
	if inputIdx < 0 {
		panic(fmt.Sprintf("taskgraph: %q does not consume %q", cons.Name, prod.Name))
	}
	var comms []*Task
	consCfg := tg.Strat.Config(cons.ID)
	for ck := 0; ck < consCfg.NumTasks(); ck++ {
		outRegion := tg.regionOf(cons, ck)
		need := graph.InputRegions(cons, outRegion)[inputIdx]
		if need.Empty() {
			continue
		}
		for pk, pt := range tg.fwd[prod.ID] {
			share := tg.regionOf(prod, pk).Intersect(need)
			vol := share.Volume()
			if vol == 0 {
				continue
			}
			ct := tg.fwd[cons.ID][ck]
			srcDev, dstDev := pt.Device, ct.Device
			if srcDev == dstDev {
				tg.dep(pt, ct)
				if !tg.Opts.SkipBackward {
					tg.dep(tg.bwd[cons.ID][ck], tg.bwd[prod.ID][pk])
				}
				continue
			}
			bytes := vol * tensor.ElemBytes
			path := tg.Topo.Route(srcDev, dstDev)
			fc := tg.newTask(&Task{
				Kind: Comm, Op: cons, Pass: perfmodel.Forward,
				Device: -1, Link: path.BottleneckLink,
				SrcDev: srcDev, DstDev: dstDev,
				Bytes: bytes, Exe: path.TransferTime(bytes),
			})
			tg.dep(pt, fc)
			tg.dep(fc, ct)
			comms = append(comms, fc)
			if !tg.Opts.SkipBackward {
				rpath := tg.Topo.Route(dstDev, srcDev)
				bc := tg.newTask(&Task{
					Kind: Comm, Op: cons, Pass: perfmodel.Backward,
					Device: -1, Link: rpath.BottleneckLink,
					SrcDev: dstDev, DstDev: srcDev,
					Bytes: bytes, Exe: rpath.TransferTime(bytes),
				})
				tg.dep(tg.bwd[cons.ID][ck], bc)
				tg.dep(bc, tg.bwd[prod.ID][pk])
				comms = append(comms, bc)
			}
		}
	}
	tg.edgeComm[key] = comms
}

// buildSync emits the gradient-synchronization and weight-update tasks
// of an op (skipped for weightless ops and forward-only graphs). Tasks
// that replicate a weight shard all-reduce their gradients over a ring
// of the distinct devices holding replicas; every device then runs an
// Update task for its local copy.
func (tg *TaskGraph) buildSync(op *graph.Op) {
	tg.extras[op.ID] = nil
	if tg.Opts.SkipBackward || !op.HasWeights() {
		return
	}
	c := tg.Strat.Config(op.ID)
	w := op.Weights(c.Degrees)
	if w.Elems == 0 {
		return
	}
	var extras []*Task
	// Group backward tasks by weight shard: tasks sharing all Parameter
	// dimension coordinates accumulate gradients for the same shard.
	shards := map[int][]*Task{}
	for k, bt := range tg.bwd[op.ID] {
		coords := tensor.GridCoords(c.Degrees, k)
		shardID := 0
		for i, d := range c.Degrees {
			if op.Out.Kind(i) == tensor.Parameter {
				shardID = shardID*d + coords[i]
			}
		}
		shards[shardID] = append(shards[shardID], bt)
	}
	shardIDs := make([]int, 0, len(shards))
	for id := range shards {
		shardIDs = append(shardIDs, id)
	}
	sort.Ints(shardIDs)

	shardRegion := tensor.Region{Iv: []tensor.Interval{{Lo: 0, Hi: int(w.Elems)}}}
	shardBytes := w.Elems * tensor.ElemBytes
	for _, id := range shardIDs {
		replicas := shards[id]
		// Distinct devices holding this shard, with the local backward
		// tasks contributing gradients on each.
		byDev := map[int][]*Task{}
		var devs []int
		for _, bt := range replicas {
			if _, ok := byDev[bt.Device]; !ok {
				devs = append(devs, bt.Device)
			}
			byDev[bt.Device] = append(byDev[bt.Device], bt)
		}
		sort.Ints(devs)

		updates := make([]*Task, len(devs))
		for i, dev := range devs {
			updates[i] = tg.newTask(&Task{
				Kind: Update, Op: op, Pass: perfmodel.Update, Index: id,
				Device: dev, Link: -1,
				Exe: tg.Est.ExecTime(op, shardRegion, tg.Topo.Device(dev), perfmodel.Update),
			})
		}
		if len(devs) == 1 {
			for _, bt := range byDev[devs[0]] {
				tg.dep(bt, updates[0])
			}
			extras = append(extras, updates[0])
			continue
		}
		if tg.Opts.StarSync {
			extras = append(extras, tg.buildStarSync(op, devs, byDev, updates, shardBytes)...)
		} else {
			extras = append(extras, tg.buildRingSync(op, devs, byDev, updates, shardBytes)...)
		}
		extras = append(extras, updates...)
	}
	tg.extras[op.ID] = extras
}

// buildRingSync models a ring all-reduce: each of the n ring links
// carries 2*(n-1)/n of the shard (scatter-reduce + all-gather volume).
// Each link's transfer depends on the gradients at its source; each
// device's update depends on its incoming transfer.
func (tg *TaskGraph) buildRingSync(op *graph.Op, devs []int, byDev map[int][]*Task, updates []*Task, shardBytes int64) []*Task {
	n := len(devs)
	var out []*Task
	for i := 0; i < n; i++ {
		src, dst := devs[i], devs[(i+1)%n]
		bytes := 2 * shardBytes * int64(n-1) / int64(n)
		path := tg.Topo.Route(src, dst)
		ct := tg.newTask(&Task{
			Kind: Comm, Op: op, Pass: perfmodel.Backward,
			Device: -1, Link: path.BottleneckLink,
			SrcDev: src, DstDev: dst,
			Bytes: bytes, Exe: path.TransferTime(bytes), Sync: true,
		})
		for _, bt := range byDev[src] {
			tg.dep(bt, ct)
		}
		tg.dep(ct, updates[(i+1)%n])
		out = append(out, ct)
	}
	return out
}

// buildStarSync models a parameter-server style reduction: every
// secondary device ships its full gradient shard to the primary, which
// updates and broadcasts the result back.
func (tg *TaskGraph) buildStarSync(op *graph.Op, devs []int, byDev map[int][]*Task, updates []*Task, shardBytes int64) []*Task {
	primary := devs[0]
	var out []*Task
	for i := 1; i < len(devs); i++ {
		up := tg.Topo.Route(devs[i], primary)
		in := tg.newTask(&Task{
			Kind: Comm, Op: op, Pass: perfmodel.Backward,
			Device: -1, Link: up.BottleneckLink,
			SrcDev: devs[i], DstDev: primary,
			Bytes: shardBytes, Exe: up.TransferTime(shardBytes), Sync: true,
		})
		for _, bt := range byDev[devs[i]] {
			tg.dep(bt, in)
		}
		tg.dep(in, updates[0])
		out = append(out, in)
	}
	for _, bt := range byDev[primary] {
		tg.dep(bt, updates[0])
	}
	for i := 1; i < len(devs); i++ {
		down := tg.Topo.Route(primary, devs[i])
		bc := tg.newTask(&Task{
			Kind: Comm, Op: op, Pass: perfmodel.Backward,
			Device: -1, Link: down.BottleneckLink,
			SrcDev: primary, DstDev: devs[i],
			Bytes: shardBytes, Exe: down.TransferTime(shardBytes), Sync: true,
		})
		tg.dep(updates[0], bc)
		tg.dep(bc, updates[i])
		out = append(out, bc)
	}
	return out
}
