package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
)

// Property: for random strategies, the task graph is structurally sound
// — acyclic in construction order (checked via In/Out symmetry), every
// comm task connects distinct devices, sync traffic is a subset of all
// traffic, and forward/backward activation transfers are symmetric.
func TestTaskGraphStructureProperty(t *testing.T) {
	g := graph.New("prop")
	x := g.Input4D("x", 16, 6, 20, 20)
	c1 := g.Conv2D("c1", x, 12, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("p", c1, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("f", p)
	d := g.Dense("fc", f, 64)
	g.SoftmaxClassifier("sm", d, 10)

	est := perfmodel.NewAnalyticModel()
	fn := func(seed int64, gpuRaw uint8) bool {
		gpus := int(gpuRaw%6) + 2
		topo := device.NewSingleNode(gpus, "P100")
		rng := rand.New(rand.NewSource(seed))
		s := config.Random(g, topo, rng)
		tg := Build(g, topo, s, est, Options{})

		var fwdComm, bwdComm int64
		for _, task := range tg.Tasks {
			// In/Out symmetry over the adjacency rows.
			for _, p := range tg.Preds(task) {
				if !contains(tg.Succs(p), task) {
					t.Logf("asymmetric edge into %v", task)
					return false
				}
			}
			for _, n := range tg.Succs(task) {
				if !contains(tg.Preds(n), task) {
					t.Logf("asymmetric edge out of %v", task)
					return false
				}
			}
			if task.Kind == Comm {
				if task.SrcDev == task.DstDev {
					t.Logf("self-transfer %v", task)
					return false
				}
				if task.Bytes <= 0 || task.Link < 0 {
					t.Logf("degenerate comm %v", task)
					return false
				}
				if !task.Sync {
					if task.Pass == perfmodel.Forward {
						fwdComm += task.Bytes
					} else {
						bwdComm += task.Bytes
					}
				}
			}
		}
		if fwdComm != bwdComm {
			t.Logf("activation transfers asymmetric: fwd %d vs bwd %d", fwdComm, bwdComm)
			return false
		}
		m := tg.Metrics()
		if m.SyncBytes > m.CommBytes {
			t.Logf("sync %d exceeds total %d", m.SyncBytes, m.CommBytes)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental rebuild converges to the same metrics as a
// fresh build after arbitrary mutation sequences.
func TestReplaceConfigConvergesProperty(t *testing.T) {
	g := mlp()
	est := perfmodel.NewAnalyticModel()
	fn := func(seed int64) bool {
		topo := device.NewSingleNode(4, "P100")
		rng := rand.New(rand.NewSource(seed))
		tg := Build(g, topo, config.DataParallel(g, topo), est, Options{})
		ops := g.ComputeOps()
		for i := 0; i < 12; i++ {
			op := ops[rng.Intn(len(ops))]
			tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		}
		fresh := Build(g, topo, tg.Strat.Clone(), est, Options{})
		a, b := tg.Metrics(), fresh.Metrics()
		if a.NumTasks != b.NumTasks || a.CommBytes != b.CommBytes ||
			a.SyncBytes != b.SyncBytes || a.ComputeTime != b.ComputeTime ||
			a.UpdateTime != b.UpdateTime {
			t.Logf("metrics diverged: %+v vs %+v", a, b)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func contains(ts []*Task, v *Task) bool {
	for _, t := range ts {
		if t == v {
			return true
		}
	}
	return false
}
