package taskgraph

import (
	"math/rand"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
)

// adjSnapshot deep-copies a graph's adjacency view, element order
// included, so later comparisons detect any write-through into shared
// backing.
func adjSnapshot(tg *TaskGraph) *Adj {
	a := tg.Adj()
	s := &Adj{
		ID:   append([]int32(nil), a.ID...),
		Exe:  append([]time.Duration(nil), a.Exe...),
		Key:  append([]int32(nil), a.Key...),
		Task: append([]*Task(nil), a.Task...),
		In:   make([][]int32, len(a.In)),
		Out:  make([][]int32, len(a.Out)),
	}
	for i, row := range a.In {
		s.In[i] = append([]int32(nil), row...)
	}
	for i, row := range a.Out {
		s.Out[i] = append([]int32(nil), row...)
	}
	return s
}

// TestCowLazyMatchesEager pins the copy-on-write fault path
// bit-identical against the eager-copy path: two instances of the same
// plan, one faulting every row up front (materializeAll — the old
// Instance behaviour), one faulting lazily per mutated row, must stay
// structurally identical through an arbitrary ReplaceConfig sequence.
func TestCowLazyMatchesEager(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	ops := g.ComputeOps()

	lazy, eager := plan.Instance(), plan.Instance()
	eager.materializeAll()
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 25; i++ {
		op := ops[rng.Intn(len(ops))]
		cfg := config.RandomConfig(op, topo, rng)
		lazy.ReplaceConfig(op.ID, cfg.Clone())
		eager.ReplaceConfig(op.ID, cfg.Clone())
		checkAdjInvariants(t, lazy)
		checkGraphsIdentical(t, lazy, eager)
	}
}

// TestCowBaseUntouched: a heavily mutated instance must leave the
// frozen base's adjacency bit-identical — element order included, not
// just as multisets — and an untouched sibling instance keeps
// presenting the base's exact view.
func TestCowBaseUntouched(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	before := adjSnapshot(plan.Base())
	sibling := plan.Instance()

	inst := plan.Instance()
	rng := rand.New(rand.NewSource(43))
	ops := g.ComputeOps()
	for i := 0; i < 30; i++ {
		op := ops[rng.Intn(len(ops))]
		inst.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
	}
	inst.Compact()

	for _, view := range []*TaskGraph{plan.Base(), sibling} {
		a := view.Adj()
		if len(a.ID) != len(before.ID) {
			t.Fatalf("base slot count changed: %d vs %d", len(a.ID), len(before.ID))
		}
		for slot := range before.ID {
			if a.ID[slot] != before.ID[slot] || a.Exe[slot] != before.Exe[slot] ||
				a.Key[slot] != before.Key[slot] || a.Task[slot] != before.Task[slot] {
				t.Fatalf("slot %d scalars changed under instance mutation", slot)
			}
			for j := range before.In[slot] {
				if a.In[slot][j] != before.In[slot][j] {
					t.Fatalf("slot %d In[%d] changed: %d vs %d", slot, j, a.In[slot][j], before.In[slot][j])
				}
			}
			for j := range before.Out[slot] {
				if a.Out[slot][j] != before.Out[slot][j] {
					t.Fatalf("slot %d Out[%d] changed: %d vs %d", slot, j, a.Out[slot][j], before.Out[slot][j])
				}
			}
			if len(a.In[slot]) != len(before.In[slot]) || len(a.Out[slot]) != len(before.Out[slot]) {
				t.Fatalf("slot %d row sizes changed", slot)
			}
		}
	}
}

// TestAdjScaleFuzz interleaves instance creation, ReplaceConfig (with
// its swap-remove row scrubbing), slot recycling and compaction on a
// multi-thousand-task synthetic graph, checking the CSR invariants
// after every step and the shared-backing isolation at the end. This
// is the at-scale companion to TestAdjInvariantsUnderReplace.
func TestAdjScaleFuzz(t *testing.T) {
	spec, err := models.Get("synth-2k")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(4)
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	if alive := plan.NumTasks(); alive < 1500 {
		t.Fatalf("scale fuzz graph too small: %d tasks", alive)
	}
	before := adjSnapshot(plan.Base())

	rng := rand.New(rand.NewSource(47))
	ops := g.ComputeOps()
	steps := 60
	if testing.Short() {
		steps = 15
	}
	inst := plan.Instance()
	for i := 0; i < steps; i++ {
		op := ops[rng.Intn(len(ops))]
		inst.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		if i%20 == 19 {
			inst.Compact()
		}
		checkAdjInvariants(t, inst)
	}

	// The base backing the instance shared from must be untouched.
	base := plan.Base().Adj()
	for slot := range before.ID {
		if base.ID[slot] != before.ID[slot] {
			t.Fatalf("slot %d: base ID mutated", slot)
		}
		for j := range before.In[slot] {
			if base.In[slot][j] != before.In[slot][j] {
				t.Fatalf("slot %d: base In row mutated", slot)
			}
		}
		for j := range before.Out[slot] {
			if base.Out[slot][j] != before.Out[slot][j] {
				t.Fatalf("slot %d: base Out row mutated", slot)
			}
		}
	}
	// And a fresh instance still sees the original structure.
	checkGraphsIdentical(t, plan.Base(), plan.Instance())
}

// TestInstanceSharesIDBacking pins a property a consumer depends on:
// sim.State.CloneFor validates its target graph in O(1) by comparing
// the address of the first Adj.ID element — identical backing proves
// identical tasks. That shortcut is sound only while a fresh Instance
// really aliases the frozen base's ID array until its first structural
// mutation; if Instance ever starts copying eagerly, CloneFor silently
// degrades to its O(n) element compare, and this test names the
// dependency instead of letting the regression hide.
func TestInstanceSharesIDBacking(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	plan := Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})

	base, inst := plan.Base().Adj().ID, plan.Instance().Adj().ID
	if len(base) == 0 || len(inst) != len(base) {
		t.Fatalf("adjacency sizes diverge: base %d, instance %d", len(base), len(inst))
	}
	if &base[0] != &inst[0] {
		t.Fatal("fresh instance does not alias the base's Adj.ID backing")
	}

	// After the first mutation the instance must have faulted the array
	// private (materialize) — same values for untouched slots, its own
	// backing.
	mut := plan.Instance()
	ops := g.ComputeOps()
	rng := rand.New(rand.NewSource(3))
	op := ops[rng.Intn(len(ops))]
	mut.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
	if got := mut.Adj().ID; &got[0] == &base[0] {
		t.Fatal("mutated instance still writes the base's Adj.ID backing")
	}
	if &base[0] != &plan.Base().Adj().ID[0] {
		t.Fatal("base rebuilt its own adjacency on an instance mutation")
	}
}
