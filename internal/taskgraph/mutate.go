package taskgraph

import (
	"sort"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/graph"
)

// ChangeSet describes the result of an incremental task-graph update:
// the tasks removed, the tasks added, and surviving tasks whose incoming
// dependencies changed (whose ready times the delta simulator must
// recompute).
type ChangeSet struct {
	Removed []*Task
	Added   []*Task
	Touched []*Task
}

// ReplaceConfig swaps the parallelization configuration of one operation
// and incrementally rebuilds the affected portion of the task graph: the
// op's compute/update/sync tasks and the communication tasks on every
// edge adjacent to the op. This is UPDATETASKGRAPH from Algorithm 2.
func (tg *TaskGraph) ReplaceConfig(opID int, c *config.Config) ChangeSet {
	if tg.frozen {
		panic("taskgraph: ReplaceConfig on a frozen Plan graph; mutate a Plan.Instance() instead")
	}
	// Copy-on-write fault: privatize shared containers before the first
	// structural write (no-op on a graph that already owns them).
	tg.materialize()
	op := tg.G.Op(opID)
	if op.Kind == graph.Input {
		panic("taskgraph: ReplaceConfig on an Input op")
	}
	if err := c.Validate(op, tg.Topo); err != nil {
		panic("taskgraph: " + err.Error())
	}
	var cs ChangeSet
	touched := map[int]*Task{}

	// 1. Collect every task owned by the op or by its adjacent edges.
	doomed := map[int]*Task{}
	collect := func(ts []*Task) {
		for _, t := range ts {
			doomed[t.ID] = t
		}
	}
	collect(tg.fwd[opID])
	collect(tg.bwd[opID])
	collect(tg.extras[opID])
	var edges [][2]int
	for _, in := range op.Inputs {
		if in.Kind != graph.Input {
			edges = append(edges, [2]int{in.ID, opID})
		}
	}
	for _, consumer := range tg.G.Consumers(op) {
		edges = append(edges, [2]int{opID, consumer.ID})
	}
	for _, e := range edges {
		collect(tg.edgeComm[e])
	}

	// 2. Unlink doomed tasks from surviving neighbours; survivors whose
	// In set changes are touched (their ready times may change).
	// Iterate in task-ID order, not map order: the removal order decides
	// which free slots the rebuilt tasks reuse (and cs.Removed's order),
	// and Plan.Instance guarantees that two instances applying the same
	// ReplaceConfig sequence assign identical slots.
	//
	// The unlink runs in two phases over the adjacency rows: first scrub
	// the doomed slots out of every survivor's row, then free the doomed
	// slots. Scrubbing reads a.ID to tell survivors from doomed
	// neighbours, so no slot may be freed (ID reset to -1) until every
	// row walk is done.
	doomedIDs := make([]int, 0, len(doomed))
	for id := range doomed {
		doomedIDs = append(doomedIDs, id)
	}
	sort.Ints(doomedIDs)
	a := &tg.adj
	for _, id := range doomedIDs {
		t := doomed[id]
		for _, ps := range a.In[t.Slot] {
			if doomed[int(a.ID[ps])] == nil {
				a.removeOut(int(ps), int32(t.Slot))
			}
		}
		for _, ss := range a.Out[t.Slot] {
			if doomed[int(a.ID[ss])] == nil {
				a.removeIn(int(ss), int32(t.Slot))
				touched[int(a.ID[ss])] = a.Task[ss]
			}
		}
	}
	for _, id := range doomedIDs {
		t := doomed[id]
		a.noteDead(t)
		// Recycle the slot: tasks added below (or by later calls) reuse
		// it. The attached simulator state may still read the dead
		// task's slot entries until its next ApplyDelta — which is safe
		// because ApplyDelta reads removed-task state before it writes
		// any added-task state (see sim.State.ApplyDelta).
		tg.freeSlots = append(tg.freeSlots, t.Slot)
		cs.Removed = append(cs.Removed, t)
	}
	tg.numDead += len(doomed)

	// 3. Install the new config and rebuild.
	tg.Strat.Set(opID, c)
	firstNew := tg.nextID
	tg.buildComputeTasks(op)
	for _, e := range edges {
		tg.buildEdge(tg.G.Op(e[0]), tg.G.Op(e[1]))
	}
	tg.buildSync(op)

	for _, t := range tg.Tasks[len(tg.Tasks)-(tg.nextID-firstNew):] {
		cs.Added = append(cs.Added, t)
	}
	// Neighbour tasks gained new in-edges during the rebuild: any
	// survivor that now has an added task among its inputs.
	for _, t := range cs.Added {
		for _, ss := range a.Out[t.Slot] {
			if int(a.ID[ss]) < firstNew {
				touched[int(a.ID[ss])] = a.Task[ss]
			}
		}
	}
	for _, t := range touched {
		if tg.Live(t) {
			cs.Touched = append(cs.Touched, t)
		}
	}

	if tg.numDead > len(tg.Tasks)/2 {
		tg.Compact()
	}
	return cs
}

// Compact drops dead tasks from the task list (IDs are preserved; they
// are unique, not dense). Slots were already recycled at removal time.
// The filtered list is freshly allocated: a copy-on-write instance's
// Tasks may alias the frozen base's backing, which must not be
// scribbled on.
func (tg *TaskGraph) Compact() {
	if tg.frozen {
		panic("taskgraph: Compact on a frozen Plan graph")
	}
	tg.materialize()
	alive := make([]*Task, 0, len(tg.Tasks)-tg.numDead)
	for _, t := range tg.Tasks {
		if tg.Live(t) {
			alive = append(alive, t)
		}
	}
	tg.Tasks = alive
	tg.numDead = 0
}

// Alive returns the number of live tasks.
func (tg *TaskGraph) Alive() int { return len(tg.Tasks) - tg.numDead }

// ForwardTasks returns the live forward compute tasks of an op.
func (tg *TaskGraph) ForwardTasks(opID int) []*Task { return tg.fwd[opID] }

// BackwardTasks returns the live backward compute tasks of an op.
func (tg *TaskGraph) BackwardTasks(opID int) []*Task { return tg.bwd[opID] }

// Metrics aggregates per-strategy statistics: the quantities behind
// Figure 8 (total data transfers and total task computation time per
// iteration) and the Figure 13 discussion (parameter synchronization
// cost).
type Metrics struct {
	NumTasks        int
	NumCommTasks    int
	CommBytes       int64         // all transfers
	SyncBytes       int64         // parameter-synchronization transfers only
	ComputeTime     time.Duration // sum of compute-task execution times
	CommTime        time.Duration // sum of communication-task times
	UpdateTime      time.Duration // sum of weight-update task times
	MaxTasksPerDev  int
	DevicesInvolved int
}

// Metrics computes aggregate statistics over the live tasks.
func (tg *TaskGraph) Metrics() Metrics {
	var m Metrics
	perDev := map[int]int{}
	for _, t := range tg.Tasks {
		if !tg.Live(t) {
			continue
		}
		m.NumTasks++
		switch t.Kind {
		case Compute:
			m.ComputeTime += t.Exe
			perDev[t.Device]++
		case Update:
			m.UpdateTime += t.Exe
			perDev[t.Device]++
		case Comm:
			m.NumCommTasks++
			m.CommBytes += t.Bytes
			m.CommTime += t.Exe
			if t.Sync {
				m.SyncBytes += t.Bytes
			}
		}
	}
	for _, n := range perDev {
		if n > m.MaxTasksPerDev {
			m.MaxTasksPerDev = n
		}
	}
	m.DevicesInvolved = len(perDev)
	return m
}
