package taskgraph

import (
	"math/rand"
	"sort"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
)

// sortedRow converts an adjacency row to a sorted copy so it can be
// compared as a multiset (rows are unordered).
func sortedRow(row []int32) []int32 {
	out := append([]int32(nil), row...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAdjMirrors asserts that the flat adjacency view agrees with the
// Task pointer lists: same live slots, same cached scalars, and the
// same In/Out neighbour multisets per slot.
func checkAdjMirrors(t *testing.T, tg *TaskGraph) {
	t.Helper()
	a := tg.Adj()
	numDevices := tg.Topo.NumDevices()
	live := map[int]*Task{}
	for _, task := range tg.Tasks {
		if !task.Dead {
			live[task.Slot] = task
		}
	}
	for slot, id := range a.ID {
		task := live[slot]
		if task == nil {
			if id != -1 || a.Task[slot] != nil {
				t.Fatalf("slot %d: free slot holds id %d task %v", slot, id, a.Task[slot])
			}
			continue
		}
		if int(id) != task.ID || a.Task[slot] != task {
			t.Fatalf("slot %d: adj id %d task %v, want id %d task %v", slot, id, a.Task[slot], task.ID, task)
		}
		if a.Exe[slot] != task.Exe {
			t.Fatalf("slot %d: adj exe %v != task exe %v", slot, a.Exe[slot], task.Exe)
		}
		if want := int32(task.ScheduleKey(numDevices)); a.Key[slot] != want {
			t.Fatalf("slot %d: adj key %d != schedule key %d", slot, a.Key[slot], want)
		}
		wantIn := make([]int32, len(task.In))
		for i, p := range task.In {
			wantIn[i] = int32(p.Slot)
		}
		wantOut := make([]int32, len(task.Out))
		for i, s := range task.Out {
			wantOut[i] = int32(s.Slot)
		}
		gotIn, gotOut := sortedRow(a.In[slot]), sortedRow(a.Out[slot])
		sort.Slice(wantIn, func(i, j int) bool { return wantIn[i] < wantIn[j] })
		sort.Slice(wantOut, func(i, j int) bool { return wantOut[i] < wantOut[j] })
		for i := range wantIn {
			if len(gotIn) != len(wantIn) || gotIn[i] != wantIn[i] {
				t.Fatalf("slot %d: adj In %v != task In slots %v", slot, gotIn, wantIn)
			}
		}
		for i := range wantOut {
			if len(gotOut) != len(wantOut) || gotOut[i] != wantOut[i] {
				t.Fatalf("slot %d: adj Out %v != task Out slots %v", slot, gotOut, wantOut)
			}
		}
		if len(gotIn) != len(wantIn) || len(gotOut) != len(wantOut) {
			t.Fatalf("slot %d: row sizes In %d/%d Out %d/%d", slot, len(gotIn), len(wantIn), len(gotOut), len(wantOut))
		}
	}
}

// TestAdjMirrorsPointerGraph drives random ReplaceConfig sequences and
// checks after every mutation that the incrementally maintained flat
// adjacency never drifts from the Task pointer graph — the invariant
// the simulator's CSR hot path depends on.
func TestAdjMirrorsPointerGraph(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	tg := Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), Options{})
	checkAdjMirrors(t, tg)

	rng := rand.New(rand.NewSource(11))
	ops := g.ComputeOps()
	for step := 0; step < 30; step++ {
		op := ops[rng.Intn(len(ops))]
		tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		checkAdjMirrors(t, tg)
	}

	// Cloning must preserve the view too (clone() repacks it).
	checkAdjMirrors(t, tg.clone())
}
