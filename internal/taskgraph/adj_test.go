package taskgraph

import (
	"math/rand"
	"sort"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
)

// sortedRow converts an adjacency row to a sorted copy so it can be
// compared as a multiset (rows are unordered).
func sortedRow(row []int32) []int32 {
	out := append([]int32(nil), row...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAdjInvariants asserts the CSR view's internal invariants — the
// contract the simulator's hot path depends on now that the view is
// the only adjacency representation:
//
//   - the slot table and tg.Tasks agree on the live set, and cached
//     scalars (Exe, Key, Task back-pointer) match the task;
//   - free slots hold no ID, no task and empty rows;
//   - rows reference live slots only;
//   - In/Out are symmetric with multiplicity: edge (p,s) appears in
//     Out[p] exactly as often as in In[s].
func checkAdjInvariants(t *testing.T, tg *TaskGraph) {
	t.Helper()
	a := tg.Adj()
	numDevices := tg.Topo.NumDevices()
	live := map[int]*Task{}
	for _, task := range tg.Tasks {
		if tg.Live(task) {
			live[task.Slot] = task
		}
	}
	for slot, id := range a.ID {
		task := live[slot]
		if task == nil {
			if id != -1 || a.Task[slot] != nil {
				t.Fatalf("slot %d: free slot holds id %d task %v", slot, id, a.Task[slot])
			}
			if len(a.In[slot]) != 0 || len(a.Out[slot]) != 0 {
				t.Fatalf("slot %d: free slot has non-empty rows In=%v Out=%v", slot, a.In[slot], a.Out[slot])
			}
			continue
		}
		if int(id) != task.ID || a.Task[slot] != task {
			t.Fatalf("slot %d: adj id %d task %v, want id %d task %v", slot, id, a.Task[slot], task.ID, task)
		}
		if a.Exe[slot] != task.Exe {
			t.Fatalf("slot %d: adj exe %v != task exe %v", slot, a.Exe[slot], task.Exe)
		}
		if want := int32(task.ScheduleKey(numDevices)); a.Key[slot] != want {
			t.Fatalf("slot %d: adj key %d != schedule key %d", slot, a.Key[slot], want)
		}
		for _, ps := range a.In[slot] {
			if a.ID[ps] < 0 {
				t.Fatalf("slot %d: In row references free slot %d", slot, ps)
			}
		}
		for _, ss := range a.Out[slot] {
			if a.ID[ss] < 0 {
				t.Fatalf("slot %d: Out row references free slot %d", slot, ss)
			}
		}
	}
	type edge struct{ from, to int32 }
	count := map[edge]int{}
	for slot := range a.Out {
		for _, ss := range a.Out[slot] {
			count[edge{int32(slot), ss}]++
		}
	}
	for slot := range a.In {
		for _, ps := range a.In[slot] {
			count[edge{ps, int32(slot)}]--
		}
	}
	for e, c := range count {
		if c != 0 {
			t.Fatalf("edge %d->%d: Out/In multiplicity mismatch %+d", e.from, e.to, c)
		}
	}
}

// checkGraphsIdentical asserts two graphs describe the same task
// structure: same live slots with the same IDs and cached scalars, and
// the same In/Out neighbour multisets per slot (rows are unordered, so
// element order may differ).
func checkGraphsIdentical(t *testing.T, x, y *TaskGraph) {
	t.Helper()
	ax, ay := x.Adj(), y.Adj()
	if len(ax.ID) != len(ay.ID) {
		t.Fatalf("slot counts differ: %d vs %d", len(ax.ID), len(ay.ID))
	}
	for slot := range ax.ID {
		if ax.ID[slot] != ay.ID[slot] {
			t.Fatalf("slot %d: id %d vs %d", slot, ax.ID[slot], ay.ID[slot])
		}
		if ax.ID[slot] < 0 {
			continue
		}
		if ax.Exe[slot] != ay.Exe[slot] || ax.Key[slot] != ay.Key[slot] {
			t.Fatalf("slot %d: exe/key (%v,%d) vs (%v,%d)",
				slot, ax.Exe[slot], ax.Key[slot], ay.Exe[slot], ay.Key[slot])
		}
		in1, in2 := sortedRow(ax.In[slot]), sortedRow(ay.In[slot])
		out1, out2 := sortedRow(ax.Out[slot]), sortedRow(ay.Out[slot])
		if len(in1) != len(in2) || len(out1) != len(out2) {
			t.Fatalf("slot %d: row sizes In %d/%d Out %d/%d", slot, len(in1), len(in2), len(out1), len(out2))
		}
		for i := range in1 {
			if in1[i] != in2[i] {
				t.Fatalf("slot %d: In rows %v vs %v", slot, in1, in2)
			}
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("slot %d: Out rows %v vs %v", slot, out1, out2)
			}
		}
	}
}

// TestAdjInvariantsUnderReplace drives random ReplaceConfig sequences
// and checks after every mutation that the incrementally maintained
// flat adjacency keeps its invariants, and that replaying the same
// sequence on a fresh Build produces an identical structure — the
// determinism contract the parallel search relies on.
func TestAdjInvariantsUnderReplace(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	tg := Build(g, topo, config.DataParallel(g, topo), est, Options{})
	checkAdjInvariants(t, tg)

	rng := rand.New(rand.NewSource(11))
	ops := g.ComputeOps()
	type step struct {
		opID int
		cfg  *config.Config
	}
	var steps []step
	for i := 0; i < 30; i++ {
		op := ops[rng.Intn(len(ops))]
		cfg := config.RandomConfig(op, topo, rng)
		steps = append(steps, step{op.ID, cfg})
		tg.ReplaceConfig(op.ID, cfg.Clone())
		checkAdjInvariants(t, tg)
	}

	// Replay differential: a fresh Build absorbing the same sequence
	// must land on the identical structure (IDs, slots, rows).
	replay := Build(g, topo, config.DataParallel(g, topo), est, Options{})
	for _, s := range steps {
		replay.ReplaceConfig(s.opID, s.cfg.Clone())
	}
	checkGraphsIdentical(t, tg, replay)

	// A copy-on-write clone must present the same view.
	checkAdjInvariants(t, tg.clone())
	checkGraphsIdentical(t, tg, tg.clone())
}
