package taskgraph

import (
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/tensor"
)

func mlp() *graph.Graph {
	g := graph.New("mlp")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(graph.DimSample, 16, tensor.Sample),
		tensor.D(graph.DimChannel, 64, tensor.Attribute)))
	h := g.Dense("fc1", x, 128)
	g.Dense("fc2", h, 32)
	return g
}

func build(t *testing.T, g *graph.Graph, topo *device.Topology, s *config.Strategy, opts Options) *TaskGraph {
	t.Helper()
	return Build(g, topo, s, perfmodel.NewAnalyticModel(), opts)
}

func TestTaskKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" || Update.String() != "update" {
		t.Fatal("TaskKind.String mismatch")
	}
	if TaskKind(7).String() != "TaskKind(7)" {
		t.Fatal("unknown TaskKind.String mismatch")
	}
}

func TestBuildDataParallelStructure(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	s := config.DataParallel(g, topo)
	tg := build(t, g, topo, s, Options{})

	fc1 := g.Op(1)
	if got := len(tg.ForwardTasks(fc1.ID)); got != 4 {
		t.Fatalf("fc1 forward tasks = %d", got)
	}
	if got := len(tg.BackwardTasks(fc1.ID)); got != 4 {
		t.Fatalf("fc1 backward tasks = %d", got)
	}
	// Data parallelism: fc1 task k feeds fc2 task k on the same device
	// (aligned sample shards) -> no forward activation comm tasks, but
	// weight replicas must all-reduce: ring sync comm tasks exist.
	m := tg.Metrics()
	if m.SyncBytes == 0 {
		t.Fatal("data parallelism should incur parameter sync traffic")
	}
	if m.CommBytes != m.SyncBytes {
		t.Fatalf("aligned data parallelism should have no activation transfers: comm=%d sync=%d", m.CommBytes, m.SyncBytes)
	}
	// Ring all-reduce traffic: 2*S*(n-1) bytes total per weight shard set.
	var want int64
	for _, op := range g.ComputeOps() {
		w := op.Weights(s.Config(op.ID).Degrees)
		want += 2 * w.Elems * tensor.ElemBytes * int64(w.Replicas-1)
	}
	if m.SyncBytes != want {
		t.Fatalf("sync bytes = %d, want %d", m.SyncBytes, want)
	}
	// Forward -> backward dependency per task index.
	bt := tg.BackwardTasks(fc1.ID)[2]
	found := false
	for _, p := range tg.Preds(bt) {
		if p == tg.ForwardTasks(fc1.ID)[2] {
			found = true
		}
	}
	if !found {
		t.Fatal("backward task missing dependency on its forward task")
	}
}

func TestBuildCrossDeviceComm(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	s := config.NewStrategy(g)
	fc1, fc2 := g.Op(1), g.Op(2)
	s.Set(fc1.ID, config.OnDevice(fc1, 0))
	s.Set(fc2.ID, config.OnDevice(fc2, 1))
	tg := build(t, g, topo, s, Options{})

	m := tg.Metrics()
	// fc1 output (16x128 floats) forward + same gradient backward.
	actBytes := int64(16 * 128 * tensor.ElemBytes)
	if m.CommBytes != 2*actBytes {
		t.Fatalf("comm bytes = %d, want %d", m.CommBytes, 2*actBytes)
	}
	if m.SyncBytes != 0 {
		t.Fatal("unreplicated weights should not sync")
	}
	// The comm task sits on the NVLink between the GPUs.
	var comm *Task
	for _, task := range tg.Tasks {
		if task.Kind == Comm && task.Pass == perfmodel.Forward {
			comm = task
		}
	}
	if comm == nil {
		t.Fatal("no forward comm task")
	}
	if comm.SrcDev != 0 || comm.DstDev != 1 || comm.Link < 0 {
		t.Fatalf("comm task endpoints = %+v", comm)
	}
	if comm.Exe <= 0 {
		t.Fatal("comm task has no cost")
	}
}

func TestBuildParamParallelNoSync(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	s := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		s.Set(op.ID, config.ParamParallel(op, topo.GPUs()))
	}
	tg := build(t, g, topo, s, Options{})
	m := tg.Metrics()
	if m.SyncBytes != 0 {
		t.Fatalf("param-parallel has unique shards, sync bytes = %d", m.SyncBytes)
	}
	// But activations must move: fc2 tasks need fc1's full output.
	if m.CommBytes == 0 {
		t.Fatal("param-parallel should transfer activations")
	}
	// Each device still updates its own shard.
	updates := 0
	for _, task := range tg.Tasks {
		if task.Kind == Update {
			updates++
		}
	}
	if updates != 8 { // 4 shards x 2 ops
		t.Fatalf("update tasks = %d, want 8", updates)
	}
}

func TestForwardOnlyOption(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{SkipBackward: true})
	for _, task := range tg.Tasks {
		if task.Pass != perfmodel.Forward {
			t.Fatalf("forward-only graph contains %v", task)
		}
	}
	if tg.Metrics().SyncBytes != 0 {
		t.Fatal("forward-only graph should not sync")
	}
}

func TestStarSyncAblation(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	ring := build(t, g, topo, config.DataParallel(g, topo), Options{})
	star := build(t, g, topo, config.DataParallel(g, topo), Options{StarSync: true})
	rm, sm := ring.Metrics(), star.Metrics()
	// Both schemes move 2*(n-1)*S bytes total; the ring spreads it over
	// n per-hop transfers of 2S(n-1)/n while the star funnels full-shard
	// transfers through the primary (2(n-1) tasks per shard).
	if sm.SyncBytes != rm.SyncBytes {
		t.Fatalf("total sync volume should match: star %d B vs ring %d B", sm.SyncBytes, rm.SyncBytes)
	}
	countSync := func(tg *TaskGraph) int {
		n := 0
		for _, task := range tg.Tasks {
			if tg.Live(task) && task.Kind == Comm && task.Sync {
				n++
			}
		}
		return n
	}
	ringTasks, starTasks := countSync(ring), countSync(star)
	if starTasks <= ringTasks {
		t.Fatalf("star should emit more transfers: %d vs ring %d", starTasks, ringTasks)
	}
	if sm.ComputeTime != rm.ComputeTime {
		t.Fatal("sync scheme must not change compute time")
	}
}

func TestSkipParamSyncStillUpdates(t *testing.T) {
	// SkipParamSync is exercised via Options zero value on ops without
	// replicas; verify the flag exists and builds.
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{SkipParamSync: true})
	if tg.Alive() == 0 {
		t.Fatal("empty task graph")
	}
}

func TestReplaceConfigRewiresEdges(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	s := config.DataParallel(g, topo)
	tg := build(t, g, topo, s, Options{})
	before := tg.Alive()

	fc1 := g.Op(1)
	cs := tg.ReplaceConfig(fc1.ID, config.OnDevice(fc1, 0))
	if len(cs.Removed) == 0 || len(cs.Added) == 0 {
		t.Fatalf("changeset = %d removed, %d added", len(cs.Removed), len(cs.Added))
	}
	// Graph is self-consistent: rows reference live slots only, the
	// slot table and task list agree.
	checkAdjInvariants(t, tg)
	// Rebuilding equals building from scratch.
	fresh := build(t, g, topo, s.Clone(), Options{})
	if got, want := tg.Metrics(), fresh.Metrics(); got.CommBytes != want.CommBytes ||
		got.NumTasks != want.NumTasks || got.ComputeTime != want.ComputeTime ||
		got.SyncBytes != want.SyncBytes {
		t.Fatalf("incremental rebuild diverged: %+v vs %+v", got, want)
	}
	_ = before
}

func TestReplaceConfigCompacts(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{})
	fc1 := g.Op(1)
	for i := 0; i < 20; i++ {
		dev := i % 2
		tg.ReplaceConfig(fc1.ID, config.OnDevice(fc1, dev))
	}
	// Compaction must have kept the slice bounded.
	if len(tg.Tasks) > 4*tg.Alive() {
		t.Fatalf("task slice grew unboundedly: %d entries, %d alive", len(tg.Tasks), tg.Alive())
	}
	checkAdjInvariants(t, tg)
}

func TestReplaceConfigPanics(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{})
	t.Run("input-op", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		tg.ReplaceConfig(0, config.OnDevice(g.Op(0), 0))
	})
	t.Run("invalid-config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		tg.ReplaceConfig(1, &config.Config{Degrees: []int{1}, Devices: []int{0}})
	})
}

func TestBuildValidatesStrategy(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	defer func() {
		if recover() == nil {
			t.Fatal("Build with empty strategy did not panic")
		}
	}()
	Build(g, topo, config.NewStrategy(g), perfmodel.NewAnalyticModel(), Options{})
}

func TestHybridConfigTaskRegions(t *testing.T) {
	// A 2x2 (sample x channel) hybrid config on fc1: its 4 tasks cover
	// the output exactly and tasks with the same channel slice share a
	// weight shard (2 shards x 2 replicas).
	g := mlp()
	topo := device.NewSingleNode(4, "P100")
	s := config.DataParallel(g, topo)
	fc1 := g.Op(1)
	s.Set(fc1.ID, &config.Config{Degrees: []int{2, 2}, Devices: []int{0, 1, 2, 3}})
	tg := build(t, g, topo, s, Options{})

	w := fc1.Weights([]int{2, 2})
	if w.Slices != 2 || w.Replicas != 2 {
		t.Fatalf("weights = %+v", w)
	}
	syncTasks := 0
	for _, task := range tg.Tasks {
		if task.Kind == Comm && task.Sync && task.Op == fc1 {
			syncTasks++
		}
	}
	// Ring of 2 devices per shard -> 2 comm tasks per shard, 2 shards.
	if syncTasks != 4 {
		t.Fatalf("sync comm tasks = %d, want 4", syncTasks)
	}
}

func TestMetricsFields(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{})
	m := tg.Metrics()
	if m.NumTasks != tg.Alive() {
		t.Fatalf("NumTasks = %d, alive = %d", m.NumTasks, tg.Alive())
	}
	if m.ComputeTime <= 0 || m.UpdateTime <= 0 {
		t.Fatalf("times: %+v", m)
	}
	if m.DevicesInvolved != 2 {
		t.Fatalf("devices involved = %d", m.DevicesInvolved)
	}
	if m.MaxTasksPerDev == 0 {
		t.Fatal("MaxTasksPerDev = 0")
	}
}

func TestTaskStringAndScheduleKey(t *testing.T) {
	g := mlp()
	topo := device.NewSingleNode(2, "P100")
	tg := build(t, g, topo, config.DataParallel(g, topo), Options{})
	nd := topo.NumDevices()
	for _, task := range tg.Tasks {
		if task.String() == "" {
			t.Fatal("empty task string")
		}
		key := task.ScheduleKey(nd)
		if task.Kind == Comm {
			if key < nd {
				t.Fatalf("comm task scheduled on device key %d", key)
			}
		} else if key != task.Device {
			t.Fatalf("compute task key %d != device %d", key, task.Device)
		}
	}
}

func TestLSTMRecurrentChainDependencies(t *testing.T) {
	g := graph.New("rnn")
	ids := g.InputSeq("tok", 8, 3)
	emb := g.Embedding("emb", ids, 50, 16)
	l0 := g.LSTMStep("l.t0", emb, nil, 0, 32)
	l1 := g.LSTMStep("l.t1", emb, l0, 1, 32)
	topo := device.NewSingleNode(2, "P100")
	s := config.DataParallel(g, topo)
	tg := build(t, g, topo, s, Options{SkipBackward: true})

	// l1 task k depends (directly, same device) on l0 task k.
	for k, task := range tg.ForwardTasks(l1.ID) {
		dep := false
		for _, p := range tg.Preds(task) {
			if p.Op == l0 && p.Index == k {
				dep = true
			}
		}
		if !dep {
			t.Fatalf("l1 task %d missing recurrent dependency", k)
		}
	}
}
