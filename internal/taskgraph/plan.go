package taskgraph

import (
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
)

// Plan is a compiled, immutable task graph: the structure/state split
// behind the concurrent search runtime. Compile builds the graph once —
// paying the estimator lookups, route queries and region intersections
// of Build exactly once per problem — and freezes it; the Plan is then
// shared read-only by any number of goroutines:
//
//   - Base returns the frozen graph itself. Simulating it is safe
//     concurrently (sim.State keeps every mutable value in its own
//     arrays), but ReplaceConfig on it panics.
//   - Instance returns a private mutable copy for a chain or worker
//     that needs to mutate structure (ReplaceConfig). The copy is a
//     pure pointer-remap — no estimator, route or region work — and
//     preserves task IDs and slots, so a sim.State cloned from the
//     base timeline rebinds to it directly (sim.State.CloneFor).
//
// The concurrency contract: the Plan (and its Base graph) is never
// written after Compile; every Instance is owned by exactly one
// goroutine.
type Plan struct {
	base *TaskGraph
}

// Compile builds and freezes the task graph for a strategy. The
// strategy must be valid for (g, topo); Compile panics otherwise, like
// Build.
func Compile(g *graph.Graph, topo *device.Topology, strat *config.Strategy, est perfmodel.Estimator, opts Options) *Plan {
	tg := Build(g, topo, strat, est, opts)
	tg.frozen = true
	return &Plan{base: tg}
}

// Base returns the frozen task graph. It is safe for concurrent
// read-only use (simulation, metrics); structural mutation panics.
func (p *Plan) Base() *TaskGraph { return p.base }

// Strategy returns a copy of the strategy the plan was compiled for.
func (p *Plan) Strategy() *config.Strategy { return p.base.Strat.Clone() }

// NumTasks returns the number of live tasks in the plan.
func (p *Plan) NumTasks() int { return p.base.Alive() }

// Instance returns a mutable copy of the plan's task graph, owned by
// the caller. Task IDs, slots and creation order are preserved, so two
// instances applying the same ReplaceConfig sequence stay bit-identical
// — the property the parallel Neighborhood sweep relies on.
func (p *Plan) Instance() *TaskGraph { return p.base.clone() }

// clone deep-copies the task graph structure without re-running the
// builder: tasks land in one contiguous arena and adjacency lists in
// one backing array, so the whole copy is a handful of allocations
// instead of Build's per-task estimator/route/region work.
func (tg *TaskGraph) clone() *TaskGraph {
	out := &TaskGraph{
		G: tg.G, Topo: tg.Topo, Est: tg.Est, Opts: tg.Opts,
		nextID:    tg.nextID,
		numDead:   tg.numDead,
		numSlots:  tg.numSlots,
		freeSlots: append([]int(nil), tg.freeSlots...),
		edgeComm:  make(map[[2]int][]*Task, len(tg.edgeComm)),
	}
	if tg.Strat != nil {
		out.Strat = tg.Strat.Clone()
	}

	arena := make([]Task, len(tg.Tasks))
	remap := make(map[*Task]*Task, len(tg.Tasks))
	out.Tasks = make([]*Task, len(tg.Tasks))
	for i, t := range tg.Tasks {
		arena[i] = *t
		out.Tasks[i] = &arena[i]
		remap[t] = &arena[i]
	}
	// Adjacency lists share one backing array. Each slice is cut with
	// its capacity pinned to its length, so a later append (ReplaceConfig
	// rewiring a survivor) reallocates instead of clobbering the next
	// task's list.
	total := 0
	for _, t := range tg.Tasks {
		total += len(t.In) + len(t.Out)
	}
	backing := make([]*Task, 0, total)
	for i, t := range tg.Tasks {
		nt := out.Tasks[i]
		lo := len(backing)
		for _, p := range t.In {
			backing = append(backing, remap[p])
		}
		nt.In = backing[lo:len(backing):len(backing)]
		lo = len(backing)
		for _, s := range t.Out {
			backing = append(backing, remap[s])
		}
		nt.Out = backing[lo:len(backing):len(backing)]
	}

	remapList := func(ts []*Task) []*Task {
		if ts == nil {
			return nil
		}
		o := make([]*Task, len(ts))
		for i, t := range ts {
			o[i] = remap[t]
		}
		return o
	}
	out.fwd = make([][]*Task, len(tg.fwd))
	for i, ts := range tg.fwd {
		out.fwd[i] = remapList(ts)
	}
	out.bwd = make([][]*Task, len(tg.bwd))
	for i, ts := range tg.bwd {
		out.bwd[i] = remapList(ts)
	}
	out.extras = make([][]*Task, len(tg.extras))
	for i, ts := range tg.extras {
		out.extras[i] = remapList(ts)
	}
	for k, ts := range tg.edgeComm {
		out.edgeComm[k] = remapList(ts)
	}
	// The flat adjacency view copies verbatim — the clone preserves
	// slots, so every row is identical; only the Task back-pointers
	// remap into the new arena.
	oa, na := &tg.adj, &out.adj
	na.ID = append([]int32(nil), oa.ID...)
	na.Exe = append([]time.Duration(nil), oa.Exe...)
	na.Key = append([]int32(nil), oa.Key...)
	na.Task = make([]*Task, len(oa.Task))
	for i, t := range tg.Tasks {
		if !t.Dead {
			na.Task[t.Slot] = out.Tasks[i]
		}
	}
	rows := 0
	for _, row := range oa.In {
		rows += len(row)
	}
	for _, row := range oa.Out {
		rows += len(row)
	}
	// One backing array, rows capacity-pinned like reindex's.
	flat := make([]int32, 0, rows)
	na.In = make([][]int32, len(oa.In))
	na.Out = make([][]int32, len(oa.Out))
	for i, row := range oa.In {
		lo := len(flat)
		flat = append(flat, row...)
		na.In[i] = flat[lo:len(flat):len(flat)]
	}
	for i, row := range oa.Out {
		lo := len(flat)
		flat = append(flat, row...)
		na.Out[i] = flat[lo:len(flat):len(flat)]
	}
	return out
}
