package taskgraph

import (
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
)

// Plan is a compiled, immutable task graph: the structure/state split
// behind the concurrent search runtime. Compile builds the graph once —
// paying the estimator lookups, route queries and region intersections
// of Build exactly once per problem — and freezes it; the Plan is then
// shared read-only by any number of goroutines:
//
//   - Base returns the frozen graph itself. Simulating it is safe
//     concurrently (sim.State keeps every mutable value in its own
//     arrays), but ReplaceConfig on it panics.
//   - Instance returns a private mutable copy for a chain or worker
//     that needs to mutate structure (ReplaceConfig). The copy is a
//     pure pointer-remap — no estimator, route or region work — and
//     preserves task IDs and slots, so a sim.State cloned from the
//     base timeline rebinds to it directly (sim.State.CloneFor).
//
// The concurrency contract: the Plan (and its Base graph) is never
// written after Compile; every Instance is owned by exactly one
// goroutine.
type Plan struct {
	base *TaskGraph
}

// Compile builds and freezes the task graph for a strategy. The
// strategy must be valid for (g, topo); Compile panics otherwise, like
// Build.
func Compile(g *graph.Graph, topo *device.Topology, strat *config.Strategy, est perfmodel.Estimator, opts Options) *Plan {
	tg := Build(g, topo, strat, est, opts)
	tg.frozen = true
	return &Plan{base: tg}
}

// Base returns the frozen task graph. It is safe for concurrent
// read-only use (simulation, metrics); structural mutation panics.
func (p *Plan) Base() *TaskGraph { return p.base }

// Strategy returns a copy of the strategy the plan was compiled for.
func (p *Plan) Strategy() *config.Strategy { return p.base.Strat.Clone() }

// NumTasks returns the number of live tasks in the plan.
func (p *Plan) NumTasks() int { return p.base.Alive() }

// Instance returns a mutable copy-on-write view of the plan's task
// graph, owned by the caller. Task IDs, slots and creation order are
// preserved, so two instances applying the same ReplaceConfig sequence
// stay bit-identical — the property the parallel Neighborhood sweep
// relies on. Creation is near-O(1): tasks are immutable and shared by
// pointer, and the adjacency arrays alias the frozen base until the
// instance's first mutation faults them private (see clone and
// TaskGraph.materialize).
func (p *Plan) Instance() *TaskGraph { return p.base.clone() }

// clone creates a copy-on-write view of a frozen graph: every slice,
// map and Task pointer is shared verbatim with the base, and the
// result is flagged shared so the first structural mutation
// (ReplaceConfig, Compact) privatizes the mutable arrays via
// materialize. Tasks is cut with its capacity pinned to its length so
// the instance's first task append reallocates instead of writing the
// base's spare capacity. Sharing is safe because tasks are immutable,
// the base is frozen (never written), and reindex pinned every
// adjacency row's capacity to its length.
func (tg *TaskGraph) clone() *TaskGraph {
	return &TaskGraph{
		G: tg.G, Topo: tg.Topo, Strat: tg.Strat, Est: tg.Est, Opts: tg.Opts,
		Tasks:     tg.Tasks[:len(tg.Tasks):len(tg.Tasks)],
		nextID:    tg.nextID,
		numDead:   tg.numDead,
		numSlots:  tg.numSlots,
		freeSlots: tg.freeSlots,
		fwd:       tg.fwd,
		bwd:       tg.bwd,
		extras:    tg.extras,
		edgeComm:  tg.edgeComm,
		adj:       tg.adj,
		shared:    true,
	}
}

// materialize privatizes a shared instance's mutable containers — the
// strategy, the slot free list, the per-op task groups, and the
// adjacency's slot-indexed arrays and row headers. Row *contents* are
// not copied here; they fault individually on first in-place write
// (Adj.removeIn/removeOut/resetRows). ReplaceConfig and Compact call
// this on entry, so a never-mutated instance costs a handful of words.
func (tg *TaskGraph) materialize() {
	if !tg.shared {
		return
	}
	tg.shared = false
	if tg.Strat != nil {
		tg.Strat = tg.Strat.Clone()
	}
	// freeSlots must be deep-copied, not capacity-pinned: the allocator
	// pops then pushes, and a push after a pop would overwrite backing
	// the base still reads.
	tg.freeSlots = append([]int(nil), tg.freeSlots...)
	tg.fwd = append([][]*Task(nil), tg.fwd...)
	tg.bwd = append([][]*Task(nil), tg.bwd...)
	tg.extras = append([][]*Task(nil), tg.extras...)
	ec := make(map[[2]int][]*Task, len(tg.edgeComm))
	for k, v := range tg.edgeComm {
		ec[k] = v
	}
	tg.edgeComm = ec
	a := &tg.adj
	a.ID = append([]int32(nil), a.ID...)
	a.Exe = append([]time.Duration(nil), a.Exe...)
	a.Key = append([]int32(nil), a.Key...)
	a.Task = append([]*Task(nil), a.Task...)
	a.In = append([][]int32(nil), a.In...)
	a.Out = append([][]int32(nil), a.Out...)
	a.inOwned = make([]bool, len(a.In))
	a.outOwned = make([]bool, len(a.Out))
}

// materializeAll is materialize plus an eager fault of every adjacency
// row — the old eager-copy Instance behaviour. It exists as a test
// hook: differential tests pin the lazy per-row fault path
// bit-identical against it.
func (tg *TaskGraph) materializeAll() {
	tg.materialize()
	a := &tg.adj
	if a.inOwned == nil {
		return // graph already owned every row (fresh Build)
	}
	for slot := range a.In {
		if !a.inOwned[slot] {
			a.In[slot] = append(make([]int32, 0, len(a.In[slot])), a.In[slot]...)
			a.inOwned[slot] = true
		}
		if !a.outOwned[slot] {
			a.Out[slot] = append(make([]int32, 0, len(a.Out[slot])), a.Out[slot]...)
			a.outOwned[slot] = true
		}
	}
}
