package graph

import (
	"fmt"

	"flexflow/internal/tensor"
)

// The builder methods below construct ops with correctly classified
// output shapes. They panic on shape errors: model construction bugs are
// programming errors, not runtime conditions.

// InputTensor declares a framework-provided input with an explicit shape.
func (g *Graph) InputTensor(name string, shape tensor.Shape) *Op {
	return g.add(&Op{Kind: Input, Name: name, Out: shape})
}

// Input4D declares an image batch input (sample, channel, height, width).
func (g *Graph) Input4D(name string, samples, channels, height, width int) *Op {
	return g.InputTensor(name, tensor.MakeShape(
		tensor.D(DimSample, samples, tensor.Sample),
		tensor.D(DimChannel, channels, tensor.Unsplittable),
		tensor.D(DimHeight, height, tensor.Attribute),
		tensor.D(DimWidth, width, tensor.Attribute),
	))
}

// InputSeq declares a token-sequence input (sample, length), e.g. word
// ids for an embedding layer.
func (g *Graph) InputSeq(name string, samples, length int) *Op {
	return g.InputTensor(name, tensor.MakeShape(
		tensor.D(DimSample, samples, tensor.Sample),
		tensor.D(DimLength, length, tensor.Attribute),
	))
}

// Conv2D adds a 2D convolution. Output channels form a Parameter
// dimension (splitting them splits the filters); height and width are
// Attribute dimensions (Table 1).
func (g *Graph) Conv2D(name string, in *Op, outChannels, kh, kw, sh, sw, ph, pw int) *Op {
	is := in.Out
	if is.Rank() != 4 {
		panic(fmt.Sprintf("graph: Conv2D %q input must be 4D, got %v", name, is))
	}
	oh := convOut(is.Size(2), kh, sh, ph)
	ow := convOut(is.Size(3), kw, sw, pw)
	cin := is.Size(1)
	op := &Op{
		Kind: Conv2D, Name: name, Inputs: []*Op{in},
		KernelH: kh, KernelW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw,
		InChannels:  cin,
		WeightElems: int64(outChannels)*int64(cin)*int64(kh)*int64(kw) + int64(outChannels),
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimChannel, outChannels, tensor.Parameter),
			tensor.D(DimHeight, oh, tensor.Attribute),
			tensor.D(DimWidth, ow, tensor.Attribute),
		),
	}
	return g.add(op)
}

// Pool2D adds a pooling layer. Pooling has no weights, so its channel
// dimension is an Attribute dimension (Table 1: "1D pooling — attribute:
// length, channel").
func (g *Graph) Pool2D(name string, in *Op, kh, kw, sh, sw, ph, pw int) *Op {
	is := in.Out
	if is.Rank() != 4 {
		panic(fmt.Sprintf("graph: Pool2D %q input must be 4D, got %v", name, is))
	}
	oh := convOut(is.Size(2), kh, sh, ph)
	ow := convOut(is.Size(3), kw, sw, pw)
	op := &Op{
		Kind: Pool2D, Name: name, Inputs: []*Op{in},
		KernelH: kh, KernelW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw,
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimChannel, is.Size(1), tensor.Attribute),
			tensor.D(DimHeight, oh, tensor.Attribute),
			tensor.D(DimWidth, ow, tensor.Attribute),
		),
	}
	return g.add(op)
}

// Dense adds a fully-connected layer over a 2D (sample, channel) input.
func (g *Graph) Dense(name string, in *Op, outChannels int) *Op {
	is := in.Out
	if is.Rank() != 2 {
		panic(fmt.Sprintf("graph: Dense %q input must be 2D, got %v", name, is))
	}
	cin := is.Size(1)
	op := &Op{
		Kind: MatMul, Name: name, Inputs: []*Op{in},
		InChannels:  cin,
		WeightElems: int64(cin)*int64(outChannels) + int64(outChannels),
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimChannel, outChannels, tensor.Parameter),
		),
	}
	return g.add(op)
}

// Embedding adds a token-embedding lookup over an (sample, length) id
// tensor, producing (sample, length, channel). Splitting the channel
// dimension splits the embedding table columns, so it is a Parameter
// dimension. The length dimension is an Attribute dimension.
func (g *Graph) Embedding(name string, in *Op, vocab, channels int) *Op {
	is := in.Out
	if is.Rank() != 2 {
		panic(fmt.Sprintf("graph: Embedding %q input must be (sample, length), got %v", name, is))
	}
	op := &Op{
		Kind: Embedding, Name: name, Inputs: []*Op{in},
		InChannels:  vocab,
		WeightElems: int64(vocab) * int64(channels),
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimLength, is.Size(1), tensor.Attribute),
			tensor.D(DimChannel, channels, tensor.Parameter),
		),
	}
	return g.add(op)
}

// LSTMStep adds one unrolled LSTM step. seq is the layer's input for
// this step: either a 3D (sample, length, channel) sequence (first
// recurrent layer reading an embedding), from which slice `step` is
// consumed, or a 2D (sample, channel) per-step tensor (stacked layers
// reading the step output of the layer below). prev is the previous
// step's LSTM op of the same layer (nil for step 0). The output
// (sample, hidden) feeds both the next step of this layer and step
// `step` of the layer above.
func (g *Graph) LSTMStep(name string, seq *Op, prev *Op, step, hidden int) *Op {
	ss := seq.Out
	var cin int
	switch ss.Rank() {
	case 3:
		if step < 0 || step >= ss.Size(1) {
			panic(fmt.Sprintf("graph: LSTMStep %q step %d out of range [0,%d)", name, step, ss.Size(1)))
		}
		cin = ss.Size(2)
	case 2:
		cin = ss.Size(1)
	default:
		panic(fmt.Sprintf("graph: LSTMStep %q input must be 2D or 3D, got %v", name, ss))
	}
	inputs := []*Op{seq}
	if prev != nil {
		if prev.Out.Rank() != 2 || prev.Out.Size(1) != hidden {
			panic(fmt.Sprintf("graph: LSTMStep %q prev state shape %v incompatible with hidden %d", name, prev.Out, hidden))
		}
		inputs = append(inputs, prev)
	}
	op := &Op{
		Kind: LSTM, Name: name, Inputs: inputs, Step: step,
		InChannels:  cin,
		WeightElems: 4 * (int64(cin) + int64(hidden) + 1) * int64(hidden),
		Out: tensor.MakeShape(
			tensor.D(DimSample, ss.Size(0), tensor.Sample),
			tensor.D(DimChannel, hidden, tensor.Parameter),
		),
	}
	return g.add(op)
}

// StackSteps assembles per-step 2D (sample, channel) outputs into a
// (sample, length, channel) sequence tensor; e.g. encoder LSTM states
// stacked for consumption by attention. All inputs must share a shape.
func (g *Graph) StackSteps(name string, steps ...*Op) *Op {
	if len(steps) == 0 {
		panic(fmt.Sprintf("graph: StackSteps %q needs inputs", name))
	}
	first := steps[0].Out
	if first.Rank() != 2 {
		panic(fmt.Sprintf("graph: StackSteps %q inputs must be 2D, got %v", name, first))
	}
	for _, s := range steps {
		if !s.Out.Equal(first) {
			panic(fmt.Sprintf("graph: StackSteps %q shape mismatch: %v vs %v", name, s.Out, first))
		}
	}
	op := &Op{
		Kind: Stack, Name: name, Inputs: append([]*Op{}, steps...),
		Out: tensor.MakeShape(
			tensor.D(DimSample, first.Size(0), tensor.Sample),
			tensor.D(DimLength, len(steps), tensor.Attribute),
			tensor.D(DimChannel, first.Size(1), tensor.Attribute),
		),
	}
	return g.add(op)
}

// AttentionStep adds a single-step attention layer: query is the decoder
// state (sample, hidden); memory is the encoder output sequence
// (sample, srclen, hidden).
func (g *Graph) AttentionStep(name string, query, memory *Op) *Op {
	qs, ms := query.Out, memory.Out
	if qs.Rank() != 2 || ms.Rank() != 3 {
		panic(fmt.Sprintf("graph: AttentionStep %q wants 2D query and 3D memory, got %v and %v", name, qs, ms))
	}
	if qs.Size(1) != ms.Size(2) {
		panic(fmt.Sprintf("graph: AttentionStep %q hidden mismatch: %d vs %d", name, qs.Size(1), ms.Size(2)))
	}
	hidden := qs.Size(1)
	op := &Op{
		Kind: Attention, Name: name, Inputs: []*Op{query, memory},
		InChannels: hidden,
		// Bilinear score weights + output projection.
		WeightElems: 2 * int64(hidden) * int64(hidden),
		Out: tensor.MakeShape(
			tensor.D(DimSample, qs.Size(0), tensor.Sample),
			tensor.D(DimChannel, hidden, tensor.Parameter),
		),
	}
	return g.add(op)
}

// SoftmaxClassifier adds a linear projection to vocab classes followed
// by softmax (the "softmax linear" layer of the paper's RNN models).
func (g *Graph) SoftmaxClassifier(name string, in *Op, classes int) *Op {
	is := in.Out
	if is.Rank() != 2 {
		panic(fmt.Sprintf("graph: SoftmaxClassifier %q input must be 2D, got %v", name, is))
	}
	cin := is.Size(1)
	op := &Op{
		Kind: Softmax, Name: name, Inputs: []*Op{in},
		InChannels:  cin,
		WeightElems: int64(cin)*int64(classes) + int64(classes),
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimChannel, classes, tensor.Parameter),
		),
	}
	return g.add(op)
}

// ConcatChannels concatenates 4D inputs along the channel dimension
// (inception modules).
func (g *Graph) ConcatChannels(name string, ins ...*Op) *Op {
	if len(ins) < 2 {
		panic(fmt.Sprintf("graph: ConcatChannels %q needs >= 2 inputs", name))
	}
	first := ins[0].Out
	total := 0
	for _, in := range ins {
		if in.Out.Rank() != first.Rank() {
			panic(fmt.Sprintf("graph: ConcatChannels %q rank mismatch", name))
		}
		for d := 0; d < first.Rank(); d++ {
			if d != 1 && in.Out.Size(d) != first.Size(d) {
				panic(fmt.Sprintf("graph: ConcatChannels %q dim %d mismatch: %v vs %v", name, d, in.Out, first))
			}
		}
		total += in.Out.Size(1)
	}
	dims := make([]tensor.Dim, first.Rank())
	copy(dims, first.Dims)
	dims[1] = tensor.D(DimChannel, total, tensor.Attribute)
	op := &Op{Kind: Concat, Name: name, Inputs: append([]*Op{}, ins...), ConcatDim: 1,
		Out: tensor.MakeShape(dims...)}
	return g.add(op)
}

// Add adds an element-wise residual addition of two equal-shaped inputs.
func (g *Graph) Add(name string, a, b *Op) *Op {
	if !a.Out.Equal(b.Out) {
		panic(fmt.Sprintf("graph: Add %q shape mismatch: %v vs %v", name, a.Out, b.Out))
	}
	op := &Op{Kind: Add, Name: name, Inputs: []*Op{a, b}, Out: a.Out}
	return g.add(op)
}

// Activation adds an element-wise nonlinearity.
func (g *Graph) Activation(name string, in *Op) *Op {
	op := &Op{Kind: Activation, Name: name, Inputs: []*Op{in}, Out: in.Out}
	return g.add(op)
}

// Flatten reshapes a 4D (sample, c, h, w) tensor into (sample, features).
// The feature dimension is an Attribute dimension: splitting it splits
// activations, not parameters.
func (g *Graph) Flatten(name string, in *Op) *Op {
	is := in.Out
	if is.Rank() != 4 {
		panic(fmt.Sprintf("graph: Flatten %q input must be 4D, got %v", name, is))
	}
	feats := is.Size(1) * is.Size(2) * is.Size(3)
	op := &Op{
		Kind: Flatten, Name: name, Inputs: []*Op{in},
		Out: tensor.MakeShape(
			tensor.D(DimSample, is.Size(0), tensor.Sample),
			tensor.D(DimChannel, feats, tensor.Attribute),
		),
	}
	return g.add(op)
}

// convOut computes the output extent of a convolution/pooling dimension.
func convOut(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("graph: convolution output extent %d (in=%d kernel=%d stride=%d pad=%d)", out, in, kernel, stride, pad))
	}
	return out
}
