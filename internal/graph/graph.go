// Package graph implements the operator graph G used throughout the
// paper (Section 3.1): each node is an operation (convolution, matrix
// multiplication, ...) and each edge is a tensor produced by one
// operation and consumed by another. The package also owns the per-op
// metadata the rest of the system needs: parallelizable dimensions
// (Table 1), weight accounting, FLOP counts for the performance model,
// and input-region inference for the task-graph builder.
package graph

import (
	"fmt"

	"flexflow/internal/tensor"
)

// Graph is an operator graph. Ops are stored in insertion order, which
// the builder guarantees is a valid topological order (an op may only
// consume previously created ops).
type Graph struct {
	Name string
	Ops  []*Op

	consumers map[int][]*Op // producer op ID -> consumer ops
}

// New creates an empty operator graph.
func New(name string) *Graph {
	return &Graph{Name: name, consumers: make(map[int][]*Op)}
}

// add appends an op, wiring consumer indices. Called by the builder.
func (g *Graph) add(op *Op) *Op {
	op.Layer = -1
	return g.Append(op)
}

// Append adds a fully-constructed op to the graph: it assigns the op's
// ID (insertion order) and wires consumer indices, taking every other
// field verbatim — in particular Layer and WeightElems survive a wire
// round-trip unchanged. It is the entry point for deserializers
// (config.UnmarshalGraph) and hand-assembled graphs; model code should
// prefer the typed builder methods, which derive shapes and weight
// counts. Callers are responsible for running Validate on the finished
// graph.
func (g *Graph) Append(op *Op) *Op {
	op.ID = len(g.Ops)
	g.Ops = append(g.Ops, op)
	for _, in := range op.Inputs {
		g.consumers[in.ID] = append(g.consumers[in.ID], op)
	}
	return op
}

// Op returns the op with the given ID.
func (g *Graph) Op(id int) *Op { return g.Ops[id] }

// NumOps returns the number of operations in the graph.
func (g *Graph) NumOps() int { return len(g.Ops) }

// Consumers returns the ops that consume op's output tensor.
func (g *Graph) Consumers(op *Op) []*Op { return g.consumers[op.ID] }

// ComputeOps returns all non-Input ops in topological order. Input ops
// produce data loaded by the framework and carry no compute cost.
func (g *Graph) ComputeOps() []*Op {
	var out []*Op
	for _, op := range g.Ops {
		if op.Kind != Input {
			out = append(out, op)
		}
	}
	return out
}

// IsLinear reports whether the compute portion of the graph is a simple
// chain (every compute op has at most one compute consumer and at most
// one compute producer). OptCNN (Section 8.2.3) only handles such
// graphs.
func (g *Graph) IsLinear() bool {
	for _, op := range g.Ops {
		if op.Kind == Input {
			continue
		}
		nCompute := 0
		for _, in := range op.Inputs {
			if in.Kind != Input {
				nCompute++
			}
		}
		if nCompute > 1 {
			return false
		}
		nConsumers := 0
		for _, c := range g.Consumers(op) {
			if c.Kind != Input {
				nConsumers++
			}
		}
		if nConsumers > 1 {
			return false
		}
	}
	return true
}

// TotalWeights returns the total number of trainable parameters.
func (g *Graph) TotalWeights() int64 {
	var total int64
	for _, op := range g.Ops {
		total += op.WeightElems
	}
	return total
}

// TotalFLOPs returns the total forward FLOPs of one iteration.
func (g *Graph) TotalFLOPs() int64 {
	var total int64
	for _, op := range g.Ops {
		total += op.ForwardFLOPs(op.Out.FullRegion())
	}
	return total
}

// Validate checks structural invariants of the graph. The builder
// enforces most of them at construction time; Validate exists so that
// hand-assembled graphs and deserialized graphs get the same checks.
func (g *Graph) Validate() error {
	seen := make(map[int]bool, len(g.Ops))
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("graph %q: op %q has ID %d at index %d", g.Name, op.Name, op.ID, i)
		}
		if op.Out.Rank() == 0 {
			return fmt.Errorf("graph %q: op %q has empty output shape", g.Name, op.Name)
		}
		for _, in := range op.Inputs {
			if !seen[in.ID] {
				return fmt.Errorf("graph %q: op %q consumes op %q that does not precede it", g.Name, op.Name, in.Name)
			}
		}
		if op.Kind != Input {
			full := op.Out.FullRegion()
			regions := InputRegions(op, full)
			if len(regions) != len(op.Inputs) {
				return fmt.Errorf("graph %q: op %q input region count %d != inputs %d", g.Name, op.Name, len(regions), len(op.Inputs))
			}
			for j, r := range regions {
				inShape := op.Inputs[j].Out
				if r.Rank() != inShape.Rank() {
					return fmt.Errorf("graph %q: op %q input %d region rank %d != input rank %d", g.Name, op.Name, j, r.Rank(), inShape.Rank())
				}
				if !inShape.FullRegion().Contains(r) {
					return fmt.Errorf("graph %q: op %q input %d region %v escapes input shape %v", g.Name, op.Name, j, r, inShape)
				}
			}
		}
		seen[op.ID] = true
	}
	return nil
}

// String summarizes the graph: name, op and weight counts, FLOPs per
// iteration.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: %d ops, %d weights, %.2f GFLOPs/iter",
		g.Name, len(g.Ops), g.TotalWeights(), float64(g.TotalFLOPs())/1e9)
}

// Dim name constants used consistently by all op constructors so that
// models, configs and reports agree on naming.
const (
	DimSample  = "sample"
	DimChannel = "channel"
	DimHeight  = "height"
	DimWidth   = "width"
	DimLength  = "length"
)

// convenience re-exports so model builders only import graph.
type (
	// Shape aliases tensor.Shape for builder convenience.
	Shape = tensor.Shape
)
