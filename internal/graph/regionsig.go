package graph

import "flexflow/internal/tensor"

// regionSig accumulates an FNV-1a hash over region interval lengths.
// Methods take a pointer receiver on a local so the walk never
// allocates (no closures, no region materialization).
type regionSig uint64

const (
	sigOffset64 regionSig = 14695981039346656037
	sigPrime64  regionSig = 1099511628211
)

// dim folds one interval length.
func (s *regionSig) dim(n int) { *s = (*s ^ regionSig(uint64(n))) * sigPrime64 }

// sep marks the end of one region, mirroring the separator byte the
// estimator's cache key uses between input regions.
func (s *regionSig) sep() { *s = (*s ^ 0xff) * sigPrime64 }

// InputRegionsSig hashes the per-dimension lengths of InputRegions(op,
// out) — the exact sequence the estimator cache key folds in — without
// materializing any region. It exists because the signature sits on the
// estimator's cache-hit path, queried once per task on every task-graph
// build; the lengths-only walk keeps that path allocation-free.
//
// The walk mirrors InputRegions kind by kind and must stay in lockstep
// with it; TestInputRegionsSigMatchesMaterialized pins the equivalence
// for every op kind.
func InputRegionsSig(op *Op, out tensor.Region) uint64 {
	s := sigOffset64
	switch op.Kind {
	case Input:
		// No inputs, empty hash.
	case Conv2D:
		in := op.Inputs[0].Out
		s.dim(out.Iv[0].Len())
		s.dim(in.Size(1)) // full input channels (reduction)
		s.dim(receptive(out.Iv[2], op.KernelH, op.StrideH, op.PadH, in.Size(2)).Len())
		s.dim(receptive(out.Iv[3], op.KernelW, op.StrideW, op.PadW, in.Size(3)).Len())
		s.sep()
	case Pool2D:
		in := op.Inputs[0].Out
		s.dim(out.Iv[0].Len())
		s.dim(out.Iv[1].Len()) // pooling is per-channel
		s.dim(receptive(out.Iv[2], op.KernelH, op.StrideH, op.PadH, in.Size(2)).Len())
		s.dim(receptive(out.Iv[3], op.KernelW, op.StrideW, op.PadW, in.Size(3)).Len())
		s.sep()
	case MatMul, Softmax:
		in := op.Inputs[0].Out
		s.dim(out.Iv[0].Len())
		s.dim(in.Size(1)) // full reduction depth
		s.sep()
	case Embedding:
		s.dim(out.Iv[0].Len())
		s.dim(out.Iv[1].Len())
		s.sep()
	case LSTM:
		seq := op.Inputs[0].Out
		if seq.Rank() == 3 {
			s.dim(out.Iv[0].Len())
			s.dim(1) // the single step slice {Step, Step+1}
			s.dim(seq.Size(2))
		} else {
			s.dim(out.Iv[0].Len())
			s.dim(seq.Size(1))
		}
		s.sep()
		if len(op.Inputs) == 2 {
			prev := op.Inputs[1].Out
			s.dim(out.Iv[0].Len())
			s.dim(prev.Size(1)) // full previous hidden state
			s.sep()
		}
	case Attention:
		q := op.Inputs[0].Out
		m := op.Inputs[1].Out
		s.dim(out.Iv[0].Len())
		s.dim(q.Size(1))
		s.sep()
		s.dim(out.Iv[0].Len())
		s.dim(m.Size(1))
		s.dim(m.Size(2))
		s.sep()
	case Stack:
		for i := range op.Inputs {
			want := out.Iv[1].Intersect(tensor.Interval{Lo: i, Hi: i + 1})
			if want.Empty() {
				s.dim(0)
				s.dim(0)
			} else {
				s.dim(out.Iv[0].Len())
				s.dim(out.Iv[2].Len()) // the channel slice actually requested
			}
			s.sep()
		}
	case Concat:
		off := 0
		d := op.ConcatDim
		for _, in := range op.Inputs {
			size := in.Out.Size(d)
			seg := out.Iv[d].Intersect(tensor.Interval{Lo: off, Hi: off + size})
			if seg.Empty() {
				// Region is empty: every dimension collapses to {}.
				for range out.Iv {
					s.dim(0)
				}
			} else {
				for j, iv := range out.Iv {
					if j == d {
						s.dim(seg.Len())
					} else {
						s.dim(iv.Len())
					}
				}
			}
			s.sep()
			off += size
		}
	case Add:
		for pass := 0; pass < 2; pass++ {
			for _, iv := range out.Iv {
				s.dim(iv.Len())
			}
			s.sep()
		}
	case Activation:
		for _, iv := range out.Iv {
			s.dim(iv.Len())
		}
		s.sep()
	case Flatten:
		in := op.Inputs[0].Out
		c, h, w := in.Size(1), in.Size(2), in.Size(3)
		feat := out.Iv[1]
		s.dim(out.Iv[0].Len())
		if feat.Len() == c*h*w {
			s.dim(c)
			s.dim(h)
			s.dim(w)
			s.sep()
			break
		}
		// Bounding-box lengths, mirroring InputRegions' tightening.
		cLo := feat.Lo / (h * w)
		cHi := (feat.Hi-1)/(h*w) + 1
		hLen, wLen := h, w
		if cHi-cLo == 1 {
			rem := tensor.Interval{Lo: feat.Lo - cLo*h*w, Hi: feat.Hi - cLo*h*w}
			hLo := rem.Lo / w
			hHi := (rem.Hi-1)/w + 1
			hLen = hHi - hLo
			if hHi-hLo == 1 {
				wLen = (rem.Hi - hLo*w) - (rem.Lo - hLo*w)
			}
		}
		s.dim(cHi - cLo)
		s.dim(hLen)
		s.dim(wLen)
		s.sep()
	default:
		// Fall back to the materializing walk for kinds this function
		// does not know (keeps the signature correct if a new op kind
		// lands before its lengths-only case does).
		for _, r := range InputRegions(op, out) {
			for i := 0; i < r.Rank(); i++ {
				s.dim(r.Iv[i].Len())
			}
			s.sep()
		}
	}
	return uint64(s)
}
