package graph

import (
	"fmt"

	"flexflow/internal/tensor"
)

// OpKind enumerates the operation types needed by the paper's six
// benchmark DNNs (Table 3) plus LeNet (Section 8.4).
type OpKind uint8

const (
	// Input is a placeholder producing framework-loaded data.
	Input OpKind = iota
	// Conv2D is a 2D convolution (+bias, optionally fused activation).
	Conv2D
	// Pool2D is 2D max/average pooling.
	Pool2D
	// MatMul is a dense (fully-connected) layer: Y = W X + b.
	MatMul
	// Embedding is a table lookup mapping token ids to vectors.
	Embedding
	// LSTM is one unrolled LSTM step (all four gates).
	LSTM
	// Attention is a single-step attention layer over encoder states.
	Attention
	// Softmax is a classifier layer: linear projection + softmax.
	Softmax
	// Concat concatenates its inputs along one dimension.
	Concat
	// Add is an element-wise addition (residual connections).
	Add
	// Activation is an element-wise nonlinearity (ReLU etc.).
	Activation
	// Flatten reshapes (sample, c, h, w) to (sample, features).
	Flatten
	// Stack assembles per-step 2D outputs into a (sample, length,
	// channel) sequence (e.g. encoder states consumed by attention).
	Stack
)

var opKindNames = [...]string{
	Input: "Input", Conv2D: "Conv2D", Pool2D: "Pool2D", MatMul: "MatMul",
	Embedding: "Embedding", LSTM: "LSTM", Attention: "Attention",
	Softmax: "Softmax", Concat: "Concat", Add: "Add",
	Activation: "Activation", Flatten: "Flatten", Stack: "Stack",
}

// String names the operator kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) && opKindNames[k] != "" {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// NumOpKinds is the number of distinct operation kinds (used by the
// performance model's cache sizing).
const NumOpKinds = int(Stack) + 1

// Op is a node of the operator graph. Its output tensor shape carries
// the SOAP dimension classification; Inputs reference producer ops whose
// output tensors this op consumes.
type Op struct {
	ID     int
	Kind   OpKind
	Name   string
	Out    tensor.Shape
	Inputs []*Op

	// Convolution / pooling geometry.
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int

	// ConcatDim is the output dimension along which Concat joins inputs.
	ConcatDim int

	// Step is the unroll step index for recurrent ops whose sequence
	// input is a 3D (sample, length, channel) tensor.
	Step int

	// InChannels caches the contraction depth for MatMul-like ops.
	InChannels int

	// Layer is an optional model-assigned layer index (embedding = 0,
	// first LSTM = 1, ...). Expert-designed strategies for RNNs place
	// "operations with the same depth on the same GPU" (Section 8.2.1);
	// model builders set this so the expert baseline can do that.
	// -1 (set by the builder) means unannotated.
	Layer int

	// WeightElems is the number of trainable parameters of the op.
	WeightElems int64
}

// String renders the op as kind, name and output shape.
func (o *Op) String() string {
	return fmt.Sprintf("%s %q out=%s", o.Kind, o.Name, o.Out)
}

// ParallelDims returns the indices of the output dimensions this op may
// be partitioned along. This is Table 1 of the paper generalized to all
// supported op kinds: every op has a sample dimension; attribute
// dimensions are positions within a sample; parameter dimensions split
// the weights.
func (o *Op) ParallelDims() []int {
	return o.Out.ParallelizableDims()
}

// ForwardFLOPs returns the floating-point operations needed to compute
// the given output region in the forward pass. The performance model
// divides this by effective device throughput.
func (o *Op) ForwardFLOPs(out tensor.Region) int64 {
	vol := out.Volume()
	switch o.Kind {
	case Input:
		return 0
	case Conv2D:
		cin := o.Inputs[0].Out.Size(1)
		return 2 * vol * int64(cin) * int64(o.KernelH) * int64(o.KernelW)
	case Pool2D:
		return vol * int64(o.KernelH) * int64(o.KernelW)
	case MatMul, Softmax:
		// Linear projection dominates; softmax adds ~5 ops/element.
		f := 2 * vol * int64(o.InChannels)
		if o.Kind == Softmax {
			f += 5 * vol
		}
		return f
	case Embedding:
		return vol // gather
	case LSTM:
		// Four gates, each a matmul over concat(x, h) plus elementwise.
		samples := int64(out.Iv[0].Len())
		hidden := int64(out.Iv[1].Len())
		cin := int64(o.InChannels)
		full := int64(o.Out.Size(1))
		return 2*samples*4*hidden*(cin+full) + 10*samples*hidden
	case Attention:
		// Scores against every encoder position + weighted sum + proj.
		samples := int64(out.Iv[0].Len())
		hidden := int64(out.Iv[1].Len())
		srcLen := int64(o.Inputs[1].Out.Size(1))
		return 2*samples*srcLen*int64(o.Out.Size(1)) + 2*samples*srcLen*hidden + 2*samples*hidden*int64(o.InChannels)
	case Concat, Add, Activation, Flatten, Stack:
		return vol
	default:
		panic(fmt.Sprintf("graph: ForwardFLOPs for unknown kind %v", o.Kind))
	}
}

// BackwardFLOPs returns the FLOPs of the backward pass for the region.
// Computing input gradients and weight gradients each roughly replay the
// forward computation, the standard 2x rule.
func (o *Op) BackwardFLOPs(out tensor.Region) int64 {
	return 2 * o.ForwardFLOPs(out)
}

// WeightBytes returns the storage for the op's parameters in bytes.
func (o *Op) WeightBytes() int64 { return o.WeightElems * tensor.ElemBytes }

// HasWeights reports whether the op has trainable parameters.
func (o *Op) HasWeights() bool { return o.WeightElems > 0 }

// paramDimProduct returns the product of the given degrees over the
// Parameter dimensions of the output shape.
func (o *Op) paramDimProduct(degrees []int) int {
	p := 1
	for i, d := range degrees {
		if o.Out.Kind(i) == tensor.Parameter {
			p *= d
		}
	}
	return p
}

// WeightSlice describes how a parallelization degree vector splits the
// op's parameters: the weights divide into Slices equal shards, each
// replicated Replicas times across the tasks.
type WeightSlice struct {
	Slices   int   // number of disjoint weight shards
	Replicas int   // tasks holding a copy of each shard
	Elems    int64 // parameters per shard
}

// Weights reports how the degree vector partitions/replicates the op's
// parameters. Tasks that differ only in non-Parameter grid coordinates
// replicate the same shard and must synchronize gradients (the ring
// all-reduce the task-graph builder emits).
func (o *Op) Weights(degrees []int) WeightSlice {
	if o.WeightElems == 0 {
		return WeightSlice{}
	}
	p := o.paramDimProduct(degrees)
	total := tensor.GridVolume(degrees)
	return WeightSlice{
		Slices:   p,
		Replicas: total / p,
		Elems:    o.WeightElems / int64(p),
	}
}
