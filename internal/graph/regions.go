package graph

import (
	"fmt"

	"flexflow/internal/tensor"
)

// InputRegions computes, for each input tensor of op, the sub-region a
// task must read to produce the given output region (Section 4: "Given
// the output tensor of a task and its operation type, we can infer the
// necessary input tensors to execute each task"). Convolutions and
// pooling include the halo rows/columns implied by their receptive
// field; matrix multiplications need full reduction depth; concats remap
// the concatenated dimension to per-input coordinates.
//
// The returned slice is parallel to op.Inputs. Regions are expressed in
// each input tensor's own coordinate space and are clamped to it.
func InputRegions(op *Op, out tensor.Region) []tensor.Region {
	switch op.Kind {
	case Input:
		return nil
	case Conv2D:
		in := op.Inputs[0].Out
		return []tensor.Region{{Iv: []tensor.Interval{
			out.Iv[0],
			{Lo: 0, Hi: in.Size(1)}, // full input channels (reduction)
			receptive(out.Iv[2], op.KernelH, op.StrideH, op.PadH, in.Size(2)),
			receptive(out.Iv[3], op.KernelW, op.StrideW, op.PadW, in.Size(3)),
		}}}
	case Pool2D:
		in := op.Inputs[0].Out
		return []tensor.Region{{Iv: []tensor.Interval{
			out.Iv[0],
			out.Iv[1], // pooling is per-channel
			receptive(out.Iv[2], op.KernelH, op.StrideH, op.PadH, in.Size(2)),
			receptive(out.Iv[3], op.KernelW, op.StrideW, op.PadW, in.Size(3)),
		}}}
	case MatMul, Softmax:
		in := op.Inputs[0].Out
		return []tensor.Region{{Iv: []tensor.Interval{
			out.Iv[0],
			{Lo: 0, Hi: in.Size(1)}, // full reduction depth
		}}}
	case Embedding:
		// Need the token ids for our samples over the length slice.
		return []tensor.Region{{Iv: []tensor.Interval{
			out.Iv[0],
			out.Iv[1],
		}}}
	case LSTM:
		seq := op.Inputs[0].Out
		var xRegion tensor.Region
		if seq.Rank() == 3 {
			xRegion = tensor.Region{Iv: []tensor.Interval{
				out.Iv[0],
				{Lo: op.Step, Hi: op.Step + 1},
				{Lo: 0, Hi: seq.Size(2)}, // gates contract over full input channels
			}}
		} else {
			xRegion = tensor.Region{Iv: []tensor.Interval{
				out.Iv[0],
				{Lo: 0, Hi: seq.Size(1)},
			}}
		}
		regions := []tensor.Region{xRegion}
		if len(op.Inputs) == 2 {
			prev := op.Inputs[1].Out
			regions = append(regions, tensor.Region{Iv: []tensor.Interval{
				out.Iv[0],
				{Lo: 0, Hi: prev.Size(1)}, // full previous hidden state
			}})
		}
		return regions
	case Attention:
		q := op.Inputs[0].Out
		m := op.Inputs[1].Out
		return []tensor.Region{
			{Iv: []tensor.Interval{out.Iv[0], {Lo: 0, Hi: q.Size(1)}}},
			{Iv: []tensor.Interval{out.Iv[0], {Lo: 0, Hi: m.Size(1)}, {Lo: 0, Hi: m.Size(2)}}},
		}
	case Stack:
		regions := make([]tensor.Region, len(op.Inputs))
		for i, in := range op.Inputs {
			want := out.Iv[1].Intersect(tensor.Interval{Lo: i, Hi: i + 1})
			if want.Empty() {
				regions[i] = tensor.Region{Iv: []tensor.Interval{{}, {}}}
				continue
			}
			regions[i] = tensor.Region{Iv: []tensor.Interval{
				out.Iv[0],
				{Lo: 0, Hi: in.Out.Size(1)},
			}}
			// Tighten to the channel slice actually requested.
			regions[i].Iv[1] = out.Iv[2]
		}
		return regions
	case Concat:
		regions := make([]tensor.Region, len(op.Inputs))
		off := 0
		d := op.ConcatDim
		for i, in := range op.Inputs {
			size := in.Out.Size(d)
			iv := make([]tensor.Interval, out.Rank())
			copy(iv, out.Iv)
			// Map the output interval back into this input's coordinates.
			seg := out.Iv[d].Intersect(tensor.Interval{Lo: off, Hi: off + size})
			iv[d] = tensor.Interval{Lo: seg.Lo - off, Hi: seg.Hi - off}
			if iv[d].Empty() {
				iv[d] = tensor.Interval{}
				// Region is empty: this task reads nothing from input i.
				for j := range iv {
					if j != d {
						iv[j] = tensor.Interval{}
					}
				}
			}
			regions[i] = tensor.Region{Iv: iv}
			off += size
		}
		return regions
	case Add:
		return []tensor.Region{out.Clone(), out.Clone()}
	case Activation:
		return []tensor.Region{out.Clone()}
	case Flatten:
		in := op.Inputs[0].Out
		c, h, w := in.Size(1), in.Size(2), in.Size(3)
		// Map the flat feature interval to a bounding region of (c,h,w).
		// The exact element set is not hyper-rectangular; the bounding
		// box is a conservative covering used for communication sizing.
		// The numeric executor gathers exact elements by index instead.
		feat := out.Iv[1]
		if feat.Len() == c*h*w {
			return []tensor.Region{{Iv: []tensor.Interval{
				out.Iv[0], {Lo: 0, Hi: c}, {Lo: 0, Hi: h}, {Lo: 0, Hi: w},
			}}}
		}
		cLo := feat.Lo / (h * w)
		cHi := (feat.Hi-1)/(h*w) + 1
		iv := []tensor.Interval{out.Iv[0], {Lo: cLo, Hi: cHi}, {Lo: 0, Hi: h}, {Lo: 0, Hi: w}}
		if cHi-cLo == 1 {
			// Within one channel plane we can tighten the h range too.
			rem := tensor.Interval{Lo: feat.Lo - cLo*h*w, Hi: feat.Hi - cLo*h*w}
			hLo := rem.Lo / w
			hHi := (rem.Hi-1)/w + 1
			iv[2] = tensor.Interval{Lo: hLo, Hi: hHi}
			if hHi-hLo == 1 {
				iv[3] = tensor.Interval{Lo: rem.Lo - hLo*w, Hi: rem.Hi - hLo*w}
			}
		}
		return []tensor.Region{{Iv: iv}}
	default:
		panic(fmt.Sprintf("graph: InputRegions for unknown kind %v", op.Kind))
	}
}

// receptive maps an output interval through a conv/pool geometry to the
// input rows/cols it reads, clamped to the input extent. This is the
// halo math: adjacent output partitions need overlapping input slices.
func receptive(out tensor.Interval, kernel, stride, pad, inSize int) tensor.Interval {
	lo := out.Lo*stride - pad
	hi := (out.Hi-1)*stride - pad + kernel
	return tensor.Interval{Lo: lo, Hi: hi}.Clamp(inSize)
}
