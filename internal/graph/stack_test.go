package graph

import (
	"testing"

	"flexflow/internal/tensor"
)

func stackFixture(t *testing.T) (*Graph, *Op) {
	t.Helper()
	g := New("stack")
	ids := g.InputSeq("tok", 4, 3)
	emb := g.Embedding("emb", ids, 50, 8)
	var prev *Op
	steps := make([]*Op, 3)
	for s := 0; s < 3; s++ {
		prev = g.LSTMStep("l", emb, prev, s, 8)
		steps[s] = prev
	}
	return g, g.StackSteps("stack", steps...)
}

func TestStackStepsShape(t *testing.T) {
	g, st := stackFixture(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := tensor.MakeShape(
		tensor.D(DimSample, 4, tensor.Sample),
		tensor.D(DimLength, 3, tensor.Attribute),
		tensor.D(DimChannel, 8, tensor.Attribute),
	)
	if !st.Out.Equal(want) {
		t.Fatalf("stack shape = %v, want %v", st.Out, want)
	}
	if st.HasWeights() {
		t.Fatal("stack should be weightless")
	}
	// All three dims parallelizable (none unsplittable, all > 1).
	if got := len(st.ParallelDims()); got != 3 {
		t.Fatalf("parallel dims = %d", got)
	}
}

func TestStackInputRegions(t *testing.T) {
	_, st := stackFixture(t)
	// A slice covering steps 1..2 and channels 2..6 reads those channel
	// slices from exactly inputs 1 and 2; input 0 gets an empty region.
	out := st.Out.FullRegion()
	out.Iv[1] = tensor.Interval{Lo: 1, Hi: 3}
	out.Iv[2] = tensor.Interval{Lo: 2, Hi: 6}
	rs := InputRegions(st, out)
	if len(rs) != 3 {
		t.Fatalf("regions = %d", len(rs))
	}
	if !rs[0].Empty() {
		t.Fatalf("input 0 region should be empty, got %v", rs[0])
	}
	for i := 1; i < 3; i++ {
		if rs[i].Iv[0].Len() != 4 || rs[i].Iv[1] != (tensor.Interval{Lo: 2, Hi: 6}) {
			t.Fatalf("input %d region = %v", i, rs[i])
		}
	}
}

func TestStackStepsPanics(t *testing.T) {
	cases := map[string]func(g *Graph){
		"empty": func(g *Graph) { g.StackSteps("s") },
		"non2d": func(g *Graph) {
			x := g.Input4D("x", 2, 3, 4, 4)
			g.StackSteps("s", x)
		},
		"mismatch": func(g *Graph) {
			ids := g.InputSeq("tok", 4, 2)
			emb := g.Embedding("emb", ids, 10, 8)
			a := g.LSTMStep("a", emb, nil, 0, 8)
			b := g.LSTMStep("b", emb, nil, 1, 16)
			g.StackSteps("s", a, b)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn(New("p"))
		})
	}
}

func TestLSTM2DStepInput(t *testing.T) {
	// Stacked layers feed 2D per-step tensors; verify shape + regions.
	g := New("stacked")
	ids := g.InputSeq("tok", 4, 2)
	emb := g.Embedding("emb", ids, 10, 8)
	l0 := g.LSTMStep("l0", emb, nil, 0, 8)
	l1 := g.LSTMStep("l1", l0, nil, 0, 16)
	if l1.InChannels != 8 {
		t.Fatalf("2D LSTM input channels = %d", l1.InChannels)
	}
	out := l1.Out.FullRegion()
	out.Iv[0] = tensor.Interval{Lo: 1, Hi: 3}
	rs := InputRegions(l1, out)
	if rs[0].Rank() != 2 {
		t.Fatalf("2D step input region rank = %d", rs[0].Rank())
	}
	if rs[0].Iv[0] != (tensor.Interval{Lo: 1, Hi: 3}) || rs[0].Iv[1].Len() != 8 {
		t.Fatalf("2D step input region = %v", rs[0])
	}
}
