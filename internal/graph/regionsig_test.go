package graph

import (
	"math/rand"
	"testing"

	"flexflow/internal/tensor"
)

// sigFromRegions is the reference signature: the materializing walk the
// estimator cache key used before InputRegionsSig existed.
func sigFromRegions(op *Op, out tensor.Region) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, r := range InputRegions(op, out) {
		for i := 0; i < r.Rank(); i++ {
			h = (h ^ uint64(r.Iv[i].Len())) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	return h
}

// sigTestGraph exercises every op kind InputRegionsSig special-cases:
// Conv2D, Pool2D, Flatten, MatMul (Dense), Softmax, Embedding, LSTM
// (with and without a previous step), Stack, Attention, Concat, Add,
// Activation.
func sigTestGraph() *Graph {
	g := New("sig")
	x := g.Input4D("x", 8, 3, 16, 16)
	c1 := g.Conv2D("c1", x, 8, 3, 3, 1, 1, 1, 1)
	c2 := g.Conv2D("c2", c1, 8, 1, 1, 1, 1, 0, 0)
	add := g.Add("add", c1, c2)
	act := g.Activation("act", add)
	p := g.Pool2D("p", act, 2, 2, 2, 2, 0, 0)
	cat := g.ConcatChannels("cat", p, p)
	f := g.Flatten("f", cat)
	d := g.Dense("fc", f, 32)
	g.SoftmaxClassifier("sm", d, 10)

	ids := g.InputSeq("tok", 8, 3)
	emb := g.Embedding("emb", ids, 40, 12)
	l0 := g.LSTMStep("l.t0", emb, nil, 0, 16)
	l1 := g.LSTMStep("l.t1", emb, l0, 1, 16)
	l2 := g.LSTMStep("l.t2", emb, l1, 2, 16)
	stack := g.StackSteps("stack", l0, l1, l2)
	g.AttentionStep("attn", l2, stack)
	return g
}

// randomSubRegion picks a random grid cell of op.Out under random
// per-dimension split degrees — the same region shapes the task-graph
// builder queries the estimator with.
func randomSubRegion(op *Op, rng *rand.Rand) tensor.Region {
	degrees := make([]int, op.Out.Rank())
	for i := range degrees {
		max := op.Out.Size(i)
		if max > 4 {
			max = 4
		}
		degrees[i] = 1 + rng.Intn(max)
	}
	n := 1
	for _, d := range degrees {
		n *= d
	}
	return tensor.GridRegion(op.Out, degrees, rng.Intn(n))
}

// TestInputRegionsSigMatchesMaterialized pins the lengths-only walk to
// the materializing reference for every op kind, over full outputs and
// random grid-cell sub-regions.
func TestInputRegionsSigMatchesMaterialized(t *testing.T) {
	g := sigTestGraph()
	rng := rand.New(rand.NewSource(42))
	covered := map[OpKind]bool{}
	for _, op := range g.Ops {
		covered[op.Kind] = true
		full := op.Out.FullRegion()
		if got, want := InputRegionsSig(op, full), sigFromRegions(op, full); got != want {
			t.Errorf("%s (%v) full region: sig %#x != reference %#x", op.Name, op.Kind, got, want)
		}
		for trial := 0; trial < 200; trial++ {
			r := randomSubRegion(op, rng)
			if got, want := InputRegionsSig(op, r), sigFromRegions(op, r); got != want {
				t.Fatalf("%s (%v) region %v: sig %#x != reference %#x", op.Name, op.Kind, r, got, want)
			}
		}
	}
	for _, kind := range []OpKind{Input, Conv2D, Pool2D, MatMul, Softmax, Embedding,
		LSTM, Attention, Stack, Concat, Add, Activation, Flatten} {
		if !covered[kind] {
			t.Errorf("op kind %v not covered by the signature test graph", kind)
		}
	}
}

// TestInputRegionsSigAllocFree asserts the walk itself never allocates
// (the reason it exists: it sits on the estimator's cache-hit path).
func TestInputRegionsSigAllocFree(t *testing.T) {
	g := sigTestGraph()
	rng := rand.New(rand.NewSource(7))
	for _, op := range g.Ops {
		if op.Kind == Input {
			continue
		}
		r := randomSubRegion(op, rng)
		allocs := testing.AllocsPerRun(100, func() {
			InputRegionsSig(op, r)
		})
		if allocs != 0 {
			t.Errorf("%s (%v): InputRegionsSig allocates %.1f per run", op.Name, op.Kind, allocs)
		}
	}
}
