package graph

import (
	"testing"

	"flexflow/internal/tensor"
)

func buildTinyCNN() *Graph {
	g := New("tiny-cnn")
	x := g.Input4D("images", 8, 3, 32, 32)
	c1 := g.Conv2D("conv1", x, 16, 3, 3, 1, 1, 1, 1)
	p1 := g.Pool2D("pool1", c1, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flatten", p1)
	g.Dense("fc", f, 10)
	return g
}

func TestBuilderShapes(t *testing.T) {
	g := buildTinyCNN()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	conv := g.Op(1)
	want := tensor.MakeShape(
		tensor.D(DimSample, 8, tensor.Sample),
		tensor.D(DimChannel, 16, tensor.Parameter),
		tensor.D(DimHeight, 32, tensor.Attribute),
		tensor.D(DimWidth, 32, tensor.Attribute),
	)
	if !conv.Out.Equal(want) {
		t.Fatalf("conv out = %v, want %v", conv.Out, want)
	}
	pool := g.Op(2)
	if pool.Out.Size(2) != 16 || pool.Out.Size(3) != 16 {
		t.Fatalf("pool out = %v", pool.Out)
	}
	flat := g.Op(3)
	if flat.Out.Size(1) != 16*16*16 {
		t.Fatalf("flatten features = %d", flat.Out.Size(1))
	}
	fc := g.Op(4)
	if fc.WeightElems != 16*16*16*10+10 {
		t.Fatalf("fc weights = %d", fc.WeightElems)
	}
	if conv.WeightElems != int64(16*3*3*3+16) {
		t.Fatalf("conv weights = %d", conv.WeightElems)
	}
}

// TestTable1ParallelizableDims reproduces Table 1 of the paper: the
// parallelizable dimensions of pooling, convolution and matmul outputs.
func TestTable1ParallelizableDims(t *testing.T) {
	g := New("table1")
	x := g.Input4D("x", 8, 3, 32, 32)
	conv := g.Conv2D("conv", x, 16, 3, 3, 1, 1, 1, 1)
	pool := g.Pool2D("pool", conv, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("f", pool)
	mm := g.Dense("mm", f, 10)

	// 2D convolution: sample(S), height+width(A), channel(P).
	kinds := map[string]tensor.DimKind{}
	for _, d := range conv.Out.Dims {
		kinds[d.Name] = d.Kind
	}
	if kinds[DimSample] != tensor.Sample || kinds[DimChannel] != tensor.Parameter ||
		kinds[DimHeight] != tensor.Attribute || kinds[DimWidth] != tensor.Attribute {
		t.Fatalf("conv2d dim kinds = %v", conv.Out)
	}
	// Pooling: sample(S); length/channel are attributes (no weights).
	for _, d := range pool.Out.Dims[1:] {
		if d.Kind != tensor.Attribute {
			t.Fatalf("pooling dim %s kind = %v, want attribute", d.Name, d.Kind)
		}
	}
	// Matrix multiplication: sample(S), channel(P), no attribute dims.
	if mm.Out.Kind(0) != tensor.Sample || mm.Out.Kind(1) != tensor.Parameter {
		t.Fatalf("matmul dim kinds = %v", mm.Out)
	}
	if len(conv.ParallelDims()) != 4 {
		t.Fatalf("conv parallel dims = %v", conv.ParallelDims())
	}
}

func TestConvHaloRegions(t *testing.T) {
	g := New("halo")
	x := g.Input4D("x", 4, 3, 16, 16)
	conv := g.Conv2D("conv", x, 8, 3, 3, 1, 1, 1, 1)

	// Bottom half of the output rows: needs input rows 7..16 (halo of 1).
	out := conv.Out.FullRegion()
	out.Iv[2] = tensor.Interval{Lo: 8, Hi: 16}
	in := InputRegions(conv, out)[0]
	if in.Iv[2] != (tensor.Interval{Lo: 7, Hi: 16}) {
		t.Fatalf("halo rows = %v, want [7,16)", in.Iv[2])
	}
	// Full input channels regardless of output channel slice.
	out2 := conv.Out.FullRegion()
	out2.Iv[1] = tensor.Interval{Lo: 0, Hi: 4}
	in2 := InputRegions(conv, out2)[0]
	if in2.Iv[1] != (tensor.Interval{Lo: 0, Hi: 3}) {
		t.Fatalf("input channels = %v, want full [0,3)", in2.Iv[1])
	}
	// Top rows with padding clamp at 0.
	out3 := conv.Out.FullRegion()
	out3.Iv[2] = tensor.Interval{Lo: 0, Hi: 8}
	in3 := InputRegions(conv, out3)[0]
	if in3.Iv[2] != (tensor.Interval{Lo: 0, Hi: 9}) {
		t.Fatalf("clamped halo = %v, want [0,9)", in3.Iv[2])
	}
}

func TestStridedPoolRegions(t *testing.T) {
	g := New("pool")
	x := g.Input4D("x", 2, 4, 8, 8)
	pool := g.Pool2D("pool", x, 2, 2, 2, 2, 0, 0)
	out := pool.Out.FullRegion()
	out.Iv[2] = tensor.Interval{Lo: 1, Hi: 3} // output rows 1..2
	in := InputRegions(pool, out)[0]
	if in.Iv[2] != (tensor.Interval{Lo: 2, Hi: 6}) {
		t.Fatalf("pool input rows = %v, want [2,6)", in.Iv[2])
	}
	// Channel slice passes through unchanged.
	out.Iv[1] = tensor.Interval{Lo: 1, Hi: 2}
	in = InputRegions(pool, out)[0]
	if in.Iv[1] != (tensor.Interval{Lo: 1, Hi: 2}) {
		t.Fatalf("pool channels = %v", in.Iv[1])
	}
}

func TestMatMulRegions(t *testing.T) {
	g := New("mm")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(DimSample, 8, tensor.Sample), tensor.D(DimChannel, 32, tensor.Attribute)))
	mm := g.Dense("fc", x, 16)
	out := mm.Out.FullRegion()
	out.Iv[0] = tensor.Interval{Lo: 2, Hi: 6}
	out.Iv[1] = tensor.Interval{Lo: 0, Hi: 8}
	in := InputRegions(mm, out)[0]
	if in.Iv[0] != (tensor.Interval{Lo: 2, Hi: 6}) {
		t.Fatalf("matmul sample rows = %v", in.Iv[0])
	}
	if in.Iv[1] != (tensor.Interval{Lo: 0, Hi: 32}) {
		t.Fatalf("matmul reduction = %v, want full", in.Iv[1])
	}
}

func TestLSTMRegionsAndWeights(t *testing.T) {
	g := New("lstm")
	ids := g.InputSeq("tokens", 16, 10)
	emb := g.Embedding("embed", ids, 1000, 64)
	l0 := g.LSTMStep("lstm0.t0", emb, nil, 0, 128)
	l1 := g.LSTMStep("lstm0.t1", emb, l0, 1, 128)

	if l0.WeightElems != 4*(64+128+1)*128 {
		t.Fatalf("lstm weights = %d", l0.WeightElems)
	}
	out := l1.Out.FullRegion()
	out.Iv[1] = tensor.Interval{Lo: 0, Hi: 64} // half the hidden units
	regions := InputRegions(l1, out)
	if len(regions) != 2 {
		t.Fatalf("lstm input regions = %d", len(regions))
	}
	// Sequence slice: step 1 only, full channels.
	if regions[0].Iv[1] != (tensor.Interval{Lo: 1, Hi: 2}) {
		t.Fatalf("lstm seq step = %v", regions[0].Iv[1])
	}
	if regions[0].Iv[2] != (tensor.Interval{Lo: 0, Hi: 64}) {
		t.Fatalf("lstm seq channels = %v", regions[0].Iv[2])
	}
	// Previous state: full hidden needed even for a hidden slice.
	if regions[1].Iv[1] != (tensor.Interval{Lo: 0, Hi: 128}) {
		t.Fatalf("lstm prev hidden = %v", regions[1].Iv[1])
	}
}

func TestConcatRegionRemap(t *testing.T) {
	g := New("concat")
	x := g.Input4D("x", 2, 3, 8, 8)
	a := g.Conv2D("a", x, 4, 1, 1, 1, 1, 0, 0)
	b := g.Conv2D("b", x, 6, 1, 1, 1, 1, 0, 0)
	cat := g.ConcatChannels("cat", a, b)
	if cat.Out.Size(1) != 10 {
		t.Fatalf("concat channels = %d", cat.Out.Size(1))
	}
	out := cat.Out.FullRegion()
	out.Iv[1] = tensor.Interval{Lo: 2, Hi: 7} // spans both inputs
	rs := InputRegions(cat, out)
	if rs[0].Iv[1] != (tensor.Interval{Lo: 2, Hi: 4}) {
		t.Fatalf("concat input0 = %v", rs[0].Iv[1])
	}
	if rs[1].Iv[1] != (tensor.Interval{Lo: 0, Hi: 3}) {
		t.Fatalf("concat input1 = %v", rs[1].Iv[1])
	}
	// A slice entirely inside input1 reads nothing from input0.
	out.Iv[1] = tensor.Interval{Lo: 5, Hi: 9}
	rs = InputRegions(cat, out)
	if !rs[0].Empty() {
		t.Fatalf("concat input0 should be empty, got %v", rs[0])
	}
	if rs[1].Iv[1] != (tensor.Interval{Lo: 1, Hi: 5}) {
		t.Fatalf("concat input1 = %v", rs[1].Iv[1])
	}
}

func TestFlattenBoundingRegions(t *testing.T) {
	g := New("flat")
	x := g.Input4D("x", 2, 4, 3, 5)
	f := g.Flatten("f", x)
	// Full feature range covers the whole input.
	full := InputRegions(f, f.Out.FullRegion())[0]
	if !full.Equal(x.Out.FullRegion()) {
		t.Fatalf("full flatten region = %v", full)
	}
	// Features 15..30 live in channel 1 (15..29) and channel 2 (element 30).
	out := f.Out.FullRegion()
	out.Iv[1] = tensor.Interval{Lo: 15, Hi: 31}
	r := InputRegions(f, out)[0]
	if r.Iv[1] != (tensor.Interval{Lo: 1, Hi: 3}) {
		t.Fatalf("flatten channel bound = %v", r.Iv[1])
	}
	// A slice within one row of one channel tightens fully.
	out.Iv[1] = tensor.Interval{Lo: 16, Hi: 19} // channel 1, row 0, cols 1..3
	r = InputRegions(f, out)[0]
	if r.Iv[1] != (tensor.Interval{Lo: 1, Hi: 2}) || r.Iv[2] != (tensor.Interval{Lo: 0, Hi: 1}) || r.Iv[3] != (tensor.Interval{Lo: 1, Hi: 4}) {
		t.Fatalf("flatten tight region = %v", r)
	}
}

func TestAttentionRegions(t *testing.T) {
	g := New("attn")
	ids := g.InputSeq("src", 4, 6)
	emb := g.Embedding("emb", ids, 100, 32)
	q := g.LSTMStep("dec", emb, nil, 0, 32)
	attn := g.AttentionStep("attn", q, emb)
	out := attn.Out.FullRegion()
	out.Iv[0] = tensor.Interval{Lo: 1, Hi: 3}
	rs := InputRegions(attn, out)
	if rs[0].Iv[0] != (tensor.Interval{Lo: 1, Hi: 3}) || rs[0].Iv[1].Len() != 32 {
		t.Fatalf("attention query region = %v", rs[0])
	}
	if rs[1].Iv[1].Len() != 6 || rs[1].Iv[2].Len() != 32 {
		t.Fatalf("attention memory region = %v (want full seq)", rs[1])
	}
}

func TestWeightsSlicing(t *testing.T) {
	g := New("w")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(DimSample, 8, tensor.Sample), tensor.D(DimChannel, 32, tensor.Attribute)))
	mm := g.Dense("fc", x, 16)

	// Pure data parallelism on 4 devices: 1 shard, 4 replicas.
	w := mm.Weights([]int{4, 1})
	if w.Slices != 1 || w.Replicas != 4 || w.Elems != mm.WeightElems {
		t.Fatalf("data-parallel weights = %+v", w)
	}
	// Pure parameter parallelism: 4 shards, 1 replica each.
	w = mm.Weights([]int{1, 4})
	if w.Slices != 4 || w.Replicas != 1 || w.Elems != mm.WeightElems/4 {
		t.Fatalf("param-parallel weights = %+v", w)
	}
	// Hybrid (2 sample x 2 param).
	w = mm.Weights([]int{2, 2})
	if w.Slices != 2 || w.Replicas != 2 {
		t.Fatalf("hybrid weights = %+v", w)
	}
	// Weightless op.
	g2 := New("w2")
	y := g2.Input4D("y", 2, 3, 8, 8)
	pool := g2.Pool2D("p", y, 2, 2, 2, 2, 0, 0)
	if w := pool.Weights([]int{2, 1, 1, 1}); w.Slices != 0 {
		t.Fatalf("pool weights = %+v", w)
	}
}

func TestFLOPCounts(t *testing.T) {
	g := buildTinyCNN()
	conv := g.Op(1)
	full := conv.Out.FullRegion()
	want := int64(2 * 8 * 16 * 32 * 32 * 3 * 3 * 3)
	if got := conv.ForwardFLOPs(full); got != want {
		t.Fatalf("conv FLOPs = %d, want %d", got, want)
	}
	if got := conv.BackwardFLOPs(full); got != 2*want {
		t.Fatalf("conv backward FLOPs = %d, want %d", got, 2*want)
	}
	// Halving the output halves the FLOPs.
	half := conv.Out.FullRegion()
	half.Iv[0] = tensor.Interval{Lo: 0, Hi: 4}
	if got := conv.ForwardFLOPs(half); got != want/2 {
		t.Fatalf("half conv FLOPs = %d, want %d", got, want/2)
	}
	if g.Op(0).ForwardFLOPs(g.Op(0).Out.FullRegion()) != 0 {
		t.Fatal("input op should have zero FLOPs")
	}
	if g.TotalFLOPs() <= want {
		t.Fatal("TotalFLOPs should exceed conv FLOPs")
	}
}

func TestGraphHelpers(t *testing.T) {
	g := buildTinyCNN()
	if g.NumOps() != 5 {
		t.Fatalf("NumOps = %d", g.NumOps())
	}
	if len(g.ComputeOps()) != 4 {
		t.Fatalf("ComputeOps = %d", len(g.ComputeOps()))
	}
	if !g.IsLinear() {
		t.Fatal("tiny CNN should be linear")
	}
	cons := g.Consumers(g.Op(1))
	if len(cons) != 1 || cons[0].Name != "pool1" {
		t.Fatalf("Consumers(conv1) = %v", cons)
	}
	if g.TotalWeights() == 0 {
		t.Fatal("TotalWeights = 0")
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}

	// A residual graph is not linear.
	g2 := New("res")
	x := g2.Input4D("x", 2, 4, 8, 8)
	c1 := g2.Conv2D("c1", x, 4, 3, 3, 1, 1, 1, 1)
	c2 := g2.Conv2D("c2", c1, 4, 3, 3, 1, 1, 1, 1)
	g2.Add("add", c1, c2)
	if g2.IsLinear() {
		t.Fatal("residual graph should not be linear")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(g *Graph)
	}{
		{"conv-non4d", func(g *Graph) {
			x := g.InputSeq("x", 2, 3)
			g.Conv2D("c", x, 4, 3, 3, 1, 1, 1, 1)
		}},
		{"pool-non4d", func(g *Graph) {
			x := g.InputSeq("x", 2, 3)
			g.Pool2D("p", x, 2, 2, 2, 2, 0, 0)
		}},
		{"dense-non2d", func(g *Graph) {
			x := g.Input4D("x", 2, 3, 4, 4)
			g.Dense("d", x, 8)
		}},
		{"embedding-non2d", func(g *Graph) {
			x := g.Input4D("x", 2, 3, 4, 4)
			g.Embedding("e", x, 100, 8)
		}},
		{"lstm-bad-step", func(g *Graph) {
			ids := g.InputSeq("x", 2, 3)
			emb := g.Embedding("e", ids, 10, 4)
			g.LSTMStep("l", emb, nil, 5, 8)
		}},
		{"lstm-bad-prev", func(g *Graph) {
			ids := g.InputSeq("x", 2, 3)
			emb := g.Embedding("e", ids, 10, 4)
			prev := g.Dense("d", g.InputTensor("y", tensor.MakeShape(
				tensor.D(DimSample, 2, tensor.Sample), tensor.D(DimChannel, 4, tensor.Attribute))), 16)
			g.LSTMStep("l", emb, prev, 0, 8)
		}},
		{"add-mismatch", func(g *Graph) {
			a := g.Input4D("a", 2, 3, 4, 4)
			b := g.Input4D("b", 2, 3, 4, 5)
			g.Add("add", a, b)
		}},
		{"concat-short", func(g *Graph) {
			a := g.Input4D("a", 2, 3, 4, 4)
			g.ConcatChannels("cat", a)
		}},
		{"concat-mismatch", func(g *Graph) {
			a := g.Input4D("a", 2, 3, 4, 4)
			b := g.Input4D("b", 2, 3, 5, 4)
			g.ConcatChannels("cat", a, b)
		}},
		{"conv-too-small", func(g *Graph) {
			x := g.Input4D("x", 2, 3, 2, 2)
			g.Conv2D("c", x, 4, 5, 5, 1, 1, 0, 0)
		}},
		{"flatten-non4d", func(g *Graph) {
			x := g.InputSeq("x", 2, 3)
			g.Flatten("f", x)
		}},
		{"attention-mismatch", func(g *Graph) {
			ids := g.InputSeq("src", 4, 6)
			emb := g.Embedding("emb", ids, 100, 32)
			q := g.LSTMStep("dec", emb, nil, 0, 16) // hidden 16 != 32
			g.AttentionStep("attn", q, emb)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			c.fn(New("panics"))
		})
	}
}

func TestOpKindString(t *testing.T) {
	if Conv2D.String() != "Conv2D" || LSTM.String() != "LSTM" {
		t.Fatal("OpKind.String mismatch")
	}
	if OpKind(200).String() != "OpKind(200)" {
		t.Fatal("unknown OpKind.String mismatch")
	}
}

// Property: for every op kind, the input regions of the full output
// region must cover the full input (everything the unpartitioned op
// reads), and regions of partial outputs must be contained in them.
func TestInputRegionMonotonicity(t *testing.T) {
	g := New("prop")
	x := g.Input4D("x", 8, 6, 20, 20)
	conv := g.Conv2D("conv", x, 12, 3, 3, 1, 1, 1, 1)
	pool := g.Pool2D("pool", conv, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flat", pool)
	mm := g.Dense("fc", f, 10)
	ids := g.InputSeq("tok", 8, 5)
	emb := g.Embedding("emb", ids, 50, 16)
	lstm := g.LSTMStep("lstm", emb, nil, 2, 24)
	sm := g.SoftmaxClassifier("sm", lstm, 50)

	for _, op := range []*Op{conv, pool, f, mm, emb, lstm, sm} {
		full := InputRegions(op, op.Out.FullRegion())
		for i, in := range op.Inputs {
			_ = in
			// Every sub-region's needs are inside the full needs.
			for _, deg := range [][]int{nil} {
				_ = deg
			}
			dims := op.Out.ParallelizableDims()
			if len(dims) == 0 {
				continue
			}
			degrees := make([]int, op.Out.Rank())
			for d := range degrees {
				degrees[d] = 1
			}
			degrees[dims[0]] = 2
			for _, reg := range tensor.Partition(op.Out, degrees) {
				sub := InputRegions(op, reg)
				if !full[i].Contains(sub[i]) {
					t.Fatalf("op %s input %d: sub-region %v not contained in full %v", op.Name, i, sub[i], full[i])
				}
			}
		}
	}
}
