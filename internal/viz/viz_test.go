package viz

import (
	"strings"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

func simulated(t *testing.T) *sim.State {
	t.Helper()
	g := graph.New("viz")
	x := g.Input4D("x", 16, 8, 16, 16)
	c := g.Conv2D("conv", x, 16, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("f", c)
	g.Dense("fc", f, 64)
	topo := device.NewSingleNode(2, "P100")
	tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	st := sim.NewState(tg)
	st.Simulate()
	return st
}

func TestTimelineRendering(t *testing.T) {
	st := simulated(t)
	out := Timeline(st, Options{Width: 60})
	if !strings.Contains(out, "makespan") {
		t.Fatalf("missing header: %q", out)
	}
	// Device rows present with utilization figures.
	if !strings.Contains(out, "P100-n0-g0") || !strings.Contains(out, "%") {
		t.Fatalf("missing device rows: %q", out)
	}
	// Forward, backward and update glyphs all appear.
	for _, g := range []string{"=", "#", "+"} {
		if !strings.Contains(out, g) {
			t.Fatalf("missing glyph %q in:\n%s", g, out)
		}
	}
	// Links hidden by default, shown on request.
	if strings.Contains(out, "NVLink") {
		t.Fatal("links shown without ShowLinks")
	}
	withLinks := Timeline(st, Options{Width: 60, ShowLinks: true})
	if !strings.Contains(withLinks, "NVLink") {
		t.Fatal("ShowLinks did not add link rows")
	}
}

func TestTimelineDefaults(t *testing.T) {
	st := simulated(t)
	out := Timeline(st, Options{})
	// Default width 80: rows are 80 cols between pipes.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != 80 {
				t.Fatalf("row width = %d, want 80: %q", j-i-1, line)
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	st := simulated(t)
	u := Utilization(st)
	if len(u) != st.TG.Topo.NumDevices()+len(st.TG.Topo.Links) {
		t.Fatalf("slots = %d", len(u))
	}
	anyBusy := false
	for _, f := range u {
		if f < 0 || f > 1 {
			t.Fatalf("utilization out of range: %v", f)
		}
		if f > 0 {
			anyBusy = true
		}
	}
	if !anyBusy {
		t.Fatal("no resource was busy")
	}
}

func TestEmptyTimeline(t *testing.T) {
	g := graph.New("empty")
	x := g.Input4D("x", 2, 3, 4, 4)
	c := g.Conv2D("c", x, 2, 1, 1, 1, 1, 0, 0)
	topo := device.NewSingleNode(1, "P100")
	s := config.NewStrategy(g)
	s.Set(c.ID, config.OnDevice(c, 0))
	tg := taskgraph.Build(g, topo, s, perfmodel.NewAnalyticModel(), taskgraph.Options{})
	st := sim.NewState(tg)
	// Not simulated: makespan 0.
	if out := Timeline(st, Options{}); !strings.Contains(out, "empty") {
		t.Fatalf("unsimulated state rendered: %q", out)
	}
	u := Utilization(st)
	for _, f := range u {
		if f != 0 {
			t.Fatal("unsimulated utilization nonzero")
		}
	}
}
