// Package viz renders simulated execution timelines as ASCII Gantt
// charts — the textual equivalent of the per-device timelines in
// Figure 5 of the paper. Each resource (device or link) gets a row;
// compute, communication and update tasks get distinct glyphs.
package viz

import (
	"fmt"
	"strings"
	"time"

	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// Options control rendering.
type Options struct {
	// Width is the number of character columns for the time axis
	// (default 80).
	Width int
	// ShowLinks includes communication-link rows (default only devices).
	ShowLinks bool
}

// glyph returns the character class for a task.
func glyph(t *taskgraph.Task) byte {
	switch {
	case t.Kind == taskgraph.Comm && t.Sync:
		return '~' // parameter synchronization
	case t.Kind == taskgraph.Comm:
		return '-' // activation transfer
	case t.Kind == taskgraph.Update:
		return '+'
	case t.Pass == 1: // perfmodel.Backward
		return '#'
	default:
		return '='
	}
}

// Timeline renders the simulated schedule of a task graph. The state
// must have been produced by a prior Simulate/ApplyDelta call.
func Timeline(st *sim.State, opts Options) string {
	width := opts.Width
	if width <= 0 {
		width = 80
	}
	tg := st.TG
	makespan := st.Makespan
	if makespan <= 0 {
		return "(empty timeline)\n"
	}
	scale := func(d time.Duration) int {
		c := int(int64(d) * int64(width) / int64(makespan))
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: makespan %v, %d tasks ('=' fwd, '#' bwd, '+' update, '-' xfer, '~' sync)\n",
		makespan, tg.Alive())
	numDevices := tg.Topo.NumDevices()
	total := numDevices + len(tg.Topo.Links)
	for r := 0; r < total; r++ {
		if r >= numDevices && !opts.ShowLinks {
			break
		}
		order := st.Timeline(r)
		if len(order) == 0 {
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		busy := time.Duration(0)
		for _, t := range order {
			busy += t.Exe
			_, start, end := st.Times(t)
			lo, hi := scale(start), scale(end)
			g := glyph(t)
			for c := lo; c <= hi && c < width; c++ {
				row[c] = g
			}
		}
		label := ""
		if r < numDevices {
			label = tg.Topo.Device(r).Name
		} else {
			label = tg.Topo.Links[r-numDevices].Name()
		}
		util := float64(busy) / float64(makespan) * 100
		fmt.Fprintf(&b, "%-18s |%s| %5.1f%%\n", label, row, util)
	}
	return b.String()
}

// Utilization returns per-resource busy fractions of the makespan
// (devices first, then links).
func Utilization(st *sim.State) []float64 {
	tg := st.TG
	total := tg.Topo.NumDevices() + len(tg.Topo.Links)
	out := make([]float64, total)
	if st.Makespan <= 0 {
		return out
	}
	for r := 0; r < total; r++ {
		var busy time.Duration
		for _, t := range st.Timeline(r) {
			busy += t.Exe
		}
		out[r] = float64(busy) / float64(st.Makespan)
	}
	return out
}
