package calib

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFitRecoversAffineModel(t *testing.T) {
	// Exact points on cost(N) = 2000 + 50·N must be recovered exactly.
	pts := []Point{
		{N: 100, CostNS: 2000 + 50*100},
		{N: 400, CostNS: 2000 + 50*400},
		{N: 900, CostNS: 2000 + 50*900},
	}
	got := Fit(pts, Default().Modes[ModeDelta])
	if diff := got.BaseNS - 2000; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("base = %v, want 2000", got.BaseNS)
	}
	if diff := got.PerTaskNS - 50; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("perTask = %v, want 50", got.PerTaskNS)
	}
}

func TestFitClampsToMonotone(t *testing.T) {
	// Decreasing costs would fit a negative slope; the clamp flattens
	// the model at the mean instead of pricing bigger graphs cheaper.
	pts := []Point{
		{N: 100, CostNS: 9000},
		{N: 1000, CostNS: 3000},
	}
	got := Fit(pts, Default().Modes[ModeDelta])
	if got.PerTaskNS != 0 {
		t.Errorf("clamped slope = %v, want 0", got.PerTaskNS)
	}
	if got.BaseNS != 6000 {
		t.Errorf("flattened base = %v, want mean 6000", got.BaseNS)
	}
	if err := got.validate(); err != nil {
		t.Errorf("clamped fit invalid: %v", err)
	}
}

func TestFitSingleSizeAnchorsIntercept(t *testing.T) {
	// One distinct N is underdetermined: the intercept stays at the
	// fallback and the slope absorbs the measurement.
	fallback := Params{BaseNS: 10_000, PerTaskNS: 100}
	pts := []Point{{N: 200, CostNS: 30_000}, {N: 200, CostNS: 34_000}}
	got := Fit(pts, fallback)
	if got.BaseNS != fallback.BaseNS {
		t.Errorf("anchored base = %v, want %v", got.BaseNS, fallback.BaseNS)
	}
	want := (32_000.0 - 10_000.0) / 200.0
	if diff := got.PerTaskNS - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("slope = %v, want %v", got.PerTaskNS, want)
	}
	if got := Fit(nil, fallback); got != fallback {
		t.Errorf("no points must return the fallback, got %+v", got)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := &Profile{
		Version:  Version,
		FittedAt: "2026-07-27T00:00:00Z",
		Source:   "test",
		Modes: map[Mode]Params{
			ModeDelta: {BaseNS: 11_000, PerTaskNS: 120.5},
			ModeFull:  {BaseNS: 13_000, PerTaskNS: 950.25},
		},
		Models: map[string]map[Mode]Params{
			"lenet": {ModeDelta: {BaseNS: 11_000, PerTaskNS: 90}},
		},
	}
	path := filepath.Join(t.TempDir(), "nested", "profile.json")
	if err := Save(p, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the profile:\nwrote %+v\nread  %+v", p, got)
	}
}

// TestLoadFallsBackToDefaults covers the failure ladder: missing file,
// corrupt JSON, version skew and non-monotone parameters all surface an
// error and hand back the built-in defaults, so budgeted runs always
// have a usable cost model.
func TestLoadFallsBackToDefaults(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func(p *Profile)) string {
		p := Default()
		p.FittedAt = "2026-07-27T00:00:00Z"
		p.Source = "test"
		mutate(p)
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name    string
		path    string
		wantErr string
	}{
		{"missing", filepath.Join(dir, "nope.json"), "reading profile"},
		{"corrupt", func() string {
			path := filepath.Join(dir, "corrupt.json")
			if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
			return path
		}(), "parsing profile"},
		{"version-skew", write("skew.json", func(p *Profile) { p.Version = Version + 1 }), "version"},
		{"non-monotone", write("negslope.json", func(p *Profile) {
			p.Modes[ModeDelta] = Params{BaseNS: 1000, PerTaskNS: -5}
		}), "monotone"},
		{"missing-mode", write("nomode.json", func(p *Profile) { delete(p.Modes, ModeFull) }), "missing mode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(c.path); err == nil {
				t.Fatalf("Load(%s) accepted an invalid profile", c.name)
			}
			p, err := LoadOrDefault(c.path)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("warning = %v, want mention of %q", err, c.wantErr)
			}
			if p == nil || p.Validate() != nil {
				t.Fatalf("fallback profile unusable: %+v", p)
			}
			if !reflect.DeepEqual(p.Modes, Default().Modes) {
				t.Fatalf("fallback is not the built-in defaults: %+v", p.Modes)
			}
		})
	}
}

// TestPrecedenceChain pins the resolution order: per-model override
// beats the profile's fitted modes, which beat the built-in defaults;
// unknown models skip the override tier; a nil profile resolves to the
// defaults.
func TestPrecedenceChain(t *testing.T) {
	p := &Profile{
		Version: Version,
		Modes: map[Mode]Params{
			ModeDelta: {BaseNS: 50_000, PerTaskNS: 500},
		},
		Models: map[string]map[Mode]Params{
			"nmt": {ModeDelta: {BaseNS: 70_000, PerTaskNS: 700}},
		},
	}
	if got := p.ParamsFor("nmt", ModeDelta); got.BaseNS != 70_000 {
		t.Errorf("override not applied: %+v", got)
	}
	if got := p.ParamsFor("lenet", ModeDelta); got.BaseNS != 50_000 {
		t.Errorf("fitted mode not applied for unknown model: %+v", got)
	}
	// ModeFull is absent from the profile: fall through to builtin.
	if got, want := p.ParamsFor("lenet", ModeFull), Default().Modes[ModeFull]; got != want {
		t.Errorf("builtin fallback not applied: %+v", got)
	}
	var nilProf *Profile
	if got, want := nilProf.ParamsFor("nmt", ModeDelta), Default().Modes[ModeDelta]; got != want {
		t.Errorf("nil profile must resolve to defaults: %+v", got)
	}
	// ProposalCost goes through the same chain.
	if got, want := p.ProposalCost("nmt", 10, false), time.Duration(70_000+10*700); got != want {
		t.Errorf("ProposalCost = %v, want %v", got, want)
	}
}

func TestProposalCostMonotoneInN(t *testing.T) {
	for _, p := range []*Profile{Default(), {
		Version: Version,
		Modes: map[Mode]Params{
			ModeDelta: {BaseNS: 100, PerTaskNS: 0}, // flat is the monotone edge case
			ModeFull:  {BaseNS: 100, PerTaskNS: 3},
		},
	}} {
		for _, full := range []bool{false, true} {
			prev := time.Duration(0)
			for _, n := range []int{1, 10, 100, 1000, 10_000} {
				c := p.ProposalCost("m", n, full)
				if c < prev {
					t.Fatalf("cost not monotone in N: %v at N=%d after %v", c, n, prev)
				}
				prev = c
			}
		}
	}
}

// TestCalibrateSmoke runs a miniature end-to-end calibration (the CI
// smoke does the same through the CLI): the fit must validate, stay
// monotone, and record a per-model override for every measured model.
func TestCalibrateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock micro-benchmark; skipped in -short")
	}
	prof, err := Calibrate(context.Background(), Options{
		Models:         []string{"lenet"},
		Scale:          16,
		Batches:        1,
		DeltaProposals: 60,
		FullProposals:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Validate(); err != nil {
		t.Fatalf("calibrated profile invalid: %v", err)
	}
	if _, ok := prof.Models["lenet"]; !ok {
		t.Fatalf("no per-model override recorded: %+v", prof.Models)
	}
	for _, mode := range Modes() {
		params := prof.ParamsFor("lenet", mode)
		if params.Cost(10) > params.Cost(10_000) {
			t.Fatalf("%s: fitted cost not monotone in N: %+v", mode, params)
		}
	}
	// A measured profile must round-trip through persistence untouched.
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := Save(prof, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof, got) {
		t.Fatalf("measured profile did not round-trip")
	}
}

func TestCalibrateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Calibrate(ctx, Options{Models: []string{"lenet"}, Scale: 16}); err == nil {
		t.Fatal("pre-cancelled calibration did not return an error")
	}
}

func TestDescribe(t *testing.T) {
	if got := Default().Describe(); !strings.Contains(got, "builtin") {
		t.Errorf("builtin description = %q", got)
	}
	p := &Profile{Version: Version, Source: "measured on testhost", FittedAt: "2026-07-27T00:00:00Z"}
	if got := p.Describe(); !strings.Contains(got, "testhost") || !strings.Contains(got, "2026-07-27") {
		t.Errorf("measured description = %q", got)
	}
}
