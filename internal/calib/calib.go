// Package calib fits and persists measured virtual-time cost profiles
// for the search package's deterministic budgets.
//
// A budgeted MCMC run charges every proposal a deterministic virtual
// cost so that Budget/cost is a fixed proposal count and the run
// replays bit-identically for any worker count (see internal/search).
// The exchange rate between virtual seconds and wall seconds is only as
// good as the cost model behind it: the built-in constants are
// order-of-magnitude guesses. This package replaces the guesses with
// measurement — Calibrate times batches of real proposals against
// compiled task-graph Plans across the model zoo, least-squares-fits
// the affine model
//
//	cost(N) = Base + PerTask·N
//
// per simulation mode (delta vs. full, the Table 4 pair of
// conf_mlsys_JiaZA19), and records the result as a Profile that can be
// persisted to JSON, reloaded, and handed to the search package as its
// CostModel.
//
// Resolution follows a fixed precedence chain, weakest first:
//
//  1. built-in defaults (Default — the historic hand-guessed constants),
//  2. the profile's fitted per-mode parameters (Profile.Modes),
//  3. the profile's per-model overrides (Profile.Models, keyed by
//     graph name),
//  4. an explicit per-search cost model (search.Options.Cost /
//     flexflow.OptimizeOptions.Cost), which bypasses the profile
//     entirely.
//
// A Profile is immutable once installed: for a fixed profile, budgeted
// runs stay bit-identical across invocations and pool sizes, exactly as
// with the built-in constants.
package calib

import (
	"fmt"
	"math"
	"time"
)

// Mode names a simulation algorithm being priced: the delta algorithm
// re-times only the neighbourhood of a changed op, the full algorithm
// rebuilds and re-times the whole task graph (Section 5.2).
type Mode string

// The two priced simulation modes.
const (
	// ModeDelta is the delta simulation algorithm (Section 5.3).
	ModeDelta Mode = "delta"
	// ModeFull is the full simulation algorithm (Algorithm 1).
	ModeFull Mode = "full"
)

// Modes lists the priced simulation modes in a fixed order.
func Modes() []Mode { return []Mode{ModeDelta, ModeFull} }

// modeOf maps the search package's fullSim flag onto a Mode.
func modeOf(fullSim bool) Mode {
	if fullSim {
		return ModeFull
	}
	return ModeDelta
}

// Params is one affine per-proposal cost model,
// cost(N) = BaseNS + PerTaskNS·N nanoseconds for a task graph of N
// tasks. A valid Params is monotone in N: BaseNS > 0 and PerTaskNS >= 0.
type Params struct {
	// BaseNS is the fixed per-proposal overhead in nanoseconds.
	BaseNS float64 `json:"base_ns"`
	// PerTaskNS is the marginal cost per task in nanoseconds.
	PerTaskNS float64 `json:"per_task_ns"`
}

// Cost prices one proposal on a task graph of numTasks tasks.
func (p Params) Cost(numTasks int) time.Duration {
	ns := p.BaseNS + p.PerTaskNS*float64(numTasks)
	if ns < 1 {
		ns = 1
	}
	return time.Duration(math.Round(ns))
}

// validate reports why the params are unusable (non-finite or
// non-monotone in N), or nil.
func (p Params) validate() error {
	if math.IsNaN(p.BaseNS) || math.IsInf(p.BaseNS, 0) ||
		math.IsNaN(p.PerTaskNS) || math.IsInf(p.PerTaskNS, 0) {
		return fmt.Errorf("non-finite parameters %+v", p)
	}
	if p.BaseNS <= 0 {
		return fmt.Errorf("base %v ns must be positive", p.BaseNS)
	}
	if p.PerTaskNS < 0 {
		return fmt.Errorf("per-task %v ns must be non-negative (cost must be monotone in graph size)", p.PerTaskNS)
	}
	return nil
}

// Version is the persisted profile schema version; Load rejects files
// written with any other version (the caller falls back to defaults).
const Version = 1

// Profile is a cost profile: fitted per-mode parameters plus optional
// per-model overrides, resolved through ParamsFor's precedence chain.
// The zero value is unusable; start from Default, Fit or Load.
//
// Profile implements the search package's CostModel interface
// (ProposalCost), so a loaded profile plugs directly into
// search.Options.Cost or search.SetDefaultCostModel.
type Profile struct {
	// Version is the schema version (see the package constant).
	Version int `json:"version"`
	// FittedAt records when Calibrate produced the profile (RFC 3339);
	// empty for the built-in defaults.
	FittedAt string `json:"fitted_at,omitempty"`
	// Source describes what produced the profile ("builtin", or a
	// host/measurement description from Calibrate).
	Source string `json:"source,omitempty"`
	// Modes holds the fitted global parameters per simulation mode.
	Modes map[Mode]Params `json:"modes"`
	// Models holds per-model overrides keyed by graph name (the model
	// zoo registry names: "lenet", "nmt", ...). An override wins over
	// Modes for graphs with that name.
	Models map[string]map[Mode]Params `json:"models,omitempty"`
}

// Default returns the built-in profile: the historic order-of-magnitude
// constants of internal/search (25µs per proposal plus 100ns/task delta,
// 1µs/task full). It is the fallback at the bottom of the precedence
// chain and the profile in effect when none has been installed.
func Default() *Profile {
	return &Profile{
		Version: Version,
		Source:  "builtin",
		Modes: map[Mode]Params{
			ModeDelta: {BaseNS: 25_000, PerTaskNS: 100},
			ModeFull:  {BaseNS: 25_000, PerTaskNS: 1_000},
		},
	}
}

// ParamsFor resolves the parameters for (model, mode) through the
// precedence chain: the profile's per-model override, then its fitted
// per-mode parameters, then the built-in defaults. Unknown model names
// simply skip the override step.
func (p *Profile) ParamsFor(model string, mode Mode) Params {
	if p != nil {
		if byMode, ok := p.Models[model]; ok {
			if params, ok := byMode[mode]; ok && params.validate() == nil {
				return params
			}
		}
		if params, ok := p.Modes[mode]; ok && params.validate() == nil {
			return params
		}
	}
	return Default().Modes[mode]
}

// ProposalCost prices one proposal for a graph named model with
// numTasks tasks under the given simulation mode. It implements the
// search package's CostModel interface.
func (p *Profile) ProposalCost(model string, numTasks int, fullSim bool) time.Duration {
	return p.ParamsFor(model, modeOf(fullSim)).Cost(numTasks)
}

// Validate reports why the profile cannot be used (version skew,
// missing modes, non-monotone parameters), or nil. Load runs it on
// every file it reads.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("calib: nil profile")
	}
	if p.Version != Version {
		return fmt.Errorf("calib: profile version %d, this binary reads version %d", p.Version, Version)
	}
	for _, mode := range Modes() {
		params, ok := p.Modes[mode]
		if !ok {
			return fmt.Errorf("calib: profile missing mode %q", mode)
		}
		if err := params.validate(); err != nil {
			return fmt.Errorf("calib: mode %q: %w", mode, err)
		}
	}
	for model, byMode := range p.Models {
		for mode, params := range byMode {
			if err := params.validate(); err != nil {
				return fmt.Errorf("calib: model %q mode %q: %w", model, mode, err)
			}
		}
	}
	return nil
}

// Describe summarizes the profile's provenance for logs and reports.
func (p *Profile) Describe() string {
	if p == nil || p.Source == "builtin" || (p.Source == "" && p.FittedAt == "") {
		return "builtin defaults (order-of-magnitude constants)"
	}
	s := p.Source
	if s == "" {
		s = "measured"
	}
	if p.FittedAt != "" {
		return fmt.Sprintf("%s, fitted %s", s, p.FittedAt)
	}
	return s
}

// Point is one calibration measurement: the mean per-proposal cost
// observed on a task graph of N tasks.
type Point struct {
	// N is the task-graph size the batch ran against.
	N int
	// CostNS is the measured mean cost per proposal in nanoseconds.
	CostNS float64
	// Model names the graph the point was measured on.
	Model string
}

// Fit least-squares-fits cost(N) = Base + PerTask·N to the points and
// clamps the result to a valid (monotone) Params. With a single
// distinct N the system is underdetermined; the intercept is then
// anchored at fallback.BaseNS and only the slope is fitted.
func Fit(points []Point, fallback Params) Params {
	if len(points) == 0 {
		return fallback
	}
	var sx, sy, sxx, sxy float64
	distinct := map[int]bool{}
	for _, pt := range points {
		x, y := float64(pt.N), pt.CostNS
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		distinct[pt.N] = true
	}
	n := float64(len(points))
	if len(distinct) < 2 {
		// One graph size: anchor the intercept, fit the slope.
		slope := (sy/n - fallback.BaseNS) / (sx / n)
		return clampParams(Params{BaseNS: fallback.BaseNS, PerTaskNS: slope}, sy/n)
	}
	det := n*sxx - sx*sx
	slope := (n*sxy - sx*sy) / det
	base := (sy - slope*sx) / n
	return clampParams(Params{BaseNS: base, PerTaskNS: slope}, sy/n)
}

// clampParams forces a fit onto the valid (monotone) domain: a negative
// slope becomes a flat model at the mean cost, a non-positive intercept
// is raised to a nominal 1ns floor.
func clampParams(p Params, meanNS float64) Params {
	if math.IsNaN(p.BaseNS) || math.IsInf(p.BaseNS, 0) ||
		math.IsNaN(p.PerTaskNS) || math.IsInf(p.PerTaskNS, 0) {
		return Params{BaseNS: math.Max(meanNS, 1), PerTaskNS: 0}
	}
	if p.PerTaskNS < 0 {
		return Params{BaseNS: math.Max(meanNS, 1), PerTaskNS: 0}
	}
	if p.BaseNS < 1 {
		p.BaseNS = 1
	}
	return p
}
