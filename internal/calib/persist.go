package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Save writes the profile as indented JSON at path, creating parent
// directories as needed. The write goes through a temporary file plus
// rename, so a crash never leaves a half-written profile behind.
func Save(p *Profile, path string) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("calib: refusing to save invalid profile: %w", err)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".cost-profile-*.json")
	if err != nil {
		return err
	}
	// CreateTemp's 0600 would survive the rename; a profile is shared
	// configuration, not a secret.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads and validates a profile written by Save. It returns an
// error for a missing or unreadable file, malformed JSON, a version
// other than Version, and non-monotone or non-finite parameters — the
// caller decides whether to fall back (see LoadOrDefault).
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: reading profile: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("calib: parsing profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("calib: profile %s: %w", path, err)
	}
	return &p, nil
}

// LoadOrDefault loads the profile at path, falling back to the built-in
// defaults when the file is missing, corrupt, version-skewed or
// otherwise invalid. The returned profile is always usable; the error,
// when non-nil, explains why the fallback was taken (log it as a
// warning — budgets still work, just with order-of-magnitude costs).
func LoadOrDefault(path string) (*Profile, error) {
	p, err := Load(path)
	if err != nil {
		return Default(), err
	}
	return p, nil
}
