package calib

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// Options configure one Calibrate run. The zero value measures a small
// spread of the model zoo at quick scale — enough for a usable fit in a
// few seconds on a laptop.
type Options struct {
	// Models are model-zoo registry names to measure ("lenet", "nmt",
	// ...). Default: lenet, alexnet and rnnlm — a small/medium/large
	// task-graph spread, which is what anchors the per-task slope.
	Models []string
	// Scale divides batch size and unroll steps (models.BuildScaled);
	// each model is additionally measured at 2·Scale so recurrent
	// models contribute a second task-graph size. Default 8.
	Scale int
	// GPUs sizes the single-node topology proposals run against.
	// Default 4.
	GPUs int
	// Batches is the number of timed batches per (model, scale, mode)
	// point, after one untimed warm-up batch. Default 3.
	Batches int
	// DeltaProposals is the number of proposals per delta-mode batch.
	// Default 300.
	DeltaProposals int
	// FullProposals is the number of proposals per full-mode batch
	// (full simulation rebuilds the task graph per proposal, so batches
	// are smaller). Default 30.
	FullProposals int
	// Seed drives the proposal sequence. Default 1.
	Seed int64
	// Logf, when non-nil, receives one line per measured point.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if len(o.Models) == 0 {
		o.Models = []string{"lenet", "alexnet", "rnnlm"}
	}
	if o.Scale <= 0 {
		o.Scale = 8
	}
	if o.GPUs <= 0 {
		o.GPUs = 4
	}
	if o.Batches <= 0 {
		o.Batches = 3
	}
	if o.DeltaProposals <= 0 {
		o.DeltaProposals = 300
	}
	if o.FullProposals <= 0 {
		o.FullProposals = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Calibrate measures real per-proposal costs and fits a Profile.
//
// For every (model, scale) pair and both simulation modes it starts
// from the data-parallel strategy (delta mode compiles it into a Plan
// with a simulated base timeline, full mode needs neither), runs an
// untimed warm-up batch (which also fills the estimator cache, as a
// real search's first proposals would), then times Batches batches of
// random proposals — delta mode applies ReplaceConfig+ApplyDelta
// against a private instance, full mode rebuilds and re-simulates the
// task graph per proposal, exactly the two paths the MCMC walker
// takes. The mean
// per-proposal costs become Points, least-squares-fitted per mode into
// the returned profile's global parameters, with each measured model
// also recorded as a per-model override fitted from its own points.
//
// Calibration is a wall-clock measurement: run it on an otherwise idle
// machine. Cancelling ctx abandons the run and returns ctx.Err().
func Calibrate(ctx context.Context, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	fallback := Default()

	pointsByMode := map[Mode][]Point{}
	for _, name := range opts.Models {
		spec, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		for _, scale := range []int{opts.Scale, 2 * opts.Scale} {
			for _, mode := range Modes() {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pt, err := measurePoint(ctx, spec, scale, mode, opts)
				if err != nil {
					return nil, err
				}
				pointsByMode[mode] = append(pointsByMode[mode], pt)
				opts.Logf("calib: %s scale %d %s: %d tasks, %.0f ns/proposal",
					name, scale, mode, pt.N, pt.CostNS)
			}
		}
	}

	p := &Profile{
		Version:  Version,
		FittedAt: time.Now().UTC().Format(time.RFC3339),
		Source: fmt.Sprintf("measured on %s/%s (%d CPUs), models %v, scale %d, %d GPUs",
			runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), opts.Models, opts.Scale, opts.GPUs),
		Modes:  map[Mode]Params{},
		Models: map[string]map[Mode]Params{},
	}
	for _, mode := range Modes() {
		p.Modes[mode] = Fit(pointsByMode[mode], fallback.Modes[mode])
	}
	// Per-model overrides: refit each model from its own points, with
	// the global fit as the anchor when the model only contributes one
	// graph size (CNNs: task count is batch-size independent).
	for _, name := range opts.Models {
		byMode := map[Mode]Params{}
		for _, mode := range Modes() {
			var own []Point
			for _, pt := range pointsByMode[mode] {
				if pt.Model == name {
					own = append(own, pt)
				}
			}
			byMode[mode] = Fit(own, p.Modes[mode])
		}
		p.Models[name] = byMode
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("calib: fit produced an invalid profile: %w", err)
	}
	return p, nil
}

// measurePoint times proposal batches for one (model, scale, mode) cell
// and returns the mean per-proposal cost.
func measurePoint(ctx context.Context, spec models.Spec, scale int, mode Mode, opts Options) (Point, error) {
	g := spec.BuildScaled(scale)
	topo := device.NewSingleNode(opts.GPUs, "P100")
	est := perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
	init := config.DataParallel(g, topo)

	// Full mode rebuilds the graph per proposal and never touches a
	// Plan, so only delta mode pays for the compile + base timeline;
	// full mode sizes the graph with one untimed Build.
	var numTasks int
	var plan *taskgraph.Plan
	var base *sim.State
	perBatch := opts.DeltaProposals
	if mode == ModeFull {
		perBatch = opts.FullProposals
		numTasks = len(taskgraph.Build(g, topo, init.Clone(), est, taskgraph.Options{}).Tasks)
	} else {
		plan = taskgraph.Compile(g, topo, init.Clone(), est, taskgraph.Options{})
		numTasks = len(plan.Base().Tasks)
		base = sim.NewState(plan.Base())
		base.Simulate()
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var total time.Duration
	executed := 0
	// Batch 0 is the untimed warm-up.
	for b := 0; b <= opts.Batches; b++ {
		if err := ctx.Err(); err != nil {
			return Point{}, err
		}
		n, elapsed := runBatch(g, topo, est, init, plan, base, mode, perBatch, rng)
		if b == 0 {
			continue
		}
		total += elapsed
		executed += n
	}
	if executed == 0 {
		return Point{}, fmt.Errorf("calib: %s scale %d %s: no proposals executed", spec.Name, scale, mode)
	}
	return Point{N: numTasks, CostNS: float64(total.Nanoseconds()) / float64(executed), Model: spec.Name}, nil
}

// runBatch executes one batch of random proposals in the given mode and
// returns how many ran plus the wall clock they took. Proposals follow
// the MCMC walker's two paths: delta mutates a private plan instance in
// place, full rebuilds the task graph from the mutated strategy.
func runBatch(g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, init *config.Strategy, plan *taskgraph.Plan, base *sim.State, mode Mode, perBatch int, rng *rand.Rand) (int, time.Duration) {
	ops := g.ComputeOps()
	executed := 0
	switch mode {
	case ModeFull:
		cur := init.Clone()
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			op := ops[rng.Intn(len(ops))]
			newCfg := config.RandomConfig(op, topo, rng)
			if newCfg.Equal(cur.Config(op.ID)) {
				continue
			}
			cur.Set(op.ID, newCfg)
			tg := taskgraph.Build(g, topo, cur.Clone(), est, taskgraph.Options{})
			sim.NewState(tg).Simulate()
			executed++
		}
		return executed, time.Since(start)
	default:
		inst := plan.Instance()
		st := base.CloneFor(inst)
		cur := init.Clone()
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			op := ops[rng.Intn(len(ops))]
			newCfg := config.RandomConfig(op, topo, rng)
			if newCfg.Equal(cur.Config(op.ID)) {
				continue
			}
			cur.Set(op.ID, newCfg)
			cs := inst.ReplaceConfig(op.ID, newCfg)
			st.ApplyDelta(cs)
			executed++
		}
		return executed, time.Since(start)
	}
}
