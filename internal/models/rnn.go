package models

import (
	"fmt"

	"flexflow/internal/graph"
)

// lstmStack unrolls numLayers LSTM layers over the steps of a sequence
// input, annotating each op with its layer index for expert-designed
// placement. It returns the per-step outputs of the top layer.
func lstmStack(g *graph.Graph, prefix string, seq *graph.Op, numLayers, steps, hidden, baseLayer int) []*graph.Op {
	cur := make([]*graph.Op, steps)
	for l := 0; l < numLayers; l++ {
		var prev *graph.Op
		for s := 0; s < steps; s++ {
			in := seq
			if l > 0 {
				in = cur[s]
			}
			op := g.LSTMStep(fmt.Sprintf("%s/lstm%d.t%d", prefix, l, s), in, prev, s, hidden)
			op.Layer = baseLayer + l
			prev = op
			cur[s] = op
		}
	}
	return cur
}

// RNNTC builds the text-classification RNN of Table 3: an embedding
// layer, four LSTM layers with hidden size 1024, and a softmax layer on
// the final step (Movie Reviews has two classes).
func RNNTC(batch, steps int) *graph.Graph {
	const (
		vocab  = 10000
		embed  = 1024
		hidden = 1024
	)
	g := graph.New("rnntc")
	ids := g.InputSeq("tokens", batch, steps)
	e := g.Embedding("embed", ids, vocab, embed)
	e.Layer = 0
	top := lstmStack(g, "rnn", e, 4, steps, hidden, 1)
	sm := g.SoftmaxClassifier("softmax", top[steps-1], 2)
	sm.Layer = 5
	return g
}

// RNNLM builds the language model of Zaremba et al. [43]: two LSTM
// layers with hidden size 2048 over the Penn Treebank vocabulary, with a
// softmax classifier at every unrolled step.
func RNNLM(batch, steps int) *graph.Graph {
	const (
		vocab  = 10000
		embed  = 2048
		hidden = 2048
	)
	g := graph.New("rnnlm")
	ids := g.InputSeq("tokens", batch, steps)
	e := g.Embedding("embed", ids, vocab, embed)
	e.Layer = 0
	top := lstmStack(g, "rnn", e, 2, steps, hidden, 1)
	for s, h := range top {
		sm := g.SoftmaxClassifier(fmt.Sprintf("softmax.t%d", s), h, vocab)
		sm.Layer = 3
	}
	return g
}

// NMT builds the neural machine translation model of Table 3 and Figure
// 14: source and target embeddings, a 2-layer LSTM encoder, a 2-layer
// LSTM decoder, an attention layer over the encoder states on top of the
// last decoder layer, and a per-step softmax over the target vocabulary.
func NMT(batch, steps int) *graph.Graph {
	const (
		vocab  = 32768
		embed  = 1024
		hidden = 1024
	)
	g := graph.New("nmt")
	src := g.InputSeq("src-tokens", batch, steps)
	tgt := g.InputSeq("tgt-tokens", batch, steps)

	se := g.Embedding("enc/embed", src, vocab, embed)
	se.Layer = 0
	encTop := lstmStack(g, "enc", se, 2, steps, hidden, 1)
	memory := g.StackSteps("enc/states", encTop...)
	memory.Layer = 2

	te := g.Embedding("dec/embed", tgt, vocab, embed)
	te.Layer = 0
	decTop := lstmStack(g, "dec", te, 2, steps, hidden, 1)

	for s, h := range decTop {
		attn := g.AttentionStep(fmt.Sprintf("attention.t%d", s), h, memory)
		attn.Layer = 3
		sm := g.SoftmaxClassifier(fmt.Sprintf("softmax.t%d", s), attn, vocab)
		sm.Layer = 3
	}
	return g
}
