package models

import (
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
)

func TestAllModelsValidate(t *testing.T) {
	for _, name := range Names() {
		spec, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.BuildScaled(8)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumOps() < 5 {
			t.Fatalf("%s: suspiciously few ops (%d)", name, g.NumOps())
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("vgg-19"); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestBenchmarksOrder(t *testing.T) {
	b := Benchmarks()
	if len(b) != 6 {
		t.Fatalf("benchmarks = %d", len(b))
	}
	if b[0].Name != "alexnet" || b[5].Name != "nmt" {
		t.Fatalf("order = %v, %v", b[0].Name, b[5].Name)
	}
}

func TestAlexNetStructure(t *testing.T) {
	g := AlexNet(256)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 12 layers: 5 conv + 3 pool + 3 fc/softmax + flatten (helper).
	convs, pools, dense := 0, 0, 0
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.Conv2D:
			convs++
		case graph.Pool2D:
			pools++
		case graph.MatMul, graph.Softmax:
			dense++
		}
	}
	if convs != 5 || pools != 3 || dense != 3 {
		t.Fatalf("alexnet structure: %d convs, %d pools, %d dense", convs, pools, dense)
	}
	// ~61M parameters.
	w := g.TotalWeights()
	if w < 55e6 || w > 70e6 {
		t.Fatalf("alexnet weights = %d, want ~61M", w)
	}
	// The batch dim flows through.
	if g.Ops[len(g.Ops)-1].Out.Size(0) != 256 {
		t.Fatal("batch size lost")
	}
}

func TestInception3Structure(t *testing.T) {
	g := Inception3(64)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	convs := 0
	for _, op := range g.Ops {
		if op.Kind == graph.Conv2D {
			convs++
		}
	}
	// Reference Inception-v3 has 94 conv layers (we omit the aux head).
	if convs < 85 || convs > 100 {
		t.Fatalf("inception convs = %d, want ~94", convs)
	}
	// ~24M parameters (no aux head).
	w := g.TotalWeights()
	if w < 20e6 || w > 30e6 {
		t.Fatalf("inception weights = %d, want ~24M", w)
	}
	if g.IsLinear() {
		t.Fatal("inception should be non-linear")
	}
	// Final classifier over 1000 classes.
	last := g.Ops[len(g.Ops)-1]
	if last.Kind != graph.Softmax || last.Out.Size(1) != 1000 {
		t.Fatalf("classifier = %v", last)
	}
}

func TestResNet101Structure(t *testing.T) {
	g := ResNet101(64)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	convs, adds := 0, 0
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.Conv2D:
			convs++
		case graph.Add:
			adds++
		}
	}
	// 1 stem + 33 blocks x 3 + 4 projections = 104 convs; 33 residual adds.
	if convs != 104 {
		t.Fatalf("resnet convs = %d, want 104", convs)
	}
	if adds != 33 {
		t.Fatalf("resnet adds = %d, want 33", adds)
	}
	// ~44M parameters.
	w := g.TotalWeights()
	if w < 40e6 || w > 50e6 {
		t.Fatalf("resnet weights = %d, want ~44M", w)
	}
}

func TestRNNTCStructure(t *testing.T) {
	g := RNNTC(64, 40)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lstms, softmaxes := 0, 0
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.LSTM:
			lstms++
		case graph.Softmax:
			softmaxes++
		}
	}
	if lstms != 4*40 {
		t.Fatalf("rnntc lstm steps = %d, want 160", lstms)
	}
	if softmaxes != 1 {
		t.Fatalf("rnntc softmaxes = %d, want 1 (classification)", softmaxes)
	}
}

func TestRNNLMStructure(t *testing.T) {
	g := RNNLM(64, 40)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lstms, softmaxes := 0, 0
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.LSTM:
			lstms++
		case graph.Softmax:
			softmaxes++
		}
	}
	if lstms != 2*40 {
		t.Fatalf("rnnlm lstm steps = %d", lstms)
	}
	if softmaxes != 40 {
		t.Fatalf("rnnlm softmaxes = %d, want one per step", softmaxes)
	}
}

func TestNMTStructure(t *testing.T) {
	g := NMT(64, 40)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	lstms, attns, softmaxes, embeds := 0, 0, 0, 0
	for _, op := range g.Ops {
		switch op.Kind {
		case graph.LSTM:
			lstms++
		case graph.Attention:
			attns++
		case graph.Softmax:
			softmaxes++
		case graph.Embedding:
			embeds++
		}
	}
	if lstms != 4*40 { // 2 encoder + 2 decoder layers
		t.Fatalf("nmt lstm steps = %d", lstms)
	}
	if attns != 40 || softmaxes != 40 || embeds != 2 {
		t.Fatalf("nmt: %d attention, %d softmax, %d embed", attns, softmaxes, embeds)
	}
	// The softmax layer dominates parameters (the Figure 14 discussion).
	var smWeights int64
	for _, op := range g.Ops {
		if op.Kind == graph.Softmax {
			smWeights += op.WeightElems
			break // weights are shared across steps in spirit; count one
		}
	}
	if smWeights < 30e6 {
		t.Fatalf("nmt softmax weights = %d, want ~33.5M", smWeights)
	}
}

func TestLayerAnnotationsForExpertPlacement(t *testing.T) {
	g := NMT(8, 4)
	topo := device.NewP100Cluster(2)
	s := config.Expert(g, topo)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("expert strategy on NMT: %v", err)
	}
	// All LSTM ops must carry layer annotations.
	for _, op := range g.Ops {
		if op.Kind == graph.LSTM && op.Layer < 0 {
			t.Fatalf("op %q missing layer annotation", op.Name)
		}
	}
}

func TestBuildScaledFloors(t *testing.T) {
	spec, _ := Get("nmt")
	g := spec.BuildScaled(1000)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Batch floored at 4, steps at 2.
	if g.Ops[0].Out.Size(0) != 4 || g.Ops[0].Out.Size(1) != 2 {
		t.Fatalf("scaled input = %v", g.Ops[0].Out)
	}
	if spec.BuildScaled(0).NumOps() != spec.BuildPaper().NumOps() {
		t.Fatal("factor 0 should behave like factor 1")
	}
}

func TestPaperSettings(t *testing.T) {
	for _, spec := range Benchmarks() {
		if spec.Name == "alexnet" {
			if spec.PaperBatch != 256 {
				t.Fatal("alexnet paper batch should be 256")
			}
		} else if spec.PaperBatch != 64 {
			t.Fatalf("%s paper batch = %d", spec.Name, spec.PaperBatch)
		}
		if spec.Recurrent && spec.PaperSteps != 40 {
			t.Fatalf("%s paper steps = %d", spec.Name, spec.PaperSteps)
		}
	}
}
