// Package models builds the operator graphs of the paper's benchmark
// DNNs (Table 3): AlexNet, Inception-v3 and ResNet-101 (CNNs); RNNTC,
// RNNLM and NMT (RNNs); plus LeNet for the optimality study of Section
// 8.4. Graph structures follow the reference architectures; activations
// and batch norm are treated as fused into the preceding op (they are
// memory-bound epsilon terms the paper's operator-level analysis also
// folds away), so op counts track the papers' "layer" counts.
package models

import (
	"fmt"

	"flexflow/internal/graph"
)

// AlexNet builds the 12-layer CNN of Krizhevsky et al. [28] on
// 227x227x3 inputs. The paper benchmarks it with batch size 256 on
// synthetic data.
func AlexNet(batch int) *graph.Graph {
	g := graph.New("alexnet")
	x := g.Input4D("images", batch, 3, 227, 227)
	c1 := g.Conv2D("conv1", x, 96, 11, 11, 4, 4, 0, 0)
	p1 := g.Pool2D("pool1", c1, 3, 3, 2, 2, 0, 0)
	c2 := g.Conv2D("conv2", p1, 256, 5, 5, 1, 1, 2, 2)
	p2 := g.Pool2D("pool2", c2, 3, 3, 2, 2, 0, 0)
	c3 := g.Conv2D("conv3", p2, 384, 3, 3, 1, 1, 1, 1)
	c4 := g.Conv2D("conv4", c3, 384, 3, 3, 1, 1, 1, 1)
	c5 := g.Conv2D("conv5", c4, 256, 3, 3, 1, 1, 1, 1)
	p5 := g.Pool2D("pool5", c5, 3, 3, 2, 2, 0, 0)
	f := g.Flatten("flatten", p5)
	fc6 := g.Dense("fc6", f, 4096)
	fc7 := g.Dense("fc7", fc6, 4096)
	g.SoftmaxClassifier("fc8", fc7, 1000)
	return g
}

// LeNet builds the 6-layer CNN of LeCun [30] on 32x32x1 inputs, used in
// the global-optimality study (Section 8.4).
func LeNet(batch int) *graph.Graph {
	g := graph.New("lenet")
	x := g.Input4D("images", batch, 1, 32, 32)
	c1 := g.Conv2D("conv1", x, 6, 5, 5, 1, 1, 0, 0)
	p1 := g.Pool2D("pool1", c1, 2, 2, 2, 2, 0, 0)
	c2 := g.Conv2D("conv2", p1, 16, 5, 5, 1, 1, 0, 0)
	p2 := g.Pool2D("pool2", c2, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flatten", p2)
	fc1 := g.Dense("fc1", f, 120)
	fc2 := g.Dense("fc2", fc1, 84)
	g.SoftmaxClassifier("fc3", fc2, 10)
	return g
}

// Inception3 builds Inception-v3 [40] (the 102-layer CNN of Table 3) on
// 299x299x3 inputs: the standard stem, three InceptionA modules, a
// grid-reduction InceptionB, four InceptionC modules, a grid-reduction
// InceptionD and two InceptionE modules, followed by global pooling and
// the classifier.
func Inception3(batch int) *graph.Graph {
	g := graph.New("inception-v3")
	x := g.Input4D("images", batch, 3, 299, 299)

	conv := func(name string, in *graph.Op, out, kh, kw, sh, sw, ph, pw int) *graph.Op {
		return g.Conv2D(name, in, out, kh, kw, sh, sw, ph, pw)
	}
	// Stem: 299 -> 35x35x192.
	c := conv("stem/conv0", x, 32, 3, 3, 2, 2, 0, 0)
	c = conv("stem/conv1", c, 32, 3, 3, 1, 1, 0, 0)
	c = conv("stem/conv2", c, 64, 3, 3, 1, 1, 1, 1)
	c = g.Pool2D("stem/pool0", c, 3, 3, 2, 2, 0, 0)
	c = conv("stem/conv3", c, 80, 1, 1, 1, 1, 0, 0)
	c = conv("stem/conv4", c, 192, 3, 3, 1, 1, 0, 0)
	c = g.Pool2D("stem/pool1", c, 3, 3, 2, 2, 0, 0)

	inceptionA := func(name string, in *graph.Op, poolFeatures int) *graph.Op {
		b1 := conv(name+"/1x1", in, 64, 1, 1, 1, 1, 0, 0)
		b5 := conv(name+"/5x5a", in, 48, 1, 1, 1, 1, 0, 0)
		b5 = conv(name+"/5x5b", b5, 64, 5, 5, 1, 1, 2, 2)
		b3 := conv(name+"/3x3a", in, 64, 1, 1, 1, 1, 0, 0)
		b3 = conv(name+"/3x3b", b3, 96, 3, 3, 1, 1, 1, 1)
		b3 = conv(name+"/3x3c", b3, 96, 3, 3, 1, 1, 1, 1)
		bp := g.Pool2D(name+"/pool", in, 3, 3, 1, 1, 1, 1)
		bp = conv(name+"/poolproj", bp, poolFeatures, 1, 1, 1, 1, 0, 0)
		return g.ConcatChannels(name+"/concat", b1, b5, b3, bp)
	}
	c = inceptionA("mixedA0", c, 32)
	c = inceptionA("mixedA1", c, 64)
	c = inceptionA("mixedA2", c, 64)

	// InceptionB: 35 -> 17.
	{
		b3 := conv("mixedB/3x3", c, 384, 3, 3, 2, 2, 0, 0)
		bd := conv("mixedB/dbl_a", c, 64, 1, 1, 1, 1, 0, 0)
		bd = conv("mixedB/dbl_b", bd, 96, 3, 3, 1, 1, 1, 1)
		bd = conv("mixedB/dbl_c", bd, 96, 3, 3, 2, 2, 0, 0)
		bp := g.Pool2D("mixedB/pool", c, 3, 3, 2, 2, 0, 0)
		c = g.ConcatChannels("mixedB/concat", b3, bd, bp)
	}

	inceptionC := func(name string, in *graph.Op, c7 int) *graph.Op {
		b1 := conv(name+"/1x1", in, 192, 1, 1, 1, 1, 0, 0)
		b7 := conv(name+"/7x7a", in, c7, 1, 1, 1, 1, 0, 0)
		b7 = conv(name+"/7x7b", b7, c7, 1, 7, 1, 1, 0, 3)
		b7 = conv(name+"/7x7c", b7, 192, 7, 1, 1, 1, 3, 0)
		bd := conv(name+"/dbl_a", in, c7, 1, 1, 1, 1, 0, 0)
		bd = conv(name+"/dbl_b", bd, c7, 7, 1, 1, 1, 3, 0)
		bd = conv(name+"/dbl_c", bd, c7, 1, 7, 1, 1, 0, 3)
		bd = conv(name+"/dbl_d", bd, c7, 7, 1, 1, 1, 3, 0)
		bd = conv(name+"/dbl_e", bd, 192, 1, 7, 1, 1, 0, 3)
		bp := g.Pool2D(name+"/pool", in, 3, 3, 1, 1, 1, 1)
		bp = conv(name+"/poolproj", bp, 192, 1, 1, 1, 1, 0, 0)
		return g.ConcatChannels(name+"/concat", b1, b7, bd, bp)
	}
	c = inceptionC("mixedC0", c, 128)
	c = inceptionC("mixedC1", c, 160)
	c = inceptionC("mixedC2", c, 160)
	c = inceptionC("mixedC3", c, 192)

	// InceptionD: 17 -> 8.
	{
		b3 := conv("mixedD/3x3a", c, 192, 1, 1, 1, 1, 0, 0)
		b3 = conv("mixedD/3x3b", b3, 320, 3, 3, 2, 2, 0, 0)
		b7 := conv("mixedD/7x7a", c, 192, 1, 1, 1, 1, 0, 0)
		b7 = conv("mixedD/7x7b", b7, 192, 1, 7, 1, 1, 0, 3)
		b7 = conv("mixedD/7x7c", b7, 192, 7, 1, 1, 1, 3, 0)
		b7 = conv("mixedD/7x7d", b7, 192, 3, 3, 2, 2, 0, 0)
		bp := g.Pool2D("mixedD/pool", c, 3, 3, 2, 2, 0, 0)
		c = g.ConcatChannels("mixedD/concat", b3, b7, bp)
	}

	inceptionE := func(name string, in *graph.Op) *graph.Op {
		b1 := conv(name+"/1x1", in, 320, 1, 1, 1, 1, 0, 0)
		b3 := conv(name+"/3x3a", in, 384, 1, 1, 1, 1, 0, 0)
		b3a := conv(name+"/3x3b1", b3, 384, 1, 3, 1, 1, 0, 1)
		b3b := conv(name+"/3x3b2", b3, 384, 3, 1, 1, 1, 1, 0)
		bd := conv(name+"/dbl_a", in, 448, 1, 1, 1, 1, 0, 0)
		bd = conv(name+"/dbl_b", bd, 384, 3, 3, 1, 1, 1, 1)
		bda := conv(name+"/dbl_c1", bd, 384, 1, 3, 1, 1, 0, 1)
		bdb := conv(name+"/dbl_c2", bd, 384, 3, 1, 1, 1, 1, 0)
		bp := g.Pool2D(name+"/pool", in, 3, 3, 1, 1, 1, 1)
		bp = conv(name+"/poolproj", bp, 192, 1, 1, 1, 1, 0, 0)
		return g.ConcatChannels(name+"/concat", b1, b3a, b3b, bda, bdb, bp)
	}
	c = inceptionE("mixedE0", c)
	c = inceptionE("mixedE1", c)

	p := g.Pool2D("avgpool", c, 8, 8, 1, 1, 0, 0)
	f := g.Flatten("flatten", p)
	g.SoftmaxClassifier("fc", f, 1000)
	return g
}

// ResNet101 builds the 101-layer residual CNN of He et al. [22] on
// 224x224x3 inputs: bottleneck stages of depth [3, 4, 23, 3].
func ResNet101(batch int) *graph.Graph {
	g := graph.New("resnet-101")
	x := g.Input4D("images", batch, 3, 224, 224)
	c := g.Conv2D("conv1", x, 64, 7, 7, 2, 2, 3, 3)
	c = g.Pool2D("pool1", c, 3, 3, 2, 2, 1, 1)

	bottleneck := func(name string, in *graph.Op, mid, out, stride int) *graph.Op {
		a := g.Conv2D(name+"/a", in, mid, 1, 1, 1, 1, 0, 0)
		b := g.Conv2D(name+"/b", a, mid, 3, 3, stride, stride, 1, 1)
		cc := g.Conv2D(name+"/c", b, out, 1, 1, 1, 1, 0, 0)
		shortcut := in
		if in.Out.Size(1) != out || stride != 1 {
			shortcut = g.Conv2D(name+"/proj", in, out, 1, 1, stride, stride, 0, 0)
		}
		return g.Add(name+"/add", cc, shortcut)
	}
	stage := func(prefix string, in *graph.Op, blocks, mid, out, firstStride int) *graph.Op {
		c := bottleneck(fmt.Sprintf("%s/block0", prefix), in, mid, out, firstStride)
		for i := 1; i < blocks; i++ {
			c = bottleneck(fmt.Sprintf("%s/block%d", prefix, i), c, mid, out, 1)
		}
		return c
	}
	c = stage("stage1", c, 3, 64, 256, 1)
	c = stage("stage2", c, 4, 128, 512, 2)
	c = stage("stage3", c, 23, 256, 1024, 2)
	c = stage("stage4", c, 3, 512, 2048, 2)

	p := g.Pool2D("avgpool", c, 7, 7, 1, 1, 0, 0)
	f := g.Flatten("flatten", p)
	g.SoftmaxClassifier("fc", f, 1000)
	return g
}
