package models

import (
	"fmt"
	"sort"

	"flexflow/internal/graph"
)

// Spec describes a benchmark model and how the paper evaluates it.
type Spec struct {
	Name string
	// Build constructs the graph at the given batch size; recurrent
	// models also take the unroll step count (ignored by CNNs).
	Build func(batch, steps int) *graph.Graph
	// PaperBatch and PaperSteps are the evaluation settings of Section
	// 8.1: batch 64 for everything except AlexNet (256), 40 unroll steps.
	PaperBatch, PaperSteps int
	// Recurrent marks the RNN benchmarks.
	Recurrent bool
}

// registry holds the six paper benchmarks plus LeNet.
var registry = map[string]Spec{
	"alexnet": {
		Name:       "alexnet",
		Build:      func(b, _ int) *graph.Graph { return AlexNet(b) },
		PaperBatch: 256,
	},
	"inception-v3": {
		Name:       "inception-v3",
		Build:      func(b, _ int) *graph.Graph { return Inception3(b) },
		PaperBatch: 64,
	},
	"resnet-101": {
		Name:       "resnet-101",
		Build:      func(b, _ int) *graph.Graph { return ResNet101(b) },
		PaperBatch: 64,
	},
	"rnntc": {
		Name:       "rnntc",
		Build:      RNNTC,
		PaperBatch: 64, PaperSteps: 40, Recurrent: true,
	},
	"rnnlm": {
		Name:       "rnnlm",
		Build:      RNNLM,
		PaperBatch: 64, PaperSteps: 40, Recurrent: true,
	},
	"nmt": {
		Name:       "nmt",
		Build:      NMT,
		PaperBatch: 64, PaperSteps: 40, Recurrent: true,
	},
	"lenet": {
		Name:       "lenet",
		Build:      func(b, _ int) *graph.Graph { return LeNet(b) },
		PaperBatch: 64,
	},
	// Synthetic scale probes (see synth.go): the suffix is the
	// approximate live task count under 4-GPU data parallelism.
	"synth-2k":   synthSpec("synth-2k", SynthParams{Width: 8, Depth: 10, FanIn: 2, Hidden: 64, Seed: 1}),
	"synth-50k":  synthSpec("synth-50k", SynthParams{Width: 32, Depth: 70, FanIn: 2, Hidden: 64, Seed: 2}),
	"synth-100k": synthSpec("synth-100k", SynthParams{Width: 32, Depth: 140, FanIn: 2, Hidden: 64, Seed: 3}),
}

// Get returns the spec for a model name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Benchmarks returns the six models of Table 3 in the paper's order.
func Benchmarks() []Spec {
	var out []Spec
	for _, n := range []string{"alexnet", "inception-v3", "resnet-101", "rnntc", "rnnlm", "nmt"} {
		s, _ := Get(n)
		out = append(out, s)
	}
	return out
}

// BuildPaper constructs a model at its paper evaluation settings.
func (s Spec) BuildPaper() *graph.Graph { return s.Build(s.PaperBatch, s.PaperSteps) }

// BuildScaled constructs a reduced-size instance (for tests and quick
// benchmarks): batch and steps divided by the given factor, floored at
// small sane minimums.
func (s Spec) BuildScaled(factor int) *graph.Graph {
	if factor < 1 {
		factor = 1
	}
	b := s.PaperBatch / factor
	if b < 4 {
		b = 4
	}
	st := s.PaperSteps / factor
	if s.Recurrent && st < 2 {
		st = 2
	}
	return s.Build(b, st)
}
