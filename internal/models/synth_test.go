package models

import (
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

// TestSynthDeterministic: identical (batch, params) produce the
// identical graph — op for op, input for input. The bench trajectory
// and the scale fuzz tests rely on this.
func TestSynthDeterministic(t *testing.T) {
	p := SynthParams{Width: 6, Depth: 5, FanIn: 3, Hidden: 32, Seed: 7}
	a, b := Synth("s", 16, p), Synth("s", 16, p)
	if a.NumOps() != b.NumOps() {
		t.Fatalf("op counts differ: %d vs %d", a.NumOps(), b.NumOps())
	}
	for i, wa := range a.Ops {
		wb := b.Op(i)
		if wa.Name != wb.Name || wa.Kind != wb.Kind || len(wa.Inputs) != len(wb.Inputs) {
			t.Fatalf("op %d diverged: %v vs %v", i, wa, wb)
		}
		for j := range wa.Inputs {
			if wa.Inputs[j].ID != wb.Inputs[j].ID {
				t.Fatalf("op %d input %d: %d vs %d", i, j, wa.Inputs[j].ID, wb.Inputs[j].ID)
			}
		}
	}
}

// TestSynthKnobs: FanIn 1 yields a pure Dense DAG (no Add merges),
// larger FanIn introduces them, and every generated graph validates.
func TestSynthKnobs(t *testing.T) {
	countAdds := func(g *graph.Graph) int {
		n := 0
		for _, op := range g.Ops {
			if op.Kind == graph.Add {
				n++
			}
		}
		return n
	}
	chain := Synth("chain", 8, SynthParams{Width: 4, Depth: 6, FanIn: 1, Hidden: 16, Seed: 1})
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := countAdds(chain); n != 0 {
		t.Fatalf("FanIn 1 produced %d Add ops", n)
	}
	wide := Synth("wide", 8, SynthParams{Width: 4, Depth: 6, FanIn: 3, Hidden: 16, Seed: 1})
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := countAdds(wide); n == 0 {
		t.Fatal("FanIn 3 produced no Add ops")
	}
}

// TestSynthScaleClasses pins the registry entries to their advertised
// task-count classes under 4-GPU data parallelism — in particular that
// synth-50k and synth-100k really clear the >=50k-task bar the scale
// benchmarks claim.
func TestSynthScaleClasses(t *testing.T) {
	topo := device.NewSingleNode(4, "P100")
	for _, tc := range []struct {
		name string
		min  int
	}{
		{"synth-2k", 1500},
		{"synth-50k", 50000},
		{"synth-100k", 100000},
	} {
		spec, err := Get(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.BuildPaper()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
		if tg.Alive() < tc.min {
			t.Fatalf("%s: %d live tasks, want >= %d", tc.name, tg.Alive(), tc.min)
		}
	}
}
