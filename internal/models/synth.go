package models

import (
	"fmt"
	"math/rand"

	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// SynthParams parameterize the synthetic layered-DAG generator used to
// probe task-graph scale beyond the paper's model zoo (the ~100k-task
// roofline): Width ops per layer, Depth layers, FanIn distinct
// predecessors per op (extras merge through Add ops), Hidden channels
// per Dense, and a Seed that makes the wiring deterministic.
type SynthParams struct {
	Width  int
	Depth  int
	FanIn  int
	Hidden int
	Seed   int64
}

// Synth generates a deterministic layered DAG: every layer holds Width
// Dense ops, each consuming FanIn distinct ops of the previous layer
// (merged pairwise with Add when FanIn > 1). All Dense ops share the
// Hidden output width, so shapes line up and every op stays
// individually reconfigurable by the search. Identical (batch, params)
// always yield the identical graph.
func Synth(name string, batch int, p SynthParams) *graph.Graph {
	if p.Width < 1 || p.Depth < 1 || p.Hidden < 1 {
		panic(fmt.Sprintf("models: degenerate synth params %+v", p))
	}
	if p.FanIn < 1 {
		p.FanIn = 1
	}
	g := graph.New(name)
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(graph.DimSample, batch, tensor.Sample),
		tensor.D(graph.DimChannel, p.Hidden, tensor.Attribute)))
	rng := rand.New(rand.NewSource(p.Seed))
	prev := []*graph.Op{x}
	for l := 0; l < p.Depth; l++ {
		cur := make([]*graph.Op, p.Width)
		for n := 0; n < p.Width; n++ {
			k := p.FanIn
			if k > len(prev) {
				k = len(prev)
			}
			perm := rng.Perm(len(prev))[:k]
			in := prev[perm[0]]
			for f := 1; f < k; f++ {
				in = g.Add(fmt.Sprintf("l%d.n%d.add%d", l, n, f), in, prev[perm[f]])
			}
			cur[n] = g.Dense(fmt.Sprintf("l%d.n%d", l, n), in, p.Hidden)
		}
		prev = cur
	}
	return g
}

// synthSpec wraps a Synth parameterization as a registry Spec. The
// step count is ignored (the DAG is not recurrent) and the batch knob
// scales FLOPs, not structure.
func synthSpec(name string, p SynthParams) Spec {
	return Spec{
		Name:       name,
		Build:      func(b, _ int) *graph.Graph { return Synth(name, b, p) },
		PaperBatch: 64,
	}
}
