// Package sim implements the execution simulator of Section 5: given a
// task graph it predicts the execution timeline of one training
// iteration under the paper's assumptions (A1-A4): predictable task
// times, fully-utilizable connection bandwidth, FIFO scheduling per
// device, and negligible runtime overhead.
//
// Both simulation algorithms are provided:
//
//   - Simulate (the full algorithm, Section 5.2) builds the timeline
//     from scratch, processing tasks in ready-time order like Dijkstra's
//     algorithm.
//   - ApplyDelta (the delta algorithm, Section 5.3) starts from the
//     previous timeline and re-simulates only the tasks affected by a
//     single operation's configuration change, propagating updates like
//     Bellman-Ford.
//
// Both produce the identical, deterministic timeline: per-resource
// execution order is the total order (readyTime, taskID), which the
// engine maintains as a fixpoint. The differential tests in this package
// assert full/delta equality over randomized mutation sequences.
//
// # Representation
//
// The hot loops never chase Task pointers: they sweep the graph's
// slot-indexed flat adjacency view (taskgraph.Adj) — int32 slot rows
// packed into one CSR-style backing array — and identify tasks by
// (slot, id) pairs. A slot whose current ID differs from a reference's
// recorded id belongs to a removed task (the slot may already be
// recycled by a new one), which makes liveness a single array compare.
//
// # Ownership
//
// The task graph is structure, the State is state: Simulate and
// ApplyDelta never write into tasks — every mutable value (ready/start/
// end times, per-resource timelines, scheduling scratch, the work heap)
// lives in the State's own arrays, indexed by Task.Slot. A frozen
// taskgraph.Plan base can therefore be simulated by any number of
// goroutines concurrently, each with its own State.
//
// A State itself is owned by exactly one goroutine; it is not safe for
// concurrent use and is never locked. The concurrent search runtime
// gets its parallelism one level up: each MCMC chain (or Neighborhood
// worker) takes a private Plan.Instance() and a State cloned from the
// shared base timeline (CloneFor), so per-chain setup is a pointer
// remap plus an array copy instead of a full Build+Simulate.
//
// When a State is attached to a mutable graph, every ReplaceConfig must
// be followed by ApplyDelta (or a full Simulate) before the next
// ReplaceConfig: slots of removed tasks are recycled, and ApplyDelta is
// the point where the State retires its references to them.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"flexflow/internal/taskgraph"
)

// tstate is one task's mutable simulation state, indexed by Task.Slot.
type tstate struct {
	// ready/start/end are the task's current timeline values.
	ready, start, end time.Duration
	// key dedups work-queue entries together with queued: a live queue
	// entry exists for the task at ready time key, so re-pushing at an
	// unchanged ready time is a no-op.
	key time.Duration
	// pos is the task's index in its resource's execution order
	// (-1 when unscheduled).
	pos int32
	// pending counts unevaluated predecessors: the engine defers a
	// task's first evaluation until all inputs have been evaluated,
	// like Algorithm 1's NOTREADY/READY states.
	pending int32
	// done marks tasks that have been evaluated at least once.
	done   bool
	queued bool
}

// ref identifies a task as it was when scheduled: its slot plus the ID
// the slot held. Slots of removed tasks are recycled, so a ref whose id
// no longer matches Adj.ID[slot] is dead — an O(1) liveness test with
// no pointer chase.
type ref struct {
	slot, id int32
}

// State is a simulation state: per-resource execution timelines plus
// the per-task timing arrays, all owned by the state (the task graph is
// never written).
type State struct {
	TG *taskgraph.TaskGraph

	numDevices int
	res        [][]ref // resource ID -> execution order
	Makespan   time.Duration

	// Stats counts engine work for the Table 4 style comparisons.
	Stats Stats

	// FixpointBudget, when positive, caps the number of evaluations
	// ApplyDelta's incremental fixpoint may perform before falling back
	// to a full simulation. Zero means the automatic budget. It is a
	// test hook for exercising the fallback path; it never applies to
	// Simulate itself (the fallback must always be allowed to finish).
	FixpointBudget int

	adj     *taskgraph.Adj
	pq      workHeap
	ts      []tstate // indexed by Task.Slot
	scratch []int32  // reused affected-slot buffer for ApplyDelta
}

// Stats counts simulator work.
type Stats struct {
	FullSims  int
	DeltaSims int
	// Pops is the number of task (re)evaluations performed.
	Pops int64
	// Fallbacks counts delta simulations that exceeded the fixpoint
	// budget and were redone from scratch (should stay at/near zero).
	Fallbacks int
}

// NewState creates a simulation state for the task graph. Call Simulate
// to populate the timeline.
func NewState(tg *taskgraph.TaskGraph) *State {
	return &State{
		TG:         tg,
		numDevices: tg.Topo.NumDevices(),
		res:        make([][]ref, tg.Topo.NumDevices()+len(tg.Topo.Links)),
		adj:        tg.Adj(),
		ts:         make([]tstate, tg.NumSlots()),
	}
}

// CloneFor returns an independent copy of the state rebound to tg,
// which must hold the same live tasks (matching IDs and slots) as the
// state's own graph — i.e. an Instance of the same Plan, cloned before
// any divergent ReplaceConfig. Timelines, timing arrays and Stats are
// all copied, so the clone continues with ApplyDelta immediately, no
// re-Simulate needed. This is the cheap per-chain/per-worker setup path
// of the concurrent search runtime.
//
// Because timelines reference tasks by (slot, id) rather than by
// pointer, rebinding is pure array copying; the target graph is
// validated against the state's in O(slots).
func (s *State) CloneFor(tg *taskgraph.TaskGraph) *State {
	out := &State{
		TG:         tg,
		numDevices: s.numDevices,
		res:        make([][]ref, len(s.res)),
		Makespan:   s.Makespan,
		Stats:      s.Stats,
		adj:        tg.Adj(),
		ts:         append([]tstate(nil), s.ts...),
	}
	if tg != s.TG {
		a, b := s.TG.Adj().ID, tg.Adj().ID
		if len(a) != len(b) {
			panic("sim: CloneFor target graph does not match the state's tasks")
		}
		for i := range a {
			if a[i] != b[i] {
				panic("sim: CloneFor target graph does not match the state's tasks")
			}
		}
	}
	total := 0
	for _, order := range s.res {
		total += len(order)
	}
	backing := make([]ref, 0, total)
	for r, order := range s.res {
		lo := len(backing)
		backing = append(backing, order...)
		out.res[r] = backing[lo:len(backing):len(backing)]
	}
	return out
}

// Clone returns an independent copy of the state bound to the same task
// graph.
func (s *State) Clone() *State { return s.CloneFor(s.TG) }

// Times returns the task's (ready, start, end) from the last
// Simulate/ApplyDelta call.
func (s *State) Times(t *taskgraph.Task) (ready, start, end time.Duration) {
	st := &s.ts[t.Slot]
	return st.ready, st.start, st.end
}

// ensure rebinds the flat adjacency view and grows the per-slot state
// array to cover every slot the graph has allocated (ReplaceConfig can
// mint new slots when an op's task count grows past the previous peak).
func (s *State) ensure() {
	s.adj = s.TG.Adj()
	if n := s.TG.NumSlots(); n > len(s.ts) {
		s.ts = append(s.ts, make([]tstate, n-len(s.ts))...)
	}
}

type workItem struct {
	ready    time.Duration
	id, slot int32
}

type workHeap []workItem

func (h workHeap) Len() int { return len(h) }
func (h workHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].id < h[j].id
}
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (s *State) push(slot int32) {
	st := &s.ts[slot]
	if st.queued && st.key == st.ready {
		return // identical entry already queued
	}
	st.queued = true
	st.key = st.ready
	heap.Push(&s.pq, workItem{ready: st.ready, id: s.adj.ID[slot], slot: slot})
}

// Simulate runs the full simulation algorithm: it clears all timing
// state and rebuilds the timeline from scratch, returning the makespan
// (the predicted per-iteration execution time). Tasks enter the ready
// queue only once all predecessors have been evaluated (Algorithm 1's
// NOTREADY -> READY transition), so each task is normally evaluated
// exactly once; re-evaluations only occur to repair ready-time ties.
func (s *State) Simulate() time.Duration {
	s.Stats.FullSims++
	s.ensure()
	for i := range s.res {
		s.res[i] = s.res[i][:0]
	}
	s.pq = s.pq[:0]
	a := s.adj
	for slot := range a.ID {
		if a.ID[slot] < 0 {
			// Free slot (it may still be referenced by stale timeline
			// entries; those are skipped by the id check on pop).
			continue
		}
		s.ts[slot] = tstate{pos: -1, pending: int32(len(a.In[slot]))}
		if len(a.In[slot]) == 0 {
			s.push(int32(slot))
		}
	}
	if !s.run(s.budget()) {
		panic("sim: full simulation exceeded its fixpoint budget")
	}
	s.finish()
	return s.Makespan
}

// ApplyDelta incorporates an incremental task-graph change (produced by
// TaskGraph.ReplaceConfig) into an existing timeline, re-simulating only
// the affected portion (Algorithm 2). It returns the new makespan.
//
// The affected portion is bounded in *time*: no removed task started and
// no added/touched task becomes ready before the earliest change point
// T0, and along any FIFO resource timeline start/end times are monotone,
// so every task completing by T0 keeps its exact slot. The engine
// truncates each timeline at T0 and re-schedules only the suffixes plus
// the added tasks, evaluating each affected task once (plus tie
// repairs). If the fixpoint exceeds its budget (differential tests show
// it does not), it falls back to a full simulation, so the result is
// always exact.
//
// Truncation resets a task's scheduling state but keeps its previous
// ready/start/end values: when the re-evaluation converges to the same
// end time, the early-cutoff rule skips re-pushing already-scheduled
// successors, stopping the propagation wavefront at the first ring of
// unchanged tasks.
//
// Slot recycling note: an added task may occupy a removed task's slot.
// The loops below therefore read every removed task's state (the T0
// bound) before the added-task reset writes anything, and detect dead
// timeline entries by their recorded id (a dead entry's slot may hold
// a different live task, or no task at all).
func (s *State) ApplyDelta(cs taskgraph.ChangeSet) time.Duration {
	s.Stats.DeltaSims++
	s.ensure()
	s.pq = s.pq[:0]
	a := s.adj
	const inf = time.Duration(1<<63 - 1)
	t0 := inf

	for _, t := range cs.Removed {
		st := &s.ts[t.Slot]
		if st.done && st.start < t0 {
			t0 = st.start
		}
	}
	for _, t := range cs.Added {
		s.ts[t.Slot] = tstate{pos: -1}
	}
	for _, t := range cs.Added {
		// Chain heads (all predecessors already scheduled) bound the
		// earliest time an added task can perturb the schedule; deeper
		// added tasks are covered transitively.
		head := true
		for _, p := range a.In[t.Slot] {
			if !s.ts[p].done {
				head = false
				break
			}
		}
		if head {
			if r := s.computeReady(int32(t.Slot)); r < t0 {
				t0 = r
			}
		}
	}
	for _, t := range cs.Touched {
		if st := &s.ts[t.Slot]; st.start < t0 {
			t0 = st.start
		}
		if r := s.computeReady(int32(t.Slot)); r < t0 {
			t0 = r
		}
	}
	if t0 == inf {
		// Nothing to do (e.g. a config replaced by an identical one).
		s.finish()
		return s.Makespan
	}

	// Truncate every resource timeline at T0: pop the suffix of tasks
	// that start at/after T0 or end after it (start and end are monotone
	// along a FIFO timeline), resetting them for re-scheduling. Dead
	// entries always fall in the suffix because no removed task started
	// before T0; their slots may already belong to new tasks, so their
	// state is never touched here.
	affected := s.scratch[:0]
	for r := range s.res {
		order := s.res[r]
		cut := len(order)
		for cut > 0 {
			e := order[cut-1]
			if a.ID[e.slot] != e.id {
				cut-- // removed task (slot possibly recycled)
				continue
			}
			st := &s.ts[e.slot]
			if st.end > t0 || st.start >= t0 {
				cut--
				continue
			}
			break
		}
		for _, e := range order[cut:] {
			if a.ID[e.slot] != e.id {
				continue // removed; the slot's state is not ours to reset
			}
			st := &s.ts[e.slot]
			st.pos = -1
			st.done = false
			affected = append(affected, e.slot)
		}
		s.res[r] = order[:cut]
	}
	for _, t := range cs.Added {
		affected = append(affected, int32(t.Slot))
	}
	s.scratch = affected

	// Pending counts over the affected set; seeds are tasks whose every
	// live predecessor already has a final end time.
	for _, slot := range affected {
		n := int32(0)
		for _, p := range a.In[slot] {
			if !s.ts[p].done {
				n++
			}
		}
		s.ts[slot].pending = n
	}
	for _, slot := range affected {
		st := &s.ts[slot]
		if st.pending == 0 {
			st.ready = s.computeReady(slot)
			s.push(slot)
		}
	}
	budget := s.budget()
	if s.FixpointBudget > 0 {
		budget = int64(s.FixpointBudget)
	}
	if !s.run(budget) {
		s.Stats.Fallbacks++
		return s.Simulate()
	}
	// Unaffected tasks all end by t0, so the makespan is determined by
	// the re-scheduled suffix — no full scan needed.
	makespan := t0
	for _, slot := range affected {
		if e := s.ts[slot].end; e > makespan {
			makespan = e
		}
	}
	s.Makespan = makespan
	return s.Makespan
}

func (s *State) budget() int64 {
	n := int64(s.TG.Alive())
	return 200*n + 10000
}

// computeReady recomputes a task's ready time from its predecessors'
// current end times (unscheduled predecessors contribute zero and will
// re-trigger the task when they complete). Adjacency rows hold live
// tasks only, so no dead checks are needed.
func (s *State) computeReady(slot int32) time.Duration {
	var r time.Duration
	for _, p := range s.adj.In[slot] {
		if e := s.ts[p].end; e > r {
			r = e
		}
	}
	return r
}

// run drains the work queue until fixpoint, processing tasks in
// (readyTime, taskID) order. Returns false if the budget is exhausted;
// partial work is still counted in Stats.Pops either way.
func (s *State) run(budget int64) bool {
	pops := int64(0)
	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(workItem)
		if s.adj.ID[it.slot] != it.id {
			continue // task removed since it was queued
		}
		st := &s.ts[it.slot]
		if !st.queued || it.ready != st.key {
			continue // stale queue entry (re-pushed or already handled)
		}
		st.queued = false
		pops++
		if pops > budget {
			s.Stats.Pops += pops
			return false
		}
		s.evaluate(it.slot)
	}
	s.Stats.Pops += pops
	return true
}

// evaluate recomputes one task's schedule slot and propagates changes.
func (s *State) evaluate(slot int32) {
	st := &s.ts[slot]
	a := s.adj
	key := a.Key[slot]
	self := ref{slot: slot, id: a.ID[slot]}
	order := s.res[key]

	inList := st.pos >= 0
	moved := false
	if inList {
		// Reposition if the order key changed relative to neighbours.
		pos := int(st.pos)
		outOfPlace := (pos > 0 && !s.less(order[pos-1], self)) ||
			(pos+1 < len(order) && !s.less(self, order[pos+1]))
		if outOfPlace {
			if next, ok := s.removeFromOrder(slot); ok {
				s.push(next)
			}
			inList = false
			moved = true
		}
	}
	if !inList {
		s.insertOrdered(key, self)
	}
	order = s.res[key]

	var prevEnd time.Duration
	if st.pos > 0 {
		prevEnd = s.ts[order[st.pos-1].slot].end
	}
	start := st.ready
	if prevEnd > start {
		start = prevEnd
	}
	end := start + a.Exe[slot]
	first := !st.done
	st.done = true
	changed := end != st.end || moved
	if start == st.start && end == st.end && !moved && !first {
		return
	}
	st.start, st.end = start, end

	// The device successor's start depends on our end.
	if int(st.pos)+1 < len(order) {
		s.push(order[st.pos+1].slot)
	}
	if !changed && !first {
		return
	}
	for _, succ := range a.Out[slot] {
		ss := &s.ts[succ]
		if !ss.done {
			if first {
				// Our first evaluation releases one of succ's pending
				// inputs; succ enters the queue when the last one
				// resolves.
				ss.pending--
			}
			if ss.pending > 0 {
				// Still waiting on other inputs; it will read our final
				// end time when it is released.
				continue
			}
			ss.ready = s.computeReady(succ)
			s.push(succ)
			continue
		}
		// succ was already evaluated (a surviving task downstream of a
		// delta change). Early cutoff: if our end time converged back to
		// the value succ last saw, its ready time cannot change on our
		// account — whoever does change re-pushes it themselves.
		if !changed {
			continue
		}
		if r := s.computeReady(succ); r != ss.ready {
			ss.ready = r
			s.push(succ)
		}
	}
}

// less is the deterministic per-resource execution order: (ready, ID).
func (s *State) less(a, b ref) bool {
	ra, rb := s.ts[a.slot].ready, s.ts[b.slot].ready
	if ra != rb {
		return ra < rb
	}
	return a.id < b.id
}

// removeFromOrder deletes the task from its resource timeline and
// returns the slot of the task that moved into its place (its former
// successor), if any.
func (s *State) removeFromOrder(slot int32) (next int32, ok bool) {
	key := s.adj.Key[slot]
	order := s.res[key]
	pos := int(s.ts[slot].pos)
	copy(order[pos:], order[pos+1:])
	order = order[:len(order)-1]
	s.res[key] = order
	for i := pos; i < len(order); i++ {
		s.ts[order[i].slot].pos = int32(i)
	}
	s.ts[slot].pos = -1
	if pos < len(order) {
		return order[pos].slot, true
	}
	return 0, false
}

// insertOrdered inserts the task into its resource timeline at its
// sorted position by (Ready, ID).
func (s *State) insertOrdered(key int32, e ref) {
	order := s.res[key]
	lo, hi := 0, len(order)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.less(order[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	order = append(order, ref{})
	copy(order[lo+1:], order[lo:])
	order[lo] = e
	s.res[key] = order
	for i := lo; i < len(order); i++ {
		s.ts[order[i].slot].pos = int32(i)
	}
}

// finish recomputes the makespan and verifies every live task was
// scheduled.
func (s *State) finish() {
	var makespan time.Duration
	a := s.adj
	for slot, id := range a.ID {
		if id < 0 {
			continue
		}
		st := &s.ts[slot]
		if st.pos < 0 {
			panic(fmt.Sprintf("sim: task %v never scheduled (cyclic task graph?)", a.Task[slot]))
		}
		if st.end > makespan {
			makespan = st.end
		}
	}
	s.Makespan = makespan
}

// Timeline returns the execution order of the given resource (device ID,
// or numDevices+linkID for links) as live tasks, in schedule order. The
// slice is freshly built on each call.
func (s *State) Timeline(resource int) []*taskgraph.Task {
	a := s.TG.Adj()
	order := s.res[resource]
	out := make([]*taskgraph.Task, 0, len(order))
	for _, e := range order {
		if a.ID[e.slot] == e.id {
			out = append(out, a.Task[e.slot])
		}
	}
	return out
}

// CriticalPathLowerBound returns the longest dependency-chain time
// ignoring resource contention — a lower bound any correct schedule must
// respect (used by invariant tests).
func CriticalPathLowerBound(tg *taskgraph.TaskGraph) time.Duration {
	a := tg.Adj()
	longest := make([]time.Duration, len(a.ID))
	seen := make([]bool, len(a.ID))
	var best time.Duration
	// Tasks were created in topological order of the DAG? Not
	// necessarily across ReplaceConfig calls, so DFS over the
	// adjacency rows instead.
	var visit func(slot int32) time.Duration
	visit = func(slot int32) time.Duration {
		if seen[slot] {
			return longest[slot]
		}
		seen[slot] = true // cycle guard; task graphs are DAGs
		var in time.Duration
		for _, p := range a.In[slot] {
			if d := visit(p); d > in {
				in = d
			}
		}
		longest[slot] = in + a.Exe[slot]
		return longest[slot]
	}
	for slot := range a.ID {
		if a.ID[slot] < 0 {
			continue
		}
		if d := visit(int32(slot)); d > best {
			best = d
		}
	}
	return best
}

// SerialUpperBound returns the sum of all task times — the time a
// single resource executing everything serially would need; any
// schedule's makespan is at most this.
func SerialUpperBound(tg *taskgraph.TaskGraph) time.Duration {
	var sum time.Duration
	for _, t := range tg.Tasks {
		if tg.Live(t) {
			sum += t.Exe
		}
	}
	return sum
}
