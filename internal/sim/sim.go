// Package sim implements the execution simulator of Section 5: given a
// task graph it predicts the execution timeline of one training
// iteration under the paper's assumptions (A1-A4): predictable task
// times, fully-utilizable connection bandwidth, FIFO scheduling per
// device, and negligible runtime overhead.
//
// Both simulation algorithms are provided:
//
//   - Simulate (the full algorithm, Section 5.2) builds the timeline
//     from scratch, processing tasks in ready-time order like Dijkstra's
//     algorithm.
//   - ApplyDelta (the delta algorithm, Section 5.3) starts from the
//     previous timeline and re-simulates only the tasks affected by a
//     single operation's configuration change, propagating updates like
//     Bellman-Ford.
//
// Both produce the identical, deterministic timeline: per-resource
// execution order is the total order (readyTime, taskID), which the
// engine maintains as a fixpoint. The differential tests in this package
// assert full/delta equality over randomized mutation sequences.
//
// # Representation
//
// The hot loops never chase Task pointers: they sweep the graph's
// slot-indexed flat adjacency view (taskgraph.Adj) — int32 slot rows
// packed into one CSR-style backing array — and identify tasks by
// (slot, id) pairs. A slot whose current ID differs from a reference's
// recorded id belongs to a removed task (the slot may already be
// recycled by a new one), which makes liveness a single array compare.
//
// Per-task timing state lives in fixed-size pages (pageSize tstates
// each) addressed by slot, with per-page copy-on-write ownership: a
// CloneFor copies only the page table and the per-resource timeline
// headers, and a page or timeline row is physically copied the first
// time the clone writes it. All reads go through rd, all writes through
// wr (which faults the page private first) — a pointer obtained from rd
// must never be written through, and must not be held across a call
// that may write (the page backing it may be replaced by a fault).
//
// # Ownership
//
// The task graph is structure, the State is state: Simulate and
// ApplyDelta never write into tasks — every mutable value (ready/start/
// end times, per-resource timelines, scheduling scratch, the work heap)
// lives in the State's own pages, indexed by Task.Slot. A frozen
// taskgraph.Plan base can therefore be simulated by any number of
// goroutines concurrently, each with its own State.
//
// A State itself is owned by exactly one goroutine; it is not safe for
// concurrent use and is never locked — with one deliberate exception:
// CloneFor only reads the source and marks it sealed (an atomic flag),
// so any number of chains may clone one base concurrently. Sealing
// records that the source's pages are now shared; if the source is
// later mutated (Simulate/ApplyDelta), it first drops ownership of
// everything it shared, so its own writes fault private copies and the
// clones' view is never disturbed.
//
// When a State is attached to a mutable graph, every ReplaceConfig must
// be followed by ApplyDelta (or a full Simulate) before the next
// ReplaceConfig: slots of removed tasks are recycled, and ApplyDelta is
// the point where the State retires its references to them.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexflow/internal/taskgraph"
)

// tstate is one task's mutable simulation state, indexed by Task.Slot.
type tstate struct {
	// ready/start/end are the task's current timeline values.
	ready, start, end time.Duration
	// key dedups work-queue entries together with queued: a live queue
	// entry exists for the task at ready time key, so re-pushing at an
	// unchanged ready time is a no-op.
	key time.Duration
	// pos is the task's index in its resource's execution order
	// (-1 when unscheduled).
	pos int32
	// pending counts unevaluated predecessors: the engine defers a
	// task's first evaluation until all inputs have been evaluated,
	// like Algorithm 1's NOTREADY/READY states.
	pending int32
	// done marks tasks that have been evaluated at least once.
	done   bool
	queued bool
}

// Timing pages: slot s lives in pages[s>>pageShift][s&pageMask]. 512
// tstates is ~24KB per page — big enough that a 100k-slot graph is a
// ~200-entry page table (so CloneFor is cheap), small enough that a
// delta touching a handful of tasks faults only a few KB.
const (
	pageShift = 9
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// ref identifies a task as it was when scheduled: its slot plus the ID
// the slot held. Slots of removed tasks are recycled, so a ref whose id
// no longer matches Adj.ID[slot] is dead — an O(1) liveness test with
// no pointer chase.
type ref struct {
	slot, id int32
}

// State is a simulation state: per-resource execution timelines plus
// the per-task timing pages, all owned by the state (the task graph is
// never written).
type State struct {
	TG *taskgraph.TaskGraph

	numDevices int
	res        [][]ref // resource ID -> execution order
	Makespan   time.Duration

	// Stats counts engine work for the Table 4 style comparisons.
	Stats Stats

	// FixpointBudget, when positive, caps the number of evaluations
	// ApplyDelta's incremental fixpoint may perform before falling back
	// to a full simulation. Zero means the automatic budget. It is a
	// test hook for exercising the fallback path; it never applies to
	// Simulate itself (the fallback must always be allowed to finish).
	FixpointBudget int

	adj *taskgraph.Adj
	pq  workHeap

	// pages is the paged per-slot timing store; pageOwned tracks
	// copy-on-write ownership per page (nil means the state owns every
	// page — the root-state fast path). resOwned is the same for the
	// res timeline rows. sealed is set (atomically — CloneFor runs
	// concurrently) when a clone shares our backing; the next mutation
	// drops ownership of everything first (privatize). Pages are
	// fixed-size arrays behind pointers: the slot&pageMask index needs
	// no bounds check and the page table is one word per page.
	pages     []*[pageSize]tstate
	pageOwned []bool
	resOwned  []bool
	sealed    atomic.Bool

	scratch []int32 // reused affected-slot buffer for ApplyDelta
}

// Stats counts simulator work.
type Stats struct {
	FullSims  int
	DeltaSims int
	// Pops is the number of task (re)evaluations performed.
	Pops int64
	// SuffixTasks accumulates the size of every ApplyDelta affected set:
	// the truncated-suffix tasks plus the added tasks each delta
	// re-evaluated. It is the measured per-proposal suffix cost the
	// locality-aware search policies steer on (search.LocalityMeasured),
	// and — divided by DeltaSims — the honest "how much of the graph does
	// a proposal really touch" number PR 9's profiling asked for. Full
	// simulations (including fixpoint-budget fallbacks) do not count
	// here; they are visible in FullSims/Fallbacks.
	SuffixTasks int64
	// Fallbacks counts delta simulations that exceeded the fixpoint
	// budget and were redone from scratch (should stay at/near zero).
	Fallbacks int
}

// NewState creates a simulation state for the task graph. Call Simulate
// to populate the timeline.
func NewState(tg *taskgraph.TaskGraph) *State {
	s := &State{
		TG:         tg,
		numDevices: tg.Topo.NumDevices(),
		res:        make([][]ref, tg.Topo.NumDevices()+len(tg.Topo.Links)),
		adj:        tg.Adj(),
	}
	s.growPages(tg.NumSlots())
	return s
}

// growPages extends the page table to cover n slots. New pages are
// always owned (freshly allocated, shared with nobody).
func (s *State) growPages(n int) {
	need := (n + pageMask) >> pageShift
	for len(s.pages) < need {
		s.pages = append(s.pages, new([pageSize]tstate))
		if s.pageOwned != nil {
			s.pageOwned = append(s.pageOwned, true)
		}
	}
}

// rd returns the slot's timing state for reading. The pointer must not
// be written through, and must not be held across any call that may
// write timing state (a copy-on-write fault replaces the whole page).
func (s *State) rd(slot int32) *tstate {
	return &s.pages[slot>>pageShift][slot&pageMask]
}

// wr returns the slot's timing state for writing, faulting the page
// private first if it is still shared with the clone source. Within one
// Simulate/ApplyDelta run a wr pointer stays valid (a page faults at
// most once, on its first write).
func (s *State) wr(slot int32) *tstate {
	p := slot >> pageShift
	if s.pageOwned != nil && !s.pageOwned[p] {
		s.faultPage(p)
	}
	return &s.pages[p][slot&pageMask]
}

func (s *State) faultPage(p int32) {
	fresh := *s.pages[p]
	s.pages[p] = &fresh
	s.pageOwned[p] = true
}

// orderW returns a resource's execution order for in-place writing,
// copying it private first if the row is still shared.
func (s *State) orderW(key int32) []ref {
	if s.resOwned != nil && !s.resOwned[key] {
		shared := s.res[key]
		s.res[key] = append(make([]ref, 0, len(shared)+8), shared...)
		s.resOwned[key] = true
	}
	return s.res[key]
}

// privatize runs at the top of every mutation: if the state was sealed
// by CloneFor, its pages and timeline rows are shared with the clones,
// so ownership of everything is dropped — subsequent writes fault
// private copies and the clones keep their frozen view.
func (s *State) privatize() {
	if !s.sealed.Load() {
		return
	}
	s.sealed.Store(false)
	if s.pageOwned == nil {
		s.pageOwned = make([]bool, len(s.pages))
	} else {
		clear(s.pageOwned)
	}
	if s.resOwned == nil {
		s.resOwned = make([]bool, len(s.res))
	} else {
		clear(s.resOwned)
	}
	for i, o := range s.res {
		s.res[i] = o[:len(o):len(o)] // pin caps: appends must reallocate
	}
}

// CloneFor returns an independent copy of the state rebound to tg,
// which must hold the same live tasks (matching IDs and slots) as the
// state's own graph — i.e. an Instance of the same Plan, cloned before
// any divergent ReplaceConfig. Timelines, timing pages and Stats are
// all carried over, so the clone continues with ApplyDelta immediately,
// no re-Simulate needed. This is the cheap per-chain/per-worker setup
// path of the concurrent search runtime.
//
// The clone shares the source's timing pages and timeline rows
// copy-on-write: only the page table and row headers are copied here
// (a few KB at 100k tasks), and pages are physically copied one at a
// time as the clone writes them. CloneFor only reads the source (plus
// one atomic store sealing it), so concurrent clones of one base are
// safe; the source itself may be mutated afterwards — it unshares
// first — but not while other goroutines are still cloning it.
func (s *State) CloneFor(tg *taskgraph.TaskGraph) *State {
	s.sealed.Store(true)
	out := &State{
		TG:         tg,
		numDevices: s.numDevices,
		res:        make([][]ref, len(s.res)),
		resOwned:   make([]bool, len(s.res)),
		Makespan:   s.Makespan,
		Stats:      s.Stats,
		adj:        tg.Adj(),
		pages:      append([]*[pageSize]tstate(nil), s.pages...),
		pageOwned:  make([]bool, len(s.pages)),
	}
	for r, order := range s.res {
		out.res[r] = order[:len(order):len(order)]
	}
	if tg != s.TG {
		a, b := s.adj.ID, tg.Adj().ID
		if len(a) != len(b) {
			panic("sim: CloneFor target graph does not match the state's tasks")
		}
		// Instances share the Plan's ID backing until their first
		// divergent mutation, so identical backing proves identical
		// tasks in O(1); the element compare is the cold fallback.
		if len(a) > 0 && &a[0] != &b[0] {
			for i := range a {
				if a[i] != b[i] {
					panic("sim: CloneFor target graph does not match the state's tasks")
				}
			}
		}
	}
	return out
}

// Clone returns an independent copy of the state bound to the same task
// graph.
func (s *State) Clone() *State { return s.CloneFor(s.TG) }

// Times returns the task's (ready, start, end) from the last
// Simulate/ApplyDelta call.
func (s *State) Times(t *taskgraph.Task) (ready, start, end time.Duration) {
	st := s.rd(int32(t.Slot))
	return st.ready, st.start, st.end
}

// SuffixHint estimates, as a fraction of the current makespan, how much
// of the timeline a config change at op opID would force ApplyDelta to
// re-evaluate: 1 - T0/makespan, where T0 is the earliest min(ready,
// start) among the op's own and adjacent-edge tasks
// (TaskGraph.VisitOpTasks — the exact set ReplaceConfig rebuilds, whose
// earliest ready/start bounds the delta's truncation point from below,
// the same min ApplyDelta itself takes). 1 means a change perturbs the
// whole timeline (T0 = 0, the uniform-sampling failure mode PR 9
// measured); values near 0 mean the op's tasks all sit at the very end.
// Defined on a simulated timeline; an op with no live tasks, or a state
// with an empty timeline, reports 1 (no information — assume the worst).
func (s *State) SuffixHint(opID int) float64 {
	if s.Makespan <= 0 {
		return 1
	}
	const inf = time.Duration(1<<63 - 1)
	t0 := inf
	s.TG.VisitOpTasks(opID, func(t *taskgraph.Task) {
		if !s.TG.Live(t) {
			return
		}
		// Mirror ApplyDelta's truncation point: a rebuilt task perturbs
		// the schedule from min(ready, start), and ready — when the
		// task's inputs are done, not when a contended resource got
		// around to running it — is usually the binding bound. An op
		// fed by an early edge truncates early no matter how late its
		// tasks run.
		st := s.rd(int32(t.Slot))
		if st.ready < t0 {
			t0 = st.ready
		}
		if st.start < t0 {
			t0 = st.start
		}
	})
	if t0 == inf {
		return 1
	}
	if t0 >= s.Makespan {
		return 0
	}
	return 1 - float64(t0)/float64(s.Makespan)
}

// ensure rebinds the flat adjacency view and grows the timing pages to
// cover every slot the graph has allocated (ReplaceConfig can mint new
// slots when an op's task count grows past the previous peak).
func (s *State) ensure() {
	s.adj = s.TG.Adj()
	s.growPages(s.TG.NumSlots())
}

type workItem struct {
	ready    time.Duration
	id, slot int32
}

// workHeap is a hand-rolled 4-ary min-heap over (ready, id). It avoids
// container/heap's per-Push interface boxing (one allocation per push —
// formerly the delta hot path's dominant allocator) and its virtual
// Less/Swap calls, and the wider fan-out halves the sift depth of the
// pop-heavy fixpoint loop. Pop order is implementation-independent:
// per-slot key dedup guarantees one entry per (slot, ready) and ids are
// unique, so the comparator is a total order and any correct priority
// queue yields the identical deterministic schedule.
type workHeap []workItem

func itemLess(a, b workItem) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.id < b.id
}

// push sifts up by hole percolation: the new item is held aside and
// displaced parents slide down into the hole, halving the writes of a
// swap-based sift.
func (h *workHeap) push(it workItem) {
	q := append(*h, it)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !itemLess(it, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = it
}

// pop sifts down the same way: the displaced last item is held aside
// and the smallest child slides up into the hole at each level.
func (h *workHeap) pop() workItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q = q[:n]
	*h = q
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if itemLess(q[j], q[m]) {
				m = j
			}
		}
		if !itemLess(q[m], last) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = last
	return top
}

func (s *State) push(slot int32) {
	st := s.wr(slot)
	if st.queued && st.key == st.ready {
		return // identical entry already queued
	}
	st.queued = true
	st.key = st.ready
	s.pq.push(workItem{ready: st.ready, id: s.adj.ID[slot], slot: slot})
}

// Simulate runs the full simulation algorithm: it clears all timing
// state and rebuilds the timeline from scratch, returning the makespan
// (the predicted per-iteration execution time). Tasks enter the ready
// queue only once all predecessors have been evaluated (Algorithm 1's
// NOTREADY -> READY transition), so each task is normally evaluated
// exactly once; re-evaluations only occur to repair ready-time ties.
func (s *State) Simulate() time.Duration {
	s.Stats.FullSims++
	s.privatize()
	s.ensure()
	// A full rebuild overwrites every live slot and every timeline, so
	// shared pages are replaced with fresh zero pages (no copy) and
	// shared timeline rows are dropped rather than copied.
	if s.pageOwned != nil {
		for p, owned := range s.pageOwned {
			if !owned {
				s.pages[p] = new([pageSize]tstate)
				s.pageOwned[p] = true
			}
		}
	}
	for i := range s.res {
		if s.resOwned != nil && !s.resOwned[i] {
			s.res[i] = nil
			s.resOwned[i] = true
		} else {
			s.res[i] = s.res[i][:0]
		}
	}
	s.pq = s.pq[:0]
	a := s.adj
	for slot := range a.ID {
		if a.ID[slot] < 0 {
			// Free slot (it may still be referenced by stale timeline
			// entries; those are skipped by the id check on pop).
			continue
		}
		st := s.rd(int32(slot)) // every page is owned here
		*st = tstate{pos: -1, pending: int32(len(a.In[slot]))}
		if st.pending == 0 {
			s.push(int32(slot))
		}
	}
	if !s.run(s.budget()) {
		panic("sim: full simulation exceeded its fixpoint budget")
	}
	s.finish()
	return s.Makespan
}

// ApplyDelta incorporates an incremental task-graph change (produced by
// TaskGraph.ReplaceConfig) into an existing timeline, re-simulating only
// the affected portion (Algorithm 2). It returns the new makespan.
//
// The affected portion is bounded in *time*: no removed task started and
// no added/touched task becomes ready before the earliest change point
// T0, and along any FIFO resource timeline start/end times are monotone,
// so every task completing by T0 keeps its exact slot. The engine
// truncates each timeline at T0 and re-schedules only the suffixes plus
// the added tasks, evaluating each affected task once (plus tie
// repairs). If the fixpoint exceeds its budget (differential tests show
// it does not), it falls back to a full simulation, so the result is
// always exact.
//
// Truncation resets a task's scheduling state but keeps its previous
// ready/start/end values: when the re-evaluation converges to the same
// end time, the early-cutoff rule skips re-pushing already-scheduled
// successors, stopping the propagation wavefront at the first ring of
// unchanged tasks. Truncation's pending-gating is also why the suffix
// is re-evaluated once per task, Dijkstra-style: a dependency-driven
// variant that keeps survivors scheduled and relaxes changed ready
// times through the fixpoint was measured to evaluate hot aggregation
// points (weight updates, sync barriers) 20-30x each on tightly packed
// timelines — Bellman-Ford wave churn — and lost by two orders of
// magnitude at the 50k-task scale.
//
// Slot recycling note: an added task may occupy a removed task's slot.
// The loops below therefore read every removed task's state (the T0
// bound) before the added-task reset writes anything, and detect dead
// timeline entries by their recorded id (a dead entry's slot may hold
// a different live task, or no task at all).
func (s *State) ApplyDelta(cs taskgraph.ChangeSet) time.Duration {
	s.Stats.DeltaSims++
	s.privatize()
	s.ensure()
	s.pq = s.pq[:0]
	a := s.adj
	const inf = time.Duration(1<<63 - 1)
	t0 := inf

	for _, t := range cs.Removed {
		st := s.rd(int32(t.Slot))
		if st.done && st.start < t0 {
			t0 = st.start
		}
	}
	for _, t := range cs.Added {
		*s.wr(int32(t.Slot)) = tstate{pos: -1}
	}
	for _, t := range cs.Added {
		// Chain heads (all predecessors already scheduled) bound the
		// earliest time an added task can perturb the schedule; deeper
		// added tasks are covered transitively.
		head := true
		for _, p := range a.In[t.Slot] {
			if !s.rd(p).done {
				head = false
				break
			}
		}
		if head {
			if r := s.computeReady(int32(t.Slot)); r < t0 {
				t0 = r
			}
		}
	}
	for _, t := range cs.Touched {
		if st := s.rd(int32(t.Slot)); st.start < t0 {
			t0 = st.start
		}
		if r := s.computeReady(int32(t.Slot)); r < t0 {
			t0 = r
		}
	}
	if t0 == inf {
		// Nothing to do (e.g. a config replaced by an identical one).
		s.finish()
		return s.Makespan
	}

	// Truncate every resource timeline at T0: pop the suffix of tasks
	// that start at/after T0 or end after it (start and end are monotone
	// along a FIFO timeline), resetting them for re-scheduling. Dead
	// entries always fall in the suffix because no removed task started
	// before T0; their slots may already belong to new tasks, so their
	// state is never touched here.
	affected := s.scratch[:0]
	for r := range s.res {
		order := s.res[r]
		cut := len(order)
		for cut > 0 {
			e := order[cut-1]
			if a.ID[e.slot] != e.id {
				cut-- // removed task (slot possibly recycled)
				continue
			}
			st := s.rd(e.slot)
			if st.end > t0 || st.start >= t0 {
				cut--
				continue
			}
			break
		}
		if cut == len(order) {
			continue // untouched timeline: the row stays shared
		}
		for _, e := range order[cut:] {
			if a.ID[e.slot] != e.id {
				continue // removed; the slot's state is not ours to reset
			}
			st := s.wr(e.slot)
			st.pos = -1
			st.done = false
			affected = append(affected, e.slot)
		}
		// Shrinking writes nothing into the backing array, so a shared
		// row may stay shared: the first in-place write (insertOrdered /
		// removeFromOrder) copies the surviving prefix via orderW.
		s.res[r] = order[:cut]
	}
	for _, t := range cs.Added {
		affected = append(affected, int32(t.Slot))
	}
	s.scratch = affected
	s.Stats.SuffixTasks += int64(len(affected))

	// Pending counts over the affected set; seeds are tasks whose every
	// live predecessor already has a final end time.
	for _, slot := range affected {
		n := int32(0)
		for _, p := range a.In[slot] {
			if !s.rd(p).done {
				n++
			}
		}
		s.wr(slot).pending = n
	}
	for _, slot := range affected {
		st := s.wr(slot)
		if st.pending == 0 {
			st.ready = s.computeReady(slot)
			s.push(slot)
		}
	}
	budget := s.budget()
	if s.FixpointBudget > 0 {
		budget = int64(s.FixpointBudget)
	}
	if !s.run(budget) {
		s.Stats.Fallbacks++
		return s.Simulate()
	}
	// Unaffected tasks all end by t0, so the makespan is determined by
	// the re-scheduled suffix — no full scan needed.
	makespan := t0
	for _, slot := range affected {
		if e := s.rd(slot).end; e > makespan {
			makespan = e
		}
	}
	s.Makespan = makespan
	return s.Makespan
}

func (s *State) budget() int64 {
	n := int64(s.TG.Alive())
	return 200*n + 10000
}

// computeReady recomputes a task's ready time from its predecessors'
// current end times (unscheduled predecessors contribute zero and will
// re-trigger the task when they complete). Adjacency rows hold live
// tasks only, so no dead checks are needed.
func (s *State) computeReady(slot int32) time.Duration {
	var r time.Duration
	for _, p := range s.adj.In[slot] {
		if e := s.rd(p).end; e > r {
			r = e
		}
	}
	return r
}

// run drains the work queue until fixpoint, processing tasks in
// (readyTime, taskID) order. Returns false if the budget is exhausted;
// partial work is still counted in Stats.Pops either way.
func (s *State) run(budget int64) bool {
	pops := int64(0)
	for len(s.pq) > 0 {
		it := s.pq.pop()
		if s.adj.ID[it.slot] != it.id {
			continue // task removed since it was queued
		}
		st := s.wr(it.slot)
		if !st.queued || it.ready != st.key {
			continue // stale queue entry (re-pushed or already handled)
		}
		st.queued = false
		pops++
		if pops > budget {
			s.Stats.Pops += pops
			return false
		}
		s.evaluate(it.slot)
	}
	s.Stats.Pops += pops
	return true
}

// evaluate recomputes one task's schedule slot and propagates changes.
func (s *State) evaluate(slot int32) {
	st := s.wr(slot)
	a := s.adj
	key := a.Key[slot]
	self := ref{slot: slot, id: a.ID[slot]}
	order := s.res[key]

	inList := st.pos >= 0
	moved := false
	if inList {
		// Reposition if the order key changed relative to neighbours.
		pos := int(st.pos)
		outOfPlace := (pos > 0 && !s.less(order[pos-1], self)) ||
			(pos+1 < len(order) && !s.less(self, order[pos+1]))
		if outOfPlace {
			if next, ok := s.removeFromOrder(slot); ok {
				s.push(next)
			}
			inList = false
			moved = true
		}
	}
	if !inList {
		s.insertOrdered(key, self)
	}
	order = s.res[key]

	var prevEnd time.Duration
	if st.pos > 0 {
		prevEnd = s.rd(order[st.pos-1].slot).end
	}
	start := st.ready
	if prevEnd > start {
		start = prevEnd
	}
	end := start + a.Exe[slot]
	first := !st.done
	st.done = true
	changed := end != st.end || moved
	if start == st.start && end == st.end && !moved && !first {
		return
	}
	st.start, st.end = start, end

	// The device successor's start depends on our end.
	if int(st.pos)+1 < len(order) {
		s.push(order[st.pos+1].slot)
	}
	if !changed && !first {
		return
	}
	for _, succ := range a.Out[slot] {
		ss := s.wr(succ)
		if !ss.done {
			if first {
				// Our first evaluation releases one of succ's pending
				// inputs; succ enters the queue when the last one
				// resolves.
				ss.pending--
			}
			if ss.pending > 0 {
				// Still waiting on other inputs; it will read our final
				// end time when it is released.
				continue
			}
			ss.ready = s.computeReady(succ)
			s.push(succ)
			continue
		}
		// succ was already evaluated (a surviving task downstream of a
		// delta change). Early cutoff: if our end time converged back to
		// the value succ last saw, its ready time cannot change on our
		// account — whoever does change re-pushes it themselves.
		if !changed {
			continue
		}
		if r := s.computeReady(succ); r != ss.ready {
			ss.ready = r
			s.push(succ)
		}
	}
}

// less is the deterministic per-resource execution order: (ready, ID).
func (s *State) less(a, b ref) bool {
	ra, rb := s.rd(a.slot).ready, s.rd(b.slot).ready
	if ra != rb {
		return ra < rb
	}
	return a.id < b.id
}

// removeFromOrder deletes the task from its resource timeline and
// returns the slot of the task that moved into its place (its former
// successor), if any.
func (s *State) removeFromOrder(slot int32) (next int32, ok bool) {
	key := s.adj.Key[slot]
	order := s.orderW(key)
	pos := int(s.rd(slot).pos)
	copy(order[pos:], order[pos+1:])
	order = order[:len(order)-1]
	s.res[key] = order
	for i := pos; i < len(order); i++ {
		s.wr(order[i].slot).pos = int32(i)
	}
	s.wr(slot).pos = -1
	if pos < len(order) {
		return order[pos].slot, true
	}
	return 0, false
}

// insertOrdered inserts the task into its resource timeline at its
// sorted position by (Ready, ID). Fixpoint processing pops tasks in
// ready order, so during a rebuild almost every insert lands at the
// end of its timeline — that case is one comparison, no search.
func (s *State) insertOrdered(key int32, e ref) {
	order := s.orderW(key)
	lo, hi := 0, len(order)
	if n := len(order); n == 0 || s.less(order[n-1], e) {
		lo = n
	} else {
		for lo < hi {
			mid := (lo + hi) / 2
			if s.less(order[mid], e) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	order = append(order, ref{})
	copy(order[lo+1:], order[lo:])
	order[lo] = e
	s.res[key] = order
	for i := lo; i < len(order); i++ {
		s.wr(order[i].slot).pos = int32(i)
	}
}

// finish recomputes the makespan and verifies every live task was
// scheduled.
func (s *State) finish() {
	var makespan time.Duration
	a := s.adj
	for slot, id := range a.ID {
		if id < 0 {
			continue
		}
		st := s.rd(int32(slot))
		if st.pos < 0 {
			panic(fmt.Sprintf("sim: task %v never scheduled (cyclic task graph?)", a.Task[slot]))
		}
		if st.end > makespan {
			makespan = st.end
		}
	}
	s.Makespan = makespan
}

// Timeline returns the execution order of the given resource (device ID,
// or numDevices+linkID for links) as live tasks, in schedule order. The
// slice is freshly built on each call.
func (s *State) Timeline(resource int) []*taskgraph.Task {
	a := s.TG.Adj()
	order := s.res[resource]
	out := make([]*taskgraph.Task, 0, len(order))
	for _, e := range order {
		if a.ID[e.slot] == e.id {
			out = append(out, a.Task[e.slot])
		}
	}
	return out
}

// CriticalPathLowerBound returns the longest dependency-chain time
// ignoring resource contention — a lower bound any correct schedule must
// respect (used by invariant tests).
func CriticalPathLowerBound(tg *taskgraph.TaskGraph) time.Duration {
	a := tg.Adj()
	longest := make([]time.Duration, len(a.ID))
	seen := make([]bool, len(a.ID))
	var best time.Duration
	// Tasks were created in topological order of the DAG? Not
	// necessarily across ReplaceConfig calls, so DFS over the
	// adjacency rows instead.
	var visit func(slot int32) time.Duration
	visit = func(slot int32) time.Duration {
		if seen[slot] {
			return longest[slot]
		}
		seen[slot] = true // cycle guard; task graphs are DAGs
		var in time.Duration
		for _, p := range a.In[slot] {
			if d := visit(p); d > in {
				in = d
			}
		}
		longest[slot] = in + a.Exe[slot]
		return longest[slot]
	}
	for slot := range a.ID {
		if a.ID[slot] < 0 {
			continue
		}
		if d := visit(int32(slot)); d > best {
			best = d
		}
	}
	return best
}

// SerialUpperBound returns the sum of all task times — the time a
// single resource executing everything serially would need; any
// schedule's makespan is at most this.
func SerialUpperBound(tg *taskgraph.TaskGraph) time.Duration {
	var sum time.Duration
	for _, t := range tg.Tasks {
		if tg.Live(t) {
			sum += t.Exe
		}
	}
	return sum
}
