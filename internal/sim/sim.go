// Package sim implements the execution simulator of Section 5: given a
// task graph it predicts the execution timeline of one training
// iteration under the paper's assumptions (A1-A4): predictable task
// times, fully-utilizable connection bandwidth, FIFO scheduling per
// device, and negligible runtime overhead.
//
// Both simulation algorithms are provided:
//
//   - Simulate (the full algorithm, Section 5.2) builds the timeline
//     from scratch, processing tasks in ready-time order like Dijkstra's
//     algorithm.
//   - ApplyDelta (the delta algorithm, Section 5.3) starts from the
//     previous timeline and re-simulates only the tasks affected by a
//     single operation's configuration change, propagating updates like
//     Bellman-Ford.
//
// Both produce the identical, deterministic timeline: per-resource
// execution order is the total order (readyTime, taskID), which the
// engine maintains as a fixpoint. The differential tests in this package
// assert full/delta equality over randomized mutation sequences.
//
// # Ownership
//
// The task graph is structure, the State is state: Simulate and
// ApplyDelta never write into tasks — every mutable value (ready/start/
// end times, per-resource timelines, scheduling scratch, the work heap)
// lives in the State's own arrays, indexed by Task.Slot. A frozen
// taskgraph.Plan base can therefore be simulated by any number of
// goroutines concurrently, each with its own State.
//
// A State itself is owned by exactly one goroutine; it is not safe for
// concurrent use and is never locked. The concurrent search runtime
// gets its parallelism one level up: each MCMC chain (or Neighborhood
// worker) takes a private Plan.Instance() and a State cloned from the
// shared base timeline (CloneFor), so per-chain setup is a pointer
// remap plus an array copy instead of a full Build+Simulate.
//
// When a State is attached to a mutable graph, every ReplaceConfig must
// be followed by ApplyDelta (or a full Simulate) before the next
// ReplaceConfig: slots of removed tasks are recycled, and ApplyDelta is
// the point where the State retires its references to them.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"flexflow/internal/taskgraph"
)

// tstate is one task's mutable simulation state, indexed by Task.Slot.
type tstate struct {
	// ready/start/end are the task's current timeline values.
	ready, start, end time.Duration
	// key dedups work-queue entries together with queued: a live queue
	// entry exists for the task at ready time key, so re-pushing at an
	// unchanged ready time is a no-op.
	key time.Duration
	// pos is the task's index in its resource's execution order
	// (-1 when unscheduled).
	pos int32
	// pending counts unevaluated predecessors: the engine defers a
	// task's first evaluation until all inputs have been evaluated,
	// like Algorithm 1's NOTREADY/READY states.
	pending int32
	// done marks tasks that have been evaluated at least once.
	done   bool
	queued bool
}

// State is a simulation state: per-resource execution timelines plus
// the per-task timing arrays, all owned by the state (the task graph is
// never written).
type State struct {
	TG *taskgraph.TaskGraph

	numDevices int
	res        [][]*taskgraph.Task // resource ID -> execution order
	Makespan   time.Duration

	// Stats counts engine work for the Table 4 style comparisons.
	Stats Stats

	pq workHeap
	ts []tstate // indexed by Task.Slot
}

// Stats counts simulator work.
type Stats struct {
	FullSims  int
	DeltaSims int
	// Pops is the number of task (re)evaluations performed.
	Pops int64
	// Fallbacks counts delta simulations that exceeded the fixpoint
	// budget and were redone from scratch (should stay at/near zero).
	Fallbacks int
}

// NewState creates a simulation state for the task graph. Call Simulate
// to populate the timeline.
func NewState(tg *taskgraph.TaskGraph) *State {
	return &State{
		TG:         tg,
		numDevices: tg.Topo.NumDevices(),
		res:        make([][]*taskgraph.Task, tg.Topo.NumDevices()+len(tg.Topo.Links)),
		ts:         make([]tstate, tg.NumSlots()),
	}
}

// CloneFor returns an independent copy of the state rebound to tg,
// which must hold the same live tasks (matching IDs and slots) as the
// state's own graph — i.e. an Instance of the same Plan, cloned before
// any divergent ReplaceConfig. Timelines, timing arrays and Stats are
// all copied, so the clone continues with ApplyDelta immediately, no
// re-Simulate needed. This is the cheap per-chain/per-worker setup path
// of the concurrent search runtime.
func (s *State) CloneFor(tg *taskgraph.TaskGraph) *State {
	out := &State{
		TG:         tg,
		numDevices: s.numDevices,
		res:        make([][]*taskgraph.Task, len(s.res)),
		Makespan:   s.Makespan,
		Stats:      s.Stats,
		ts:         append([]tstate(nil), s.ts...),
	}
	if tg == s.TG {
		for r, order := range s.res {
			out.res[r] = append([]*taskgraph.Task(nil), order...)
		}
		return out
	}
	bySlot := make([]*taskgraph.Task, tg.NumSlots())
	for _, t := range tg.Tasks {
		if !t.Dead {
			bySlot[t.Slot] = t
		}
	}
	for r, order := range s.res {
		no := make([]*taskgraph.Task, len(order))
		for i, t := range order {
			nt := bySlot[t.Slot]
			if nt == nil || nt.ID != t.ID {
				panic("sim: CloneFor target graph does not match the state's tasks")
			}
			no[i] = nt
		}
		out.res[r] = no
	}
	return out
}

// Clone returns an independent copy of the state bound to the same task
// graph.
func (s *State) Clone() *State { return s.CloneFor(s.TG) }

// Times returns the task's (ready, start, end) from the last
// Simulate/ApplyDelta call.
func (s *State) Times(t *taskgraph.Task) (ready, start, end time.Duration) {
	st := &s.ts[t.Slot]
	return st.ready, st.start, st.end
}

// ensure grows the per-slot state array to cover every slot the graph
// has allocated (ReplaceConfig can mint new slots when an op's task
// count grows past the previous peak).
func (s *State) ensure() {
	if n := s.TG.NumSlots(); n > len(s.ts) {
		s.ts = append(s.ts, make([]tstate, n-len(s.ts))...)
	}
}

type workItem struct {
	ready time.Duration
	id    int
	t     *taskgraph.Task
}

type workHeap []workItem

func (h workHeap) Len() int { return len(h) }
func (h workHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].id < h[j].id
}
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (s *State) push(t *taskgraph.Task) {
	st := &s.ts[t.Slot]
	if st.queued && st.key == st.ready {
		return // identical entry already queued
	}
	st.queued = true
	st.key = st.ready
	heap.Push(&s.pq, workItem{ready: st.ready, id: t.ID, t: t})
}

// Simulate runs the full simulation algorithm: it clears all timing
// state and rebuilds the timeline from scratch, returning the makespan
// (the predicted per-iteration execution time). Tasks enter the ready
// queue only once all predecessors have been evaluated (Algorithm 1's
// NOTREADY -> READY transition), so each task is normally evaluated
// exactly once; re-evaluations only occur to repair ready-time ties.
func (s *State) Simulate() time.Duration {
	s.Stats.FullSims++
	s.ensure()
	for i := range s.res {
		s.res[i] = s.res[i][:0]
	}
	s.pq = s.pq[:0]
	for _, t := range s.TG.Tasks {
		if t.Dead {
			// Never touch a dead task's slot: it may already belong to
			// a live task elsewhere in the list.
			continue
		}
		st := &s.ts[t.Slot]
		st.ready, st.start, st.end = 0, 0, 0
		st.key = 0
		st.pos = -1
		st.done = false
		st.queued = false
		n := 0
		for _, p := range t.In {
			if !p.Dead {
				n++
			}
		}
		st.pending = int32(n)
		if n == 0 {
			s.push(t)
		}
	}
	budget := s.budget()
	if !s.run(budget) {
		panic("sim: full simulation exceeded its fixpoint budget")
	}
	s.finish()
	return s.Makespan
}

// ApplyDelta incorporates an incremental task-graph change (produced by
// TaskGraph.ReplaceConfig) into an existing timeline, re-simulating only
// the affected portion (Algorithm 2). It returns the new makespan.
//
// The affected portion is bounded in *time*: no removed task started and
// no added/touched task becomes ready before the earliest change point
// T0, and along any FIFO resource timeline start/end times are monotone,
// so every task completing by T0 keeps its exact slot. The engine
// truncates each timeline at T0 and re-schedules only the suffixes plus
// the added tasks, evaluating each affected task once (plus tie
// repairs). If the fixpoint exceeds its budget (differential tests show
// it does not), it falls back to a full simulation, so the result is
// always exact.
//
// Slot recycling note: an added task may occupy a removed task's slot.
// The loops below therefore read every removed task's state (the T0
// bound) before the added-task reset writes anything.
func (s *State) ApplyDelta(cs taskgraph.ChangeSet) time.Duration {
	s.Stats.DeltaSims++
	s.ensure()
	s.pq = s.pq[:0]
	const inf = time.Duration(1<<63 - 1)
	t0 := inf

	for _, t := range cs.Removed {
		st := &s.ts[t.Slot]
		if st.done && st.start < t0 {
			t0 = st.start
		}
	}
	for _, t := range cs.Added {
		s.ts[t.Slot] = tstate{pos: -1}
	}
	for _, t := range cs.Added {
		// Chain heads (all predecessors already scheduled) bound the
		// earliest time an added task can perturb the schedule; deeper
		// added tasks are covered transitively.
		head := true
		for _, p := range t.In {
			if !p.Dead && !s.ts[p.Slot].done {
				head = false
				break
			}
		}
		if head {
			if r := s.computeReady(t); r < t0 {
				t0 = r
			}
		}
	}
	for _, t := range cs.Touched {
		if st := &s.ts[t.Slot]; st.start < t0 {
			t0 = st.start
		}
		if r := s.computeReady(t); r < t0 {
			t0 = r
		}
	}
	if t0 == inf {
		// Nothing to do (e.g. a config replaced by an identical one).
		s.finish()
		return s.Makespan
	}

	// Truncate every resource timeline at T0: pop the suffix of tasks
	// that start at/after T0 or end after it (start and end are monotone
	// along a FIFO timeline), resetting them for re-scheduling. Dead
	// tasks always fall in the suffix because no removed task started
	// before T0.
	var affected []*taskgraph.Task
	for r := range s.res {
		order := s.res[r]
		cut := len(order)
		for cut > 0 {
			t := order[cut-1]
			if t.Dead {
				cut--
				continue
			}
			st := &s.ts[t.Slot]
			if st.end > t0 || st.start >= t0 {
				cut--
				continue
			}
			break
		}
		for _, t := range order[cut:] {
			if t.Dead {
				continue // slot may be recycled; leave it alone
			}
			st := &s.ts[t.Slot]
			st.pos = -1
			st.done = false
			affected = append(affected, t)
		}
		s.res[r] = order[:cut]
	}
	affected = append(affected, cs.Added...)

	// Pending counts over the affected set; seeds are tasks whose every
	// live predecessor already has a final end time.
	for _, t := range affected {
		n := 0
		for _, p := range t.In {
			if !p.Dead && !s.ts[p.Slot].done {
				n++
			}
		}
		s.ts[t.Slot].pending = int32(n)
	}
	for _, t := range affected {
		st := &s.ts[t.Slot]
		if st.pending == 0 {
			st.ready = s.computeReady(t)
			s.push(t)
		}
	}
	if !s.run(s.budget()) {
		s.Stats.Fallbacks++
		return s.Simulate()
	}
	// Unaffected tasks all end by t0, so the makespan is determined by
	// the re-scheduled suffix — no full scan needed.
	makespan := t0
	for _, t := range affected {
		if e := s.ts[t.Slot].end; e > makespan {
			makespan = e
		}
	}
	s.Makespan = makespan
	return s.Makespan
}

func (s *State) budget() int64 {
	n := int64(s.TG.Alive())
	return 200*n + 10000
}

// computeReady recomputes a task's ready time from its predecessors'
// current end times (unscheduled predecessors contribute zero and will
// re-trigger the task when they complete).
func (s *State) computeReady(t *taskgraph.Task) time.Duration {
	var r time.Duration
	for _, p := range t.In {
		if e := s.ts[p.Slot].end; e > r {
			r = e
		}
	}
	return r
}

// run drains the work queue until fixpoint, processing tasks in
// (readyTime, taskID) order. Returns false if the budget is exhausted.
func (s *State) run(budget int64) bool {
	pops := int64(0)
	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(workItem)
		t := it.t
		if t.Dead {
			continue
		}
		st := &s.ts[t.Slot]
		if !st.queued || it.ready != st.key {
			continue // stale queue entry (re-pushed or already handled)
		}
		st.queued = false
		pops++
		if pops > budget {
			return false
		}
		s.evaluate(t)
	}
	s.Stats.Pops += pops
	return true
}

// evaluate recomputes one task's schedule slot and propagates changes.
func (s *State) evaluate(t *taskgraph.Task) {
	st := &s.ts[t.Slot]
	inList := st.pos >= 0
	key := t.ScheduleKey(s.numDevices)
	order := s.res[key]

	moved := false
	if inList {
		// Reposition if the order key changed relative to neighbours.
		pos := int(st.pos)
		outOfPlace := (pos > 0 && !s.less(order[pos-1], t)) ||
			(pos+1 < len(order) && !s.less(t, order[pos+1]))
		if outOfPlace {
			if next := s.removeFromOrder(t); next != nil {
				s.push(next)
			}
			inList = false
			moved = true
		}
	}
	if !inList {
		s.insertOrdered(key, t)
	}
	order = s.res[key]

	var prevEnd time.Duration
	if st.pos > 0 {
		prevEnd = s.ts[order[st.pos-1].Slot].end
	}
	start := st.ready
	if prevEnd > start {
		start = prevEnd
	}
	end := start + t.Exe
	first := !st.done
	st.done = true
	changed := end != st.end || moved
	if start == st.start && end == st.end && !moved && !first {
		return
	}
	st.start, st.end = start, end

	// The device successor's start depends on our end.
	if int(st.pos)+1 < len(order) {
		s.push(order[st.pos+1])
	}
	if !changed && !first {
		return
	}
	for _, succ := range t.Out {
		ss := &s.ts[succ.Slot]
		if first {
			// Our first evaluation releases one of succ's pending
			// inputs; succ enters the queue when the last one resolves
			// (unless it was already evaluated, e.g. a surviving task
			// downstream of a delta change).
			if !ss.done {
				ss.pending--
				if ss.pending > 0 {
					continue
				}
			}
		} else if !ss.done && ss.pending > 0 {
			// Still waiting on other inputs; it will read our final end
			// time when it is released.
			continue
		}
		r := s.computeReady(succ)
		if r != ss.ready || !ss.done {
			ss.ready = r
			s.push(succ)
		}
	}
}

// less is the deterministic per-resource execution order: (ready, ID).
func (s *State) less(a, b *taskgraph.Task) bool {
	ra, rb := s.ts[a.Slot].ready, s.ts[b.Slot].ready
	if ra != rb {
		return ra < rb
	}
	return a.ID < b.ID
}

// removeFromOrder deletes t from its resource timeline and returns the
// task that moved into its slot (its former successor), if any.
func (s *State) removeFromOrder(t *taskgraph.Task) *taskgraph.Task {
	key := t.ScheduleKey(s.numDevices)
	order := s.res[key]
	pos := int(s.ts[t.Slot].pos)
	copy(order[pos:], order[pos+1:])
	order = order[:len(order)-1]
	s.res[key] = order
	for i := pos; i < len(order); i++ {
		s.ts[order[i].Slot].pos = int32(i)
	}
	s.ts[t.Slot].pos = -1
	if pos < len(order) {
		return order[pos]
	}
	return nil
}

// insertOrdered inserts t into its resource timeline at its sorted
// position by (Ready, ID).
func (s *State) insertOrdered(key int, t *taskgraph.Task) {
	order := s.res[key]
	lo, hi := 0, len(order)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.less(order[mid], t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	order = append(order, nil)
	copy(order[lo+1:], order[lo:])
	order[lo] = t
	s.res[key] = order
	for i := lo; i < len(order); i++ {
		s.ts[order[i].Slot].pos = int32(i)
	}
}

// finish recomputes the makespan and verifies every live task was
// scheduled.
func (s *State) finish() {
	var makespan time.Duration
	for _, t := range s.TG.Tasks {
		if t.Dead {
			continue
		}
		st := &s.ts[t.Slot]
		if st.pos < 0 {
			panic(fmt.Sprintf("sim: task %v never scheduled (cyclic task graph?)", t))
		}
		if st.end > makespan {
			makespan = st.end
		}
	}
	s.Makespan = makespan
}

// Timeline returns the execution order of the given resource (device ID,
// or numDevices+linkID for links). The returned slice is owned by the
// state; callers must not modify it.
func (s *State) Timeline(resource int) []*taskgraph.Task { return s.res[resource] }

// CriticalPathLowerBound returns the longest dependency-chain time
// ignoring resource contention — a lower bound any correct schedule must
// respect (used by invariant tests).
func CriticalPathLowerBound(tg *taskgraph.TaskGraph) time.Duration {
	longest := make(map[int]time.Duration, len(tg.Tasks))
	var best time.Duration
	// Tasks were created in topological order of the DAG? Not
	// necessarily across ReplaceConfig calls, so iterate to fixpoint
	// over a DFS instead.
	var visit func(t *taskgraph.Task) time.Duration
	visit = func(t *taskgraph.Task) time.Duration {
		if d, ok := longest[t.ID]; ok {
			return d
		}
		longest[t.ID] = 0 // cycle guard; task graphs are DAGs
		var in time.Duration
		for _, p := range t.In {
			if d := visit(p); d > in {
				in = d
			}
		}
		d := in + t.Exe
		longest[t.ID] = d
		return d
	}
	for _, t := range tg.Tasks {
		if t.Dead {
			continue
		}
		if d := visit(t); d > best {
			best = d
		}
	}
	return best
}

// SerialUpperBound returns the sum of all task times — the time a
// single resource executing everything serially would need; any
// schedule's makespan is at most this.
func SerialUpperBound(tg *taskgraph.TaskGraph) time.Duration {
	var sum time.Duration
	for _, t := range tg.Tasks {
		if !t.Dead {
			sum += t.Exe
		}
	}
	return sum
}
