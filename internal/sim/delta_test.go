package sim

import (
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
)

// TestFallbackCountsPartialPops pins the Stats.Pops accounting on the
// fallback path: a delta fixpoint that exhausts its budget must still
// count the evaluations it performed before giving up (they are real
// work for the Table-4-style comparisons), on top of the full
// simulation it falls back to.
func TestFallbackCountsPartialPops(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	tg, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()

	op := g.ComputeOps()[1]
	cs := tg.ReplaceConfig(op.ID, config.OnDevice(op, 1))

	// A from-scratch simulation of the mutated graph: the ground-truth
	// makespan and the pop count of the fallback's inner Simulate.
	fresh := NewState(tg)
	want := fresh.Simulate()
	fullPops := fresh.Stats.Pops

	before := st.Stats.Pops
	st.FixpointBudget = 1
	got := st.ApplyDelta(cs)
	if st.Stats.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", st.Stats.Fallbacks)
	}
	if got != want {
		t.Fatalf("fallback makespan %v != full %v", got, want)
	}
	// The budgeted run pops budget+1 tasks before bailing (the pop that
	// exceeds the budget is counted too — it was taken off the queue),
	// then the fallback Simulate runs unbudgeted (FixpointBudget never
	// applies to Simulate, or this very call would panic).
	if wantPops := before + 2 + fullPops; st.Stats.Pops != wantPops {
		t.Fatalf("Pops = %d, want %d (partial work dropped?)", st.Stats.Pops, wantPops)
	}

	// The state must be fully usable after a fallback: later deltas
	// still agree with from-scratch simulation.
	st.FixpointBudget = 0
	op2 := g.ComputeOps()[2]
	cs2 := tg.ReplaceConfig(op2.ID, config.OnDevice(op2, 2))
	got2 := st.ApplyDelta(cs2)
	if want2 := NewState(tg).Simulate(); got2 != want2 {
		t.Fatalf("post-fallback delta %v != full %v", got2, want2)
	}
	if st.Stats.Fallbacks != 1 {
		t.Fatalf("unbudgeted delta fell back: %+v", st.Stats)
	}
}

// TestRecycledSlotCrossesCut is the remove-then-add regression test for
// ApplyDelta's truncation loop: a removed task's slot is immediately
// recycled by an added task, so the stale timeline entries crossing the
// T0 cut reference slots that now belong to different live tasks. The
// truncation must detect them by id and must not touch the recycled
// slot's (reset) state.
func TestRecycledSlotCrossesCut(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	tg, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()
	ops := g.ComputeOps()

	// Shrink one op from data-parallel to a single device: many tasks
	// die, and the rebuilt tasks reuse the freshly freed slots.
	cs := tg.ReplaceConfig(ops[1].ID, config.OnDevice(ops[1], 3))
	freed := map[int]bool{}
	for _, dead := range cs.Removed {
		freed[dead.Slot] = true
	}
	recycled := false
	for _, added := range cs.Added {
		if freed[added.Slot] {
			recycled = true
			break
		}
	}
	if !recycled {
		t.Fatal("test vacuous: no added task reuses a removed task's slot")
	}
	if got, want := st.ApplyDelta(cs), NewState(tg).Simulate(); got != want {
		t.Fatalf("delta %v != full %v after shrink", got, want)
	}

	// Grow a different op back across all devices: its new tasks reuse
	// slots freed by the first mutation, crossing resource timelines.
	cs2 := tg.ReplaceConfig(ops[2].ID, config.SampleParallel(ops[2], []int{0, 1, 2, 3}))
	reusedAcross := false
	for _, added := range cs2.Added {
		if freed[added.Slot] {
			reusedAcross = true
			break
		}
	}
	if got, want := st.ApplyDelta(cs2), NewState(tg).Simulate(); got != want {
		t.Fatalf("delta %v != full %v after regrow (reusedAcross=%v)", got, want, reusedAcross)
	}
	if st.Stats.Fallbacks != 0 {
		t.Fatalf("unexpected fallback: %+v", st.Stats)
	}
}
