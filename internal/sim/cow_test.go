package sim

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

// timesSnapshot flattens every live task's (ready, start, end) in task
// order — a bit-comparable fingerprint of a state's whole timeline.
func timesSnapshot(st *State) []time.Duration {
	out := make([]time.Duration, 0, 3*len(st.TG.Tasks))
	for _, task := range st.TG.Tasks {
		if !st.TG.Live(task) {
			continue
		}
		r, s, e := st.Times(task)
		out = append(out, r, s, e)
	}
	return out
}

func timesEqual(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cloneWalk is one chain's deterministic mutate/revert sequence off a
// shared base: it clones the base state for a fresh plan instance, runs
// `steps` random config replacements (reverting half of them), and
// returns the per-delta makespans plus the final timeline fingerprint.
// The walk is a pure function of (plan, base, seed), so serial and
// concurrent executions must agree bit for bit.
func cloneWalk(plan *taskgraph.Plan, base *State, topo *device.Topology, seed int64, steps int) ([]time.Duration, []time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	inst := plan.Instance()
	st := base.CloneFor(inst)
	ops := inst.G.ComputeOps()
	makespans := make([]time.Duration, 0, steps*2)
	for step := 0; step < steps; step++ {
		op := ops[rng.Intn(len(ops))]
		old := inst.Strat.Config(op.ID).Clone()
		makespans = append(makespans, st.ApplyDelta(inst.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))))
		if rng.Intn(2) == 0 {
			makespans = append(makespans, st.ApplyDelta(inst.ReplaceConfig(op.ID, old)))
		}
	}
	return makespans, timesSnapshot(st)
}

// TestCloneForIsolationDifferential is the timing-side mirror of the
// task graph's cow_test.go: N chains share one sealed base state
// copy-on-write, each applies an independent delta sequence, and each
// must be bit-identical to a serial reference run of the same seed —
// same makespan at every step, same final timeline — while the base's
// own timeline never moves. A chain observing a sibling's faulted pages
// (or writing through a shared one) breaks the differential; run under
// -race it also proves the CloneFor seal is the only synchronization
// the sharing needs.
func TestCloneForIsolationDifferential(t *testing.T) {
	spec, err := models.Get("synth-2k")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(1)
	topo := device.NewSingleNode(4, "P100")
	plan := taskgraph.Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	base := NewState(plan.Base())
	baseCost := base.Simulate()
	baseTimes := timesSnapshot(base)

	const workers = 6
	const steps = 8
	type result struct {
		makespans []time.Duration
		times     []time.Duration
	}

	// Serial reference: each chain's walk alone, nobody else faulting
	// pages off the shared base while it runs.
	refs := make([]result, workers)
	for w := range refs {
		refs[w].makespans, refs[w].times = cloneWalk(plan, base, topo, int64(100+w), steps)
	}
	if !timesEqual(timesSnapshot(base), baseTimes) {
		t.Fatal("serial reference walks disturbed the base timeline")
	}

	// Concurrent run: all chains share the one sealed base at once.
	got := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w].makespans, got[w].times = cloneWalk(plan, base, topo, int64(100+w), steps)
		}(w)
	}
	wg.Wait()

	for w := range got {
		if !timesEqual(got[w].makespans, refs[w].makespans) {
			t.Errorf("chain %d: concurrent makespans %v != serial reference %v", w, got[w].makespans, refs[w].makespans)
		}
		if !timesEqual(got[w].times, refs[w].times) {
			t.Errorf("chain %d: final timeline differs from serial reference (sibling bleed?)", w)
		}
	}
	if base.Makespan != baseCost || !timesEqual(timesSnapshot(base), baseTimes) {
		t.Fatal("concurrent chains disturbed the shared base timeline")
	}

	// Privatize direction: a sealed source that is itself mutated must
	// unshare first, leaving its clones' frozen view untouched. (The
	// plan's base graph is frozen, so this leg runs on a standalone
	// mutable graph.) The clone's pages are read through pre-mutation
	// task pointers: whatever the source does, those reads must return
	// the exact values frozen at clone time.
	tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	src := NewState(tg)
	src.Simulate()
	snap := src.Clone() // seals src; snap shares every page
	var oldTasks []*taskgraph.Task
	for _, task := range tg.Tasks {
		if tg.Live(task) {
			oldTasks = append(oldTasks, task)
		}
	}
	readSnap := func() []time.Duration {
		out := make([]time.Duration, 0, 3*len(oldTasks))
		for _, task := range oldTasks {
			r, s, e := snap.Times(task)
			out = append(out, r, s, e)
		}
		return out
	}
	frozen := readSnap()
	rng := rand.New(rand.NewSource(99))
	srcOps := tg.G.ComputeOps()
	op := srcOps[rng.Intn(len(srcOps))]
	got1 := src.ApplyDelta(tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng)))
	if want := NewState(tg).Simulate(); got1 != want {
		t.Fatalf("source mutation after sealing: delta %v != full %v", got1, want)
	}
	if !timesEqual(readSnap(), frozen) {
		t.Fatal("source mutation leaked into the sealed clone's pages")
	}
}
