package sim

import (
	"math/rand"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

// figure5 hand-builds the task graph of Figure 5b: a 3-layer RNN
// (embedding o1,o2 on GPU0 with exe 2; recurrent o3,o4 on GPU1 with
// exe 1; linear o5,o6 on GPU2 with exe 3), batch split 2 ways for the
// embedding and recurrent layers, with unit-time transfers between
// adjacent GPUs.
func figure5(t *testing.T) (*taskgraph.TaskGraph, map[string]*taskgraph.Task) {
	t.Helper()
	topo := device.NewTopology("fig5")
	g0 := topo.AddDevice(device.Device{Kind: device.GPU, Name: "GPU0"})
	g1 := topo.AddDevice(device.Device{Kind: device.GPU, Name: "GPU1"})
	g2 := topo.AddDevice(device.Device{Kind: device.GPU, Name: "GPU2"})
	l01 := topo.AddLink(device.PCIe, g0, g1, 1, 0)
	l12 := topo.AddLink(device.PCIe, g1, g2, 1, 0)

	u := time.Second
	mk := func(dev int, exe time.Duration) *taskgraph.Task {
		return &taskgraph.Task{Kind: taskgraph.Compute, Device: dev, Link: -1, Exe: exe}
	}
	comm := func(link int, exe time.Duration) *taskgraph.Task {
		return &taskgraph.Task{Kind: taskgraph.Comm, Device: -1, Link: link, Exe: exe}
	}
	tasks := map[string]*taskgraph.Task{
		"t1:1": mk(g0, 2*u), "t1:2": mk(g0, 2*u),
		"t2:1": mk(g0, 2*u), "t2:2": mk(g0, 2*u),
		"t3:1": mk(g1, 1*u), "t3:2": mk(g1, 1*u),
		"t4:1": mk(g1, 1*u), "t4:2": mk(g1, 1*u),
		"t5:1": mk(g2, 3*u), "t6:1": mk(g2, 3*u),
		"c1:1": comm(l01, u), "c1:2": comm(l01, u),
		"c2:1": comm(l01, u), "c2:2": comm(l01, u),
		"c3:1": comm(l12, u), "c3:2": comm(l12, u),
		"c4:1": comm(l12, u), "c4:2": comm(l12, u),
	}
	// Creation order matters for deterministic tie-breaking: mirror the
	// paper's timeline by creating embedding tasks, then transfers, then
	// recurrent, then the rest.
	order := []string{
		"t1:1", "t1:2", "t2:1", "t2:2",
		"c1:1", "c1:2", "c2:1", "c2:2",
		"t3:1", "t3:2", "t4:1", "t4:2",
		"c3:1", "c3:2", "c4:1", "c4:2",
		"t5:1", "t6:1",
	}
	list := make([]*taskgraph.Task, len(order))
	for i, n := range order {
		list[i] = tasks[n]
	}
	dep := func(a, b string) { taskgraph.Connect(tasks[a], tasks[b]) }
	// Embedding -> transfer -> recurrent (per batch shard).
	dep("t1:1", "c1:1")
	dep("c1:1", "t3:1")
	dep("t1:2", "c1:2")
	dep("c1:2", "t3:2")
	dep("t2:1", "c2:1")
	dep("c2:1", "t4:1")
	dep("t2:2", "c2:2")
	dep("c2:2", "t4:2")
	// Recurrent chain o3 -> o4 per shard.
	dep("t3:1", "t4:1")
	dep("t3:2", "t4:2")
	// Recurrent -> transfer -> linear (linear is unpartitioned).
	dep("t3:1", "c3:1")
	dep("t3:2", "c3:2")
	dep("c3:1", "t5:1")
	dep("c3:2", "t5:1")
	dep("t4:1", "c4:1")
	dep("t4:2", "c4:2")
	dep("c4:1", "t6:1")
	dep("c4:2", "t6:1")
	return taskgraph.Manual(topo, list), tasks
}

// TestFigure5FullSimulation checks the exact ready/start times printed
// in Figure 5c of the paper.
func TestFigure5FullSimulation(t *testing.T) {
	tg, tasks := figure5(t)
	st := NewState(tg)
	makespan := st.Simulate()

	u := time.Second
	want := map[string][2]time.Duration{
		"t1:1": {0, 0}, "t1:2": {0, 2 * u}, "t2:1": {0, 4 * u}, "t2:2": {0, 6 * u},
		"c1:1": {2 * u, 2 * u}, "c1:2": {4 * u, 4 * u}, "c2:1": {6 * u, 6 * u}, "c2:2": {8 * u, 8 * u},
		"t3:1": {3 * u, 3 * u}, "t3:2": {5 * u, 5 * u}, "t4:1": {7 * u, 7 * u}, "t4:2": {9 * u, 9 * u},
		"c3:1": {4 * u, 4 * u}, "c3:2": {6 * u, 6 * u}, "c4:1": {8 * u, 8 * u}, "c4:2": {10 * u, 10 * u},
		"t5:1": {7 * u, 7 * u}, "t6:1": {11 * u, 11 * u},
	}
	for name, rs := range want {
		ready, start, _ := st.Times(tasks[name])
		if ready != rs[0] || start != rs[1] {
			t.Errorf("%s: ready=%v start=%v, want ready=%v start=%v",
				name, ready, start, rs[0], rs[1])
		}
	}
	if makespan != 14*u {
		t.Fatalf("makespan = %v, want 14s", makespan)
	}
}

func TestFigure5Bounds(t *testing.T) {
	tg, _ := figure5(t)
	st := NewState(tg)
	makespan := st.Simulate()
	if lb := CriticalPathLowerBound(tg); makespan < lb {
		t.Fatalf("makespan %v below critical path %v", makespan, lb)
	}
	if ub := SerialUpperBound(tg); makespan > ub {
		t.Fatalf("makespan %v above serial bound %v", makespan, ub)
	}
}

func buildStrategySim(t *testing.T, g *graph.Graph, topo *device.Topology, s *config.Strategy) (*taskgraph.TaskGraph, *State) {
	t.Helper()
	tg := taskgraph.Build(g, topo, s, perfmodel.NewAnalyticModel(), taskgraph.Options{})
	return tg, NewState(tg)
}

func smallCNN() *graph.Graph {
	g := graph.New("cnn")
	x := g.Input4D("x", 8, 3, 16, 16)
	c1 := g.Conv2D("c1", x, 8, 3, 3, 1, 1, 1, 1)
	p1 := g.Pool2D("p1", c1, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("f", p1)
	g.Dense("fc", f, 10)
	return g
}

func TestSimulateDeterministic(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	_, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	a := st.Simulate()
	b := st.Simulate()
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("makespan = %v", a)
	}
}

func TestSimulateRespectesBounds(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		s := config.Random(g, topo, rng)
		tg, st := buildStrategySim(t, g, topo, s)
		makespan := st.Simulate()
		if lb := CriticalPathLowerBound(tg); makespan < lb {
			t.Fatalf("trial %d: makespan %v < critical path %v", trial, makespan, lb)
		}
		if ub := SerialUpperBound(tg); makespan > ub {
			t.Fatalf("trial %d: makespan %v > serial bound %v", trial, makespan, ub)
		}
	}
}

func TestDataParallelFasterThanSingleDevice(t *testing.T) {
	// Needs a compute-heavy model so per-kernel launch overhead does not
	// dominate: batch 64 over 64 channels at 32x32.
	g := graph.New("fat-cnn")
	x := g.Input4D("x", 64, 32, 32, 32)
	c1 := g.Conv2D("c1", x, 64, 3, 3, 1, 1, 1, 1)
	c2 := g.Conv2D("c2", c1, 64, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("p", c2, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("f", p)
	g.Dense("fc", f, 10)
	topo := device.NewSingleNode(4, "P100")
	// Single device: everything on GPU 0.
	single := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		single.Set(op.ID, config.OnDevice(op, 0))
	}
	_, st1 := buildStrategySim(t, g, topo, single)
	t1 := st1.Simulate()
	_, st4 := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	t4 := st4.Simulate()
	if t4 >= t1 {
		t.Fatalf("data parallelism (%v) should beat single device (%v) on a compute-heavy CNN", t4, t1)
	}
}

// TestDeltaMatchesFull is the core differential property (Section 5.3:
// "The full and delta simulation algorithms always produce the same
// timeline for a given task graph"): after any sequence of random
// configuration changes, the delta-simulated makespan must equal a full
// re-simulation of the same task graph. (A freshly *rebuilt* graph may
// differ: task IDs break ready-time ties, and both orders are valid
// FIFO schedules.)
func TestDeltaMatchesFull(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(11))
	s := config.DataParallel(g, topo)
	tg, st := buildStrategySim(t, g, topo, s)
	st.Simulate()

	ops := g.ComputeOps()
	for step := 0; step < 60; step++ {
		op := ops[rng.Intn(len(ops))]
		newCfg := config.RandomConfig(op, topo, rng)
		cs := tg.ReplaceConfig(op.ID, newCfg)
		got := st.ApplyDelta(cs)

		// Reference: full simulation of the same task graph.
		want := NewState(tg).Simulate()
		if got != want {
			t.Fatalf("step %d (op %s -> %v): delta makespan %v != full %v",
				step, op.Name, newCfg, got, want)
		}
	}
	if st.Stats.Fallbacks != 0 {
		t.Fatalf("delta fell back to full simulation %d times", st.Stats.Fallbacks)
	}
}

// Same differential test on an RNN-shaped graph, whose recurrent chains
// and stacked layers produce long dependency chains.
func TestDeltaMatchesFullRNN(t *testing.T) {
	g := graph.New("rnn")
	ids := g.InputSeq("tok", 8, 4)
	emb := g.Embedding("emb", ids, 64, 16)
	var prev *graph.Op
	steps := make([]*graph.Op, 4)
	for s := 0; s < 4; s++ {
		prev = g.LSTMStep("l0", emb, prev, s, 32)
		steps[s] = prev
	}
	stack := g.StackSteps("stack", steps...)
	attn := g.AttentionStep("attn", steps[3], stack)
	g.SoftmaxClassifier("sm", attn, 64)

	topo := device.NewSingleNode(2, "P100")
	rng := rand.New(rand.NewSource(5))
	s := config.DataParallel(g, topo)
	tg, st := buildStrategySim(t, g, topo, s)
	st.Simulate()

	ops := g.ComputeOps()
	for step := 0; step < 40; step++ {
		op := ops[rng.Intn(len(ops))]
		cs := tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		got := st.ApplyDelta(cs)
		want := NewState(tg).Simulate()
		if got != want {
			t.Fatalf("step %d (op %s): delta %v != full %v", step, op.Name, got, want)
		}
	}
}

// TestDeltaTimelineIdentical compares not just the makespan but every
// task's (ready, start, end) against the reference full simulation.
func TestDeltaTimelineIdentical(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(17))
	tg, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()

	ops := g.ComputeOps()
	for step := 0; step < 10; step++ {
		op := ops[rng.Intn(len(ops))]
		cs := tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
		st.ApplyDelta(cs)
	}
	// Snapshot delta-produced times.
	type times struct{ r, s, e time.Duration }
	snap := map[string]times{}
	for _, task := range tg.Tasks {
		if tg.Live(task) {
			r, s, e := st.Times(task)
			snap[task.String()] = times{r, s, e}
		}
	}
	// Full re-simulation of the same graph must reproduce them.
	st.Simulate()
	for _, task := range tg.Tasks {
		if !tg.Live(task) {
			continue
		}
		want := snap[task.String()]
		r, s, e := st.Times(task)
		if r != want.r || s != want.s || e != want.e {
			t.Fatalf("task %v: delta times (%v,%v,%v) != full times (%v,%v,%v)",
				task, want.r, want.s, want.e, r, s, e)
		}
	}
}

func TestDeltaFasterThanFull(t *testing.T) {
	// Delta re-simulation evaluates only tasks scheduled at or after the
	// earliest change point. Mutating a late op leaves the forward
	// prefix untouched, so delta must evaluate strictly fewer tasks than
	// a full re-simulation; in MCMC runs over large graphs this is where
	// the Table 4 speedup comes from.
	g := graph.New("deep")
	x := g.Input4D("x", 16, 8, 32, 32)
	cur := g.Conv2D("conv0", x, 16, 3, 3, 1, 1, 1, 1)
	for i := 1; i < 12; i++ {
		cur = g.Conv2D("conv", cur, 16, 3, 3, 1, 1, 1, 1)
	}
	topo := device.NewSingleNode(4, "P100")
	tg, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()
	fullPops := st.Stats.Pops

	ops := g.ComputeOps()
	op := ops[len(ops)-1]
	st.Stats.Pops = 0
	cs := tg.ReplaceConfig(op.ID, config.OnDevice(op, 1))
	st.ApplyDelta(cs)
	deltaPops := st.Stats.Pops
	if deltaPops >= fullPops {
		t.Fatalf("delta pops (%d) should be fewer than full pops (%d)", deltaPops, fullPops)
	}
	// And the result still matches a full re-simulation of the same graph.
	got := st.Makespan
	want := NewState(tg).Simulate()
	if got != want {
		t.Fatalf("delta makespan %v != full %v", got, want)
	}
}

func TestTimelineAccessor(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(2, "P100")
	_, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()
	total := 0
	for r := 0; r < topo.NumDevices()+len(topo.Links); r++ {
		order := st.Timeline(r)
		for i := 1; i < len(order); i++ {
			_, start, _ := st.Times(order[i])
			_, _, prevEnd := st.Times(order[i-1])
			if start < prevEnd {
				t.Fatalf("resource %d: task %v starts before predecessor %v ends", r, order[i], order[i-1])
			}
		}
		total += len(order)
	}
	if total == 0 {
		t.Fatal("no tasks scheduled on any resource")
	}
}

func TestNoOverlapOnDevices(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		s := config.Random(g, topo, rng)
		_, st := buildStrategySim(t, g, topo, s)
		st.Simulate()
		for r := 0; r < topo.NumDevices()+len(topo.Links); r++ {
			order := st.Timeline(r)
			for i := 1; i < len(order); i++ {
				ready, start, _ := st.Times(order[i])
				_, _, prevEnd := st.Times(order[i-1])
				if start < prevEnd {
					t.Fatalf("overlap on resource %d", r)
				}
				if start < ready {
					t.Fatalf("task started before ready")
				}
			}
		}
	}
}

func TestDependencyOrderRespected(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	tg, st := buildStrategySim(t, g, topo, config.Expert(g, topo))
	st.Simulate()
	for _, task := range tg.Tasks {
		if !tg.Live(task) {
			continue
		}
		_, start, _ := st.Times(task)
		for _, p := range tg.Preds(task) {
			_, _, pEnd := st.Times(p)
			if start < pEnd {
				t.Fatalf("task %v starts at %v before predecessor %v ends at %v",
					task, start, p, pEnd)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(2, "P100")
	tg, st := buildStrategySim(t, g, topo, config.DataParallel(g, topo))
	st.Simulate()
	if st.Stats.FullSims != 1 || st.Stats.DeltaSims != 0 {
		t.Fatalf("stats = %+v", st.Stats)
	}
	op := g.ComputeOps()[0]
	cs := tg.ReplaceConfig(op.ID, config.OnDevice(op, 0))
	st.ApplyDelta(cs)
	if st.Stats.DeltaSims != 1 {
		t.Fatalf("stats = %+v", st.Stats)
	}
	if st.Stats.Pops == 0 {
		t.Fatal("no pops recorded")
	}
}

// TestSuffixHintEdges pins SuffixHint's contract at its boundaries: a
// state that never simulated has no timeline and must report 1
// (assume-the-worst) for every op, and on a simulated timeline every
// op's hint lies in (0, 1] with at least one op strictly inside — 0 is
// reserved for ops whose tasks all sit at the very makespan, which a
// live schedule's contention never quite produces.
func TestSuffixHintEdges(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(2, "P100")
	s := config.DataParallel(g, topo)
	tg := taskgraph.Build(g, topo, s, perfmodel.NewAnalyticModel(), taskgraph.Options{})
	st := NewState(tg)

	for _, op := range g.Ops {
		if h := st.SuffixHint(op.ID); h != 1 {
			t.Fatalf("op %d: SuffixHint on an unsimulated state = %v, want 1", op.ID, h)
		}
	}

	st.Simulate()
	minHint := 1.0
	for _, op := range g.Ops {
		h := st.SuffixHint(op.ID)
		if h <= 0 || h > 1 {
			t.Fatalf("op %d: SuffixHint = %v, want in (0, 1]", op.ID, h)
		}
		if h < minHint {
			minHint = h
		}
	}
	if minHint >= 1 {
		t.Fatalf("every op hints 1 on a simulated timeline; the hint carries no position signal")
	}
}
