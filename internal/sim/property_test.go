package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

// propRNN builds the RNN-with-attention graph the delta differential
// uses: recurrent chains plus stacked fan-in, the hardest dependency
// structure the builder produces.
func propRNN() *graph.Graph {
	g := graph.New("prop-rnn")
	ids := g.InputSeq("tok", 8, 3)
	emb := g.Embedding("emb", ids, 40, 12)
	var prev *graph.Op
	steps := make([]*graph.Op, 3)
	for s := 0; s < 3; s++ {
		prev = g.LSTMStep("l0", emb, prev, s, 16)
		steps[s] = prev
	}
	stack := g.StackSteps("stack", steps...)
	attn := g.AttentionStep("attn", steps[2], stack)
	g.SoftmaxClassifier("sm", attn, 40)
	return g
}

// Property: for random strategies on random machine sizes, the
// simulated makespan respects both scheduling bounds, and total busy
// time per resource never exceeds the makespan.
func TestSimulationBoundsProperty(t *testing.T) {
	g := smallCNN()
	f := func(seed int64, gpuRaw uint8) bool {
		gpus := int(gpuRaw%7) + 2
		topo := device.NewSingleNode(gpus, "P100")
		rng := rand.New(rand.NewSource(seed))
		s := config.Random(g, topo, rng)
		tg := taskgraph.Build(g, topo, s, perfmodel.NewAnalyticModel(), taskgraph.Options{})
		st := NewState(tg)
		makespan := st.Simulate()
		if makespan < CriticalPathLowerBound(tg) {
			t.Logf("below critical path")
			return false
		}
		if makespan > SerialUpperBound(tg) {
			t.Logf("above serial bound")
			return false
		}
		for r := 0; r < topo.NumDevices()+len(topo.Links); r++ {
			var busy time.Duration
			for i, task := range st.Timeline(r) {
				busy += task.Exe
				if i > 0 {
					_, start, _ := st.Times(task)
					_, _, prevEnd := st.Times(st.Timeline(r)[i-1])
					if start < prevEnd {
						t.Logf("overlap on resource %d", r)
						return false
					}
				}
			}
			if busy > makespan {
				t.Logf("resource %d busy %v > makespan %v", r, busy, makespan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: delta simulation equals full re-simulation of the same task
// graph across random mutation sequences on an RNN-shaped graph with
// attention fan-in (the hardest dependency structure we build).
func TestDeltaEqualsFullProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := propRNN()
		topo := device.NewSingleNode(3, "P100")
		rng := rand.New(rand.NewSource(seed))
		tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
		st := NewState(tg)
		st.Simulate()
		ops := g.ComputeOps()
		for step := 0; step < 8; step++ {
			op := ops[rng.Intn(len(ops))]
			cs := tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
			got := st.ApplyDelta(cs)
			want := NewState(tg).Simulate()
			if got != want {
				t.Logf("seed %d step %d: delta %v != full %v", seed, step, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// scalePropertyRun drives the synthetic-model delta/full differential
// shared by the TestScaleProperty* suite: a random mutate/revert walk on
// one model, asserting after every ApplyDelta that the incremental
// timeline — makespan and every live task's (ready, start, end) — is
// bit-identical to a full Simulate of the same graph. Reverts go through
// the same ReplaceConfig+ApplyDelta path the MCMC rejection step uses.
func scalePropertyRun(t *testing.T, model string, seed int64, steps int) {
	t.Helper()
	spec, err := models.Get(model)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(1)
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(seed))
	tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	st := NewState(tg)
	st.Simulate()
	ops := g.ComputeOps()
	check := func(step int, got time.Duration) {
		ref := NewState(tg)
		want := ref.Simulate()
		if got != want {
			t.Fatalf("%s seed %d step %d: delta makespan %v != full %v", model, seed, step, got, want)
		}
		for _, task := range tg.Tasks {
			if !tg.Live(task) {
				continue
			}
			gr, gs, ge := st.Times(task)
			wr, ws, we := ref.Times(task)
			if gr != wr || gs != ws || ge != we {
				t.Fatalf("%s seed %d step %d: task %d times (%v,%v,%v) != full (%v,%v,%v)",
					model, seed, step, task.ID, gr, gs, ge, wr, ws, we)
			}
		}
	}
	for step := 0; step < steps; step++ {
		op := ops[rng.Intn(len(ops))]
		old := tg.Strat.Config(op.ID).Clone()
		check(step, st.ApplyDelta(tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))))
		if rng.Intn(2) == 0 {
			check(step, st.ApplyDelta(tg.ReplaceConfig(op.ID, old)))
		}
	}
	if st.Stats.Fallbacks != 0 {
		t.Fatalf("%s seed %d: %d fixpoint fallbacks (delta path not exercised)", model, seed, st.Stats.Fallbacks)
	}
}

// TestScalePropertySynth2k extends the delta/full property fuzz from the
// 2019 model zoo to the synthetic scale class: random mutate/revert
// sequences on the full-size synth-2k layered DAG, checked against a
// full simulation at every step. This is the per-PR scale gate (CI runs
// `-run TestScaleProperty -tags scale` under -race); the 50k-task
// variant lives behind the scale build tag.
func TestScalePropertySynth2k(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		scalePropertyRun(t, "synth-2k", seed, 10)
	}
}

// scaleLocalityPropertyRun is the locality-weighted sibling of
// scalePropertyRun: instead of a uniform op draw it weights each op by
// its timeline position the way search's late-biased policy does —
// weight (1-SuffixHint)² floored at a positive minimum, drawn through a
// local cumulative-sum sampler (sim cannot import search) and refreshed
// after every mutation. That makes the walk cluster on late-starting
// ops, which is exactly the op sequence a locality-aware MCMC feeds
// ApplyDelta: long runs of small-suffix truncations with occasional
// deep rebuilds on revert. The delta/full bit-for-bit contract —
// makespan and every live task's (ready, start, end) after every
// ApplyDelta — must hold on that distribution too, not just under
// uniform sampling.
func scaleLocalityPropertyRun(t *testing.T, model string, seed int64, steps int) {
	t.Helper()
	spec, err := models.Get(model)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(1)
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(seed))
	tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	st := NewState(tg)
	st.Simulate()
	ops := g.ComputeOps()

	// Local late-biased weighted draw over SuffixHint.
	cum := make([]float64, len(ops))
	draw := func() *graph.Op {
		total := 0.0
		for i, op := range ops {
			h := st.SuffixHint(op.ID)
			w := (1 - h) * (1 - h)
			if w < 0.05 {
				w = 0.05
			}
			total += w
			cum[i] = total
		}
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		for i < len(cum) && cum[i] == x {
			i++
		}
		if i >= len(cum) {
			i = len(cum) - 1
		}
		return ops[i]
	}

	check := func(step int, got time.Duration) {
		ref := NewState(tg)
		want := ref.Simulate()
		if got != want {
			t.Fatalf("%s seed %d step %d: delta makespan %v != full %v", model, seed, step, got, want)
		}
		for _, task := range tg.Tasks {
			if !tg.Live(task) {
				continue
			}
			gr, gs, ge := st.Times(task)
			wr, ws, we := ref.Times(task)
			if gr != wr || gs != ws || ge != we {
				t.Fatalf("%s seed %d step %d: task %d times (%v,%v,%v) != full (%v,%v,%v)",
					model, seed, step, task.ID, gr, gs, ge, wr, ws, we)
			}
		}
	}
	suffixBefore := st.Stats.SuffixTasks
	for step := 0; step < steps; step++ {
		op := draw()
		old := tg.Strat.Config(op.ID).Clone()
		check(step, st.ApplyDelta(tg.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))))
		if rng.Intn(2) == 0 {
			check(step, st.ApplyDelta(tg.ReplaceConfig(op.ID, old)))
		}
	}
	if st.Stats.Fallbacks != 0 {
		t.Fatalf("%s seed %d: %d fixpoint fallbacks (delta path not exercised)", model, seed, st.Stats.Fallbacks)
	}
	if st.Stats.SuffixTasks <= suffixBefore {
		t.Fatalf("%s seed %d: SuffixTasks did not accumulate (%d -> %d)", model, seed, suffixBefore, st.Stats.SuffixTasks)
	}
}

// TestScalePropertyLocalitySynth2k runs the locality-weighted walk on
// the synth-2k DAG — the always-on member of the pair; the 50k-task
// variant lives behind the scale build tag with the rest of the
// TestScaleProperty suite.
func TestScalePropertyLocalitySynth2k(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		scaleLocalityPropertyRun(t, "synth-2k", seed, 10)
	}
}

// TestSharedPlanConcurrentDeltaEqualsFull is the structure/state-split
// concurrency differential (run it under -race): one immutable Plan is
// shared by many goroutines, each owning a private Instance and a State
// cloned from the shared base timeline, each running an independent
// random mutation sequence. Every delta result must equal a full
// re-simulation of that goroutine's own graph, the base must stay
// bit-stable throughout, and read-only full simulations against the
// frozen base must agree with it from every goroutine.
func TestSharedPlanConcurrentDeltaEqualsFull(t *testing.T) {
	g := propRNN()
	topo := device.NewSingleNode(3, "P100")
	plan := taskgraph.Compile(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
	base := NewState(plan.Base())
	baseCost := base.Simulate()

	const workers = 8
	const steps = 12
	ops := g.ComputeOps()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Read-only sharing: a fresh full simulation against the
			// frozen base graph, concurrent with every other worker.
			if got := NewState(plan.Base()).Simulate(); got != baseCost {
				t.Errorf("worker %d: base simulation %v != %v", w, got, baseCost)
				return
			}
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			inst := plan.Instance()
			st := base.CloneFor(inst)
			if st.Makespan != baseCost {
				t.Errorf("worker %d: cloned state makespan %v != base %v", w, st.Makespan, baseCost)
				return
			}
			for step := 0; step < steps; step++ {
				op := ops[rng.Intn(len(ops))]
				cs := inst.ReplaceConfig(op.ID, config.RandomConfig(op, topo, rng))
				got := st.ApplyDelta(cs)
				// The reference full simulation reads inst but writes
				// only its own state — safe against st and every other
				// worker by construction.
				want := NewState(inst).Simulate()
				if got != want {
					t.Errorf("worker %d step %d (op %s): delta %v != full %v", w, step, op.Name, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := NewState(plan.Base()).Simulate(); got != baseCost {
		t.Fatalf("base timeline drifted after concurrent use: %v != %v", got, baseCost)
	}
}

// Property: adding parallelism never increases the critical-path lower
// bound's violation — i.e. simulation remains internally consistent as
// strategies vary from serial to maximally parallel.
func TestMakespanMonotonicitySanity(t *testing.T) {
	g := smallCNN()
	topo := device.NewSingleNode(4, "P100")
	// Serial strategy: everything on one device.
	serial := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		serial.Set(op.ID, config.OnDevice(op, 0))
	}
	tgSerial := taskgraph.Build(g, topo, serial, perfmodel.NewAnalyticModel(), taskgraph.Options{})
	serialMakespan := NewState(tgSerial).Simulate()
	// For the serial strategy (single resource, no comm), the makespan
	// must equal the serial bound exactly.
	if ub := SerialUpperBound(tgSerial); serialMakespan != ub {
		t.Fatalf("serial strategy makespan %v != serial bound %v", serialMakespan, ub)
	}
}
