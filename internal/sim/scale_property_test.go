//go:build scale

package sim

import "testing"

// TestScalePropertySynth50k is the heavyweight member of the
// TestScaleProperty suite: the same mutate/revert delta/full
// differential as TestScalePropertySynth2k, but on the full-size
// 50k-task synthetic class — the scale where the sparse timing state
// (paged copy-on-write pages, truncation rebuild) actually earns its
// keep. Each step prices a full 50k-task reference simulation, so the
// test runs only under the scale build tag (CI gives it a dedicated
// step: `go test -race -tags scale -run TestScaleProperty
// ./internal/sim/`).
func TestScalePropertySynth50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-task property walk is not a -short test")
	}
	scalePropertyRun(t, "synth-50k", 7, 6)
}

// TestScalePropertyLocalitySynth50k is the locality-weighted walk at
// the 50k-task scale: SuffixHint-weighted op draws concentrate the
// mutations where a locality-aware MCMC concentrates them — the late
// tail of the timeline, where the paged copy-on-write truncation does
// the least work — and the delta/full differential must stay
// bit-for-bit there too. Runs in the same dedicated CI step as the
// uniform 50k walk (`-run TestScaleProperty -tags scale`).
func TestScalePropertyLocalitySynth50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-task property walk is not a -short test")
	}
	scaleLocalityPropertyRun(t, "synth-50k", 7, 6)
}
