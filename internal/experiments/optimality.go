package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/search"
	"flexflow/internal/taskgraph"
)

// GlobalOptimality reproduces the first study of Section 8.4: on small
// executions (LeNet and a 2-step RNNLM variant on 4 devices) the global
// optimum is found by depth-first search with A*-style pruning, and the
// MCMC search discovers a strategy of the same cost.
func GlobalOptimality(ctx context.Context, scale Scale) *Table {
	t := &Table{
		ID:     "optimality-global",
		Title:  "Global optimality study (Section 8.4): DFS+prune vs MCMC",
		Header: []string{"model", "space-size", "explored", "pruned", "optimal-cost", "mcmc-cost", "mcmc-found-optimum"},
	}
	topo := device.NewSingleNode(4, "P100")
	cases := []struct {
		name  string
		graph func() *graph.Graph
	}{
		{"lenet", func() *graph.Graph { return models.LeNet(16) }},
		{"rnnlm-2step", func() *graph.Graph { return models.RNNLM(16, 2) }},
	}
	// The exhaustive DFS dominates this experiment by orders of
	// magnitude, so the parallelism goes inside it (Workers on
	// ExhaustiveOptions) rather than across the two cases.
	rows := make([][]string, len(cases))
	for i, c := range cases {
		g := c.graph()
		est := estimator()
		ex := search.Exhaustive(ctx, g, topo, est, search.ExhaustiveOptions{
			Enum:               enumForScale(scale, topo),
			MaxCandidatesPerOp: 6,
			Workers:            scale.Workers,
		})
		opts := scale.searchOpts()
		opts.MaxIters = 4000
		res := search.MCMC(ctx, g, topo, est, search.Initials(g, topo, scale.Seed, false), opts)
		found := res.BestCost <= ex.BestCost
		rows[i] = []string{
			c.name,
			fmt.Sprintf("%.2e", ex.SpaceSize),
			fmt.Sprintf("%d", ex.Explored),
			fmt.Sprintf("%d", ex.Pruned),
			ms(ex.BestCost), ms(res.BestCost),
			fmt.Sprintf("%v", found),
		}
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"the exhaustive space is restricted to 6 canonical candidates per op (the paper restricted to ~1e11 strategies)",
		"mcmc-found-optimum means MCMC matched or beat the restricted-space optimum")
	return t
}

// LocalOptimality reproduces the second study of Section 8.4: the
// strategies returned by the search are locally optimal — no single-op
// configuration change improves them — for the benchmarks on small
// device counts.
func LocalOptimality(ctx context.Context, scale Scale, modelNames []string, deviceCounts []int) *Table {
	t := &Table{
		ID:     "optimality-local",
		Title:  "Local optimality study (Section 8.4)",
		Header: []string{"model", "gpus", "best-cost", "neighbours-checked", "locally-optimal"},
	}
	if len(modelNames) == 0 {
		modelNames = []string{"lenet", "alexnet", "rnntc"}
	}
	if len(deviceCounts) == 0 {
		deviceCounts = []int{2, 4}
	}
	// One cell per (model, gpus) point, fanned out across the pool.
	type cell struct {
		name string
		g    *graph.Graph
		n    int
	}
	var cells []cell
	for _, name := range modelNames {
		spec, err := models.Get(name)
		if err != nil {
			panic(err)
		}
		g := scale.build(spec)
		for _, n := range deviceCounts {
			cells = append(cells, cell{name, g, n})
		}
	}
	t.Rows = scale.rows(len(cells), func(i int) []string {
		c := cells[i]
		topo := device.NewSingleNode(c.n, "P100")
		est := estimator()
		opts := scale.searchOpts()
		opts.MaxIters = 3000
		res := search.MCMC(ctx, c.g, topo, est, search.Initials(c.g, topo, scale.Seed, true), opts)
		// The optimizer finishes with a local-descent pass (see
		// search.Polish), so the returned strategy is locally
		// optimal by construction; verify it anyway.
		polished, polishedCost := search.Polish(ctx, c.g, topo, est, res.Best, search.PolishOptions{Enum: enumForScale(scale, topo), Workers: scale.Workers})
		if polishedCost < res.BestCost {
			res.Best, res.BestCost = polished, polishedCost
		}
		best, improving, checked := search.Neighborhood(c.g, topo, est, res.Best, enumForScale(scale, topo), taskgraph.Options{}, scale.Workers)
		locallyOpt := improving == nil || best >= res.BestCost
		return []string{
			c.name, fmt.Sprintf("%d", c.n), ms(res.BestCost),
			fmt.Sprintf("%d", checked), fmt.Sprintf("%v", locallyOpt),
		}
	})
	t.Notes = append(t.Notes, "paper: all returned strategies were locally optimal on 2/4/8 devices")
	return t
}
