package experiments

import (
	"fmt"
	"sort"
)

// runner produces the tables of one experiment at a scale.
type runner func(scale Scale) []*Table

var runners = map[string]runner{
	"table1": func(s Scale) []*Table { return []*Table{Table1()} },
	"fig7": func(s Scale) []*Table {
		return []*Table{Fig7(s, nil, nil)}
	},
	"fig8":   func(s Scale) []*Table { return []*Table{Fig8(s, 0)} },
	"fig9":   func(s Scale) []*Table { return []*Table{Fig9(s, 0)} },
	"fig10a": func(s Scale) []*Table { return []*Table{Fig10a(s)} },
	"fig10b": func(s Scale) []*Table { return []*Table{Fig10b(s, 0)} },
	"fig11":  func(s Scale) []*Table { return []*Table{Fig11(s, 0)} },
	"fig12":  func(s Scale) []*Table { return []*Table{Fig12(s, 0)} },
	"table4": func(s Scale) []*Table { return []*Table{Table4(s, nil)} },
	"optimality": func(s Scale) []*Table {
		return []*Table{GlobalOptimality(s), LocalOptimality(s, nil, nil)}
	},
	"case-inception": func(s Scale) []*Table { return []*Table{CaseStudy(s, "inception-v3")} },
	"case-nmt":       func(s Scale) []*Table { return []*Table{CaseStudy(s, "nmt")} },
	"profiling":      func(s Scale) []*Table { return []*Table{MeasuringCacheReport(s)} },
	"ablation-space": func(s Scale) []*Table { return []*Table{AblationSpace(s)} },
	"ablation-beta":  func(s Scale) []*Table { return []*Table{AblationBeta(s)} },
	"ablation-sync":  func(s Scale) []*Table { return []*Table{AblationSync(s)} },
}

// IDs lists available experiment names, sorted.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID ("all" runs everything in ID order).
func Run(id string, scale Scale) ([]*Table, error) {
	if id == "all" {
		var out []*Table
		for _, i := range IDs() {
			out = append(out, runners[i](scale)...)
		}
		return out, nil
	}
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and \"all\")", id, IDs())
	}
	return r(scale), nil
}
