package experiments

import (
	"context"
	"fmt"
	"sort"

	"flexflow/internal/par"
)

// runner produces the tables of one experiment at a scale. The context
// flows into every search the experiment runs, so cancelling it (^C on
// the CLI) stops the suite promptly with best-so-far strategies.
type runner func(ctx context.Context, scale Scale) []*Table

var runners = map[string]runner{
	"table1": func(ctx context.Context, s Scale) []*Table { return []*Table{Table1()} },
	"fig7": func(ctx context.Context, s Scale) []*Table {
		return []*Table{Fig7(ctx, s, nil, nil)}
	},
	"fig8":   func(ctx context.Context, s Scale) []*Table { return []*Table{Fig8(ctx, s, 0)} },
	"fig9":   func(ctx context.Context, s Scale) []*Table { return []*Table{Fig9(ctx, s, 0)} },
	"fig10a": func(ctx context.Context, s Scale) []*Table { return []*Table{Fig10a(ctx, s)} },
	"fig10b": func(ctx context.Context, s Scale) []*Table { return []*Table{Fig10b(ctx, s, 0)} },
	"fig11":  func(ctx context.Context, s Scale) []*Table { return []*Table{Fig11(s, 0)} },
	"fig12":  func(ctx context.Context, s Scale) []*Table { return []*Table{Fig12(ctx, s, 0)} },
	"table4": func(ctx context.Context, s Scale) []*Table { return []*Table{Table4(ctx, s, nil)} },
	"optimality": func(ctx context.Context, s Scale) []*Table {
		return []*Table{GlobalOptimality(ctx, s), LocalOptimality(ctx, s, nil, nil)}
	},
	"case-inception": func(ctx context.Context, s Scale) []*Table { return []*Table{CaseStudy(ctx, s, "inception-v3")} },
	"case-nmt":       func(ctx context.Context, s Scale) []*Table { return []*Table{CaseStudy(ctx, s, "nmt")} },
	"profiling":      func(ctx context.Context, s Scale) []*Table { return []*Table{MeasuringCacheReport(s)} },
	"ablation-space": func(ctx context.Context, s Scale) []*Table { return []*Table{AblationSpace(ctx, s)} },
	"ablation-beta":  func(ctx context.Context, s Scale) []*Table { return []*Table{AblationBeta(ctx, s)} },
	"ablation-sync":  func(ctx context.Context, s Scale) []*Table { return []*Table{AblationSync(s)} },
}

// IDs lists available experiment names, sorted.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// timingRunners measure wall-clock ratios (full vs delta simulation),
// so Run("all") holds them back until every pooled runner has finished:
// running them alongside CPU-saturating siblings would skew the very
// timings they report.
var timingRunners = map[string]bool{"fig12": true, "table4": true}

// Run executes one experiment by ID. "all" fans every runner out over
// the process-wide worker pool (each runner's own data-point loops nest
// onto the same pool under the one global bound) — except the
// wall-clock-ratio runners, which execute serially after the pooled
// runners finish — and still reports tables in ID order. Cancelling ctx cuts every in-flight search short; the
// tables produced so far are still returned.
func Run(ctx context.Context, id string, scale Scale) ([]*Table, error) {
	if id == "all" {
		ids := IDs()
		results := make([][]*Table, len(ids))
		var pooled []int
		for i, id := range ids {
			if !timingRunners[id] {
				pooled = append(pooled, i)
			}
		}
		par.ForEach(scale.Workers, len(pooled), func(k int) {
			i := pooled[k]
			results[i] = runners[ids[i]](ctx, scale)
		})
		for i, id := range ids {
			if timingRunners[id] {
				results[i] = runners[id](ctx, scale)
			}
		}
		var out []*Table
		for _, tabs := range results {
			out = append(out, tabs...)
		}
		return out, ctx.Err()
	}
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and \"all\")", id, IDs())
	}
	return r(ctx, scale), ctx.Err()
}
