package experiments

import (
	"fmt"
	"sort"

	"flexflow/internal/par"
)

// runner produces the tables of one experiment at a scale.
type runner func(scale Scale) []*Table

var runners = map[string]runner{
	"table1": func(s Scale) []*Table { return []*Table{Table1()} },
	"fig7": func(s Scale) []*Table {
		return []*Table{Fig7(s, nil, nil)}
	},
	"fig8":   func(s Scale) []*Table { return []*Table{Fig8(s, 0)} },
	"fig9":   func(s Scale) []*Table { return []*Table{Fig9(s, 0)} },
	"fig10a": func(s Scale) []*Table { return []*Table{Fig10a(s)} },
	"fig10b": func(s Scale) []*Table { return []*Table{Fig10b(s, 0)} },
	"fig11":  func(s Scale) []*Table { return []*Table{Fig11(s, 0)} },
	"fig12":  func(s Scale) []*Table { return []*Table{Fig12(s, 0)} },
	"table4": func(s Scale) []*Table { return []*Table{Table4(s, nil)} },
	"optimality": func(s Scale) []*Table {
		return []*Table{GlobalOptimality(s), LocalOptimality(s, nil, nil)}
	},
	"case-inception": func(s Scale) []*Table { return []*Table{CaseStudy(s, "inception-v3")} },
	"case-nmt":       func(s Scale) []*Table { return []*Table{CaseStudy(s, "nmt")} },
	"profiling":      func(s Scale) []*Table { return []*Table{MeasuringCacheReport(s)} },
	"ablation-space": func(s Scale) []*Table { return []*Table{AblationSpace(s)} },
	"ablation-beta":  func(s Scale) []*Table { return []*Table{AblationBeta(s)} },
	"ablation-sync":  func(s Scale) []*Table { return []*Table{AblationSync(s)} },
}

// IDs lists available experiment names, sorted.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// timingRunners measure wall-clock ratios (full vs delta simulation),
// so Run("all") holds them back until the concurrent pool has drained:
// running them alongside CPU-saturating siblings would skew the very
// timings they report.
var timingRunners = map[string]bool{"fig12": true, "table4": true}

// Run executes one experiment by ID. "all" runs every runner across the
// scale's worker pool (each runner also fans out its own data points
// against the same knob) — except the wall-clock-ratio runners, which
// execute serially after the pool drains — and still reports tables in
// ID order.
func Run(id string, scale Scale) ([]*Table, error) {
	if id == "all" {
		ids := IDs()
		results := make([][]*Table, len(ids))
		var pooled []int
		for i, id := range ids {
			if !timingRunners[id] {
				pooled = append(pooled, i)
			}
		}
		par.ForEach(scale.Workers, len(pooled), func(k int) {
			i := pooled[k]
			results[i] = runners[ids[i]](scale)
		})
		for i, id := range ids {
			if timingRunners[id] {
				results[i] = runners[id](scale)
			}
		}
		var out []*Table
		for _, tabs := range results {
			out = append(out, tabs...)
		}
		return out, nil
	}
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and \"all\")", id, IDs())
	}
	return r(scale), nil
}
