package experiments

import (
	"os"
	"runtime"
	"testing"

	"flexflow/internal/par"
)

// TestMain widens the process-wide pool for the whole test binary (the
// dev/CI machines can be single-core): with a floor of four workers,
// the harness's nested fan-out — runners × cells × chains × sweeps —
// is genuinely concurrent under -race instead of degenerating to
// inline serial loops.
func TestMain(m *testing.M) {
	if runtime.NumCPU() < 4 {
		par.SetWorkers(4)
	}
	os.Exit(m.Run())
}

// TestExperimentsPoolSizeDifferential renders the same experiment at
// pool sizes 1, 2 and NumCPU and requires byte-identical tables: the
// whole nested stack (experiment cells × MCMC chains inside each cell)
// executes on the shared pool, and since cells land in fixed row slots
// and search budgets are virtual-time, nothing observable may depend
// on the pool size. Fig7 is the experiment under test because its
// cells each run a multi-chain search — a real two-deep nesting on the
// pool, including the degenerate pool of one (which must complete
// inline: the deadlock-freedom guarantee). Not parallel by design: it
// owns the global pool knob while it runs.
func TestExperimentsPoolSizeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("three full experiment renders; skipped in -short")
	}
	prev := par.WorkerBound()
	defer par.SetWorkers(prev)

	scale := testScale()
	scale.SearchIters = 40
	render := func() string {
		return Fig7(bg, scale, []string{"alexnet", "lenet"}, []string{"P100"}).Render()
	}

	par.SetWorkers(1)
	ref := render()
	if ref == "" {
		t.Fatal("empty reference table")
	}
	tried := map[int]bool{1: true}
	for _, size := range []int{2, runtime.NumCPU(), 4} {
		if tried[size] {
			continue
		}
		tried[size] = true
		par.SetWorkers(size)
		if got := render(); got != ref {
			t.Errorf("pool=%d: table differs from pool=1\n--- pool=1 ---\n%s\n--- pool=%d ---\n%s", size, ref, size, got)
		}
	}
}
