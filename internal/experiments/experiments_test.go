package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

// bg is the context of every test experiment run.
var bg = context.Background()

// testScale is deliberately tiny so the whole suite runs in seconds.
// Workers is left at its zero value (NumCPU): together with t.Parallel()
// on every test this keeps the suite's wall clock near the single
// slowest experiment rather than the sum of all of them.
func testScale() Scale {
	return Scale{
		Name:         "test",
		ModelFactor:  16,
		DeviceCounts: []int{1, 4},
		SearchIters:  80,
		SearchBudget: 5 * time.Second,
		Seed:         1,
	}
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Header)
	return ""
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, tab, row, col), "ms"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTable1MatchesPaper(t *testing.T) {
	t.Parallel()
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// 1D pooling: attribute = width(length), channel; no parameter dims.
	if got := cell(t, tab, 0, "parameter"); got != "-" {
		t.Fatalf("pooling parameter dims = %q", got)
	}
	if got := cell(t, tab, 0, "attribute"); !strings.Contains(got, "channel") {
		t.Fatalf("pooling attributes = %q", got)
	}
	// 1D conv: channel is a parameter dim.
	if got := cell(t, tab, 1, "parameter"); got != "channel" {
		t.Fatalf("conv1d parameter = %q", got)
	}
	// Matmul: no attribute dims.
	if got := cell(t, tab, 3, "attribute"); got != "-" {
		t.Fatalf("matmul attributes = %q", got)
	}
	if tab.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig7Shape(t *testing.T) {
	t.Parallel()
	tab := Fig7(bg, testScale(), []string{"rnnlm"}, []string{"P100"})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		dp := cellFloat(t, tab, i, "data-parallel")
		ff := cellFloat(t, tab, i, "flexflow")
		if ff+1e-9 < dp {
			t.Fatalf("row %d: flexflow %v below data parallelism %v", i, ff, dp)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	t.Parallel()
	tab := Fig8(bg, testScale(), 4)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	dpTime := cellFloat(t, tab, 0, "per-iter-time")
	ffTime := cellFloat(t, tab, 2, "per-iter-time")
	if ffTime > dpTime {
		t.Fatalf("flexflow per-iter %v worse than data parallel %v", ffTime, dpTime)
	}
	dpXfer := cellFloat(t, tab, 0, "transfers(MB)")
	if dpXfer <= 0 {
		t.Fatal("data parallelism should transfer data")
	}
}

func TestFig9Shape(t *testing.T) {
	t.Parallel()
	tab := Fig9(bg, testScale(), 4)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	dp := cellFloat(t, tab, 0, "hours-to-target")
	ff := cellFloat(t, tab, 1, "hours-to-target")
	if ff > dp {
		t.Fatalf("flexflow training time %v exceeds baseline %v", ff, dp)
	}
}

func TestFig10aShape(t *testing.T) {
	t.Parallel()
	tab := Fig10a(bg, testScale())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if sp := cellFloat(t, tab, i, "speedup"); sp < 1 {
			t.Fatalf("row %d: FlexFlow slower than REINFORCE (%v)", i, sp)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	t.Parallel()
	tab := Fig10b(bg, testScale(), 4)
	for i := range tab.Rows {
		if sp := cellFloat(t, tab, i, "speedup"); sp < 1 {
			t.Fatalf("row %d: FlexFlow slower than OptCNN (%v)", i, sp)
		}
	}
}

func TestFig11AccuracyBound(t *testing.T) {
	t.Parallel()
	tab := Fig11(testScale(), 4)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if err := cellFloat(t, tab, i, "max-rel-err"); err > 30 {
			t.Fatalf("row %d: simulator error %.1f%% exceeds the 30%% bound", i, err)
		}
		if tau := cellFloat(t, tab, i, "order-concordance"); tau < 0.5 {
			t.Fatalf("row %d: poor order preservation (tau=%v)", i, tau)
		}
	}
}

// TestFig12AndTable4DeltaFaster asserts wall-clock ratios, so it is
// deliberately NOT t.Parallel(): sequential tests run alone in this
// binary (parallel ones are parked until they finish), keeping the
// full-vs-delta timing windows comparable.
func TestFig12AndTable4DeltaFaster(t *testing.T) {
	s := testScale()
	tab := Table4(bg, s, []string{"rnntc"})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := range tab.Rows {
		if sp := cellFloat(t, tab, i, "speedup"); sp <= 1 {
			t.Fatalf("row %d: delta not faster (speedup %v)", i, sp)
		}
	}
	fig := Fig12(bg, s, 4)
	if len(fig.Rows) < 4 {
		t.Fatalf("fig12 rows = %d", len(fig.Rows))
	}
}

func TestGlobalOptimality(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive DFS over ~1.7M leaves; skipped in -short")
	}
	t.Parallel()
	tab := GlobalOptimality(bg, testScale())
	for i := range tab.Rows {
		if got := cell(t, tab, i, "mcmc-found-optimum"); got != "true" {
			t.Fatalf("row %d (%s): MCMC missed the restricted-space optimum", i, tab.Rows[i][0])
		}
	}
}

func TestLocalOptimality(t *testing.T) {
	t.Parallel()
	tab := LocalOptimality(bg, testScale(), []string{"lenet"}, []int{2})
	for i := range tab.Rows {
		if got := cell(t, tab, i, "locally-optimal"); got != "true" {
			t.Fatalf("row %d: strategy not locally optimal", i)
		}
	}
}

func TestCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("8x search budget per model; skipped in -short")
	}
	t.Parallel()
	for _, model := range []string{"inception-v3", "nmt"} {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			tab := CaseStudy(bg, testScale(), model)
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty case study", model)
			}
			if len(tab.Notes) < 3 {
				t.Fatalf("%s: missing headline notes", model)
			}
		})
	}
}

func TestProfilingReport(t *testing.T) {
	t.Parallel()
	tab := MeasuringCacheReport(testScale())
	// The six paper benchmarks + LeNet + the three synthetic scale
	// probes (synth-2k/50k/100k), which stress the same observation two
	// orders of magnitude up: ~100k estimated tasks still collapse to a
	// handful of distinct signatures.
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		sigs := cellFloat(t, tab, i, "distinct-signatures")
		tasks := cellFloat(t, tab, i, "tasks-estimated")
		if sigs >= tasks {
			t.Fatalf("row %d: cache did not collapse signatures (%v sigs, %v tasks)", i, sigs, tasks)
		}
	}
}

func TestAblations(t *testing.T) {
	t.Parallel()
	s := testScale()
	space := AblationSpace(bg, s)
	if len(space.Rows) != 3 {
		t.Fatalf("space rows = %d", len(space.Rows))
	}
	// Full SOAP must be at least as good as any restriction.
	for i := range space.Rows {
		if r := cellFloat(t, space, i, "vs-SOAP"); r < 0.999 {
			t.Fatalf("restricted space beat SOAP: row %d ratio %v", i, r)
		}
	}
	beta := AblationBeta(bg, s)
	if len(beta.Rows) != 5 {
		t.Fatalf("beta rows = %d", len(beta.Rows))
	}
	sync := AblationSync(s)
	if len(sync.Rows) != 2 {
		t.Fatalf("sync rows = %d", len(sync.Rows))
	}
	ring := cellFloat(t, sync, 0, "per-iter-time")
	star := cellFloat(t, sync, 1, "per-iter-time")
	if star < ring {
		t.Fatalf("star sync (%v) should not beat ring (%v)", star, ring)
	}
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	ids := IDs()
	if len(ids) < 10 {
		t.Fatalf("ids = %v", ids)
	}
	if _, err := Run(bg, "no-such-exp", testScale()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	tabs, err := Run(bg, "table1", testScale())
	if err != nil || len(tabs) != 1 {
		t.Fatalf("Run(table1) = %v, %v", tabs, err)
	}
}

func TestRenderAlignment(t *testing.T) {
	t.Parallel()
	tab := &Table{ID: "x", Title: "y", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tab.Render()
	if !strings.Contains(out, "== x: y ==") || !strings.Contains(out, "note: n") {
		t.Fatalf("render = %q", out)
	}
}
