package experiments

import (
	"context"
	"fmt"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/search"
)

// Fig12 reproduces Figure 12: best-found strategy cost as a function of
// elapsed search time for the NMT model, comparing the optimizer running
// on the full simulation algorithm vs the delta simulation algorithm.
//
// Shape to match: both converge to comparable strategies, but the delta
// curve drops much earlier because each proposal costs a fraction of a
// full re-simulation.
//
// The two runs stay strictly sequential: the experiment's subject is
// their wall-clock ratio, which running them concurrently would skew.
func Fig12(ctx context.Context, scale Scale, gpus int) *Table {
	if gpus == 0 {
		gpus = 16
		if scale.ModelFactor > 1 {
			gpus = scale.DeviceCounts[len(scale.DeviceCounts)-1]
		}
	}
	spec, _ := models.Get("nmt")
	g := scale.build(spec)
	topo := device.ClusterFor("P100", gpus)

	t := &Table{
		ID:     "fig12",
		Title:  fmt.Sprintf("Search progress, full vs delta simulation (NMT, %d P100 GPUs)", gpus),
		Header: []string{"algorithm", "virtual-elapsed", "best-found"},
	}
	run := func(name string, full bool) time.Duration {
		est := estimator()
		opts := scale.searchOpts()
		opts.FullSim = full
		res := search.MCMC(ctx, g, topo, est, []*config.Strategy{config.DataParallel(g, topo)}, opts)
		// Sample the trace at a few points.
		step := len(res.Trace)/6 + 1
		for i := 0; i < len(res.Trace); i += step {
			p := res.Trace[i]
			t.Rows = append(t.Rows, []string{name, p.Elapsed.String(), ms(p.BestCost)})
		}
		last := res.Trace[len(res.Trace)-1]
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%v (end, %d iters)", res.SearchTime, res.Iters), ms(last.BestCost)})
		return res.SearchTime
	}
	fullTime := run("full", true)
	deltaTime := run("delta", false)
	t.Notes = append(t.Notes,
		fmt.Sprintf("wall-clock for the same proposal budget: full=%v delta=%v (%.1fx)",
			fullTime, deltaTime, float64(fullTime)/float64(deltaTime)),
		"virtual-elapsed is the chains' deterministic clock (calibrated per-proposal cost), so the trace replays exactly",
		"paper: full and delta terminate in 16 vs 6 minutes on NMT/16 P100")
	return t
}

// Table4 reproduces Table 4: end-to-end search time with the full vs the
// delta simulation algorithm across the benchmarks and device counts,
// with the delta speedup per cell.
//
// Shape to match: delta is consistently faster (paper: 2.2-6.9x) and its
// advantage grows with the number of devices.
func Table4(ctx context.Context, scale Scale, modelNames []string) *Table {
	t := &Table{
		ID:     "table4",
		Title:  "End-to-end search time: full vs delta simulation (seconds)",
		Header: []string{"model", "gpus", "full(s)", "delta(s)", "speedup"},
	}
	if len(modelNames) == 0 {
		for _, spec := range models.Benchmarks() {
			modelNames = append(modelNames, spec.Name)
		}
	}
	// One cell per (model, gpus) point, fanned out across the worker
	// pool. The full-vs-delta pair inside a cell runs back to back on
	// one goroutine so contention from sibling cells skews both sides
	// of the ratio alike.
	type cell struct {
		name string
		g    *graph.Graph
		n    int
	}
	var cells []cell
	for _, name := range modelNames {
		spec, err := models.Get(name)
		if err != nil {
			panic(err)
		}
		g := scale.build(spec)
		for _, n := range scale.DeviceCounts {
			if n < 2 {
				continue
			}
			cells = append(cells, cell{name, g, n})
		}
	}
	t.Rows = scale.rows(len(cells), func(i int) []string {
		c := cells[i]
		topo := device.ClusterFor("P100", c.n)
		timeFor := func(full bool) time.Duration {
			est := estimator()
			opts := scale.searchOpts()
			opts.FullSim = full
			opts.Budget = 0 // measure a fixed proposal budget
			res := search.MCMC(ctx, c.g, topo, est, []*config.Strategy{config.DataParallel(c.g, topo)}, opts)
			return res.SearchTime
		}
		fullT := timeFor(true)
		deltaT := timeFor(false)
		return []string{
			c.name, fmt.Sprintf("%d", c.n),
			fmt.Sprintf("%.3f", fullT.Seconds()),
			fmt.Sprintf("%.3f", deltaT.Seconds()),
			f2(float64(fullT) / float64(deltaT)),
		}
	})
	t.Notes = append(t.Notes, "paper: delta 2.2-6.9x faster, speedup grows with device count")
	return t
}
