package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
)

// Fig8 reproduces Figure 8: parallelization performance for the NMT
// model on the K80 cluster — per-iteration execution time (8a), total
// data transfers per iteration (8b), and total task computation time per
// iteration (8c) for data parallelism, the expert-designed strategy and
// FlexFlow.
//
// Shape to match: FlexFlow cuts per-iteration time ~1.7-2.4x and data
// transfers 2-5.5x; expert-designed achieves the lowest total compute
// (no intra-op parallelism, so no redundant work) but the worst
// balance, ending slower than FlexFlow overall.
func Fig8(ctx context.Context, scale Scale, gpus int) *Table {
	if gpus == 0 {
		gpus = scale.DeviceCounts[len(scale.DeviceCounts)-1]
	}
	spec, _ := models.Get("nmt")
	g := scale.build(spec)
	topo := device.ClusterFor("K80", gpus)
	est := estimator()

	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("NMT on %d K80 GPUs: time, transfers, compute", gpus),
		Header: []string{"strategy", "per-iter-time", "transfers(MB)", "sync(MB)", "compute-time"},
	}
	add := func(name string, s *config.Strategy) {
		iter, m := evaluate(g, topo, est, s)
		t.Rows = append(t.Rows, []string{
			name, ms(iter),
			f1(float64(m.CommBytes) / 1e6),
			f1(float64(m.SyncBytes) / 1e6),
			ms(m.ComputeTime),
		})
	}
	add("data-parallel", config.DataParallel(g, topo))
	add("expert-designed", config.Expert(g, topo))
	best, _, _ := flexflowStrategy(ctx, g, topo, est, scale)
	add("flexflow", best)
	t.Notes = append(t.Notes,
		"paper (64 K80): per-iter 1.9/2.6/1.1 s; transfers 65.8/24.2/12.1 GB; compute 35.7/28.2/28.7 s")
	return t
}
