package experiments

import (
	"context"
	"fmt"
	"math"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
)

// Fig9 reproduces Figure 9: the end-to-end training curve of
// Inception-v3 on 16 P100 GPUs, FlexFlow vs the data-parallel baseline
// (standing in for TensorFlow, whose data-parallel throughput FlexFlow
// matched or beat in Section 8.2.1).
//
// Both systems run the same computation, so the loss-vs-samples curve is
// identical; only seconds-per-iteration differ. We model the loss curve
// as the standard power-law decay fitted to Inception-style training and
// report loss as a function of wall-clock time for both systems. The
// shape to match: FlexFlow reaches the target loss with ~38% less
// training time.
func Fig9(ctx context.Context, scale Scale, gpus int) *Table {
	if gpus == 0 {
		gpus = 16
		if scale.ModelFactor > 1 {
			gpus = scale.DeviceCounts[len(scale.DeviceCounts)-1]
		}
	}
	spec, _ := models.Get("inception-v3")
	g := scale.build(spec)
	topo := device.ClusterFor("P100", gpus)
	est := estimator()

	dpTime, _ := evaluate(g, topo, est, config.DataParallel(g, topo))
	_, ffTime, _ := flexflowStrategy(ctx, g, topo, est, scale)

	// Loss model: statistical efficiency is identical across systems;
	// loss(iter) = floor + amp * iter^-alpha (power-law fit shaped like
	// the paper's curve from ~10 down to ~2).
	loss := func(iter float64) float64 {
		if iter < 1 {
			iter = 1
		}
		return 1.8 + 8.2*math.Pow(iter, -0.35)
	}
	const targetLoss = 2.2 // proxy for 72% top-1 accuracy
	// Iterations needed to reach the target (same for both systems).
	itersNeeded := math.Pow(8.2/(targetLoss-1.8), 1/0.35)

	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Inception-v3 end-to-end training on %d P100 GPUs", gpus),
		Header: []string{"system", "sec/iter", "iters-to-target", "hours-to-target", "time-saved"},
	}
	dpHours := dpTime.Seconds() * itersNeeded / 3600
	ffHours := ffTime.Seconds() * itersNeeded / 3600
	t.Rows = append(t.Rows, []string{"data-parallel (TensorFlow)", fmt.Sprintf("%.4f", dpTime.Seconds()), f1(itersNeeded), fmt.Sprintf("%.3f", dpHours), "-"})
	t.Rows = append(t.Rows, []string{"flexflow", fmt.Sprintf("%.4f", ffTime.Seconds()), f1(itersNeeded), fmt.Sprintf("%.3f", ffHours),
		fmt.Sprintf("%.0f%%", 100*(1-ffHours/dpHours))})

	// Loss-curve samples (training time in equal fractions of the
	// baseline's horizon), mirroring the figure's two curves.
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		hours := dpHours * frac
		dpLoss := loss(hours * 3600 / dpTime.Seconds())
		ffLoss := loss(hours * 3600 / ffTime.Seconds())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("loss@%.3fh", hours), "-", "-",
			fmt.Sprintf("dp=%.3f", dpLoss),
			fmt.Sprintf("ff=%.3f", ffLoss),
		})
	}
	t.Notes = append(t.Notes, "paper: FlexFlow reduces end-to-end training time by 38% vs TensorFlow")
	return t
}
