package experiments

import (
	"strings"

	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Table1 reproduces Table 1 of the paper: the parallelizable dimensions
// of representative operations, classified into Sample, Attribute and
// Parameter dimensions.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Parallelizable dimensions per operation (Table 1)",
		Header: []string{"operation", "sample", "attribute", "parameter"},
	}
	g := graph.New("table1")
	// 1D pooling / 1D convolution modelled as height-1 2D ops, matching
	// the table's length/channel naming.
	img1d := g.InputTensor("x1d", tensor.MakeShape(
		tensor.D(graph.DimSample, 64, tensor.Sample),
		tensor.D(graph.DimChannel, 32, tensor.Unsplittable),
		tensor.D(graph.DimHeight, 1, tensor.Attribute),
		tensor.D(graph.DimWidth, 128, tensor.Attribute),
	))
	pool1d := g.Pool2D("pool1d", img1d, 1, 2, 1, 2, 0, 0)
	conv1d := g.Conv2D("conv1d", img1d, 64, 1, 3, 1, 1, 0, 1)
	img2d := g.Input4D("x2d", 64, 3, 32, 32)
	conv2d := g.Conv2D("conv2d", img2d, 64, 3, 3, 1, 1, 1, 1)
	flat := g.Flatten("flat", img2d)
	mm := g.Dense("matmul", flat, 256)

	for _, c := range []struct {
		label string
		op    *graph.Op
	}{
		{"1D pooling", pool1d},
		{"1D convolution", conv1d},
		{"2D convolution", conv2d},
		{"Matrix multiplication", mm},
	} {
		var s, a, p []string
		for _, d := range c.op.Out.Dims {
			if d.Size <= 1 {
				continue
			}
			switch d.Kind {
			case tensor.Sample:
				s = append(s, d.Name)
			case tensor.Attribute:
				a = append(a, d.Name)
			case tensor.Parameter:
				p = append(p, d.Name)
			}
		}
		t.Rows = append(t.Rows, []string{c.label, join(s), join(a), join(p)})
	}
	t.Notes = append(t.Notes,
		"paper: pooling {length, channel} are attributes; conv channel is a parameter dim; matmul has no attribute dims")
	return t
}

func join(xs []string) string {
	if len(xs) == 0 {
		return "-"
	}
	return strings.Join(xs, ", ")
}
