package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/search"
	"flexflow/internal/tensor"
)

// CaseStudy reproduces the Section 8.5 case studies (Figures 13 and 14):
// the best discovered strategy for Inception-v3 or NMT on four P100
// GPUs, rendered per layer group, plus the headline reductions against
// data parallelism (Inception-v3: -75% parameter synchronization cost,
// -12% per-iteration time).
func CaseStudy(ctx context.Context, scale Scale, model string) *Table {
	spec, err := models.Get(model)
	if err != nil {
		panic(err)
	}
	g := scale.build(spec)
	topo := device.NewSingleNode(4, "P100")
	est := estimator()

	dpTime, dpMetrics := evaluate(g, topo, est, config.DataParallel(g, topo))
	// The case studies inspect strategy *structure*, so give the search
	// a larger budget than the sweep experiments and finish with a
	// local-descent pass.
	opts := scale.searchOpts()
	opts.MaxIters *= 8
	opts.Budget *= 2
	res := search.MCMC(ctx, g, topo, est, search.Initials(g, topo, scale.Seed, true), opts)
	best, ffTime := res.Best, res.BestCost
	if polished, cost := search.Polish(ctx, g, topo, est, best, search.PolishOptions{Enum: enumForScale(scale, topo), MaxRounds: 2, Workers: scale.Workers}); cost < ffTime {
		best, ffTime = polished, cost
	}
	_, ffMetrics := evaluate(g, topo, est, best)

	t := &Table{
		ID:     "case-" + model,
		Title:  fmt.Sprintf("Best discovered strategy for %s on 4 P100 GPUs (Figures 13/14)", model),
		Header: []string{"layer-group", "ops", "typical-config"},
	}
	// Group ops by name prefix (the layer grouping of the figures).
	groups := map[string][]*graph.Op{}
	var order []string
	for _, op := range g.ComputeOps() {
		key := groupName(op.Name)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], op)
	}
	for _, key := range order {
		ops := groups[key]
		t.Rows = append(t.Rows, []string{
			key, fmt.Sprintf("%d", len(ops)), describeConfig(ops[0], best.Config(ops[0].ID)),
		})
	}
	syncReduction := 0.0
	if dpMetrics.SyncBytes > 0 {
		syncReduction = 1 - float64(ffMetrics.SyncBytes)/float64(dpMetrics.SyncBytes)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-iteration: data-parallel %s -> flexflow %s (%.0f%% faster)",
			ms(dpTime), ms(ffTime), 100*(1-float64(ffTime)/float64(dpTime))),
		fmt.Sprintf("parameter synchronization: %.1f MB -> %.1f MB (%.0f%% reduction)",
			float64(dpMetrics.SyncBytes)/1e6, float64(ffMetrics.SyncBytes)/1e6, 100*syncReduction),
		"paper (Inception-v3, 4 P100): -75% sync cost, -12% per-iteration time")
	return t
}

// groupName collapses op names into figure-style layer groups
// ("enc/lstm0.t17" -> "enc/lstm0", "mixedA1/5x5b" -> "mixedA1").
func groupName(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i]
	}
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		if strings.HasPrefix(name, "mixed") || strings.HasPrefix(name, "stem") || strings.HasPrefix(name, "stage") {
			return name[:i]
		}
	}
	return name
}

// describeConfig renders a config the way the figures annotate them:
// per-dimension parallelism plus the devices used.
func describeConfig(op *graph.Op, c *config.Config) string {
	if c == nil {
		return "-"
	}
	var parts []string
	for i, d := range c.Degrees {
		if d > 1 {
			parts = append(parts, fmt.Sprintf("%s x%d (%s)", op.Out.Dims[i].Name, d, kindLetter(op.Out.Kind(i))))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "unpartitioned")
	}
	devs := map[int]bool{}
	for _, d := range c.Devices {
		devs[d] = true
	}
	ids := make([]int, 0, len(devs))
	for d := range devs {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	return fmt.Sprintf("%s on GPUs %v", strings.Join(parts, ", "), ids)
}

func kindLetter(k tensor.DimKind) string {
	switch k {
	case tensor.Sample:
		return "S"
	case tensor.Attribute:
		return "A"
	case tensor.Parameter:
		return "P"
	default:
		return "?"
	}
}
