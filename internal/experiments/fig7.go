package experiments

import (
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
)

// Fig7 reproduces Figure 7: per-iteration training throughput
// (samples/sec/GPU) for the six DNN benchmarks across device counts on
// both clusters, comparing data parallelism, the expert-designed
// strategy, and the strategy found by FlexFlow.
//
// The shape to match: FlexFlow >= max(data parallel, expert) everywhere;
// ResNet-101 tracks data parallelism closely; the parameter-heavy RNNs
// and AlexNet's dense layers make data parallelism fall off with device
// count while FlexFlow degrades much more slowly.
func Fig7(scale Scale, modelNames []string, clusters []string) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Per-iteration training throughput (samples/sec/GPU)",
		Header: []string{"model", "cluster", "gpus", "data-parallel", "expert", "flexflow", "speedup-vs-dp"},
	}
	if len(modelNames) == 0 {
		for _, spec := range models.Benchmarks() {
			modelNames = append(modelNames, spec.Name)
		}
	}
	if len(clusters) == 0 {
		clusters = []string{"P100", "K80"}
	}
	for _, name := range modelNames {
		spec, err := models.Get(name)
		if err != nil {
			panic(err)
		}
		g := scale.build(spec)
		batch := g.Ops[0].Out.Size(0)
		for _, cluster := range clusters {
			for _, n := range scale.DeviceCounts {
				topo := device.ClusterFor(cluster, n)
				// Restrict to the first n GPUs on multi-node clusters
				// whose node count rounds up.
				if len(topo.GPUs()) < n {
					continue
				}
				est := estimator()
				dpTime, _ := evaluate(g, topo, est, config.DataParallel(g, topo))
				exTime, _ := evaluate(g, topo, est, config.Expert(g, topo))
				_, ffTime, _ := flexflowStrategy(g, topo, est, scale)

				t.Rows = append(t.Rows, []string{
					name, cluster, fmt.Sprintf("%d", n),
					f1(throughput(batch, dpTime, n)),
					f1(throughput(batch, exTime, n)),
					f1(throughput(batch, ffTime, n)),
					f2(float64(dpTime) / float64(ffTime)),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"dashed 'ideal' lines of the paper correspond to constant samples/sec/GPU",
		fmt.Sprintf("scale=%s (model factor %d, search iters %d)", scale.Name, scale.ModelFactor, scale.SearchIters))
	return t
}
