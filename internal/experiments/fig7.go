package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
)

// Fig7 reproduces Figure 7: per-iteration training throughput
// (samples/sec/GPU) for the six DNN benchmarks across device counts on
// both clusters, comparing data parallelism, the expert-designed
// strategy, and the strategy found by FlexFlow.
//
// The shape to match: FlexFlow >= max(data parallel, expert) everywhere;
// ResNet-101 tracks data parallelism closely; the parameter-heavy RNNs
// and AlexNet's dense layers make data parallelism fall off with device
// count while FlexFlow degrades much more slowly.
func Fig7(ctx context.Context, scale Scale, modelNames []string, clusters []string) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Per-iteration training throughput (samples/sec/GPU)",
		Header: []string{"model", "cluster", "gpus", "data-parallel", "expert", "flexflow", "speedup-vs-dp"},
	}
	if len(modelNames) == 0 {
		for _, spec := range models.Benchmarks() {
			modelNames = append(modelNames, spec.Name)
		}
	}
	if len(clusters) == 0 {
		clusters = []string{"P100", "K80"}
	}
	// One cell per (model, cluster, gpus) point; cells are independent,
	// so they run across the scale's worker pool and land in fixed row
	// slots.
	type cell struct {
		name    string
		g       *graph.Graph
		batch   int
		cluster string
		n       int
	}
	var cells []cell
	for _, name := range modelNames {
		spec, err := models.Get(name)
		if err != nil {
			panic(err)
		}
		g := scale.build(spec)
		batch := g.Ops[0].Out.Size(0)
		for _, cluster := range clusters {
			for _, n := range scale.DeviceCounts {
				cells = append(cells, cell{name, g, batch, cluster, n})
			}
		}
	}
	t.Rows = scale.rows(len(cells), func(i int) []string {
		c := cells[i]
		topo := device.ClusterFor(c.cluster, c.n)
		// Restrict to the first n GPUs on multi-node clusters whose
		// node count rounds up.
		if len(topo.GPUs()) < c.n {
			return nil
		}
		est := estimator()
		dpTime, _ := evaluate(c.g, topo, est, config.DataParallel(c.g, topo))
		exTime, _ := evaluate(c.g, topo, est, config.Expert(c.g, topo))
		_, ffTime, _ := flexflowStrategy(ctx, c.g, topo, est, scale)

		return []string{
			c.name, c.cluster, fmt.Sprintf("%d", c.n),
			f1(throughput(c.batch, dpTime, c.n)),
			f1(throughput(c.batch, exTime, c.n)),
			f1(throughput(c.batch, ffTime, c.n)),
			f2(float64(dpTime) / float64(ffTime)),
		}
	})
	t.Notes = append(t.Notes,
		"dashed 'ideal' lines of the paper correspond to constant samples/sec/GPU",
		fmt.Sprintf("scale=%s (model factor %d, search iters %d)", scale.Name, scale.ModelFactor, scale.SearchIters))
	return t
}
