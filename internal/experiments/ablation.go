package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
	"flexflow/internal/search"
	"flexflow/internal/taskgraph"
)

// AblationSpace quantifies where the SOAP win comes from by restricting
// the proposal space: Sample only (data-parallel placement), Sample +
// Parameter, and the full SOAP space, on a parameter-heavy RNN where the
// extra dimensions matter.
func AblationSpace(ctx context.Context, scale Scale) *Table {
	spec, _ := models.Get("rnnlm")
	g := scale.build(spec)
	gpus := scale.DeviceCounts[len(scale.DeviceCounts)-1]
	topo := device.ClusterFor("P100", gpus)

	t := &Table{
		ID:     "ablation-space",
		Title:  fmt.Sprintf("Search-space ablation (RNNLM, %d P100 GPUs)", gpus),
		Header: []string{"space", "best-cost", "vs-SOAP"},
	}
	costs := map[string]float64{}
	// The full SOAP space strictly contains the restricted spaces, so
	// the SOAP run also receives the restricted winners as initial
	// candidates — the structural guarantee that SOAP only adds options.
	// That feed-forward of winners makes the loop inherently sequential;
	// the parallelism here lives inside each MCMC call instead.
	initials := []*config.Strategy{config.DataParallel(g, topo)}
	for _, c := range []struct {
		name  string
		space search.Space
	}{
		{"S (sample only)", search.SpaceSample},
		{"S+P (sample+parameter)", search.SpaceSampleParam},
		{"SOAP (full)", search.SpaceSOAP},
	} {
		est := estimator()
		opts := scale.searchOpts()
		opts.Space = c.space
		res := search.MCMC(ctx, g, topo, est, initials, opts)
		costs[c.name] = res.BestCost.Seconds()
		t.Rows = append(t.Rows, []string{c.name, ms(res.BestCost), ""})
		initials = append(initials, res.Best)
	}
	soap := costs["SOAP (full)"]
	for i := range t.Rows {
		t.Rows[i][2] = f2(costs[t.Rows[i][0]] / soap)
	}
	t.Notes = append(t.Notes, "ratios > 1 mean the restricted space found a slower strategy than full SOAP")
	return t
}

// AblationBeta sweeps the Metropolis-Hastings temperature to show the
// search is robust across a broad range of beta (Section 6.1's "a
// constant that can be chosen").
func AblationBeta(ctx context.Context, scale Scale) *Table {
	spec, _ := models.Get("inception-v3")
	g := scale.build(spec)
	topo := device.NewSingleNode(4, "P100")

	t := &Table{
		ID:     "ablation-beta",
		Title:  "MCMC temperature sweep (Inception-v3, 4 P100 GPUs)",
		Header: []string{"beta", "best-cost", "accept-rate"},
	}
	// The sweep points are independent single-chain searches; fan them
	// out across the pool into fixed row slots.
	betas := []float64{1, 5, 15, 50, 1e6}
	t.Rows = scale.rows(len(betas), func(i int) []string {
		beta := betas[i]
		est := estimator()
		opts := scale.searchOpts()
		opts.Beta = beta
		res := search.MCMC(ctx, g, topo, est, []*config.Strategy{config.DataParallel(g, topo)}, opts)
		rate := 0.0
		if res.Iters > 0 {
			rate = float64(res.Accepted) / float64(res.Iters)
		}
		return []string{fmt.Sprintf("%g", beta), ms(res.BestCost), f2(rate)}
	})
	t.Notes = append(t.Notes, "beta=1e6 is effectively greedy; low beta accepts most regressions")
	return t
}

// AblationSync compares ring vs star (parameter-server style) gradient
// synchronization under data parallelism, the task-graph design choice
// behind taskgraph.Options.StarSync.
func AblationSync(scale Scale) *Table {
	spec, _ := models.Get("rnnlm")
	g := scale.build(spec)
	gpus := scale.DeviceCounts[len(scale.DeviceCounts)-1]
	topo := device.ClusterFor("P100", gpus)
	est := estimator()

	t := &Table{
		ID:     "ablation-sync",
		Title:  fmt.Sprintf("Ring vs star parameter synchronization (RNNLM, data parallel, %d GPUs)", gpus),
		Header: []string{"scheme", "per-iter-time", "sync-traffic(MB)"},
	}
	for _, c := range []struct {
		name string
		opts taskgraph.Options
	}{
		{"ring all-reduce", taskgraph.Options{}},
		{"star (parameter server)", taskgraph.Options{StarSync: true}},
	} {
		iter, m := search.Evaluate(g, topo, est, config.DataParallel(g, topo), c.opts)
		t.Rows = append(t.Rows, []string{c.name, ms(iter), f1(float64(m.SyncBytes) / 1e6)})
	}
	t.Notes = append(t.Notes, "both move 2(n-1)S bytes total; the star serializes at the primary device")
	return t
}
