// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8). Each experiment builds the relevant models,
// clusters and strategies, runs the simulator/optimizer/runtime, and
// returns a Table whose rows mirror what the paper plots.
// docs/EXPERIMENTS.md maps each experiment ID to its paper artifact,
// CLI invocation and output shape.
//
// The harness is concurrent: the registry's runners (under "all") and
// each experiment's independent data points — Fig7's (model, cluster,
// gpus) cells, Fig11's (model, topology) cells, Table4's (model, gpus)
// cells, and so on — fan out over the single process-wide worker pool
// (internal/par), while each cell's searches in turn fan their MCMC
// chains and Neighborhood sweeps onto the same pool. The nesting
// (runners × cells × chains × sweeps) composes under one global bound
// (par.SetWorkers) via caller-runs scheduling instead of multiplying
// pools per level; docs/CONCURRENCY.md has the full contract. Cells
// write rows into fixed positions, so row order never depends on
// scheduling, and since search budgets are charged in deterministic
// virtual time (see the search package's determinism contract), the
// tables are byte-identical to the serial run — budgeted or not, for
// every pool size. The only experiments left serial are the ones that
// measure wall-clock ratios between two timed runs (Fig12) or chain
// results into the next cell's inputs (the search-space ablation).
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
	"flexflow/internal/search"
	"flexflow/internal/taskgraph"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects experiment sizing. Quick runs use reduced models, fewer
// device counts and small search budgets so the whole suite finishes in
// minutes on a laptop; Full uses the paper's settings (batch 64/256, 40
// unroll steps, up to 64 GPUs) and takes correspondingly longer.
type Scale struct {
	Name string
	// ModelFactor divides batch size and unroll steps (1 = paper scale).
	ModelFactor int
	// DeviceCounts are the GPU counts swept in Figure 7 / Table 4.
	DeviceCounts []int
	// SearchIters caps MCMC proposals per initial strategy.
	SearchIters int
	// SearchBudget caps virtual search time per search (0 = none);
	// virtual budgets stop at a fixed proposal count, so budgeted runs
	// replay exactly.
	SearchBudget time.Duration
	// Seed drives all randomized components.
	Seed int64
	// Workers caps the harness's share of the process-wide worker pool
	// at every level it fans out — the registry's runners under
	// Run("all"), each experiment's per-data-point loops, and the
	// chains/subtrees inside each search (0 = the pool's full bound).
	// All levels draw from the one shared pool, so nesting (runners x
	// cells x chains) composes under the single global bound instead of
	// multiplying. Cells are computed into fixed row slots, so row
	// order never depends on scheduling, and the tables are identical
	// for every Workers value and every pool size (the searches are
	// worker-count deterministic, budgeted or not).
	//
	// Deprecated: size the shared pool once with par.SetWorkers instead
	// of capping the harness.
	Workers int
}

// Quick is the default scale for tests, benches and demos.
func Quick() Scale {
	return Scale{
		Name:         "quick",
		ModelFactor:  8,
		DeviceCounts: []int{1, 4, 8},
		SearchIters:  250,
		SearchBudget: 10 * time.Second,
		Seed:         1,
	}
}

// Full approximates the paper's settings. Expect multi-hour runtimes for
// the complete sweep on a laptop-class machine.
func Full() Scale {
	return Scale{
		Name:         "full",
		ModelFactor:  1,
		DeviceCounts: []int{1, 2, 4, 8, 16, 32, 64},
		SearchIters:  5000,
		SearchBudget: 3 * time.Minute,
		Seed:         1,
	}
}

// build constructs a model at the experiment scale.
func (s Scale) build(spec models.Spec) *graph.Graph {
	return spec.BuildScaled(s.ModelFactor)
}

// searchOpts returns the optimizer configuration for this scale.
func (s Scale) searchOpts() search.Options {
	o := search.DefaultOptions()
	o.MaxIters = s.SearchIters
	o.Budget = s.SearchBudget
	o.Seed = s.Seed
	o.Workers = s.Workers
	return o
}

// forEach runs fn(i) for every cell index in [0, n) across the scale's
// worker pool. Cells write rows positionally so table order never
// depends on scheduling.
func (s Scale) forEach(n int, fn func(i int)) {
	par.ForEach(s.Workers, n, fn)
}

// rows computes n table rows across the worker pool, one cell per
// index, and returns them in index order; a cell may return nil to
// skip its row (e.g. a device count a cluster cannot provide).
func (s Scale) rows(n int, cell func(i int) []string) [][]string {
	out := make([][]string, n)
	s.forEach(n, func(i int) { out[i] = cell(i) })
	rows := out[:0]
	for _, r := range out {
		if r != nil {
			rows = append(rows, r)
		}
	}
	return rows
}

// estimator returns the shared performance model. A MeasuringEstimator
// wrapping the analytic device model reproduces the paper's
// measure-once-per-signature profiling flow.
func estimator() perfmodel.Estimator {
	analytic := perfmodel.NewAnalyticModel()
	return perfmodel.NewMeasuringEstimator(analytic.ExecTime, 1)
}

// flexflowStrategy runs the FlexFlow search for a model on a topology
// and returns the best strategy with its simulated iteration time.
func flexflowStrategy(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, scale Scale) (*config.Strategy, time.Duration, search.Result) {
	res := search.MCMC(ctx, g, topo, est, search.Initials(g, topo, scale.Seed, true), scale.searchOpts())
	return res.Best, res.BestCost, res
}

// throughput converts an iteration time into samples/sec/GPU.
func throughput(batch int, iter time.Duration, gpus int) float64 {
	if iter <= 0 {
		return 0
	}
	return float64(batch) / iter.Seconds() / float64(gpus)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func ms(d time.Duration) string { return fmt.Sprintf("%.3fms", float64(d)/1e6) }

// enumForScale bounds config enumeration (OptCNN candidates, neighbour
// checks) so dynamic programming over per-op candidate sets stays
// tractable at each scale.
func enumForScale(scale Scale, topo *device.Topology) config.EnumOptions {
	max := 8
	if scale.ModelFactor > 1 {
		max = 4
	}
	if n := len(topo.GPUs()); max > n {
		max = n
	}
	return config.EnumOptions{MaxDegree: max}
}

// evaluate builds and simulates a strategy, returning its iteration time
// and metrics.
func evaluate(g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, s *config.Strategy) (time.Duration, taskgraph.Metrics) {
	return search.Evaluate(g, topo, est, s, taskgraph.Options{})
}
