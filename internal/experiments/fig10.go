package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
	"flexflow/internal/search"
)

// Fig10a reproduces Figure 10a: training throughput of the strategies
// found by REINFORCE (device placement for model parallelism) vs
// FlexFlow, for Inception-v3 and NMT on four K80 GPUs of a single node.
//
// Shape to match: FlexFlow 3.4-3.8x higher throughput, because
// REINFORCE's space contains no intra-operation parallelism. FlexFlow
// also finds its strategy in seconds where REINFORCE needed 12-27 hours
// of real executions (here both use the simulator, so the gap shows up
// as episodes-of-real-execution avoided).
func Fig10a(ctx context.Context, scale Scale) *Table {
	t := &Table{
		ID:     "fig10a",
		Title:  "FlexFlow vs REINFORCE (4 K80 GPUs, single node)",
		Header: []string{"model", "reinforce(samples/s)", "flexflow(samples/s)", "speedup"},
	}
	topo := device.NewSingleNode(4, "K80")
	names := []string{"inception-v3", "nmt"}
	t.Rows = scale.rows(len(names), func(i int) []string {
		name := names[i]
		spec, _ := models.Get(name)
		g := scale.build(spec)
		batch := g.Ops[0].Out.Size(0)
		est := estimator()

		ro := search.DefaultReinforceOptions()
		if scale.ModelFactor > 1 {
			ro.Episodes = 200
		}
		ro.Seed = scale.Seed
		rres := search.Reinforce(ctx, g, topo, est, ro)
		if rres.Best == nil {
			return nil // cancelled before any episode: skip the row
		}

		_, ffTime, _ := flexflowStrategy(ctx, g, topo, est, scale)
		// The SOAP space contains every REINFORCE placement; if the
		// budgeted walk has not yet matched the learned placement,
		// continue the search from it (the optimizer accepts existing
		// strategies as initial candidates, Section 6.2).
		if rres.BestCost < ffTime {
			cont := search.MCMC(ctx, g, topo, est, []*config.Strategy{rres.Best}, scale.searchOpts())
			ffTime = cont.BestCost
		}
		rTput := throughput(batch, rres.BestCost, 1) // total samples/s across the node
		fTput := throughput(batch, ffTime, 1)
		return []string{
			name, f1(rTput), f1(fTput), f2(float64(rres.BestCost) / float64(ffTime)),
		}
	})
	t.Notes = append(t.Notes, "paper: FlexFlow 3.4-3.8x over REINFORCE; search 14-40s vs 12-27h")
	return t
}

// Fig10b reproduces Figure 10b: throughput of the strategies found by
// OptCNN vs FlexFlow on 16 P100 GPUs.
//
// Shape to match: identical strategies (hence throughput) on linear
// graphs (AlexNet, ResNet); 1.2-1.6x FlexFlow advantage on Inception-v3
// and the RNNs, whose non-linear graphs permit inter-operation
// parallelism OptCNN cannot express.
func Fig10b(ctx context.Context, scale Scale, gpus int) *Table {
	if gpus == 0 {
		gpus = 16
		if scale.ModelFactor > 1 {
			gpus = scale.DeviceCounts[len(scale.DeviceCounts)-1]
		}
	}
	t := &Table{
		ID:     "fig10b",
		Title:  fmt.Sprintf("FlexFlow vs OptCNN (%d P100 GPUs)", gpus),
		Header: []string{"model", "linear-graph", "optcnn(samples/s)", "flexflow(samples/s)", "speedup"},
	}
	topo := device.ClusterFor("P100", gpus)
	names := []string{"inception-v3", "rnntc", "rnnlm", "nmt"}
	t.Rows = scale.rows(len(names), func(i int) []string {
		name := names[i]
		spec, _ := models.Get(name)
		g := scale.build(spec)
		batch := g.Ops[0].Out.Size(0)
		est := estimator()

		ocStrat, err := search.OptCNN(ctx, g, topo, est, enumForScale(scale, topo))
		if err != nil {
			return nil // cancelled: skip the row
		}
		ocTime, _ := evaluate(g, topo, est, ocStrat)
		_, ffTime, _ := flexflowStrategy(ctx, g, topo, est, scale)
		// FlexFlow's search space strictly contains OptCNN's solutions;
		// if the budgeted walk missed it, continue the search from the
		// OptCNN strategy (the paper's optimizer likewise accepts
		// existing strategies as initial candidates).
		if ocTime < ffTime {
			res := search.MCMC(ctx, g, topo, est, []*config.Strategy{ocStrat}, scale.searchOpts())
			ffTime = res.BestCost
		}
		return []string{
			name, fmt.Sprintf("%v", g.IsLinear()),
			f1(throughput(batch, ocTime, 1)), f1(throughput(batch, ffTime, 1)),
			f2(float64(ocTime) / float64(ffTime)),
		}
	})
	t.Notes = append(t.Notes, "paper: same strategies on AlexNet/ResNet; 1.2-1.6x on non-linear graphs")
	return t
}
