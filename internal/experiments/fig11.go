package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/runtime"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// Fig11 reproduces Figure 11: simulated vs real execution time for many
// strategies of Inception-v3 and NMT on four device topologies. "Real"
// time comes from the distributed-runtime emulator (internal/runtime
// stands in for the paper's GPU cluster; docs/ARCHITECTURE.md), which
// violates the simulator's assumptions the way hardware does.
//
// Shape to match: every point within 30% relative difference, and the
// simulated ordering of strategies preserves the real ordering
// (Kendall-tau concordance reported per topology).
func Fig11(scale Scale, strategiesPerPoint int) *Table {
	if strategiesPerPoint <= 0 {
		strategiesPerPoint = 6
	}
	t := &Table{
		ID:     "fig11",
		Title:  "Simulator accuracy: simulated vs emulated execution time",
		Header: []string{"model", "topology", "strategies", "max-rel-err", "mean-rel-err", "order-concordance"},
	}
	topos := []struct {
		name string
		topo *device.Topology
	}{
		{"4xP100(1 node)", device.NewSingleNode(4, "P100")},
		{"16xP100(4 nodes)", device.NewP100Cluster(4)},
		{"4xK80(1 node)", device.NewSingleNode(4, "K80")},
		{"16xK80(4 nodes)", device.NewK80Cluster(4)},
	}
	// One cell per (model, topology) point, fanned out across the
	// worker pool. Each cell seeds its own RNG from the scale seed, so
	// the strategies sampled per cell are the same in any order; the
	// topologies are shared across cells but only read (Route's lazy
	// build is race-safe).
	type cell struct {
		model    string
		g        *graph.Graph
		topoName string
		topo     *device.Topology
	}
	var cells []cell
	for _, name := range []string{"inception-v3", "nmt"} {
		spec, _ := models.Get(name)
		g := scale.build(spec)
		for _, tp := range topos {
			cells = append(cells, cell{name, g, tp.name, tp.topo})
		}
	}
	rows := make([][]string, len(cells))
	worstPer := make([]float64, len(cells))
	scale.forEach(len(cells), func(i int) {
		c := cells[i]
		est := estimator()
		rng := rand.New(rand.NewSource(scale.Seed))
		var simT, realT []float64
		strats := []*config.Strategy{
			config.DataParallel(c.g, c.topo),
			config.Expert(c.g, c.topo),
		}
		for len(strats) < strategiesPerPoint {
			strats = append(strats, config.Random(c.g, c.topo, rng))
		}
		var worst, sum float64
		for _, s := range strats {
			tg := taskgraph.Build(c.g, c.topo, s, est, taskgraph.Options{})
			simulated := sim.NewState(tg).Simulate()
			real, _ := runtime.Measure(tg, runtime.DefaultOptions(scale.Seed), 3)
			rel := relErr(simulated, real)
			if rel > worst {
				worst = rel
			}
			sum += rel
			simT = append(simT, simulated.Seconds())
			realT = append(realT, real.Seconds())
		}
		worstPer[i] = worst
		rows[i] = []string{
			c.model, c.topoName, fmt.Sprintf("%d", len(strats)),
			fmt.Sprintf("%.1f%%", worst*100),
			fmt.Sprintf("%.1f%%", sum/float64(len(strats))*100),
			f2(kendallTau(simT, realT)),
		}
	})
	worstOverall := 0.0
	for i, r := range rows {
		t.Rows = append(t.Rows, r)
		if worstPer[i] > worstOverall {
			worstOverall = worstPer[i]
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper bound: all points within 30%% relative difference (worst here: %.1f%%)", worstOverall*100),
		"order-concordance 1.0 = simulated time ranks strategies exactly like real time")
	return t
}

func relErr(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a-b) / float64(b)
	if d < 0 {
		return -d
	}
	return d
}

// kendallTau computes the Kendall rank correlation between two series.
func kendallTau(a, b []float64) float64 {
	n := len(a)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := (a[i] - a[j]) * (b[i] - b[j])
			switch {
			case x > 0:
				concordant++
			case x < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(total)
}

// MeasuringCacheReport demonstrates the profiling-cost observation of
// Section 5: a DNN with hundreds of operators needs only a handful of
// distinct task signatures measured.
func MeasuringCacheReport(scale Scale) *Table {
	t := &Table{
		ID:     "profiling",
		Title:  "Distinct task signatures measured per model (Section 5 observation)",
		Header: []string{"model", "ops", "tasks-estimated", "distinct-signatures"},
	}
	topo := device.NewSingleNode(4, "P100")
	names := models.Names()
	sort.Strings(names)
	for _, name := range names {
		spec, _ := models.Get(name)
		g := scale.build(spec)
		analytic := perfmodel.NewAnalyticModel()
		me := perfmodel.NewMeasuringEstimator(analytic.ExecTime, 1)
		tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), me, taskgraph.Options{})
		hits, misses := me.Stats()
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", g.NumOps()), fmt.Sprintf("%d", hits+misses),
			fmt.Sprintf("%d", me.DistinctSignatures()),
		})
		_ = tg
	}
	return t
}
