// Package memory estimates the per-device memory footprint of a
// parallelization strategy and checks it against device capacities. The
// production FlexFlow runtime enforces this constraint when mapping
// tasks; the paper's search implicitly relies on strategies fitting in
// GPU memory. This module makes the constraint explicit and lets the
// optimizer reject infeasible proposals.
//
// The footprint model is the standard training-memory accounting:
//
//   - weights: each device stores every weight shard any of its tasks
//     uses (deduplicated per op/shard);
//   - gradients: one buffer the size of each stored weight shard;
//   - optimizer state: OptimizerMult extra copies (0 for plain SGD,
//     2 for Adam's moments);
//   - activations: each forward task's output region, retained for the
//     backward pass;
//   - activation gradients: transient, bounded by the largest single
//     activation on the device (double-buffered).
package memory

import (
	"fmt"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Model configures the footprint accounting.
type Model struct {
	// OptimizerMult is the number of extra weight-sized buffers the
	// optimizer keeps (0 = SGD, 1 = momentum, 2 = Adam).
	OptimizerMult int
	// Inference drops gradient/optimizer/activation-retention costs.
	Inference bool
}

// Usage is the footprint of one device in bytes.
type Usage struct {
	Weights     int64
	Gradients   int64
	Optimizer   int64
	Activations int64
	Transient   int64
}

// Total returns the combined footprint.
func (u Usage) Total() int64 {
	return u.Weights + u.Gradients + u.Optimizer + u.Activations + u.Transient
}

// Footprint computes the per-device memory usage of a strategy. The
// returned map is keyed by device ID and covers every device that runs
// at least one task.
func Footprint(g *graph.Graph, topo *device.Topology, s *config.Strategy, m Model) map[int]*Usage {
	out := map[int]*Usage{}
	for _, op := range g.ComputeOps() {
		c := s.Config(op.ID)
		if c == nil {
			continue
		}
		opFootprint(op, c, m, func(dev int) *Usage {
			u := out[dev]
			if u == nil {
				u = &Usage{}
				out[dev] = u
			}
			return u
		})
	}
	return out
}

// OpFootprint returns the per-device byte totals contributed by one
// operation under a configuration — the incremental unit the optimizer
// uses to keep a running footprint across proposals. Summing OpFootprint
// over all ops counts each op's transient workspace separately, a slight
// (conservative) overestimate of Footprint's shared-workspace total.
func OpFootprint(op *graph.Op, c *config.Config, m Model) map[int]int64 {
	usages := map[int]*Usage{}
	opFootprint(op, c, m, func(dev int) *Usage {
		u := usages[dev]
		if u == nil {
			u = &Usage{}
			usages[dev] = u
		}
		return u
	})
	out := make(map[int]int64, len(usages))
	for dev, u := range usages {
		out[dev] = u.Total()
	}
	return out
}

// opFootprint accumulates one op's contribution via the get callback.
func opFootprint(op *graph.Op, c *config.Config, m Model, get func(dev int) *Usage) {
	// Weight shards per device: a device holds one copy of each
	// distinct shard its tasks use.
	if op.HasWeights() {
		w := op.Weights(c.Degrees)
		shardBytes := w.Elems * tensor.ElemBytes
		type key struct{ dev, shard int }
		seen := map[key]bool{}
		for k := 0; k < c.NumTasks(); k++ {
			coords := tensor.GridCoords(c.Degrees, k)
			shard := 0
			for i, d := range c.Degrees {
				if op.Out.Kind(i) == tensor.Parameter {
					shard = shard*d + coords[i]
				}
			}
			kk := key{c.Devices[k], shard}
			if seen[kk] {
				continue
			}
			seen[kk] = true
			u := get(c.Devices[k])
			u.Weights += shardBytes
			if !m.Inference {
				u.Gradients += shardBytes
				u.Optimizer += shardBytes * int64(m.OptimizerMult)
			}
		}
	}
	// Activations: each task's output region lives on its device
	// until the backward pass consumes it.
	for k := 0; k < c.NumTasks(); k++ {
		region := tensor.GridRegion(op.Out, c.Degrees, k)
		u := get(c.Devices[k])
		bytes := region.Bytes()
		if m.Inference {
			if bytes > u.Transient {
				u.Transient = bytes
			}
			continue
		}
		u.Activations += bytes
		if bytes > u.Transient {
			u.Transient = bytes
		}
	}
}

// Violation describes a device whose footprint exceeds its capacity.
type Violation struct {
	Device   device.Device
	Usage    Usage
	Capacity int64
}

// Error describes the overflowing device and by how much.
func (v Violation) Error() string {
	return fmt.Sprintf("memory: device %s needs %.2f GB but has %.0f GB",
		v.Device.Name, float64(v.Usage.Total())/1e9, v.Device.MemGB)
}

// Check returns a Violation error for the first device whose strategy
// footprint exceeds its capacity (devices with MemGB == 0 are
// unconstrained), or nil if the strategy fits everywhere.
func Check(g *graph.Graph, topo *device.Topology, s *config.Strategy, m Model) error {
	usage := Footprint(g, topo, s, m)
	// Deterministic iteration order for stable error messages.
	for id := 0; id < topo.NumDevices(); id++ {
		u := usage[id]
		if u == nil {
			continue
		}
		d := topo.Device(id)
		if d.MemGB <= 0 {
			continue
		}
		cap := int64(d.MemGB * 1e9)
		if u.Total() > cap {
			return Violation{Device: d, Usage: *u, Capacity: cap}
		}
	}
	return nil
}

// Fits reports whether the strategy fits on every device.
func Fits(g *graph.Graph, topo *device.Topology, s *config.Strategy, m Model) bool {
	return Check(g, topo, s, m) == nil
}
