package memory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
)

// Property: the sum of per-op footprints matches the whole-strategy
// footprint exactly except for the transient term, where the per-op sum
// is a conservative (>=) overestimate — the contract the optimizer's
// incremental accounting relies on.
func TestOpFootprintConsistencyProperty(t *testing.T) {
	g := bigDenseDeep()
	fn := func(seed int64, gpuRaw uint8) bool {
		gpus := int(gpuRaw%6) + 2
		topo := device.NewSingleNode(gpus, "P100")
		rng := rand.New(rand.NewSource(seed))
		s := config.Random(g, topo, rng)
		m := Model{OptimizerMult: int(seed) & 1}

		whole := Footprint(g, topo, s, m)
		perOp := map[int]int64{}
		for _, op := range g.ComputeOps() {
			for dev, b := range OpFootprint(op, s.Config(op.ID), m) {
				perOp[dev] += b
			}
		}
		for dev, u := range whole {
			exact := u.Weights + u.Gradients + u.Optimizer + u.Activations
			if perOp[dev] < exact {
				t.Logf("dev %d: per-op sum %d below exact non-transient %d", dev, perOp[dev], exact)
				return false
			}
			if perOp[dev] < u.Total() {
				t.Logf("dev %d: per-op sum %d below whole total %d", dev, perOp[dev], u.Total())
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: weight bytes across all devices are at least one full copy
// of the model (someone must hold each shard) and at most GPUs copies
// (full replication bound).
func TestWeightStorageBoundsProperty(t *testing.T) {
	g := bigDenseDeep()
	var totalWeights int64
	for _, op := range g.Ops {
		totalWeights += op.WeightBytes()
	}
	fn := func(seed int64) bool {
		topo := device.NewSingleNode(4, "P100")
		rng := rand.New(rand.NewSource(seed))
		s := config.Random(g, topo, rng)
		usage := Footprint(g, topo, s, Model{})
		var stored int64
		for _, u := range usage {
			stored += u.Weights
		}
		// At least one full copy (allow integer-division slack of one
		// element per shard), at most one per GPU.
		slack := int64(len(g.Ops) * 64 * 4)
		return stored >= totalWeights-slack && stored <= 4*totalWeights
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func bigDenseDeep() *graph.Graph {
	g := graph.New("deep")
	x := g.Input4D("x", 16, 4, 16, 16)
	c := g.Conv2D("c1", x, 8, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("f", c)
	d1 := g.Dense("fc1", f, 256)
	d2 := g.Dense("fc2", d1, 256)
	g.SoftmaxClassifier("sm", d2, 32)
	return g
}
