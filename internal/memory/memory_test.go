package memory

import (
	"errors"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

func bigDense() *graph.Graph {
	g := graph.New("big")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(graph.DimSample, 64, tensor.Sample),
		tensor.D(graph.DimChannel, 8192, tensor.Attribute)))
	g.Dense("fc", x, 65536) // 8192*65536*4B ~ 2.1 GB of weights
	return g
}

func TestFootprintDataParallelReplicatesWeights(t *testing.T) {
	g := bigDense()
	topo := device.NewSingleNode(4, "P100")
	s := config.DataParallel(g, topo)
	usage := Footprint(g, topo, s, Model{})
	fc := g.Op(1)
	weightBytes := fc.WeightElems * tensor.ElemBytes
	for _, id := range topo.GPUs() {
		u := usage[id]
		if u == nil {
			t.Fatalf("device %d unused", id)
		}
		// Full replica per device under data parallelism.
		if u.Weights != weightBytes {
			t.Fatalf("device %d weights = %d, want %d", id, u.Weights, weightBytes)
		}
		if u.Gradients != weightBytes {
			t.Fatalf("gradients = %d", u.Gradients)
		}
		if u.Activations <= 0 || u.Transient <= 0 {
			t.Fatalf("activations accounting: %+v", u)
		}
	}
}

func TestFootprintParamParallelShardsWeights(t *testing.T) {
	g := bigDense()
	topo := device.NewSingleNode(4, "P100")
	s := config.NewStrategy(g)
	fc := g.Op(1)
	s.Set(fc.ID, config.ParamParallel(fc, topo.GPUs()))
	usage := Footprint(g, topo, s, Model{})
	weightBytes := fc.WeightElems * tensor.ElemBytes
	var total int64
	for _, u := range usage {
		total += u.Weights
	}
	// Shards partition the weights: total stored ~ one copy.
	if total > weightBytes+weightBytes/100 {
		t.Fatalf("param-parallel stores %d weight bytes, want ~%d", total, weightBytes)
	}
}

func TestOptimizerMultiplier(t *testing.T) {
	g := bigDense()
	topo := device.NewSingleNode(2, "P100")
	s := config.DataParallel(g, topo)
	sgd := Footprint(g, topo, s, Model{OptimizerMult: 0})
	adam := Footprint(g, topo, s, Model{OptimizerMult: 2})
	id := topo.GPUs()[0]
	if adam[id].Optimizer != 2*sgd[id].Weights {
		t.Fatalf("adam optimizer state = %d, want %d", adam[id].Optimizer, 2*sgd[id].Weights)
	}
	if sgd[id].Optimizer != 0 {
		t.Fatalf("sgd optimizer state = %d", sgd[id].Optimizer)
	}
}

func TestInferenceModeDropsTrainingState(t *testing.T) {
	g := bigDense()
	topo := device.NewSingleNode(2, "P100")
	s := config.DataParallel(g, topo)
	inf := Footprint(g, topo, s, Model{Inference: true})
	id := topo.GPUs()[0]
	if inf[id].Gradients != 0 || inf[id].Activations != 0 {
		t.Fatalf("inference kept training state: %+v", inf[id])
	}
	if inf[id].Weights == 0 || inf[id].Transient == 0 {
		t.Fatalf("inference lost weights/workspace: %+v", inf[id])
	}
}

func TestCheckDetectsOverflow(t *testing.T) {
	// Replicate ~2.1 GB of weights (+ gradients + Adam state) on a 3 GB
	// device: must violate.
	g := bigDense()
	topo := device.NewTopology("tiny-mem")
	a := topo.AddDevice(device.Device{Kind: device.GPU, Name: "small0", Model: "P100", PeakGFLOPS: 9300, MemBWGBs: 732, MemGB: 3})
	b := topo.AddDevice(device.Device{Kind: device.GPU, Name: "small1", Model: "P100", PeakGFLOPS: 9300, MemBWGBs: 732, MemGB: 3})
	topo.AddLink(device.NVLink, a, b, 18, 0)

	s := config.DataParallel(g, topo)
	err := Check(g, topo, s, Model{OptimizerMult: 2})
	if err == nil {
		t.Fatal("oversized strategy passed the memory check")
	}
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("error type = %T", err)
	}
	if v.Device.Name != "small0" {
		t.Fatalf("violating device = %s", v.Device.Name)
	}
	if v.Error() == "" {
		t.Fatal("empty violation message")
	}
	if Fits(g, topo, s, Model{OptimizerMult: 2}) {
		t.Fatal("Fits disagrees with Check")
	}

	// Sharding the dense layer across both devices fits under plain SGD
	// (~1.07 GB weights + 1.07 GB gradients per device).
	sharded := config.NewStrategy(g)
	fc := g.Op(1)
	sharded.Set(fc.ID, config.ParamParallel(fc, topo.GPUs()))
	if err := Check(g, topo, sharded, Model{}); err != nil {
		t.Fatalf("sharded strategy should fit: %v", err)
	}
}

func TestUnconstrainedDevices(t *testing.T) {
	g := bigDense()
	topo := device.NewTopology("no-caps")
	a := topo.AddDevice(device.Device{Kind: device.GPU, Name: "g0", Model: "X"}) // MemGB 0
	b := topo.AddDevice(device.Device{Kind: device.GPU, Name: "g1", Model: "X"})
	topo.AddLink(device.NVLink, a, b, 18, 0)
	s := config.DataParallel(g, topo)
	if err := Check(g, topo, s, Model{OptimizerMult: 2}); err != nil {
		t.Fatalf("unconstrained devices should always fit: %v", err)
	}
}

func TestPaperModelsFitTheirClusters(t *testing.T) {
	// Sanity: the paper trained these models data-parallel on 16 GB
	// P100s, so our accounting must agree they fit.
	topo := device.NewSingleNode(4, "P100")
	for _, name := range []string{"alexnet", "inception-v3", "rnnlm"} {
		g := buildModel(t, name)
		s := config.DataParallel(g, topo)
		if err := Check(g, topo, s, Model{}); err != nil {
			t.Fatalf("%s does not fit a P100 under data parallelism: %v", name, err)
		}
	}
}

func buildModel(t *testing.T, name string) *graph.Graph {
	t.Helper()
	switch name {
	case "alexnet":
		return alexnetScaled()
	case "inception-v3":
		return inceptionScaled()
	default:
		return rnnlmScaled()
	}
}

// Local reduced builders avoid an import cycle with internal/models'
// test helpers (models itself is fine to import; keep these tiny).
func alexnetScaled() *graph.Graph {
	g := graph.New("alexnet-ish")
	x := g.Input4D("x", 32, 3, 227, 227)
	c := g.Conv2D("c1", x, 96, 11, 11, 4, 4, 0, 0)
	p := g.Pool2D("p1", c, 3, 3, 2, 2, 0, 0)
	f := g.Flatten("f", p)
	d := g.Dense("fc6", f, 4096)
	g.SoftmaxClassifier("fc8", d, 1000)
	return g
}

func inceptionScaled() *graph.Graph {
	g := graph.New("inception-ish")
	x := g.Input4D("x", 16, 3, 149, 149)
	c := g.Conv2D("c1", x, 32, 3, 3, 2, 2, 0, 0)
	c = g.Conv2D("c2", c, 64, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("p", c, 3, 3, 2, 2, 0, 0)
	f := g.Flatten("f", p)
	g.SoftmaxClassifier("fc", f, 1000)
	return g
}

func rnnlmScaled() *graph.Graph {
	g := graph.New("rnnlm-ish")
	ids := g.InputSeq("tok", 16, 8)
	e := g.Embedding("emb", ids, 10000, 2048)
	var prev *graph.Op
	for s := 0; s < 8; s++ {
		prev = g.LSTMStep("l", e, prev, s, 2048)
	}
	g.SoftmaxClassifier("sm", prev, 10000)
	return g
}
