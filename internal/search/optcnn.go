package search

import (
	"context"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/tensor"
)

func gridRegion(op *graph.Op, c *config.Config, k int) tensor.Region {
	return tensor.GridRegion(op.Out, c.Degrees, k)
}

// OptCNN implements the baseline of Jia et al. [25] as characterized in
// Section 8.2.3: it "assumes that different operations in an operator
// graph cannot be performed in parallel and estimates a DNN's execution
// time as the sum of the operations' computation time and
// synchronization time and the tensors' data transfer time", which
// admits a dynamic-programming solution over linear operator graphs.
//
// For linear graphs the DP is exact under that cost model. Non-linear
// graphs are outside OptCNN's domain; we process ops in topological
// order and fix each producer's configuration before its consumers (a
// faithful "linearized" extension that still cannot exploit inter-op
// parallelism — the gap Figure 10b measures).
//
// The context is polled between ops; a cancelled DP has no meaningful
// partial answer, so cancellation returns (nil, ctx.Err()).
func OptCNN(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, enum config.EnumOptions) (*config.Strategy, error) {
	if g.IsLinear() {
		return optCNNChainDP(ctx, g, topo, est, enum)
	}
	return optCNNGreedyTopo(ctx, g, topo, est, enum)
}

// opCost is OptCNN's per-op term: the parallel computation time of the
// op (the slowest task, forward+backward) plus parameter
// synchronization time for replicated weights.
func opCost(op *graph.Op, c *config.Config, topo *device.Topology, est perfmodel.Estimator) time.Duration {
	var slowest time.Duration
	for k := 0; k < c.NumTasks(); k++ {
		region := gridRegion(op, c, k)
		dev := topo.Device(c.Devices[k])
		d := est.ExecTime(op, region, dev, perfmodel.Forward) +
			est.ExecTime(op, region, dev, perfmodel.Backward)
		if d > slowest {
			slowest = d
		}
	}
	return slowest + syncCost(op, c, topo)
}

// syncCost estimates ring all-reduce time for each replicated shard:
// 2*(n-1)/n of the shard over the slowest inter-replica path.
func syncCost(op *graph.Op, c *config.Config, topo *device.Topology) time.Duration {
	if !op.HasWeights() {
		return 0
	}
	w := op.Weights(c.Degrees)
	if w.Replicas <= 1 {
		return 0
	}
	// Distinct devices per shard: use the shard at grid origin as the
	// representative (equal-size partitions make shards symmetric).
	devs := map[int]bool{}
	for k := 0; k < c.NumTasks(); k++ {
		devs[c.Devices[k]] = true
	}
	if len(devs) <= 1 {
		return 0
	}
	bytes := 2 * w.Elems * tensor.ElemBytes * int64(w.Replicas-1) / int64(w.Replicas)
	var worst time.Duration
	prev := -1
	for d := range devs {
		if prev >= 0 {
			if t := topo.Route(prev, d).TransferTime(bytes); t > worst {
				worst = t
			}
		}
		prev = d
	}
	return worst
}

// edgeCost is OptCNN's transfer term between a producer config and a
// consumer config: transfers grouped per link, the busiest link's time.
func edgeCost(prod *graph.Op, pc *config.Config, cons *graph.Op, cc *config.Config, inputIdx int, topo *device.Topology) time.Duration {
	perLink := map[int]int64{}
	for ck := 0; ck < cc.NumTasks(); ck++ {
		need := graph.InputRegions(cons, gridRegion(cons, cc, ck))[inputIdx]
		if need.Empty() {
			continue
		}
		for pk := 0; pk < pc.NumTasks(); pk++ {
			if pc.Devices[pk] == cc.Devices[ck] {
				continue
			}
			vol := gridRegion(prod, pc, pk).Intersect(need).Volume()
			if vol == 0 {
				continue
			}
			path := topo.Route(pc.Devices[pk], cc.Devices[ck])
			perLink[path.BottleneckLink] += vol * tensor.ElemBytes
		}
	}
	var worst time.Duration
	for link, bytes := range perLink {
		l := topo.Links[link]
		p := device.Path{BWGBs: l.BWGBs, Latency: l.Latency}
		// Forward activation + backward gradient over the same link.
		if t := 2 * p.TransferTime(bytes); t > worst {
			worst = t
		}
	}
	return worst
}

func optCNNChainDP(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, enum config.EnumOptions) (*config.Strategy, error) {
	ops := g.ComputeOps()
	cands := make([][]*config.Config, len(ops))
	for i, op := range ops {
		cands[i] = config.Enumerate(op, topo, enum)
	}
	const inf = time.Duration(1<<62 - 1)
	// dp[i][j]: best cost of configuring ops[0..i] with ops[i] using
	// candidate j. back[i][j] is the argmin predecessor candidate.
	dp := make([][]time.Duration, len(ops))
	back := make([][]int, len(ops))
	for i, op := range ops {
		if cancelled(ctx) {
			return nil, ctx.Err()
		}
		dp[i] = make([]time.Duration, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		// Index of the compute producer among op.Inputs, if any.
		prodIdx := -1
		var prod *graph.Op
		for idx, in := range op.Inputs {
			if in.Kind != graph.Input {
				prodIdx, prod = idx, in
				break
			}
		}
		for j, c := range cands[i] {
			node := opCost(op, c, topo, est)
			if i == 0 || prod == nil {
				dp[i][j] = node
				back[i][j] = -1
				continue
			}
			best := inf
			arg := 0
			for pj, pcfg := range cands[i-1] {
				t := dp[i-1][pj] + edgeCost(prod, pcfg, op, c, prodIdx, topo)
				if t < best {
					best, arg = t, pj
				}
			}
			dp[i][j] = best + node
			back[i][j] = arg
		}
	}
	// Trace back from the cheapest final candidate.
	last := len(ops) - 1
	bestJ := 0
	for j := range dp[last] {
		if dp[last][j] < dp[last][bestJ] {
			bestJ = j
		}
	}
	s := config.NewStrategy(g)
	for i := last; i >= 0; i-- {
		s.Set(ops[i].ID, cands[i][bestJ])
		bestJ = back[i][bestJ]
		if bestJ < 0 && i > 0 {
			// Chain broken by an op whose producer is an Input; restart
			// argmin at the previous level.
			bestJ = 0
			for j := range dp[i-1] {
				if dp[i-1][j] < dp[i-1][bestJ] {
					bestJ = j
				}
			}
		}
	}
	return s, nil
}

func optCNNGreedyTopo(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, enum config.EnumOptions) (*config.Strategy, error) {
	s := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		if cancelled(ctx) {
			return nil, ctx.Err()
		}
		cands := config.Enumerate(op, topo, enum)
		best := time.Duration(1<<62 - 1)
		var bestCfg *config.Config
		for _, c := range cands {
			cost := opCost(op, c, topo, est)
			for idx, in := range op.Inputs {
				if in.Kind == graph.Input {
					continue
				}
				cost += edgeCost(in, s.Config(in.ID), op, c, idx, topo)
			}
			if cost < best {
				best, bestCfg = cost, c
			}
		}
		s.Set(op.ID, bestCfg)
	}
	return s, nil
}
