package search

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// TestParseLocality pins the policy-name surface: the empty string
// normalizes to uniform, every listed policy round-trips, and unknown
// names error mentioning the alternatives.
func TestParseLocality(t *testing.T) {
	if loc, err := ParseLocality(""); err != nil || loc != LocalityUniform {
		t.Fatalf(`ParseLocality("") = %q, %v; want uniform`, loc, err)
	}
	for _, want := range Localities() {
		got, err := ParseLocality(string(want))
		if err != nil || got != want {
			t.Fatalf("ParseLocality(%q) = %q, %v", want, got, err)
		}
	}
	if _, err := ParseLocality("spatial"); err == nil {
		t.Fatal("unknown policy parsed without error")
	}
}

// localityTestState compiles tinyMLP at 4 GPUs and returns its op
// list, simulated base state, and instance graph — the fixture the
// picker tests score hints against.
func localityTestState(t *testing.T) ([]*graph.Op, *taskgraph.TaskGraph, *sim.State) {
	t.Helper()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	plan := taskgraph.Compile(g, topo, config.DataParallel(g, topo), est, taskgraph.Options{})
	base := sim.NewState(plan.Base())
	base.Simulate()
	tg := plan.Instance()
	return g.ComputeOps(), tg, base.CloneFor(tg)
}

// TestLocalityWeightsStrictlyPositive asserts the ergodicity invariant
// for every policy over every hint extreme: after a rebuild from
// degenerate hints (all ops at t=0, all ops at the makespan, a mix, a
// single op) and degenerate EMAs (zero suffix everywhere), every
// selection weight is strictly positive, so no op is unreachable.
func TestLocalityWeightsStrictlyPositive(t *testing.T) {
	ops, _, st := localityTestState(t)
	hintSets := map[string][]float64{
		"all-early":  make([]float64, len(ops)), // filled with 1 below
		"all-late":   make([]float64, len(ops)), // stays 0
		"mixed":      make([]float64, len(ops)),
		"zero-first": make([]float64, len(ops)),
	}
	for i := range ops {
		hintSets["all-early"][i] = 1
		hintSets["mixed"][i] = float64(i) / float64(len(ops))
	}
	hintSets["zero-first"][0] = 0
	for i := 1; i < len(ops); i++ {
		hintSets["zero-first"][i] = 1
	}
	for _, policy := range []Locality{LocalityLateBiased, LocalityStratified, LocalityMeasured} {
		for name, hints := range hintSets {
			p := newLocalityPicker(policy, ops, st)
			copy(p.hint, hints)
			if policy == LocalityMeasured {
				clear(p.ema) // zero measured suffix everywhere
			}
			p.rebuild()
			for i, w := range p.weight {
				if !(w > 0) {
					t.Fatalf("%s/%s: weight[%d] = %v is not strictly positive", policy, name, i, w)
				}
			}
		}
	}

	// Single-op graphs degenerate to "always that op" without panicking.
	one := ops[:1]
	for _, policy := range []Locality{LocalityLateBiased, LocalityStratified, LocalityMeasured} {
		p := newLocalityPicker(policy, one, st)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50; i++ {
			if got := p.pick(rng); got != 0 {
				t.Fatalf("%s: single-op pick returned %d", policy, got)
			}
		}
	}
}

// TestLocalitySamplerDistribution draws from a fixed weight vector at a
// fixed seed and asserts the empirical selection frequencies match the
// weights within tolerance — the sampler really is a weighted sampler,
// not an argmax or a biased binary search.
func TestLocalitySamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0.5}
	cum, total := buildCum(weights, nil)
	const draws = 200000
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[weightedIndex(cum, rng.Float64()*total)]++
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if diff := got - want; diff < -0.01 || diff > 0.01 {
			t.Errorf("index %d: empirical frequency %.4f vs weight share %.4f", i, got, want)
		}
	}
}

// TestLocalityPickerEnumerationOrderIndependent asserts the sampler's
// draw sequence depends only on (weights per op, RNG stream), never on
// the order the caller enumerated the ops: pickers built over permuted
// copies of the op slice produce the identical op-ID sequence from
// equal-seed RNGs. This is what makes a locality walk reproducible no
// matter how ComputeOps orders the graph.
func TestLocalityPickerEnumerationOrderIndependent(t *testing.T) {
	ops, _, st := localityTestState(t)
	for _, policy := range []Locality{LocalityLateBiased, LocalityStratified, LocalityMeasured} {
		reference := newLocalityPicker(policy, ops, st)
		shuffled := append([]*graph.Op(nil), ops...)
		rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		permuted := newLocalityPicker(policy, shuffled, st)

		rngA := rand.New(rand.NewSource(7))
		rngB := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			a := reference.ops[reference.pick(rngA)].ID
			b := permuted.ops[permuted.pick(rngB)].ID
			if a != b {
				t.Fatalf("%s: draw %d differs under permuted enumeration: op %d vs %d", policy, i, a, b)
			}
		}
	}
}

// FuzzLocalitySampler fuzzes the cumulative-weight sampler over random
// weight vectors — including the degenerate shapes (single entry,
// all-equal, huge spread, near-zero weights) seeded below — checking
// the structural invariants on every draw: the index is in range, its
// weight is strictly positive, and the binary-searched bucket agrees
// with a linear scan over the half-open bucket bounds.
func FuzzLocalitySampler(f *testing.F) {
	f.Add(int64(1), uint8(1))   // single op
	f.Add(int64(2), uint8(4))   // all-equal (seed 2 path below)
	f.Add(int64(3), uint8(32))  // mid-size random
	f.Add(int64(4), uint8(255)) // large vector
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		if n == 0 {
			n = 1
		}
		rng := rand.New(rand.NewSource(seed))
		weights := make([]float64, int(n))
		for i := range weights {
			switch seed % 3 {
			case 0:
				weights[i] = 1 // all-equal
			case 1:
				weights[i] = 1e-9 + rng.Float64()*1e9 // huge spread
			default:
				weights[i] = localityMinWeight + rng.Float64()
			}
		}
		cum, total := buildCum(weights, nil)
		if total <= 0 {
			t.Fatalf("total %v not positive", total)
		}
		for draw := 0; draw < 64; draw++ {
			x := rng.Float64() * total
			i := weightedIndex(cum, x)
			if i < 0 || i >= len(weights) {
				t.Fatalf("index %d out of range [0,%d)", i, len(weights))
			}
			if !(weights[i] > 0) {
				t.Fatalf("selected zero-width bucket %d (weight %v)", i, weights[i])
			}
			// Linear reference: the bucket is the first i with x < cum[i].
			want := sort.Search(len(cum), func(j int) bool { return x < cum[j] })
			if want == len(cum) {
				want = len(cum) - 1
			}
			if i != want {
				t.Fatalf("weightedIndex(%v) = %d, linear scan says %d", x, i, want)
			}
		}
	})
}

// TestMCMCLocalityContract pins the Locality API the way the
// ProposalBatch contract pinned batching: the zero value and "uniform"
// are the same classic walk — bit-identical to the pre-locality
// optimizer, whose RNG consumption (one Intn per draft) the uniform
// path preserves verbatim — every non-uniform policy is deterministic
// run to run and non-degenerate, actually changes the walk, reports
// the evaluated-suffix stat, and FullSim mode ignores the knob.
func TestMCMCLocalityContract(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 150
	opts.Seed = 5
	initials := Initials(g, topo, 5, true)

	run := func(loc Locality, fullSim bool) Result {
		o := opts
		o.Locality = loc
		o.FullSim = fullSim
		return MCMC(context.Background(), g, topo, est, initials, o)
	}
	same := func(a, b Result) bool {
		if a.BestCost != b.BestCost || !a.Best.Equal(b.Best) ||
			a.Iters != b.Iters || a.Accepted != b.Accepted ||
			a.SimStats != b.SimStats || len(a.Trace) != len(b.Trace) {
			return false
		}
		for i := range a.Trace {
			if a.Trace[i] != b.Trace[i] {
				return false
			}
		}
		return true
	}

	uniform := run(LocalityUniform, false)
	if !same(run("", false), uniform) {
		t.Error(`Locality "" and "uniform" are not the same walk`)
	}
	if uniform.SimStats.SuffixTasks <= 0 {
		t.Errorf("delta-mode walk reported SuffixTasks=%d; the suffix stat must accumulate", uniform.SimStats.SuffixTasks)
	}
	for _, loc := range []Locality{LocalityLateBiased, LocalityStratified, LocalityMeasured} {
		a, b := run(loc, false), run(loc, false)
		if !same(a, b) {
			t.Errorf("Locality=%s is not deterministic run to run", loc)
		}
		if a.Iters == 0 || a.Accepted == 0 || a.Best == nil || a.BestCost <= 0 {
			t.Errorf("Locality=%s degenerate search: %+v", loc, a)
		}
		if a.SimStats.SuffixTasks <= 0 {
			t.Errorf("Locality=%s reported SuffixTasks=%d", loc, a.SimStats.SuffixTasks)
		}
		if same(a, uniform) {
			t.Errorf("Locality=%s walks identically to uniform; the policy is not steering", loc)
		}
	}
	if fa, fb := run(LocalityUniform, true), run(LocalityMeasured, true); !same(fa, fb) {
		t.Error("FullSim walk changed with Locality set")
	}

	defer func() {
		if recover() == nil {
			t.Error("MCMC accepted an unknown Locality without panicking")
		}
	}()
	run("spatial", false)
}
