package search

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// ExhaustiveOptions bound the exhaustive optimality study (Section 8.4:
// "we use depth-first search to explore the search space and use A* to
// prune").
type ExhaustiveOptions struct {
	// Enum bounds the per-op candidate configurations.
	Enum config.EnumOptions
	// MaxCandidatesPerOp truncates each op's candidate list (0 = all).
	MaxCandidatesPerOp int
	// TaskOpts are forwarded to the task-graph builder.
	TaskOpts taskgraph.Options
	// Workers caps this search's share of the process-wide worker pool
	// (0 = the pool's full bound; see par.SetWorkers). The optimum cost
	// is identical for every value; see the package comment for what
	// stays deterministic.
	//
	// Deprecated: size the shared pool once with par.SetWorkers instead
	// of capping individual searches.
	Workers int
	// OnEvent, when non-nil, receives a progress event every time a
	// worker improves the shared pruning bound (Chain = subtree prefix
	// index). Called concurrently; must be safe for concurrent use.
	OnEvent func(ProgressEvent)
}

// ExhaustiveResult reports the global optimum found.
type ExhaustiveResult struct {
	Best      *config.Strategy
	BestCost  time.Duration
	Explored  int64 // leaves simulated
	Pruned    int64 // subtrees cut by the admissible bound
	SpaceSize float64
}

// Exhaustive enumerates strategies by depth-first search over per-op
// candidate configurations, pruning with an admissible lower bound: in a
// chain-structured graph every source-to-sink dependency path passes
// through at least one task of each op, so the makespan is at least the
// sum over ops of their fastest task's execution time. Prefix costs use
// the chosen configs, remainder costs the per-op minimum.
//
// The tree is split at the first few levels into independent subtrees
// executed across Options.Workers goroutines. Every worker owns its DFS
// scratch (strategy, chosen indices) and they share only the atomic
// pruning bound; since the bound is always the cost of a strategy some
// worker actually simulated, pruning against it can never cut a strictly
// better leaf, so BestCost equals the serial optimum for every worker
// count. Explored/Pruned counts (and tie-breaking between equal-cost
// optima) depend on how quickly the bound propagates and are therefore
// scheduling-dependent when Workers > 1.
//
// Cancelling ctx makes every worker abandon its remaining subtree; the
// best strategy simulated before the cancellation is returned (Best is
// nil if no leaf was reached yet).
func Exhaustive(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, opts ExhaustiveOptions) ExhaustiveResult {
	ops := g.ComputeOps()
	candidates := make([][]*config.Config, len(ops))
	minTask := make([][]time.Duration, len(ops)) // min task exe per candidate
	bestMin := make([]time.Duration, len(ops))   // min over candidates
	space := 1.0
	for i, op := range ops {
		cands := config.Enumerate(op, topo, opts.Enum)
		if opts.MaxCandidatesPerOp > 0 && len(cands) > opts.MaxCandidatesPerOp {
			cands = cands[:opts.MaxCandidatesPerOp]
		}
		candidates[i] = cands
		minTask[i] = make([]time.Duration, len(cands))
		for j, c := range cands {
			minTask[i][j] = minTaskTime(op, c, topo, est)
			if j == 0 || minTask[i][j] < bestMin[i] {
				bestMin[i] = minTask[i][j]
			}
		}
		space *= float64(len(cands))
	}
	// Suffix sums of the per-op optimistic cost for the A*-style bound.
	suffix := make([]time.Duration, len(ops)+1)
	for i := len(ops) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + bestMin[i]
	}

	res := ExhaustiveResult{SpaceSize: space, BestCost: 1<<62 - 1}
	if len(ops) == 0 {
		// Degenerate space: the single (empty) strategy is the optimum,
		// exactly as the serial DFS's immediate depth==0 leaf was.
		res.Best = config.NewStrategy(g)
		tg := taskgraph.Build(g, topo, res.Best.Clone(), est, opts.TaskOpts)
		res.BestCost = sim.NewState(tg).Simulate()
		res.Explored = 1
		return res
	}
	if topo.NumDevices() > 0 {
		topo.Route(0, 0) // force the lazy route build before fanning out
	}

	// Split the first levels of the tree into enough prefixes to keep
	// the pool busy (subtree sizes under pruning are wildly uneven, so
	// oversubscribe by ~8x for load balance).
	workers := par.Width(opts.Workers)
	splitDepth := 0
	prefixCount := 1
	for splitDepth < len(ops) && prefixCount < workers*8 {
		prefixCount *= len(candidates[splitDepth])
		splitDepth++
	}
	prefixes := make([][]int, 0, prefixCount)
	var enum func(depth int, prefix []int)
	enum = func(depth int, prefix []int) {
		if depth == splitDepth {
			prefixes = append(prefixes, append([]int(nil), prefix...))
			return
		}
		for j := range candidates[depth] {
			enum(depth+1, append(prefix, j))
		}
	}
	enum(0, nil)

	// The shared admissible bound plus work counters. stop latches the
	// context cancellation so the hot DFS loop reads one atomic instead
	// of polling the context at every node.
	var bound atomic.Int64
	bound.Store(int64(res.BestCost))
	var explored, pruned atomic.Int64
	var stop atomic.Bool

	type subtreeBest struct {
		cost  time.Duration
		strat *config.Strategy
	}
	bests := make([]subtreeBest, len(prefixes))

	par.ForEach(opts.Workers, len(prefixes), func(pi int) {
		if stop.Load() {
			return
		}
		if cancelled(ctx) {
			stop.Store(true)
			return
		}
		chosen := make([]int, len(ops))
		strat := config.NewStrategy(g)
		local := subtreeBest{cost: math.MaxInt64}

		var dfs func(depth int, prefixLB time.Duration)
		dfs = func(depth int, prefixLB time.Duration) {
			if stop.Load() {
				return
			}
			if depth == len(ops) {
				for i, op := range ops {
					strat.Set(op.ID, candidates[i][chosen[i]])
				}
				tg := taskgraph.Build(g, topo, strat, est, opts.TaskOpts)
				cost := sim.NewState(tg).Simulate()
				n := explored.Add(1)
				if cost < local.cost {
					local.cost = cost
					local.strat = strat.Clone()
				}
				for {
					cur := bound.Load()
					if int64(cost) >= cur {
						break
					}
					if bound.CompareAndSwap(cur, int64(cost)) {
						emit(opts.OnEvent, ProgressEvent{
							Algorithm: "exhaustive", Chain: pi, Iter: int(n), BestCost: cost,
						})
						break
					}
				}
				// Poll the context at leaves only: leaves carry the
				// simulation cost, so the poll frequency tracks the
				// actual work done.
				if cancelled(ctx) {
					stop.Store(true)
				}
				return
			}
			for j := range candidates[depth] {
				lb := prefixLB + minTask[depth][j] + suffix[depth+1]
				if int64(lb) >= bound.Load() {
					pruned.Add(1)
					continue
				}
				chosen[depth] = j
				dfs(depth+1, prefixLB+minTask[depth][j])
			}
		}

		var prefixLB time.Duration
		for d, j := range prefixes[pi] {
			chosen[d] = j
			prefixLB += minTask[d][j]
		}
		if int64(prefixLB+suffix[splitDepth]) >= bound.Load() {
			pruned.Add(1)
			return
		}
		dfs(splitDepth, prefixLB)
		bests[pi] = local
	})

	// Merge per-subtree optima in prefix (lexicographic DFS) order.
	// This fixes the merge side of tie-breaking, but equal-cost optima
	// can still land differently than the serial scan: the shared bound
	// may prune an equal-cost leaf (lb == bound) that serial would have
	// visited first, so only BestCost — not Best — is worker-count
	// independent (as the package comment states).
	for _, b := range bests {
		if b.strat != nil && b.cost < res.BestCost {
			res.BestCost = b.cost
			res.Best = b.strat
		}
	}
	res.Explored = explored.Load()
	res.Pruned = pruned.Load()
	return res
}

// minTaskTime returns the fastest task's execution time under a config
// (forward + backward), the per-op term of the admissible bound.
func minTaskTime(op *graph.Op, c *config.Config, topo *device.Topology, est perfmodel.Estimator) time.Duration {
	best := time.Duration(1<<62 - 1)
	for k := 0; k < c.NumTasks(); k++ {
		region := gridRegion(op, c, k)
		dev := topo.Device(c.Devices[k])
		d := est.ExecTime(op, region, dev, perfmodel.Forward) +
			est.ExecTime(op, region, dev, perfmodel.Backward)
		if d < best {
			best = d
		}
	}
	return best
}

// PolishOptions configure the local-descent pass.
type PolishOptions struct {
	// Enum bounds the per-op candidate configurations of the neighbour
	// set.
	Enum config.EnumOptions
	// TaskOpts are forwarded to the task-graph builder.
	TaskOpts taskgraph.Options
	// MaxRounds caps the descent rounds (0 = default 20).
	MaxRounds int
	// Workers caps the share of the process-wide worker pool each
	// Neighborhood round's candidate sweep may use (0 = the pool's full
	// bound). Results are bit-identical for every value.
	//
	// Deprecated: size the shared pool once with par.SetWorkers instead
	// of capping individual searches.
	Workers int
	// OnEvent, when non-nil, receives one progress event per completed
	// round (Chain = round index).
	OnEvent func(ProgressEvent)
}

// Polish hill-climbs a strategy to a local optimum: repeatedly replace
// the single-op configuration whose change improves the simulated time
// the most, until no one-op change helps or ctx is cancelled (the best
// strategy reached so far is returned either way). The paper observes
// that all strategies returned by its search were locally optimal
// (Section 8.4); Polish makes that property structural for modest search
// budgets.
func Polish(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, s *config.Strategy, opts PolishOptions) (*config.Strategy, time.Duration) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 20
	}
	cur := s.Clone()
	tg := taskgraph.Build(g, topo, cur.Clone(), est, opts.TaskOpts)
	st := sim.NewState(tg)
	best := st.Simulate()
	for round := 0; round < maxRounds; round++ {
		if cancelled(ctx) {
			break
		}
		cost, improving, checked := Neighborhood(g, topo, est, cur, opts.Enum, opts.TaskOpts, opts.Workers)
		if improving == nil || cost >= best {
			break
		}
		cur, best = improving, cost
		emit(opts.OnEvent, ProgressEvent{
			Algorithm: "polish", Chain: round, Iter: checked, BestCost: best,
		})
	}
	return cur, best
}

// Neighborhood enumerates all one-op deviations of a strategy (the
// neighbour set of Section 8.4's local-optimality study) and reports the
// best improving neighbour, if any.
//
// The sweep is embarrassingly parallel per op, and runs that way: the
// strategy is compiled once into an immutable Plan whose base timeline
// is simulated once; each op's candidate walk then runs on the shared
// process-wide pool against a private Plan.Instance and a State cloned
// from the base timeline, so workers share only read-only structure.
// Because every op's walk starts from the identical instance (same
// task IDs, same base timeline) regardless of which worker runs it or
// in what order, the result is bit-identical for every pool size and
// every workers cap (0 = the pool's full bound); winners merge in
// (op, candidate) enumeration order. When Neighborhood is itself
// called from inside a pool worker (Polish inside an experiments
// cell), the nested fan-out composes under the same global bound
// instead of multiplying it.
func Neighborhood(g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, s *config.Strategy, enum config.EnumOptions, taskOpts taskgraph.Options, workers int) (bestCost time.Duration, improving *config.Strategy, checked int) {
	plan := taskgraph.Compile(g, topo, s.Clone(), est, taskOpts)
	base := sim.NewState(plan.Base())
	baseCost := base.Simulate()

	ops := g.ComputeOps()
	if topo.NumDevices() > 0 {
		topo.Route(0, 0) // force the lazy route build before fanning out
	}
	type opBest struct {
		cost    time.Duration
		cand    *config.Config
		checked int
	}
	results := make([]opBest, len(ops))
	par.ForEach(workers, len(ops), func(i int) {
		op := ops[i]
		orig := plan.Base().Strat.Config(op.ID) // read-only: shared strat is never written
		r := opBest{cost: baseCost}
		var props []Proposal
		for _, cand := range config.Enumerate(op, topo, enum) {
			if !cand.Equal(orig) {
				props = append(props, Proposal{OpID: op.ID, Cfg: cand})
			}
		}
		// All of an op's candidates go through one batch: one instance +
		// state clone per op (none at all when every candidate equals the
		// original), and the same-op proposals chain without reverts.
		for j, cost := range EvaluateBatch(plan, base, props) {
			r.checked++
			if cost < r.cost {
				r.cost = cost
				r.cand = props[j].Cfg
			}
		}
		results[i] = r
	})

	// Merge in op order with strict improvement, mirroring the serial
	// scan's tie-breaking: the first (op, candidate) reaching the best
	// cost wins. The winning strategy is cloned exactly once, here.
	bestCost = baseCost
	winner := -1
	for i, r := range results {
		checked += r.checked
		if r.cand != nil && r.cost < bestCost {
			bestCost = r.cost
			winner = i
		}
	}
	if winner >= 0 {
		improving = s.Clone()
		improving.Set(ops[winner].ID, results[winner].cand.Clone())
	}
	return bestCost, improving, checked
}
