package search

import (
	"time"

	"flexflow/internal/config"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// Proposal is one candidate configuration change: replace the
// parallelization config of op OpID with Cfg, leaving every other op at
// the plan's base strategy.
type Proposal struct {
	OpID int
	Cfg  *config.Config
}

// EvaluateBatch prices N single-op proposals against one plan, each
// relative to the plan's base strategy, and returns the predicted
// makespan of every proposal in order. It allocates one Plan.Instance
// and one State clone for the whole batch instead of one per proposal —
// the amortization behind the Neighborhood sweep and any caller that
// evaluates many candidates against the same starting point.
//
// Consecutive proposals for the same op chain directly: replacing an
// op's config again already prices the new candidate against the base
// strategy, so no revert is needed in between (the property the
// Neighborhood candidate walk has always relied on). A revert delta is
// inserted only when the batch moves to a different op. Grouping a
// batch by op is therefore the efficient layout; any order is correct.
//
// Each returned cost equals a from-scratch full simulation of the
// batch instance's graph at that point (the differential contract of
// internal/sim). Exact ready-time ties break by task ID, so a cost can
// differ on ties from one computed on an independently built graph —
// the same caveat every delta-evaluating search loop has; for a fixed
// proposal list the results are bit-identical across calls.
//
// base must be the simulated timeline of plan's base graph (or a clone
// of it). Neither is written: the batch works on private copies.
func EvaluateBatch(plan *taskgraph.Plan, base *sim.State, props []Proposal) []time.Duration {
	if len(props) == 0 {
		return make([]time.Duration, 0)
	}
	inst := plan.Instance()
	st := base.CloneFor(inst)
	// The shared base strat is only read; reverts clone its configs so
	// the private instance never aliases the frozen storage.
	return EvaluateBatchFrom(inst, st, plan.Base().Strat, props)
}

// EvaluateBatchFrom is EvaluateBatch against an existing instance and
// timeline instead of a fresh one off a plan — the form the MCMC
// steady-state loop uses, where the current walk point is an
// already-mutated instance. Each proposal is priced relative to cur
// (the strategy tg currently implements): same-op runs chain directly,
// a revert to cur's config is inserted when the batch moves to a
// different op, and the instance is left parked at the last proposal
// (no trailing revert), so a caller that accepts it pays nothing
// extra. Callers that land elsewhere must re-park the instance
// themselves: replace the last proposal's op with the desired config.
// tg and st are mutated; cur is only read.
func EvaluateBatchFrom(tg *taskgraph.TaskGraph, st *sim.State, cur *config.Strategy, props []Proposal) []time.Duration {
	return EvaluateBatchFromStats(tg, st, cur, props, nil)
}

// EvaluateBatchFromStats is EvaluateBatchFrom with per-proposal cost
// attribution: when suffix is non-nil it must hold len(props) entries,
// and entry i receives the evaluated-suffix size of proposal i's own
// delta — the number of tasks ApplyDelta re-evaluated for it
// (sim.Stats.SuffixTasks), excluding the revert deltas inserted when
// the batch moves between ops. This is the measurement the
// LocalityMeasured policy feeds its per-op EMA: the actual price of
// proposing at that op, not a position-based estimate. A proposal that
// fell back to a full simulation (Stats.Fallbacks) records 0 — the
// suffix stat is delta-specific.
func EvaluateBatchFromStats(tg *taskgraph.TaskGraph, st *sim.State, cur *config.Strategy, props []Proposal, suffix []int64) []time.Duration {
	costs := make([]time.Duration, len(props))
	curOp := -1
	for i, p := range props {
		if curOp >= 0 && p.OpID != curOp {
			st.ApplyDelta(tg.ReplaceConfig(curOp, cur.Config(curOp).Clone()))
		}
		curOp = p.OpID
		pre := st.Stats.SuffixTasks
		costs[i] = st.ApplyDelta(tg.ReplaceConfig(p.OpID, p.Cfg))
		if suffix != nil {
			suffix[i] = st.Stats.SuffixTasks - pre
		}
	}
	return costs
}
