package search

import (
	"time"

	"flexflow/internal/config"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// Proposal is one candidate configuration change: replace the
// parallelization config of op OpID with Cfg, leaving every other op at
// the plan's base strategy.
type Proposal struct {
	OpID int
	Cfg  *config.Config
}

// EvaluateBatch prices N single-op proposals against one plan, each
// relative to the plan's base strategy, and returns the predicted
// makespan of every proposal in order. It allocates one Plan.Instance
// and one State clone for the whole batch instead of one per proposal —
// the amortization behind the Neighborhood sweep and any caller that
// evaluates many candidates against the same starting point.
//
// Consecutive proposals for the same op chain directly: replacing an
// op's config again already prices the new candidate against the base
// strategy, so no revert is needed in between (the property the
// Neighborhood candidate walk has always relied on). A revert delta is
// inserted only when the batch moves to a different op. Grouping a
// batch by op is therefore the efficient layout; any order is correct.
//
// Each returned cost equals a from-scratch full simulation of the
// batch instance's graph at that point (the differential contract of
// internal/sim). Exact ready-time ties break by task ID, so a cost can
// differ on ties from one computed on an independently built graph —
// the same caveat every delta-evaluating search loop has; for a fixed
// proposal list the results are bit-identical across calls.
//
// base must be the simulated timeline of plan's base graph (or a clone
// of it). Neither is written: the batch works on private copies.
func EvaluateBatch(plan *taskgraph.Plan, base *sim.State, props []Proposal) []time.Duration {
	costs := make([]time.Duration, len(props))
	if len(props) == 0 {
		return costs
	}
	inst := plan.Instance()
	st := base.CloneFor(inst)
	baseStrat := plan.Base().Strat // read-only: the shared strat is never written
	curOp := -1
	for i, p := range props {
		if curOp >= 0 && p.OpID != curOp {
			// Moving to a new op: restore the previous op to its base
			// config so this proposal is priced against the base
			// strategy. The config is cloned so the private instance
			// never aliases the frozen base strategy's storage.
			orig := baseStrat.Config(curOp).Clone()
			st.ApplyDelta(inst.ReplaceConfig(curOp, orig))
		}
		curOp = p.OpID
		costs[i] = st.ApplyDelta(inst.ReplaceConfig(p.OpID, p.Cfg))
	}
	return costs
}
