package search

import (
	"context"
	"time"
)

// ProgressEvent is one streaming progress sample from a running
// optimizer. Every algorithm in this package reports through the same
// event shape so consumers (the CLI's -progress mode, the facade's
// OnEvent callback) need no per-algorithm handling.
//
// Events are emitted from the optimizer's worker goroutines as they
// happen, so a callback must be safe for concurrent use and must not
// block for long: the emitting chain stalls while the callback runs.
// Event *ordering across chains* is scheduling-dependent; the search
// result itself stays deterministic regardless of what the callback
// observes.
type ProgressEvent struct {
	// Algorithm names the emitter ("mcmc", "exhaustive", "optcnn",
	// "reinforce", "polish").
	Algorithm string
	// Chain identifies the emitting unit of parallelism: the MCMC chain
	// index, the exhaustive DFS prefix index, the REINFORCE batch
	// index, or the polish round.
	Chain int
	// Iter counts proposals (episodes, leaves, rounds) completed by the
	// emitting chain when the event fired.
	Iter int
	// BestCost is the best simulated iteration time known to the
	// emitting chain.
	BestCost time.Duration
	// Elapsed is the chain's elapsed virtual search time where the
	// algorithm keeps a virtual clock (MCMC), and wall clock otherwise.
	Elapsed time.Duration
	// Final marks the last event a chain emits before returning.
	Final bool
}

// emit invokes cb(ev) if a callback is installed.
func emit(cb func(ProgressEvent), ev ProgressEvent) {
	if cb != nil {
		cb(ev)
	}
}

// Virtual-time calibration. A budgeted MCMC run used to stop on the
// wall clock, which made Budget > 0 runs nondeterministic by design.
// The budget is now charged in virtual time: every proposal costs a
// fixed, calibrated amount that depends only on the task-graph size and
// the simulation algorithm, so Budget/proposalCost is a fixed proposal
// count and budgeted runs replay exactly — across invocations and
// across Workers values.
//
// The constants approximate the measured per-proposal cost of the two
// simulation algorithms on the benchmark models (the delta algorithm
// re-times only the tasks a proposal touches; the full algorithm
// rebuilds and re-times the whole graph, Table 4's ~2-7x gap grows with
// graph size). They only need to be the right order of magnitude: the
// point is a deterministic exchange rate between seconds and proposals,
// not a perfect cost model.
const (
	// virtualProposalBase is the fixed overhead charged per proposal.
	virtualProposalBase = 25 * time.Microsecond
	// virtualPerTaskDelta is the per-task charge of a delta-simulated
	// proposal (only a neighbourhood of the changed op is re-timed).
	virtualPerTaskDelta = 100 * time.Nanosecond
	// virtualPerTaskFull is the per-task charge of a full re-simulation
	// (BUILDTASKGRAPH plus re-timing every task).
	virtualPerTaskFull = 1 * time.Microsecond
)

// proposalCost returns the calibrated virtual cost of one MCMC proposal
// on a task graph of the given size.
func proposalCost(numTasks int, fullSim bool) time.Duration {
	per := virtualPerTaskDelta
	if fullSim {
		per = virtualPerTaskFull
	}
	return virtualProposalBase + time.Duration(numTasks)*per
}

// cancelled reports whether ctx has been cancelled, without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
