package search

import (
	"context"
	"sync"
	"time"

	"flexflow/internal/calib"
)

// ProgressEvent is one streaming progress sample from a running
// optimizer. Every algorithm in this package reports through the same
// event shape so consumers (the CLI's -progress mode, the facade's
// OnEvent callback) need no per-algorithm handling.
//
// Events are emitted from the optimizer's worker goroutines as they
// happen, so a callback must be safe for concurrent use and must not
// block for long: the emitting chain stalls while the callback runs.
// Event *ordering across chains* is scheduling-dependent; the search
// result itself stays deterministic regardless of what the callback
// observes.
type ProgressEvent struct {
	// Algorithm names the emitter ("mcmc", "exhaustive", "optcnn",
	// "reinforce", "polish").
	Algorithm string
	// Chain identifies the emitting unit of parallelism: the MCMC chain
	// index, the exhaustive DFS prefix index, the REINFORCE batch
	// index, or the polish round.
	Chain int
	// Iter counts proposals (episodes, leaves, rounds) completed by the
	// emitting chain when the event fired.
	Iter int
	// BestCost is the best simulated iteration time known to the
	// emitting chain.
	BestCost time.Duration
	// Elapsed is the chain's elapsed virtual search time where the
	// algorithm keeps a virtual clock (MCMC — proposals are charged by
	// the active CostModel, a fitted profile or the built-in defaults),
	// and wall clock otherwise.
	Elapsed time.Duration
	// Final marks the last event a chain emits before returning.
	Final bool
}

// emit invokes cb(ev) if a callback is installed.
func emit(cb func(ProgressEvent), ev ProgressEvent) {
	if cb != nil {
		cb(ev)
	}
}

// Virtual-time cost model. A budgeted MCMC run used to stop on the
// wall clock, which made Budget > 0 runs nondeterministic by design.
// The budget is instead charged in virtual time: every proposal costs a
// deterministic amount that depends only on the model name, the
// task-graph size and the simulation algorithm, so Budget/cost is a
// fixed proposal count and budgeted runs replay exactly — across
// invocations and across Workers values.
//
// Where that cost comes from is pluggable. The built-in default is
// calib.Default() — order-of-magnitude estimates of the two simulation
// algorithms' per-proposal cost (the delta algorithm re-times only the
// tasks a proposal touches; the full algorithm rebuilds and re-times
// the whole graph — Table 4's ~2-7x gap grows with graph size). A
// measured, least-squares-fitted profile (internal/calib, produced by
// `flexflow -calibrate`) replaces it process-wide through
// SetDefaultCostModel, or per search through Options.Cost; either way
// the cost model is resolved once per search, before the chains fan
// out, so a fixed profile keeps budgeted runs bit-identical for every
// pool size.

// CostModel prices one optimizer proposal in deterministic virtual
// time. Implementations must be pure functions of their arguments —
// the determinism contract charges every replay of a proposal the same
// cost — and safe for concurrent use. calib.Profile implements
// CostModel; the default (see DefaultCostModel) is the built-in
// order-of-magnitude constants.
type CostModel interface {
	// ProposalCost prices one proposal for a graph named model with
	// numTasks tasks, under the full or delta simulation algorithm.
	ProposalCost(model string, numTasks int, fullSim bool) time.Duration
}

// DefaultCostModel returns the built-in order-of-magnitude cost model
// (calib.Default(), the single source of those constants).
func DefaultCostModel() CostModel { return calib.Default() }

var (
	costModelMu sync.RWMutex
	// activeCostModel is the installed process-wide cost model; nil
	// means the built-in defaults are in effect. This is the single
	// source of truth — the facade's SetCostProfile/ActiveCostProfile
	// are thin wrappers over it.
	activeCostModel CostModel
)

// SetDefaultCostModel installs the process-wide cost model used by
// searches whose Options.Cost is nil, returning the previous one (nil
// if the built-in defaults were in effect); passing nil restores the
// built-in defaults. Install a fitted calib.Profile here (the facade's
// SetCostProfile does) to make every budgeted search charge measured
// costs. Searches resolve the model once at start, so changing it
// mid-search never splits a run's chains across models.
func SetDefaultCostModel(cm CostModel) CostModel {
	costModelMu.Lock()
	defer costModelMu.Unlock()
	prev := activeCostModel
	activeCostModel = cm
	return prev
}

// ActiveCostModel returns the installed process-wide cost model, or
// nil when nil-Cost searches are priced by the built-in defaults.
func ActiveCostModel() CostModel {
	costModelMu.RLock()
	defer costModelMu.RUnlock()
	return activeCostModel
}

// defaultCostModel returns the cost model pricing nil-Cost searches:
// the installed one, or the built-in defaults.
func defaultCostModel() CostModel {
	if cm := ActiveCostModel(); cm != nil {
		return cm
	}
	return calib.Default()
}

// cancelled reports whether ctx has been cancelled, without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
