package search

import (
	"context"
	"testing"
	"time"

	"flexflow/internal/calib"
	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

func TestProposalCostScaling(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.ProposalCost("mlp", 100, false)
	big := cm.ProposalCost("mlp", 10000, false)
	if big <= small {
		t.Fatalf("delta proposal cost must grow with graph size: %v vs %v", big, small)
	}
	if full := cm.ProposalCost("mlp", 10000, true); full <= big {
		t.Fatalf("full-sim proposal (%v) must cost more than delta (%v)", full, big)
	}
}

// TestSetDefaultCostModel pins the process-wide default: installing a
// model changes what nil-Cost searches charge, nil restores the
// built-in constants, and the previous model is returned for scoped
// swaps.
func TestSetDefaultCostModel(t *testing.T) {
	fixed := &calib.Profile{
		Version: calib.Version,
		Modes: map[calib.Mode]calib.Params{
			calib.ModeDelta: {BaseNS: 1000, PerTaskNS: 10},
			calib.ModeFull:  {BaseNS: 1000, PerTaskNS: 100},
		},
	}
	prev := SetDefaultCostModel(fixed)
	defer SetDefaultCostModel(prev)
	if got := defaultCostModel().ProposalCost("x", 100, false); got != fixed.ProposalCost("x", 100, false) {
		t.Fatalf("installed cost model not active: %v", got)
	}
	if restored := SetDefaultCostModel(nil); restored != CostModel(fixed) {
		t.Fatalf("SetDefaultCostModel did not return the previous model")
	}
	builtin := DefaultCostModel().ProposalCost("x", 100, false)
	if got := defaultCostModel().ProposalCost("x", 100, false); got != builtin {
		t.Fatalf("nil did not restore the built-in constants: %v vs %v", got, builtin)
	}
	SetDefaultCostModel(fixed) // leave as found for the deferred restore
}

// TestVirtualTimeDriftReport closes the calibration loop: it fits a
// cost profile on this machine (internal/calib, the same measurement
// `flexflow -calibrate` runs), drives a single-worker micro-search with
// the fitted profile as its CostModel, and compares the wall clock
// against the virtual clock the budget machinery charged. The built-in
// order-of-magnitude constants are logged alongside for comparison; the
// *fitted* profile must price proposals within 10x of measured reality
// — calibration just ran on this very machine, so a persistent larger
// gap means the fit, not the machine, is wrong. Wall-clock measurement
// on a shared CI box is still noisy (another test binary can saturate
// the CPU during one window but not the other), so an out-of-bounds
// attempt re-calibrates and re-measures before it counts as a failure.
func TestVirtualTimeDriftReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock micro-benchmark; skipped in -short")
	}
	const model, scale = "lenet", 16
	spec, err := models.Get(model)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(scale)
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
	init := config.DataParallel(g, topo)
	tg := taskgraph.Build(g, topo, init.Clone(), est, taskgraph.Options{})
	numTasks := len(tg.Tasks)

	modes := []struct {
		name    string
		fullSim bool
		iters   int
	}{{"delta", false, 1500}, {"full", true, 300}}

	// attempt calibrates and measures once, reporting each mode's
	// wall-vs-fitted-virtual drift ratio.
	attempt := func() map[string]float64 {
		prof, err := calib.Calibrate(context.Background(), calib.Options{
			Models:         []string{model},
			Scale:          scale,
			Batches:        2,
			DeltaProposals: 200,
			FullProposals:  25,
		})
		if err != nil {
			t.Fatal(err)
		}
		drifts := map[string]float64{}
		for _, mode := range modes {
			opts := DefaultOptions()
			opts.MaxIters = mode.iters
			opts.Workers = 1
			opts.FullSim = mode.fullSim
			opts.Cost = prof
			charged := prof.ProposalCost(model, numTasks, mode.fullSim)
			builtin := DefaultCostModel().ProposalCost(model, numTasks, mode.fullSim)

			start := time.Now()
			res := MCMC(context.Background(), g, topo, est, []*config.Strategy{init.Clone()}, opts)
			wall := time.Since(start)
			if res.Iters == 0 {
				t.Fatalf("%s: no proposals executed", mode.name)
			}
			virtual := time.Duration(res.Iters) * charged
			measured := wall / time.Duration(res.Iters)
			drift := float64(wall) / float64(virtual)
			drifts[mode.name] = drift
			t.Logf("%s-sim drift: wall %v vs virtual %v over %d proposals "+
				"(measured %v/proposal; fitted charges %v, drift %.2fx; builtin would charge %v, drift %.2fx; %d tasks)",
				mode.name, wall.Round(time.Microsecond), virtual, res.Iters,
				measured.Round(time.Nanosecond), charged, drift,
				builtin, float64(measured)/float64(builtin), numTasks)
		}
		return drifts
	}

	inBounds := func(d float64) bool { return d >= 0.1 && d <= 10 }
	const maxAttempts = 3
	for try := 1; try <= maxAttempts; try++ {
		drifts := attempt()
		ok := true
		for _, d := range drifts {
			if !inBounds(d) {
				ok = false
			}
		}
		if ok {
			return
		}
		if try < maxAttempts {
			t.Logf("drift out of bounds (%v) on attempt %d — transient load? re-calibrating", drifts, try)
			continue
		}
		for name, d := range drifts {
			if !inBounds(d) {
				t.Errorf("%s-sim: fitted profile persistently drifts %.2fx from wall clock across %d calibrate+measure attempts (want within 10x of unity)",
					name, d, maxAttempts)
			}
		}
	}
}
