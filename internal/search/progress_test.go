package search

import (
	"context"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

func TestProposalCostScaling(t *testing.T) {
	small := proposalCost(100, false)
	big := proposalCost(10000, false)
	if big <= small {
		t.Fatalf("delta proposal cost must grow with graph size: %v vs %v", big, small)
	}
	if full := proposalCost(10000, true); full <= big {
		t.Fatalf("full-sim proposal (%v) must cost more than delta (%v)", full, big)
	}
}

// TestVirtualTimeDriftReport measures how far the calibration constants
// in progress.go sit from reality: it runs a single-worker micro-search,
// compares the wall clock against the virtual clock the budget machinery
// charged, and *reports* the drift (t.Log, never a failure — wall time
// on a loaded CI box proves nothing). This is the groundwork for the
// ROADMAP calibration item: the logged ratio is exactly the per-model
// correction factor a calibrated proposalCost would apply.
func TestVirtualTimeDriftReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock micro-benchmark; skipped in -short")
	}
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	init := config.DataParallel(g, topo)
	tg := taskgraph.Build(g, topo, init.Clone(), est, taskgraph.Options{})
	numTasks := len(tg.Tasks)

	for _, mode := range []struct {
		name    string
		fullSim bool
	}{{"delta", false}, {"full", true}} {
		opts := DefaultOptions()
		opts.MaxIters = 300
		opts.Workers = 1
		opts.FullSim = mode.fullSim
		perProposal := proposalCost(numTasks, mode.fullSim)

		start := time.Now()
		res := MCMC(context.Background(), g, topo, est, []*config.Strategy{init.Clone()}, opts)
		wall := time.Since(start)
		if res.Iters == 0 {
			t.Fatalf("%s: no proposals executed", mode.name)
		}
		virtual := time.Duration(res.Iters) * perProposal
		measured := wall / time.Duration(res.Iters)
		t.Logf("%s-sim virtual clock drift: wall %v vs virtual %v over %d proposals "+
			"(measured %v/proposal, charged %v/proposal, drift %.2fx on %d tasks)",
			mode.name, wall.Round(time.Microsecond), virtual, res.Iters,
			measured.Round(time.Nanosecond), perProposal, float64(wall)/float64(virtual), numTasks)
	}
}
