package search

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/memory"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
	"flexflow/internal/tensor"
)

// tinyMLP is small enough for fast searches but compute-heavy enough
// that parallelizing beats per-kernel overhead and transfer costs.
func tinyMLP() *graph.Graph {
	g := graph.New("mlp")
	x := g.Input4D("x", 64, 32, 32, 32)
	c := g.Conv2D("conv", x, 64, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("pool", c, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flat", p)
	h := g.Dense("fc1", f, 1024)
	g.Dense("fc2", h, 64)
	return g
}

func TestAccept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Improvements are always accepted.
	for i := 0; i < 100; i++ {
		if !accept(time.Second, time.Second-time.Millisecond, 15, rng) {
			t.Fatal("improvement rejected")
		}
		if !accept(time.Second, time.Second, 15, rng) {
			t.Fatal("equal cost rejected")
		}
	}
	// Large regressions are almost always rejected at high beta.
	rejected := 0
	for i := 0; i < 1000; i++ {
		if !accept(time.Second, 2*time.Second, 15, rng) {
			rejected++
		}
	}
	if rejected < 990 {
		t.Fatalf("2x regression rejected only %d/1000 at beta=15", rejected)
	}
	// Small regressions are sometimes accepted (escape local minima).
	acceptedSmall := 0
	for i := 0; i < 1000; i++ {
		if accept(time.Second, time.Second+10*time.Millisecond, 15, rng) {
			acceptedSmall++
		}
	}
	if acceptedSmall < 500 {
		t.Fatalf("1%% regression accepted only %d/1000 at beta=15 (want ~exp(-0.15)=86%%)", acceptedSmall)
	}
	// Degenerate current cost.
	if accept(0, time.Second, 15, rng) {
		t.Fatal("regression from zero cost accepted")
	}
}

// Statistical check of the Metropolis rule: acceptance frequency of a
// fixed regression should match exp(-beta * relative increase).
func TestAcceptMatchesMetropolisRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	beta := 10.0
	rel := 0.1 // 10% worse -> exp(-1) ~ 36.8%
	n, acc := 20000, 0
	for i := 0; i < n; i++ {
		if accept(time.Second, time.Duration(float64(time.Second)*(1+rel)), beta, rng) {
			acc++
		}
	}
	got := float64(acc) / float64(n)
	want := 0.3679
	if got < want-0.02 || got > want+0.02 {
		t.Fatalf("acceptance rate = %.4f, want ~%.4f", got, want)
	}
}

func TestMCMCImprovesOverDataParallelism(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()

	dpCost, _ := Evaluate(g, topo, est, config.DataParallel(g, topo), taskgraph.Options{})
	opts := DefaultOptions()
	opts.MaxIters = 600
	res := MCMC(context.Background(), g, topo, est, Initials(g, topo, 1, true), opts)

	if res.BestCost > dpCost {
		t.Fatalf("search result %v worse than data parallelism %v", res.BestCost, dpCost)
	}
	if res.Best == nil || res.Iters == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if err := res.Best.Validate(g, topo); err != nil {
		t.Fatalf("best strategy invalid: %v", err)
	}
	// Verify the reported cost is reproducible from the strategy.
	check, _ := Evaluate(g, topo, est, res.Best, taskgraph.Options{})
	if check != res.BestCost {
		t.Fatalf("reported cost %v != re-evaluated %v", res.BestCost, check)
	}
}

func TestMCMCDeterministicGivenSeed(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 150
	a := MCMC(context.Background(), g, topo, est, Initials(g, topo, 3, false), opts)
	b := MCMC(context.Background(), g, topo, est, Initials(g, topo, 3, false), opts)
	if a.BestCost != b.BestCost || !a.Best.Equal(b.Best) {
		t.Fatalf("same seed produced different results: %v vs %v", a.BestCost, b.BestCost)
	}
}

func TestMCMCTraceMonotone(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	opts := DefaultOptions()
	opts.MaxIters = 300
	res := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), Initials(g, topo, 2, false), opts)
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	// Within each chain the best-found cost never increases; chains are
	// concatenated, so only check per-chain monotonicity via iter resets.
	prev := res.Trace[0]
	for _, p := range res.Trace[1:] {
		if p.Iter > prev.Iter && p.BestCost > prev.BestCost {
			t.Fatalf("best cost increased within a chain: %+v -> %+v", prev, p)
		}
		prev = p
	}
}

func TestMCMCFullSimMatchesDelta(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 100
	delta := MCMC(context.Background(), g, topo, est, []*config.Strategy{config.DataParallel(g, topo)}, opts)
	opts.FullSim = true
	full := MCMC(context.Background(), g, topo, est, []*config.Strategy{config.DataParallel(g, topo)}, opts)
	// The two algorithms time identical strategies identically up to
	// ready-time tie-breaking (the full algorithm rebuilds the task
	// graph, renumbering tasks), so the walks may diverge slightly; the
	// search outcomes must still land in the same neighbourhood.
	lo, hi := delta.BestCost, full.BestCost
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi-lo) > 0.15*float64(hi) {
		t.Fatalf("delta search best %v and full search best %v diverge", delta.BestCost, full.BestCost)
	}
	if delta.SimStats.Fallbacks != 0 {
		t.Fatalf("delta fallbacks = %d", delta.SimStats.Fallbacks)
	}
}

func TestMCMCGreedyAtHighBeta(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	opts := DefaultOptions()
	opts.MaxIters = 200
	opts.Beta = 1e9 // effectively greedy: never accept regressions
	res := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), []*config.Strategy{config.DataParallel(g, topo)}, opts)
	// With greedy acceptance, the chain cost equals the best cost at
	// every accepted step; final best must be <= initial.
	if res.BestCost > res.Trace[0].BestCost {
		t.Fatal("greedy chain ended worse than it started")
	}
}

func TestSpaceRestrictions(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	if SpaceSOAP.allowed() != nil {
		t.Fatal("SOAP space should be unrestricted")
	}
	sm := SpaceSample.allowed()
	if !sm[0] || len(sm) != 1 {
		t.Fatalf("sample space = %v", sm)
	}
	opts := DefaultOptions()
	opts.MaxIters = 120
	opts.Space = SpaceSample
	res := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), []*config.Strategy{config.DataParallel(g, topo)}, opts)
	// Every config in the result must have degree 1 outside the sample dim.
	for _, op := range g.ComputeOps() {
		c := res.Best.Config(op.ID)
		for i := 1; i < len(c.Degrees); i++ {
			if c.Degrees[i] != 1 {
				t.Fatalf("sample-restricted search partitioned dim %d of %q", i, op.Name)
			}
		}
	}
}

func TestExhaustiveFindsOptimumAndMCMCMatches(t *testing.T) {
	// Scaled-down Section 8.4: a small linear model on 2 devices with a
	// restricted candidate set; DFS+bound finds the global optimum and
	// MCMC over the same space must reach it.
	g := graph.New("lenet-ish")
	x := g.Input4D("x", 8, 1, 12, 12)
	c := g.Conv2D("conv", x, 4, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("pool", c, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flat", p)
	g.Dense("fc", f, 10)
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()

	ex := Exhaustive(context.Background(), g, topo, est, ExhaustiveOptions{
		Enum:               config.EnumOptions{MaxDegree: 2},
		MaxCandidatesPerOp: 8,
	})
	if ex.Best == nil {
		t.Fatal("exhaustive found nothing")
	}
	if ex.Explored == 0 {
		t.Fatal("no leaves explored")
	}
	if ex.SpaceSize <= 1 {
		t.Fatalf("space size = %g", ex.SpaceSize)
	}
	if err := ex.Best.Validate(g, topo); err != nil {
		t.Fatal(err)
	}

	// MCMC (unrestricted proposals) should find a strategy at least as
	// good as the optimum of the restricted space.
	opts := DefaultOptions()
	opts.MaxIters = 1500
	res := MCMC(context.Background(), g, topo, est, Initials(g, topo, 5, false), opts)
	if res.BestCost > ex.BestCost {
		t.Fatalf("MCMC best %v worse than restricted-space optimum %v", res.BestCost, ex.BestCost)
	}
}

func TestExhaustivePruningSound(t *testing.T) {
	// With and without pruning must agree; disable pruning by removing
	// the bound via a huge initial best: instead compare two runs with
	// different candidate orders... simplest: assert explored+pruned
	// covers work and optimum is locally optimal.
	g := graph.New("chain")
	x := g.Input4D("x", 4, 2, 8, 8)
	c := g.Conv2D("conv", x, 4, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("flat", c)
	g.Dense("fc", f, 8)
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	enum := config.EnumOptions{MaxDegree: 2}

	ex := Exhaustive(context.Background(), g, topo, est, ExhaustiveOptions{Enum: enum, MaxCandidatesPerOp: 6})
	// The global optimum of the space has no improving neighbour within
	// the same space.
	best, improving, checked := Neighborhood(g, topo, est, ex.Best, enum, taskgraph.Options{}, 1)
	if checked == 0 {
		t.Fatal("no neighbours checked")
	}
	if improving != nil && best < ex.BestCost {
		// Neighborhood enumerates the full per-op candidate list, which
		// can exceed MaxCandidatesPerOp; only flag genuine violations
		// within the truncated candidate set.
		t.Fatalf("exhaustive optimum has improving neighbour: %v < %v", best, ex.BestCost)
	}
}

func TestPolishReachesLocalOptimum(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	bad := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		bad.Set(op.ID, config.OnDevice(op, 0))
	}
	base, _ := Evaluate(g, topo, est, bad, taskgraph.Options{})
	enum := config.EnumOptions{}
	polished, cost := Polish(context.Background(), g, topo, est, bad, PolishOptions{Enum: enum})
	if cost >= base {
		t.Fatalf("polish did not improve all-on-one-device: %v vs %v", cost, base)
	}
	// The polished strategy has no improving neighbour (local optimum).
	best, improving, _ := Neighborhood(g, topo, est, polished, enum, taskgraph.Options{}, 1)
	if improving != nil && best < cost {
		t.Fatalf("polished strategy has improving neighbour: %v < %v", best, cost)
	}
	// Polishing a local optimum is a no-op.
	again, cost2 := Polish(context.Background(), g, topo, est, polished, PolishOptions{Enum: enum, MaxRounds: 3})
	if cost2 != cost || !again.Equal(polished) {
		t.Fatalf("re-polish changed the strategy: %v vs %v", cost2, cost)
	}
}

func TestNeighborhoodFindsImprovement(t *testing.T) {
	// A deliberately bad strategy (everything on one device) must have
	// an improving neighbour on a 2-GPU node.
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	bad := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		bad.Set(op.ID, config.OnDevice(op, 0))
	}
	base, _ := Evaluate(g, topo, est, bad, taskgraph.Options{})
	best, improving, _ := Neighborhood(g, topo, est, bad, config.EnumOptions{}, taskgraph.Options{}, 1)
	if improving == nil || best >= base {
		t.Fatalf("no improving neighbour found for all-on-one-device (base %v, best %v)", base, best)
	}
}

func TestOptCNNLinearChain(t *testing.T) {
	g := graph.New("linear")
	x := g.Input4D("x", 64, 16, 32, 32)
	c1 := g.Conv2D("c1", x, 32, 3, 3, 1, 1, 1, 1)
	c2 := g.Conv2D("c2", c1, 32, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("f", c2)
	g.Dense("fc", f, 256)
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()

	s, err := OptCNN(context.Background(), g, topo, est, config.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("OptCNN strategy invalid: %v", err)
	}
	cost, _ := Evaluate(g, topo, est, s, taskgraph.Options{})
	// OptCNN should beat the trivial single-device strategy.
	single := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		single.Set(op.ID, config.OnDevice(op, 0))
	}
	singleCost, _ := Evaluate(g, topo, est, single, taskgraph.Options{})
	if cost >= singleCost {
		t.Fatalf("OptCNN %v not better than single device %v", cost, singleCost)
	}
}

func TestOptCNNNonLinearGraph(t *testing.T) {
	g := graph.New("branchy")
	x := g.Input4D("x", 8, 4, 16, 16)
	a := g.Conv2D("a", x, 8, 1, 1, 1, 1, 0, 0)
	b := g.Conv2D("b", x, 8, 3, 3, 1, 1, 1, 1)
	g.ConcatChannels("cat", a, b)
	if g.IsLinear() {
		t.Fatal("test graph should be non-linear")
	}
	topo := device.NewSingleNode(2, "P100")
	s, err := OptCNN(context.Background(), g, topo, perfmodel.NewAnalyticModel(), config.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("OptCNN (greedy) strategy invalid: %v", err)
	}
}

func TestReinforcePlacement(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultReinforceOptions()
	opts.Episodes = 150
	opts.Seed = 2
	res := Reinforce(context.Background(), g, topo, est, opts)
	if res.Best == nil || res.Episodes != 150 {
		t.Fatalf("result %+v", res)
	}
	if err := res.Best.Validate(g, topo); err != nil {
		t.Fatal(err)
	}
	// Every op is placed whole (model parallelism only).
	for _, op := range g.ComputeOps() {
		if res.Best.Config(op.ID).NumTasks() != 1 {
			t.Fatalf("REINFORCE split op %q", op.Name)
		}
	}
	// FlexFlow's broader space should match or beat it (Figure 10a).
	mopts := DefaultOptions()
	mopts.MaxIters = 800
	ff := MCMC(context.Background(), g, topo, est, Initials(g, topo, 1, false), mopts)
	if ff.BestCost > res.BestCost {
		t.Fatalf("FlexFlow %v worse than REINFORCE %v", ff.BestCost, res.BestCost)
	}
}

func TestMCMCMemoryCheck(t *testing.T) {
	// A model whose full replication does not fit tiny devices: the
	// memory-checked search must only ever hold feasible strategies.
	g := graph.New("fat")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D(graph.DimSample, 64, tensor.Sample),
		tensor.D(graph.DimChannel, 4096, tensor.Attribute)))
	h := g.Dense("fc1", x, 8192) // ~134 MB weights
	g.Dense("fc2", h, 4096)      // ~134 MB weights

	topo := device.NewTopology("small-mem")
	a := topo.AddDevice(device.Device{Kind: device.GPU, Name: "g0", Model: "P100", PeakGFLOPS: 9300, MemBWGBs: 732, MemGB: 0.4})
	b := topo.AddDevice(device.Device{Kind: device.GPU, Name: "g1", Model: "P100", PeakGFLOPS: 9300, MemBWGBs: 732, MemGB: 0.4})
	topo.AddLink(device.NVLink, a, b, 18, 0)

	// Start from a feasible sharded strategy.
	init := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		init.Set(op.ID, config.ParamParallel(op, topo.GPUs()))
	}
	if !memory.Fits(g, topo, init, memory.Model{}) {
		t.Fatal("initial strategy should fit")
	}
	opts := DefaultOptions()
	opts.MaxIters = 400
	opts.MemoryCheck = true
	res := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), []*config.Strategy{init}, opts)
	if err := memory.Check(g, topo, res.Best, memory.Model{}); err != nil {
		t.Fatalf("memory-checked search returned an infeasible strategy: %v", err)
	}
	// Without the check, the same walk is free to adopt infeasible
	// strategies (data-parallel-ish replication); it usually does.
	opts.MemoryCheck = false
	free := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), []*config.Strategy{init}, opts)
	_ = free // no assertion: feasibility is simply not guaranteed here
}

func TestSoftmaxHelpers(t *testing.T) {
	p := softmax([]float64{0, 0, 0})
	for _, pi := range p {
		if pi < 0.33 || pi > 0.34 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	p = softmax([]float64{100, 0, 0})
	if p[0] < 0.99 {
		t.Fatalf("peaked softmax = %v", p)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[sampleSoftmax([]float64{0, 0, 0}, rng)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("sampleSoftmax skewed: counts[%d] = %d", i, c)
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	cost, m := Evaluate(g, topo, perfmodel.NewAnalyticModel(), config.DataParallel(g, topo), taskgraph.Options{})
	if cost <= 0 || m.NumTasks == 0 {
		t.Fatalf("cost %v, metrics %+v", cost, m)
	}
}
