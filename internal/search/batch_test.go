package search

import (
	"math/rand"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// TestEvaluateBatchMatchesIndependent checks that every proposal in a
// batch is priced exactly as a from-scratch full simulation of the
// graph the batch's instance holds at that point: the base strategy
// with only that op changed, replayed on a mirror instance so task IDs
// (the ready-time tie-breaker) match. The proposal list interleaves
// same-op chains (no revert in between) and op changes (revert
// inserted), including a return to an op already visited.
func TestEvaluateBatchMatchesIndependent(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	strat := config.DataParallel(g, topo)
	plan := taskgraph.Compile(g, topo, strat.Clone(), est, taskgraph.Options{})
	base := sim.NewState(plan.Base())
	base.Simulate()

	rng := rand.New(rand.NewSource(7))
	ops := g.ComputeOps()
	var props []Proposal
	// Two candidates per op (same-op chaining), then a second pass over
	// the ops in reverse (op changes, including back to an op already
	// visited).
	for _, op := range ops {
		for k := 0; k < 2; k++ {
			props = append(props, Proposal{OpID: op.ID, Cfg: config.RandomConfig(op, topo, rng)})
		}
	}
	for i := len(ops) - 1; i >= 0; i-- {
		props = append(props, Proposal{OpID: ops[i].ID, Cfg: config.RandomConfig(ops[i], topo, rng)})
	}

	costs := EvaluateBatch(plan, base, props)
	if len(costs) != len(props) {
		t.Fatalf("got %d costs for %d proposals", len(costs), len(props))
	}
	// Mirror the batch's exact ReplaceConfig sequence (including the
	// reverts at op changes) on a second instance, full-simulating from
	// scratch after every proposal: instances replaying one sequence
	// assign identical task IDs, so delta and full must agree exactly.
	mirror := plan.Instance()
	curOp := -1
	for i, p := range props {
		if curOp >= 0 && p.OpID != curOp {
			mirror.ReplaceConfig(curOp, plan.Base().Strat.Config(curOp).Clone())
		}
		curOp = p.OpID
		mirror.ReplaceConfig(p.OpID, p.Cfg)
		if want := sim.NewState(mirror).Simulate(); costs[i] != want {
			t.Fatalf("proposal %d (op %d): batch %v != full replay %v", i, p.OpID, costs[i], want)
		}
	}

	// The shared inputs must be untouched: the base strategy still
	// prices to the base makespan.
	again := EvaluateBatch(plan, base, nil)
	if len(again) != 0 {
		t.Fatalf("empty batch returned %d costs", len(again))
	}
	if got := sim.NewState(plan.Base()).Simulate(); got != base.Makespan {
		t.Fatalf("base graph perturbed: %v != %v", got, base.Makespan)
	}
}
