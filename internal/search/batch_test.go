package search

import (
	"context"
	"math/rand"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// TestEvaluateBatchMatchesIndependent checks that every proposal in a
// batch is priced exactly as a from-scratch full simulation of the
// graph the batch's instance holds at that point: the base strategy
// with only that op changed, replayed on a mirror instance so task IDs
// (the ready-time tie-breaker) match. The proposal list interleaves
// same-op chains (no revert in between) and op changes (revert
// inserted), including a return to an op already visited.
func TestEvaluateBatchMatchesIndependent(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	strat := config.DataParallel(g, topo)
	plan := taskgraph.Compile(g, topo, strat.Clone(), est, taskgraph.Options{})
	base := sim.NewState(plan.Base())
	base.Simulate()

	rng := rand.New(rand.NewSource(7))
	ops := g.ComputeOps()
	var props []Proposal
	// Two candidates per op (same-op chaining), then a second pass over
	// the ops in reverse (op changes, including back to an op already
	// visited).
	for _, op := range ops {
		for k := 0; k < 2; k++ {
			props = append(props, Proposal{OpID: op.ID, Cfg: config.RandomConfig(op, topo, rng)})
		}
	}
	for i := len(ops) - 1; i >= 0; i-- {
		props = append(props, Proposal{OpID: ops[i].ID, Cfg: config.RandomConfig(ops[i], topo, rng)})
	}

	costs := EvaluateBatch(plan, base, props)
	if len(costs) != len(props) {
		t.Fatalf("got %d costs for %d proposals", len(costs), len(props))
	}
	// Mirror the batch's exact ReplaceConfig sequence (including the
	// reverts at op changes) on a second instance, full-simulating from
	// scratch after every proposal: instances replaying one sequence
	// assign identical task IDs, so delta and full must agree exactly.
	mirror := plan.Instance()
	curOp := -1
	for i, p := range props {
		if curOp >= 0 && p.OpID != curOp {
			mirror.ReplaceConfig(curOp, plan.Base().Strat.Config(curOp).Clone())
		}
		curOp = p.OpID
		mirror.ReplaceConfig(p.OpID, p.Cfg)
		if want := sim.NewState(mirror).Simulate(); costs[i] != want {
			t.Fatalf("proposal %d (op %d): batch %v != full replay %v", i, p.OpID, costs[i], want)
		}
	}

	// The shared inputs must be untouched: the base strategy still
	// prices to the base makespan.
	again := EvaluateBatch(plan, base, nil)
	if len(again) != 0 {
		t.Fatalf("empty batch returned %d costs", len(again))
	}
	if got := sim.NewState(plan.Base()).Simulate(); got != base.Makespan {
		t.Fatalf("base graph perturbed: %v != %v", got, base.Makespan)
	}
}

// TestEvaluateBatchFromMatchesIndependent is the steady-state variant
// of the batch differential: the instance is first walked away from the
// plan base (the position an MCMC chain is in mid-search), then a
// proposal list mixing same-op chains and op changes is priced with
// EvaluateBatchFrom against that point. Every cost must equal a
// from-scratch full simulation on a mirror instance replaying the exact
// same ReplaceConfig sequence, the pass must leave the instance parked
// at the last proposal, and the documented re-park restores the
// starting point.
func TestEvaluateBatchFromMatchesIndependent(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	plan := taskgraph.Compile(g, topo, config.DataParallel(g, topo), est, taskgraph.Options{})
	base := sim.NewState(plan.Base())
	base.Simulate()

	rng := rand.New(rand.NewSource(17))
	ops := g.ComputeOps()
	tg := plan.Instance()
	st := base.CloneFor(tg)
	mirror := plan.Instance()
	cur := plan.Base().Strat.Clone()
	// Walk both instances through the same five accepted moves so their
	// task IDs (the ready-time tie-breaker) stay aligned.
	for i := 0; i < 5; i++ {
		op := ops[rng.Intn(len(ops))]
		cfg := config.RandomConfig(op, topo, rng)
		st.ApplyDelta(tg.ReplaceConfig(op.ID, cfg))
		mirror.ReplaceConfig(op.ID, cfg)
		cur.Set(op.ID, cfg)
	}

	var props []Proposal
	for _, op := range ops {
		for k := 0; k < 2; k++ {
			props = append(props, Proposal{OpID: op.ID, Cfg: config.RandomConfig(op, topo, rng)})
		}
	}
	for i := len(ops) - 1; i >= 0; i-- {
		props = append(props, Proposal{OpID: ops[i].ID, Cfg: config.RandomConfig(ops[i], topo, rng)})
	}

	costs := EvaluateBatchFrom(tg, st, cur, props)
	curOp := -1
	for i, p := range props {
		if curOp >= 0 && p.OpID != curOp {
			mirror.ReplaceConfig(curOp, cur.Config(curOp).Clone())
		}
		curOp = p.OpID
		mirror.ReplaceConfig(p.OpID, p.Cfg)
		if want := sim.NewState(mirror).Simulate(); costs[i] != want {
			t.Fatalf("proposal %d (op %d): batch %v != full replay %v", i, p.OpID, costs[i], want)
		}
	}
	// Parked at the last proposal: the timeline must agree with the
	// mirror as it stands.
	if want := sim.NewState(mirror).Simulate(); st.Makespan != want {
		t.Fatalf("instance not parked at last proposal: %v != %v", st.Makespan, want)
	}
	// The documented re-park (revert the last proposal's op to cur)
	// returns the instance to the pre-batch point.
	last := props[len(props)-1].OpID
	st.ApplyDelta(tg.ReplaceConfig(last, cur.Config(last).Clone()))
	mirror.ReplaceConfig(last, cur.Config(last).Clone())
	if want := sim.NewState(mirror).Simulate(); st.Makespan != want {
		t.Fatalf("re-park diverged: %v != %v", st.Makespan, want)
	}
}

// TestMCMCProposalBatchContract pins the ProposalBatch API: 0 and 1
// are the same classic walk, every batch size is deterministic run to
// run and produces a non-degenerate search, and FullSim mode ignores
// the knob entirely.
func TestMCMCProposalBatchContract(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 150
	opts.Seed = 5
	initials := Initials(g, topo, 5, true)

	run := func(batch int, fullSim bool) Result {
		o := opts
		o.ProposalBatch = batch
		o.FullSim = fullSim
		return MCMC(context.Background(), g, topo, est, initials, o)
	}
	same := func(a, b Result) bool {
		if a.BestCost != b.BestCost || !a.Best.Equal(b.Best) ||
			a.Iters != b.Iters || a.Accepted != b.Accepted ||
			a.SimStats != b.SimStats || len(a.Trace) != len(b.Trace) {
			return false
		}
		for i := range a.Trace {
			if a.Trace[i] != b.Trace[i] {
				return false
			}
		}
		return true
	}

	zero, one := run(0, false), run(1, false)
	if !same(zero, one) {
		t.Error("ProposalBatch 0 and 1 are not the same walk")
	}
	for _, batch := range []int{4, 16} {
		a, b := run(batch, false), run(batch, false)
		if !same(a, b) {
			t.Errorf("ProposalBatch=%d is not deterministic run to run", batch)
		}
		if a.Iters == 0 || a.Accepted == 0 || a.Best == nil || a.BestCost <= 0 {
			t.Errorf("ProposalBatch=%d degenerate search: %+v", batch, a)
		}
	}
	if fa, fb := run(1, true), run(16, true); !same(fa, fb) {
		t.Error("FullSim walk changed with ProposalBatch set")
	}
}
