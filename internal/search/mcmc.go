// Package search implements the execution optimizer of Section 6 — a
// Markov Chain Monte Carlo search over the SOAP space using the
// execution simulator as its cost oracle — together with the baselines
// the paper evaluates against: exhaustive DFS with admissible pruning
// (Section 8.4), a local-optimality checker, the OptCNN dynamic program,
// and a REINFORCE-style device-placement learner.
//
// Every optimizer takes a context.Context and stops promptly when it is
// cancelled, returning the best strategy found so far; streaming
// progress is reported through an OnEvent callback (see ProgressEvent).
//
// # Concurrency and determinism
//
// Every fan-out in this package — MCMC chains, exhaustive DFS
// subtrees, REINFORCE episode rollouts, Neighborhood candidate sweeps
// — runs on the single process-wide worker pool (internal/par), sized
// once with par.SetWorkers. Nested fan-out (a Neighborhood sweep
// inside a Polish round inside an experiments cell) composes under
// that one bound via caller-runs scheduling instead of multiplying
// pools; the per-search Workers fields remain as deprecated caps on a
// search's share of the pool. The full repo-wide contract is written
// down in docs/CONCURRENCY.md.
//
// MCMC runs its independent chains (one per initial strategy, Section
// 8.1) across that pool. The structure is
// compiled once per distinct initial strategy into an immutable
// taskgraph.Plan whose base timeline is simulated once; each chain then
// owns a private Plan.Instance and a sim.State cloned from the base —
// mutable simulator state is never shared between goroutines, only the
// frozen plan is — and draws from a private RNG whose seed is derived
// up front from Options.Seed and the chain index, so the random walk of
// chain i is one fixed sequence no matter how many workers execute the
// pool or in which order chains are scheduled.
//
// Budgets are charged in virtual time: every proposal costs a
// deterministic amount priced by the active CostModel — a measured
// calibration profile (internal/calib) when one is installed, the
// built-in order-of-magnitude constants otherwise — so Budget > 0
// bounds a fixed proposal count per chain and the paper's
// "no improvement for half the search time" criterion is evaluated
// against the chain's virtual clock. The determinism contract is
// therefore unconditional: for a fixed Seed and a fixed cost model the
// result (Best, BestCost, Iters, Accepted, Trace, SimStats —
// everything except the wall-clock SearchTime) is bit-identical for
// every Workers value, budgeted or not, run to run. Wall-clock limits
// belong to the context (use context.WithTimeout), which trades that
// reproducibility for a hard deadline.
//
// Exhaustive fans its pruned DFS out over the same pool; BestCost stays
// deterministic (the shared bound only ever prunes subtrees that cannot
// beat it) while Explored/Pruned become scheduling-dependent.
package search

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/memory"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
	"flexflow/internal/tensor"
)

// Space restricts which output-dimension kinds proposals may partition —
// the search-space ablation (the "ablation-space" experiment,
// docs/EXPERIMENTS.md).
type Space uint8

const (
	// SpaceSOAP is the full search space (the paper's contribution).
	SpaceSOAP Space = iota
	// SpaceSample only partitions the sample dimension (the space data
	// parallelism lives in, plus device placement).
	SpaceSample
	// SpaceSampleParam adds parameter-dimension partitioning (OptCNN's
	// space minus attribute dimensions, roughly).
	SpaceSampleParam
)

func (s Space) allowed() map[tensor.DimKind]bool {
	switch s {
	case SpaceSample:
		return map[tensor.DimKind]bool{tensor.Sample: true}
	case SpaceSampleParam:
		return map[tensor.DimKind]bool{tensor.Sample: true, tensor.Parameter: true}
	default:
		return nil
	}
}

// Options configure the MCMC optimizer.
type Options struct {
	// Beta is the Metropolis-Hastings temperature constant of Eq. (1).
	// The acceptance probability for a worse strategy is
	// exp(-Beta * (cost* - cost)/cost), i.e. Beta is expressed in units
	// of relative slowdown so one default works across models.
	Beta float64
	// MaxIters caps the number of proposals per initial strategy.
	MaxIters int
	// Budget caps the *virtual* search time per initial strategy
	// (0 = unlimited; MaxIters still applies). Proposals are charged a
	// deterministic cost by the active CostModel (see Cost), so a
	// budgeted run executes a fixed proposal count and replays exactly.
	// Bound wall-clock time through the context instead.
	Budget time.Duration
	// Seed makes the search reproducible.
	Seed int64
	// FullSim makes every proposal run the full simulation algorithm of
	// Section 5.2 — Algorithm 1 rebuilds the task graph from scratch
	// (BUILDTASKGRAPH) and re-times every task — instead of the delta
	// algorithm's incremental update. This is the Table 4 comparison.
	FullSim bool
	// Space restricts proposals (ablation).
	Space Space
	// TaskOpts are forwarded to the task-graph builder.
	TaskOpts taskgraph.Options
	// MemoryCheck rejects proposals whose per-device footprint (under
	// MemoryModel) exceeds device capacity, mirroring the memory
	// constraint the production FlexFlow runtime enforces.
	MemoryCheck bool
	// MemoryModel configures the footprint accounting when MemoryCheck
	// is set (zero value = plain SGD training).
	MemoryModel memory.Model
	// Cost prices proposals for the virtual-time budget (nil = the
	// process-wide default installed by SetDefaultCostModel, which is
	// the built-in order-of-magnitude constants unless a fitted
	// calibration profile has been installed). It is resolved once at
	// search start, so a fixed cost model keeps budgeted runs
	// bit-identical across Workers values and pool sizes.
	Cost CostModel
	// Locality selects the proposal-locality policy: how a chain picks
	// the op each draft mutates ("" or LocalityUniform = the classic
	// uniform walk, bit-identical to a Locality-less search, pinned by
	// TestMCMCLocalityContract). Non-uniform policies steer proposals
	// toward ops whose tasks sit late in the chain's current timeline —
	// the delta simulator re-evaluates only the timeline suffix after
	// the earliest change point, so late ops are cheap to price — using
	// only the chain's private RNG stream and per-chain state. Every
	// policy is therefore its own deterministic walk: for a fixed
	// (Seed, Locality, ProposalBatch, CostModel) the Result is
	// bit-identical across Workers values and pool sizes. Ignored in
	// FullSim mode, which rebuilds from scratch per proposal and has no
	// standing timeline to score ops against. See docs/ARCHITECTURE.md,
	// "Proposal locality".
	Locality Locality
	// ProposalBatch sets how many proposals a chain drafts per round in
	// delta mode (0 or 1 = the classic one-at-a-time walk, bit-identical
	// to a ProposalBatch-less search). A round drafts K proposals from
	// the chain's current point, prices all of them in one
	// EvaluateBatchFrom pass — grouped by op, so same-op drafts chain
	// without revert deltas — and accepts the first winner in draw
	// order, discarding the later drafts of the round (their costs were
	// priced against the pre-move point). Every batch size is its own
	// deterministic walk: for a fixed (Seed, ProposalBatch, CostModel)
	// the Result is bit-identical across Workers values and pool sizes.
	// Ignored in FullSim mode, which rebuilds per proposal anyway.
	ProposalBatch int
	// Workers caps this search's share of the process-wide worker pool
	// (0 = the pool's full bound; see par.SetWorkers). Results are
	// identical for every value and every pool size; see the package
	// comment for the determinism contract.
	//
	// Deprecated: size the shared pool once with par.SetWorkers instead
	// of capping individual searches.
	Workers int
	// OnEvent, when non-nil, receives streaming progress events: one
	// per chain-best improvement plus a final event per chain. It is
	// called from the chain goroutines concurrently and must be safe
	// for concurrent use.
	OnEvent func(ProgressEvent)
}

// DefaultProposalBatch is the measured ProposalBatch default: the
// batch ∈ {1, 4, 8, 16} × {synth-2k, synth-50k} sweep recorded in
// BENCH_pr9.json (methodology in docs/EXPERIMENTS.md) shows batched
// rounds losing ground as batch size grows — at realistic acceptance
// rates a round's later drafts are priced against a point the chain
// has already left, so their evaluations are discarded work — and
// batch=1 is also the only size whose walk is bit-identical to a
// ProposalBatch-less search. Batching stays available as an explicit
// opt-in for cost models where drafting dominates pricing.
const DefaultProposalBatch = 1

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{Beta: 15, MaxIters: 2000, Seed: 1, ProposalBatch: DefaultProposalBatch}
}

// TracePoint records search progress for Figure 12. Elapsed is the
// chain's virtual search time (deterministic), not wall clock.
type TracePoint struct {
	Iter     int
	Elapsed  time.Duration
	BestCost time.Duration
}

// Result is the outcome of a search.
type Result struct {
	Best     *config.Strategy
	BestCost time.Duration
	// Iters and Accepted count proposals and accepted proposals.
	Iters, Accepted int
	// SearchTime is the wall-clock time the optimizer ran for (the only
	// field of a Result that is not deterministic).
	SearchTime time.Duration
	Trace      []TracePoint
	SimStats   sim.Stats
}

// chainSeed derives the RNG seed of chain i from the master seed with a
// splitmix64 finalizer, giving every chain a decorrelated stream that
// depends only on (Seed, i) — never on how many chains ran before it or
// on the worker count.
func chainSeed(master int64, chain int) int64 {
	z := uint64(master) + (uint64(chain)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// MCMC explores the SOAP space from each initial strategy — one chain
// per initial, fanned out over the shared worker pool — and returns the
// best strategy discovered overall. Each chain ends when its iteration
// or virtual-time budget is exhausted, when ctx is cancelled, or when it
// has not improved its best for half of its elapsed virtual search time
// (the paper's stopping criterion on the deterministic clock). On
// cancellation the best strategy found so far is returned; inspect
// ctx.Err() to distinguish a cancelled run from a completed one.
func MCMC(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, initials []*config.Strategy, opts Options) Result {
	if opts.Beta == 0 {
		opts.Beta = DefaultOptions().Beta
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = DefaultOptions().MaxIters
	}
	// Normalize the locality policy once, before the fan-out; an unknown
	// value is a programmer error (API boundaries validate with
	// ParseLocality and return the error to the caller).
	loc, err := ParseLocality(string(opts.Locality))
	if err != nil {
		panic(err.Error())
	}
	opts.Locality = loc
	// Resolve the cost model once, before the fan-out: every chain
	// prices proposals identically even if SetDefaultCostModel is
	// called while the search runs.
	if opts.Cost == nil {
		opts.Cost = defaultCostModel()
	}
	start := time.Now()
	if len(initials) == 0 {
		return Result{SearchTime: time.Since(start)}
	}
	// Force the lazy route-table build before fanning out so chains only
	// ever read the topology.
	if topo.NumDevices() > 0 {
		topo.Route(0, 0)
	}
	// Compile one immutable Plan (plus its simulated base timeline) per
	// distinct initial strategy, up front and sequentially: chains that
	// start from the same strategy share the compiled structure and the
	// base timeline read-only, and per-chain setup drops to a structural
	// clone + state copy (Plan.Instance + State.CloneFor) instead of a
	// full Build + Simulate.
	compiled := make([]chainStart, len(initials))
	for i, init := range initials {
		shared := -1
		for j := 0; j < i; j++ {
			if initials[j].Equal(init) {
				shared = j
				break
			}
		}
		if shared >= 0 {
			compiled[i] = compiled[shared]
			continue
		}
		plan := taskgraph.Compile(g, topo, init.Clone(), est, opts.TaskOpts)
		base := sim.NewState(plan.Base())
		base.Simulate()
		compiled[i] = chainStart{plan: plan, base: base}
	}
	results := make([]Result, len(initials))
	par.ForEach(opts.Workers, len(initials), func(i int) {
		rng := rand.New(rand.NewSource(chainSeed(opts.Seed, i)))
		results[i] = runChain(ctx, g, topo, est, initials[i], compiled[i], i, opts, rng)
	})
	// Merge in chain-index order, so ties between chains resolve the
	// same way no matter which worker finished first.
	best := results[0]
	for _, r := range results[1:] {
		best.Trace = append(best.Trace, r.Trace...)
		best.Iters += r.Iters
		best.Accepted += r.Accepted
		best.SimStats.Pops += r.SimStats.Pops
		best.SimStats.FullSims += r.SimStats.FullSims
		best.SimStats.DeltaSims += r.SimStats.DeltaSims
		best.SimStats.SuffixTasks += r.SimStats.SuffixTasks
		best.SimStats.Fallbacks += r.SimStats.Fallbacks
		if r.BestCost < best.BestCost {
			best.Best, best.BestCost = r.Best, r.BestCost
		}
	}
	best.SearchTime = time.Since(start)
	return best
}

// chainStart is the shared, read-only starting point of a chain: the
// compiled plan of its initial strategy and the simulated base
// timeline. Chains with equal initials point at the same values.
type chainStart struct {
	plan *taskgraph.Plan
	base *sim.State
}

func runChain(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, init *config.Strategy, start0 chainStart, chain int, opts Options, rng *rand.Rand) Result {
	wallStart := time.Now()
	cur := init.Clone()
	// Delta mode keeps one task graph + timeline alive across proposals;
	// full mode rebuilds per proposal, exactly as Algorithm 1 does
	// (BUILDTASKGRAPH is its first step). Either way the chain starts
	// from a private instance of the shared plan: the clone preserves
	// task IDs, so the timeline (and every delta after it) is
	// bit-identical to one the chain would have built itself. CloneFor
	// copies the base state's Stats too, so the shared initial Simulate
	// is accounted once per chain, exactly as before.
	tg := start0.plan.Instance()
	st := start0.base.CloneFor(tg)
	cost := st.Makespan

	// The chain's deterministic clock: every proposal advances it by an
	// amount the cost model derives only from (model, task-graph size,
	// simulation mode), so the budget and the half-time stopping
	// criterion replay exactly for a fixed model/profile.
	perProposal := opts.Cost.ProposalCost(g.Name, len(tg.Tasks), opts.FullSim)
	virtual := func(it int) time.Duration { return time.Duration(it) * perProposal }

	res := Result{
		Best:     cur.Clone(),
		BestCost: cost,
		Trace:    []TracePoint{{Iter: 0, Elapsed: 0, BestCost: cost}},
	}
	emit(opts.OnEvent, ProgressEvent{Algorithm: "mcmc", Chain: chain, Iter: 0, BestCost: cost})
	ops := g.ComputeOps()
	allowed := opts.Space.allowed()
	// Locality state: nil for the uniform policy (the classic Intn path,
	// untouched) and in FullSim mode (no standing timeline to score ops
	// against — proposals rebuild from scratch). The picker is per-chain
	// and consumes only this chain's RNG, preserving the determinism
	// contract for every pool size.
	var picker *localityPicker
	if !opts.FullSim {
		picker = newLocalityPicker(opts.Locality, ops, st)
	}
	lastImprove := time.Duration(0) // virtual time of the last chain-best improvement

	// Incremental memory accounting: running per-device totals plus
	// per-op contributions, updated as proposals are accepted.
	var memUsage []int64
	var memCaps []int64
	opMem := map[int]map[int]int64{}
	if opts.MemoryCheck {
		memUsage = make([]int64, topo.NumDevices())
		memCaps = make([]int64, topo.NumDevices())
		for id := 0; id < topo.NumDevices(); id++ {
			if gb := topo.Device(id).MemGB; gb > 0 {
				memCaps[id] = int64(gb * 1e9)
			}
		}
		for _, op := range ops {
			fp := memory.OpFootprint(op, cur.Config(op.ID), opts.MemoryModel)
			opMem[op.ID] = fp
			for dev, b := range fp {
				memUsage[dev] += b
			}
		}
	}
	memFeasible := func(op *graph.Op, newFP map[int]int64) bool {
		old := opMem[op.ID]
		for dev, b := range newFP {
			total := memUsage[dev] - old[dev] + b
			if memCaps[dev] > 0 && total > memCaps[dev] {
				return false
			}
		}
		return true
	}
	memCommit := func(op *graph.Op, newFP map[int]int64) {
		old := opMem[op.ID]
		for dev, b := range old {
			memUsage[dev] -= b
		}
		for dev, b := range newFP {
			memUsage[dev] += b
		}
		opMem[op.ID] = newFP
	}

	finish := func() Result {
		res.SimStats = st.Stats
		res.SearchTime = time.Since(wallStart)
		emit(opts.OnEvent, ProgressEvent{
			Algorithm: "mcmc", Chain: chain, Iter: res.Iters,
			BestCost: res.BestCost, Elapsed: virtual(res.Iters), Final: true,
		})
		return res
	}

	// Delta mode drafts batchSize proposals per round and prices them in
	// one EvaluateBatchFrom pass over the chain's live instance. Full
	// mode is forced to rounds of one: it rebuilds the task graph per
	// proposal (Algorithm 1's BUILDTASKGRAPH), so there is nothing to
	// batch. Rounds of one reproduce the classic one-proposal-at-a-time
	// walk call for call — same RNG stream, same delta sequence, same
	// stats — which the batch differential tests pin.
	batchSize := opts.ProposalBatch
	if batchSize < 1 || opts.FullSim {
		batchSize = 1
	}
	type draft struct {
		it      int
		elapsed time.Duration
		op      *graph.Op
		pos     int // op's position in ops (locality EMA attribution)
		oldCfg  *config.Config
		newCfg  *config.Config
		newFP   map[int]int64
	}
	round := make([]draft, 0, batchSize)
	evalIdx := make([]int, 0, batchSize)
	props := make([]Proposal, 0, batchSize)
	costs := make([]time.Duration, batchSize)
	suffixBuf := make([]int64, batchSize)

	it := 0
	stopped := false
	for !stopped && it < opts.MaxIters {
		// Draft phase. The per-iteration bookkeeping — cancellation,
		// virtual budget, the half-time stopping criterion, the RNG
		// draws, memory feasibility — is the classic loop's, verbatim; a
		// draft is exactly the proposal the classic loop would have
		// simulated at that iteration.
		round = round[:0]
		for len(round) < batchSize && it < opts.MaxIters {
			it++
			if cancelled(ctx) {
				return finish()
			}
			elapsed := virtual(it)
			if opts.Budget > 0 && elapsed > opts.Budget {
				stopped = true
				break
			}
			// Criterion 2 of Section 6.2: stop when the best strategy has
			// not improved for half of the search time — on the chain's
			// virtual clock, so budgeted runs stop at the same proposal
			// count every run. The criterion is defined relative to the
			// time budget, so it only applies when one is set; iteration-
			// budgeted runs (e.g. the Table 4 timing comparison) execute
			// their full proposal count.
			if opts.Budget > 0 && elapsed > 100*time.Millisecond && elapsed-lastImprove > elapsed/2 {
				stopped = true
				break
			}
			// The uniform policy keeps the classic draw verbatim — one
			// Intn per draft, the pre-locality RNG stream; non-uniform
			// policies draw from the weighted sampler instead (their walk
			// is its own deterministic sequence).
			pos := -1
			var op *graph.Op
			if picker == nil {
				op = ops[rng.Intn(len(ops))]
			} else {
				pos = picker.pick(rng)
				op = ops[pos]
			}
			// Configs are immutable once built (Strategy.Set swaps
			// pointers, never writes in place), so drafts and the revert
			// path can keep old pointers instead of defensive clones.
			oldCfg := cur.Config(op.ID)
			newCfg := config.RandomConfigRestricted(op, topo, rng, allowed)
			if newCfg.Equal(oldCfg) {
				continue
			}
			var newFP map[int]int64
			if opts.MemoryCheck {
				newFP = memory.OpFootprint(op, newCfg, opts.MemoryModel)
				if !memFeasible(op, newFP) {
					continue // infeasible proposal: rejected outright
				}
			}
			round = append(round, draft{it: it, elapsed: elapsed, op: op, pos: pos, oldCfg: oldCfg, newCfg: newCfg, newFP: newFP})
		}
		if len(round) == 0 {
			continue
		}

		// Price the round. Delta mode evaluates every draft against the
		// chain's current point in one EvaluateBatchFrom pass, grouped
		// stably by op so same-op drafts chain without a revert delta in
		// between; the pass leaves the instance parked at the last draft
		// it evaluated. Full mode rebuilds and re-times the single draft.
		lastEval := -1
		if opts.FullSim {
			d := round[0]
			cur.Set(d.op.ID, d.newCfg)
			full := taskgraph.Build(g, topo, cur.Clone(), est, opts.TaskOpts)
			fullState := sim.NewState(full)
			costs[0] = fullState.Simulate()
			st.Stats.FullSims++
			st.Stats.Pops += fullState.Stats.Pops
			cur.Set(d.op.ID, d.oldCfg)
		} else {
			evalIdx = evalIdx[:0]
			for k := range round {
				evalIdx = append(evalIdx, k)
			}
			sort.SliceStable(evalIdx, func(a, b int) bool {
				return round[evalIdx[a]].op.ID < round[evalIdx[b]].op.ID
			})
			props = props[:0]
			for _, k := range evalIdx {
				props = append(props, Proposal{OpID: round[k].op.ID, Cfg: round[k].newCfg})
			}
			// Measured locality learns from the pass: each proposal's own
			// evaluated-suffix size (not the revert deltas) feeds the
			// proposing op's EMA.
			var suffix []int64
			if picker != nil && picker.policy == LocalityMeasured {
				suffix = suffixBuf[:len(props)]
			}
			for i, c := range EvaluateBatchFromStats(tg, st, cur, props, suffix) {
				costs[evalIdx[i]] = c
			}
			if suffix != nil {
				for i, k := range evalIdx {
					picker.observe(round[k].pos, float64(suffix[i]))
				}
			}
			lastEval = evalIdx[len(evalIdx)-1]
		}
		res.Iters += len(round)

		// Accept phase: the Metropolis test walks the round in draw
		// order and the first winner takes the move. Later drafts of the
		// round were priced against the pre-move point, so they are
		// discarded — each batch size is its own deterministic walk.
		winner := -1
		for k := range round {
			if accept(cost, costs[k], opts.Beta, rng) {
				winner = k
				break
			}
		}
		if winner >= 0 {
			d := round[winner]
			if !opts.FullSim && winner != lastEval {
				// Re-park the instance at the winner: revert the op the
				// batch pass ended on (unless it is the winner's own op,
				// where replacing again lands correctly) and apply the
				// winning config.
				if lastOp := round[lastEval].op.ID; lastOp != d.op.ID {
					st.ApplyDelta(tg.ReplaceConfig(lastOp, cur.Config(lastOp).Clone()))
				}
				st.ApplyDelta(tg.ReplaceConfig(d.op.ID, d.newCfg))
			}
			cur.Set(d.op.ID, d.newCfg)
			cost = costs[winner]
			res.Accepted++
			if opts.MemoryCheck {
				memCommit(d.op, d.newFP)
			}
			if cost < res.BestCost {
				res.BestCost = cost
				res.Best = cur.Clone()
				res.Trace = append(res.Trace, TracePoint{Iter: d.it, Elapsed: d.elapsed, BestCost: cost})
				lastImprove = d.elapsed
				emit(opts.OnEvent, ProgressEvent{
					Algorithm: "mcmc", Chain: chain, Iter: d.it, BestCost: cost, Elapsed: d.elapsed,
				})
			}
			// The accepted move changed the timeline, so position-based
			// policies re-score every op against it (measured mode's EMA
			// adapts through observations instead).
			if picker != nil && picker.policy != LocalityMeasured {
				picker.refresh(st)
			}
		} else if !opts.FullSim {
			// Every draft rejected: re-park the instance at the chain's
			// current point by reverting the op the batch pass ended on.
			lastOp := round[lastEval].op.ID
			st.ApplyDelta(tg.ReplaceConfig(lastOp, cur.Config(lastOp).Clone()))
		}
	}
	return finish()
}

// accept implements the Metropolis-Hastings criterion of Eq. (2) with a
// relative cost difference: always accept improvements; accept a
// regression of fraction f with probability exp(-beta*f).
func accept(cur, proposed time.Duration, beta float64, rng *rand.Rand) bool {
	if proposed <= cur {
		return true
	}
	if cur <= 0 {
		return false
	}
	f := float64(proposed-cur) / float64(cur)
	return rng.Float64() < math.Exp(-beta*f)
}

// Initials returns the paper's default initial candidates: data
// parallelism plus a randomly generated strategy (Section 8.1), and the
// expert-designed strategy when includeExpert is set.
func Initials(g *graph.Graph, topo *device.Topology, seed int64, includeExpert bool) []*config.Strategy {
	rng := rand.New(rand.NewSource(seed))
	out := []*config.Strategy{
		config.DataParallel(g, topo),
		config.Random(g, topo, rng),
	}
	if includeExpert {
		out = append(out, config.Expert(g, topo))
	}
	return out
}

// Evaluate simulates a strategy and returns its predicted per-iteration
// time plus the task-graph metrics.
func Evaluate(g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, s *config.Strategy, opts taskgraph.Options) (time.Duration, taskgraph.Metrics) {
	tg := taskgraph.Build(g, topo, s, est, opts)
	st := sim.NewState(tg)
	d := st.Simulate()
	return d, tg.Metrics()
}
