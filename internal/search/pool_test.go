package search

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
)

// TestMain widens the process-wide pool for the whole test binary: the
// dev/CI machines can be single-core, and with the default bound of
// NumCPU the Workers differentials would silently compare serial runs
// to serial runs. A floor of four keeps every fan-out in this package
// genuinely concurrent under -race regardless of the host.
func TestMain(m *testing.M) {
	if runtime.NumCPU() < 4 {
		par.SetWorkers(4)
	}
	os.Exit(m.Run())
}

// TestMCMCPoolSizeDifferential is the pool-size analogue of the
// Workers differentials: resizing the process-wide pool itself (not a
// per-search cap) between 1, 2 and NumCPU must leave the MCMC result —
// strategy, cost, proposal counts, stats, trace — bit-identical. The
// contract holds per walk variant — each (ProposalBatch, Locality)
// pair is its own deterministic walk — so the differential sweeps
// locality × batch ∈ {1, 6} (the default's walk and a non-divisor
// batched round) plus the historical (uniform, 8) cell, crossed with
// the per-search Workers cap — the reference is always (pool=1,
// Workers=1), the strictest serialization. It does not call
// t.Parallel: it owns the global pool knob while it runs (non-parallel
// tests execute alone), and restores it before the parallel phase
// starts.
func TestMCMCPoolSizeDifferential(t *testing.T) {
	prev := par.WorkerBound()
	defer par.SetWorkers(prev)

	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 150
	opts.Seed = 11
	initials := Initials(g, topo, 11, true)

	type variant struct {
		batch    int
		locality Locality
	}
	var variants []variant
	for _, batch := range []int{1, 6} {
		for _, loc := range Localities() {
			variants = append(variants, variant{batch, loc})
		}
	}
	variants = append(variants, variant{8, LocalityUniform})

	for _, v := range variants {
		opts.ProposalBatch = v.batch
		opts.Locality = v.locality
		opts.Workers = 1
		par.SetWorkers(1)
		ref := MCMC(context.Background(), g, topo, est, initials, opts)
		if ref.Iters == 0 || ref.Best == nil {
			t.Fatalf("batch=%d locality=%s: degenerate reference result: %+v", v.batch, v.locality, ref)
		}
		type cell struct{ pool, workers int }
		tried := map[cell]bool{{1, 1}: true}
		for _, c := range []cell{
			{2, 0}, {runtime.NumCPU(), 0}, {4, 0},
			{1, 0}, {4, 2}, {4, 1},
		} {
			if tried[c] {
				continue
			}
			tried[c] = true
			par.SetWorkers(c.pool)
			opts.Workers = c.workers
			got := MCMC(context.Background(), g, topo, est, initials, opts)
			label := func() string {
				return fmt.Sprintf("batch=%d locality=%s pool=%d workers=%d", v.batch, v.locality, c.pool, c.workers)
			}
			if got.BestCost != ref.BestCost || !got.Best.Equal(ref.Best) {
				t.Errorf("%s: Best/BestCost %v differ from reference %v", label(), got.BestCost, ref.BestCost)
			}
			if got.Iters != ref.Iters || got.Accepted != ref.Accepted {
				t.Errorf("%s: Iters/Accepted %d/%d != reference %d/%d",
					label(), got.Iters, got.Accepted, ref.Iters, ref.Accepted)
			}
			if got.SimStats != ref.SimStats {
				t.Errorf("%s: SimStats %+v != reference %+v", label(), got.SimStats, ref.SimStats)
			}
			if len(got.Trace) != len(ref.Trace) {
				t.Errorf("%s: trace length %d != reference %d", label(), len(got.Trace), len(ref.Trace))
				continue
			}
			for i := range ref.Trace {
				if got.Trace[i] != ref.Trace[i] {
					t.Errorf("%s: trace[%d] = %+v != reference %+v", label(), i, got.Trace[i], ref.Trace[i])
					break
				}
			}
		}
	}
}

// TestMCMCProposalBatchDefaultPinned pins the measured ProposalBatch
// default (see the DefaultProposalBatch doc and the batch sweep in
// BENCH_pr9.json): DefaultOptions carries it, and the default's walk is
// the classic one-at-a-time walk — bit-identical to an explicit
// ProposalBatch of zero. Changing the default without re-running the
// sweep (docs/EXPERIMENTS.md) should trip this test.
func TestMCMCProposalBatchDefaultPinned(t *testing.T) {
	if DefaultProposalBatch != 1 {
		t.Fatalf("DefaultProposalBatch = %d; the committed sweep picked 1 — re-measure before moving it", DefaultProposalBatch)
	}
	if got := DefaultOptions().ProposalBatch; got != DefaultProposalBatch {
		t.Fatalf("DefaultOptions().ProposalBatch = %d, want DefaultProposalBatch (%d)", got, DefaultProposalBatch)
	}

	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 120
	opts.Seed = 5
	initials := Initials(g, topo, 5, true)
	def := MCMC(context.Background(), g, topo, est, initials, opts)
	opts.ProposalBatch = 0
	classic := MCMC(context.Background(), g, topo, est, initials, opts)
	if def.BestCost != classic.BestCost || def.Iters != classic.Iters ||
		def.Accepted != classic.Accepted || def.SimStats != classic.SimStats {
		t.Fatalf("default batch walk differs from the classic walk: %+v vs %+v", def, classic)
	}
}

// TestPolishNestedOnPoolOfOne pins the deadlock-freedom the shared
// pool promises at its degenerate size: Polish (whose Neighborhood
// sweeps fan out) still completes on a pool of one, where every level
// runs inline on the calling goroutine.
func TestPolishNestedOnPoolOfOne(t *testing.T) {
	prev := par.WorkerBound()
	defer par.SetWorkers(prev)
	par.SetWorkers(1)

	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	bad := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		bad.Set(op.ID, config.OnDevice(op, 0))
	}
	best, cost := Polish(context.Background(), g, topo, est, bad, PolishOptions{})
	if best == nil || cost <= 0 {
		t.Fatalf("pool-of-one Polish degenerate: cost %v", cost)
	}
}
