package search

import (
	"context"
	"os"
	"runtime"
	"testing"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
)

// TestMain widens the process-wide pool for the whole test binary: the
// dev/CI machines can be single-core, and with the default bound of
// NumCPU the Workers differentials would silently compare serial runs
// to serial runs. A floor of four keeps every fan-out in this package
// genuinely concurrent under -race regardless of the host.
func TestMain(m *testing.M) {
	if runtime.NumCPU() < 4 {
		par.SetWorkers(4)
	}
	os.Exit(m.Run())
}

// TestMCMCPoolSizeDifferential is the pool-size analogue of the
// Workers differentials: resizing the process-wide pool itself (not a
// per-search cap) between 1, 2 and NumCPU must leave the MCMC result —
// strategy, cost, proposal counts, stats, trace — bit-identical. The
// contract holds per batch size (each ProposalBatch value is its own
// deterministic walk), so the differential runs at rounds of one (the
// classic walk) and at a batched round size. It does not call
// t.Parallel: it owns the global pool knob while it runs (non-parallel
// tests execute alone), and restores it before the parallel phase
// starts.
func TestMCMCPoolSizeDifferential(t *testing.T) {
	prev := par.WorkerBound()
	defer par.SetWorkers(prev)

	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 150
	opts.Seed = 11
	initials := Initials(g, topo, 11, true)

	for _, batch := range []int{1, 8} {
		opts.ProposalBatch = batch
		par.SetWorkers(1)
		ref := MCMC(context.Background(), g, topo, est, initials, opts)
		if ref.Iters == 0 || ref.Best == nil {
			t.Fatalf("batch=%d: degenerate reference result: %+v", batch, ref)
		}
		tried := map[int]bool{1: true}
		for _, size := range []int{2, runtime.NumCPU(), 4} {
			if tried[size] {
				continue
			}
			tried[size] = true
			par.SetWorkers(size)
			got := MCMC(context.Background(), g, topo, est, initials, opts)
			if got.BestCost != ref.BestCost || !got.Best.Equal(ref.Best) {
				t.Errorf("batch=%d pool=%d: Best/BestCost %v differ from pool=1 %v", batch, size, got.BestCost, ref.BestCost)
			}
			if got.Iters != ref.Iters || got.Accepted != ref.Accepted {
				t.Errorf("batch=%d pool=%d: Iters/Accepted %d/%d != pool=1 %d/%d",
					batch, size, got.Iters, got.Accepted, ref.Iters, ref.Accepted)
			}
			if got.SimStats != ref.SimStats {
				t.Errorf("batch=%d pool=%d: SimStats %+v != pool=1 %+v", batch, size, got.SimStats, ref.SimStats)
			}
			if len(got.Trace) != len(ref.Trace) {
				t.Errorf("batch=%d pool=%d: trace length %d != pool=1 %d", batch, size, len(got.Trace), len(ref.Trace))
				continue
			}
			for i := range ref.Trace {
				if got.Trace[i] != ref.Trace[i] {
					t.Errorf("batch=%d pool=%d: trace[%d] = %+v != pool=1 %+v", batch, size, i, got.Trace[i], ref.Trace[i])
					break
				}
			}
		}
	}
}

// TestPolishNestedOnPoolOfOne pins the deadlock-freedom the shared
// pool promises at its degenerate size: Polish (whose Neighborhood
// sweeps fan out) still completes on a pool of one, where every level
// runs inline on the calling goroutine.
func TestPolishNestedOnPoolOfOne(t *testing.T) {
	prev := par.WorkerBound()
	defer par.SetWorkers(prev)
	par.SetWorkers(1)

	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	bad := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		bad.Set(op.ID, config.OnDevice(op, 0))
	}
	best, cost := Polish(context.Background(), g, topo, est, bad, PolishOptions{})
	if best == nil || cost <= 0 {
		t.Fatalf("pool-of-one Polish degenerate: cost %v", cost)
	}
}
