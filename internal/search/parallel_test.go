package search

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"flexflow/internal/calib"
	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/taskgraph"
)

// parallelCases are the models of the Workers=1 vs Workers=N
// differential; three distinct architectures (issue requirement: >= 3).
func parallelCases() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"tinyMLP", tinyMLP()},
		{"lenet", models.LeNet(16)},
		{"rnnlm-2step", models.RNNLM(16, 2)},
	}
}

// TestMCMCParallelMatchesSerial is the determinism differential of the
// concurrent runtime: for a fixed seed and iteration budget the search
// must return bit-identical results no matter how many workers execute
// the chain pool. Run under -race this also certifies the fan-out shares
// no unsynchronized state.
func TestMCMCParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	for _, c := range parallelCases() {
		for _, seed := range []int64{1, 7} {
			topo := device.NewSingleNode(4, "P100")
			est := perfmodel.NewAnalyticModel()
			opts := DefaultOptions()
			opts.MaxIters = 200
			opts.Seed = seed
			initials := Initials(c.g, topo, seed, true)

			opts.Workers = 1
			serial := MCMC(context.Background(), c.g, topo, est, initials, opts)
			for _, workers := range []int{runtime.NumCPU(), 3} {
				opts.Workers = workers
				pl := MCMC(context.Background(), c.g, topo, est, initials, opts)
				if pl.BestCost != serial.BestCost {
					t.Errorf("%s seed %d workers %d: BestCost %v != serial %v", c.name, seed, workers, pl.BestCost, serial.BestCost)
				}
				if !pl.Best.Equal(serial.Best) {
					t.Errorf("%s seed %d workers %d: Best strategy differs from serial", c.name, seed, workers)
				}
				if pl.Iters != serial.Iters || pl.Accepted != serial.Accepted {
					t.Errorf("%s seed %d workers %d: Iters/Accepted %d/%d != serial %d/%d",
						c.name, seed, workers, pl.Iters, pl.Accepted, serial.Iters, serial.Accepted)
				}
				if pl.SimStats != serial.SimStats {
					t.Errorf("%s seed %d workers %d: SimStats %+v != serial %+v", c.name, seed, workers, pl.SimStats, serial.SimStats)
				}
			}
		}
	}
}

// TestMCMCVirtualBudgetDeterministic pins the virtual-time budget
// contract: a Budget > 0 run stops on the chains' deterministic virtual
// clocks, so everything but the wall-clock SearchTime — including the
// proposal count at which each chain stopped and the full trace — is
// bit-identical across invocations and across Workers values.
func TestMCMCVirtualBudgetDeterministic(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	opts := DefaultOptions()
	opts.MaxIters = 1 << 20 // budget, not MaxIters, must stop the chains
	opts.Budget = 10 * time.Millisecond
	opts.Seed = 3
	initials := Initials(g, topo, 3, true)

	same := func(a, b Result) bool {
		if a.BestCost != b.BestCost || !a.Best.Equal(b.Best) ||
			a.Iters != b.Iters || a.Accepted != b.Accepted ||
			a.SimStats != b.SimStats || len(a.Trace) != len(b.Trace) {
			return false
		}
		for i := range a.Trace {
			if a.Trace[i] != b.Trace[i] {
				return false
			}
		}
		return true
	}

	opts.Workers = 1
	ref := MCMC(context.Background(), g, topo, est, initials, opts)
	if ref.Iters == 0 || ref.Iters >= opts.MaxIters {
		t.Fatalf("budget did not bind: %d proposals", ref.Iters)
	}
	replay := MCMC(context.Background(), g, topo, est, initials, opts)
	if !same(ref, replay) {
		t.Fatalf("two budgeted invocations diverged: %d/%d iters", ref.Iters, replay.Iters)
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		opts.Workers = workers
		pl := MCMC(context.Background(), g, topo, est, initials, opts)
		if !same(ref, pl) {
			t.Fatalf("workers=%d budgeted run diverged from serial: %d vs %d iters, %v vs %v",
				workers, pl.Iters, ref.Iters, pl.BestCost, ref.BestCost)
		}
	}

	// The same contract holds under a fixed calibration profile: the
	// profile reprices proposals (so the budget binds at a different
	// proposal count than the built-in constants), and for that fixed
	// profile the run stays bit-identical across invocations and
	// Workers values.
	prof := &calib.Profile{
		Version: calib.Version,
		Modes: map[calib.Mode]calib.Params{
			calib.ModeDelta: {BaseNS: 4_000, PerTaskNS: 37},
			calib.ModeFull:  {BaseNS: 4_000, PerTaskNS: 410},
		},
	}
	opts.Cost = prof
	opts.Workers = 1
	profRef := MCMC(context.Background(), g, topo, est, initials, opts)
	if profRef.Iters == 0 || profRef.Iters >= opts.MaxIters {
		t.Fatalf("budget did not bind under the profile: %d proposals", profRef.Iters)
	}
	if profRef.Iters == ref.Iters {
		t.Fatalf("profile did not change the proposal pricing: %d iters either way", ref.Iters)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		opts.Workers = workers
		pl := MCMC(context.Background(), g, topo, est, initials, opts)
		if !same(profRef, pl) {
			t.Fatalf("workers=%d fixed-profile budgeted run diverged: %d vs %d iters, %v vs %v",
				workers, pl.Iters, profRef.Iters, pl.BestCost, profRef.BestCost)
		}
	}

	// Batched rounds obey the same contract: ProposalBatch regroups how
	// drafts are priced, but the virtual clock still ticks once per
	// proposal, so a budgeted batched run stops at a fixed proposal
	// count and replays bit-identically across invocations and Workers
	// values (each batch size against its own reference walk).
	opts.Cost = nil
	opts.ProposalBatch = 6
	opts.Workers = 1
	batchRef := MCMC(context.Background(), g, topo, est, initials, opts)
	if batchRef.Iters == 0 || batchRef.Iters >= opts.MaxIters {
		t.Fatalf("budget did not bind at ProposalBatch=6: %d proposals", batchRef.Iters)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		opts.Workers = workers
		pl := MCMC(context.Background(), g, topo, est, initials, opts)
		if !same(batchRef, pl) {
			t.Fatalf("workers=%d batched budgeted run diverged: %d vs %d iters, %v vs %v",
				workers, pl.Iters, batchRef.Iters, pl.BestCost, batchRef.BestCost)
		}
	}

	// Locality policies steer which ops a budgeted walk proposes, not how
	// the virtual clock ticks: every policy (crossed with the batch knob)
	// has its own deterministic stopping point and replays bit-identically
	// across invocations and Workers values. Each (locality, batch) cell
	// checks against its own Workers=1 reference.
	for _, loc := range []Locality{LocalityLateBiased, LocalityStratified, LocalityMeasured} {
		for _, batch := range []int{1, 6} {
			opts.Locality = loc
			opts.ProposalBatch = batch
			opts.Workers = 1
			locRef := MCMC(context.Background(), g, topo, est, initials, opts)
			if locRef.Iters == 0 || locRef.Iters >= opts.MaxIters {
				t.Fatalf("locality=%s batch=%d: budget did not bind: %d proposals", loc, batch, locRef.Iters)
			}
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				opts.Workers = workers
				pl := MCMC(context.Background(), g, topo, est, initials, opts)
				if !same(locRef, pl) {
					t.Fatalf("locality=%s batch=%d workers=%d budgeted run diverged: %d vs %d iters, %v vs %v",
						loc, batch, workers, pl.Iters, locRef.Iters, pl.BestCost, locRef.BestCost)
				}
			}
		}
	}
}

// Shared estimator caches must not perturb the walk either: the
// MeasuringEstimator resolves concurrent misses to the same value, so
// parallel chains sharing one cache still reproduce the serial result.
func TestMCMCParallelSharedMeasuringEstimator(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	opts := DefaultOptions()
	opts.MaxIters = 150
	initials := Initials(g, topo, 1, true)

	run := func(workers int) Result {
		est := perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
		opts.Workers = workers
		return MCMC(context.Background(), g, topo, est, initials, opts)
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	if serial.BestCost != parallel.BestCost || !serial.Best.Equal(parallel.Best) || serial.Iters != parallel.Iters {
		t.Fatalf("shared-estimator parallel run diverged: %v/%d vs %v/%d",
			parallel.BestCost, parallel.Iters, serial.BestCost, serial.Iters)
	}
}

func TestMCMCContextAlreadyCancelled(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it starts: every chain returns after its initial sim
	opts := DefaultOptions()
	opts.MaxIters = 100000
	res := MCMC(ctx, g, topo, perfmodel.NewAnalyticModel(), Initials(g, topo, 1, false), opts)
	if res.Iters != 0 {
		t.Fatalf("cancelled search still ran %d proposals", res.Iters)
	}
	if res.Best == nil || res.BestCost <= 0 {
		t.Fatalf("cancelled search lost the initial evaluation: %+v", res)
	}
}

func TestMCMCCancelMidFlight(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.MaxIters = 1 << 30 // effectively unbounded: only ctx can stop it
	opts.Workers = 2
	done := make(chan Result, 1)
	go func() {
		done <- MCMC(ctx, g, topo, perfmodel.NewAnalyticModel(), Initials(g, topo, 1, false), opts)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Best == nil {
			t.Fatal("cancelled search returned no strategy")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("search did not stop after cancel")
	}
}

// TestMCMCProgressEvents checks the streaming contract: a per-chain
// iter-0 event, events on improvements, and one Final event per chain,
// with BestCost matching the returned result.
func TestMCMCProgressEvents(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	opts := DefaultOptions()
	opts.MaxIters = 200
	var mu sync.Mutex
	var events []ProgressEvent
	opts.OnEvent = func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	initials := Initials(g, topo, 1, true)
	res := MCMC(context.Background(), g, topo, perfmodel.NewAnalyticModel(), initials, opts)

	finals := 0
	var finalBest time.Duration = 1<<62 - 1
	for _, ev := range events {
		if ev.Algorithm != "mcmc" {
			t.Fatalf("wrong algorithm %q", ev.Algorithm)
		}
		if ev.Chain < 0 || ev.Chain >= len(initials) {
			t.Fatalf("chain %d out of range", ev.Chain)
		}
		if ev.Final {
			finals++
			if ev.BestCost < finalBest {
				finalBest = ev.BestCost
			}
		}
	}
	if finals != len(initials) {
		t.Fatalf("final events = %d, want one per chain (%d)", finals, len(initials))
	}
	if finalBest != res.BestCost {
		t.Fatalf("best final event %v != result %v", finalBest, res.BestCost)
	}
}

// TestExhaustiveParallelMatchesSerial pins the parallel DFS contract:
// the optimum cost is worker-count independent (the shared bound can
// only prune subtrees that cannot contain a strictly better leaf), and
// every explored+pruned accounting still covers the space.
func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	g := models.LeNet(32)
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	base := ExhaustiveOptions{
		Enum:               config.EnumOptions{MaxDegree: 2},
		MaxCandidatesPerOp: 4,
	}

	base.Workers = 1
	serial := Exhaustive(context.Background(), g, topo, est, base)
	if serial.Best == nil {
		t.Fatal("serial exhaustive found nothing")
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		opts := base
		opts.Workers = workers
		pl := Exhaustive(context.Background(), g, topo, est, opts)
		if pl.BestCost != serial.BestCost {
			t.Errorf("workers=%d: BestCost %v != serial %v", workers, pl.BestCost, serial.BestCost)
		}
		if pl.Best == nil {
			t.Errorf("workers=%d: no strategy returned", workers)
		} else if err := pl.Best.Validate(g, topo); err != nil {
			t.Errorf("workers=%d: invalid strategy: %v", workers, err)
		}
		if pl.SpaceSize != serial.SpaceSize {
			t.Errorf("workers=%d: space size %g != %g", workers, pl.SpaceSize, serial.SpaceSize)
		}
	}
}

func TestExhaustiveCancelled(t *testing.T) {
	t.Parallel()
	g := models.LeNet(32)
	topo := device.NewSingleNode(2, "P100")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Exhaustive(ctx, g, topo, perfmodel.NewAnalyticModel(), ExhaustiveOptions{
		Enum:               config.EnumOptions{MaxDegree: 2},
		MaxCandidatesPerOp: 4,
	})
	if res.Explored != 0 {
		t.Fatalf("pre-cancelled DFS still simulated %d leaves", res.Explored)
	}
}

// TestReinforceParallelMatchesSerial is the episode-rollout analogue of
// the MCMC differential (ROADMAP item): per-episode derived seeds plus
// batch-snapshot sampling make the learner bit-identical for every
// Workers value. Run under -race this certifies the rollout fan-out.
func TestReinforceParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	for _, c := range parallelCases() {
		topo := device.NewSingleNode(4, "P100")
		est := perfmodel.NewAnalyticModel()
		opts := DefaultReinforceOptions()
		opts.Episodes = 60
		opts.Seed = 5

		opts.Workers = 1
		serial := Reinforce(context.Background(), c.g, topo, est, opts)
		if serial.Best == nil || serial.Episodes != 60 {
			t.Fatalf("%s: degenerate serial result %+v", c.name, serial)
		}
		for _, workers := range []int{3, runtime.NumCPU()} {
			opts.Workers = workers
			pl := Reinforce(context.Background(), c.g, topo, est, opts)
			if pl.BestCost != serial.BestCost || !pl.Best.Equal(serial.Best) || pl.Episodes != serial.Episodes {
				t.Errorf("%s workers %d: %v/%d episodes != serial %v/%d",
					c.name, workers, pl.BestCost, pl.Episodes, serial.BestCost, serial.Episodes)
			}
		}
	}
}

func TestReinforceCancelled(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(2, "P100")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Reinforce(ctx, g, topo, perfmodel.NewAnalyticModel(), DefaultReinforceOptions())
	if res.Episodes != 0 {
		t.Fatalf("pre-cancelled learner still ran %d episodes", res.Episodes)
	}
}

// TestNeighborhoodParallelMatchesSerial pins the parallel Polish inner
// loop: the per-op candidate sweep fans out over the worker pool with a
// private Plan.Instance + cloned State per op, so the best neighbour,
// its cost and the checked count are bit-identical for every Workers
// value. Run under -race this also certifies that workers share only
// the immutable plan and base timeline.
func TestNeighborhoodParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	for _, c := range parallelCases() {
		topo := device.NewSingleNode(4, "P100")
		est := perfmodel.NewAnalyticModel()
		// Sweep from two starting points: data parallelism (often locally
		// optimal) and everything-on-one-device (always improvable).
		starts := map[string]*config.Strategy{
			"data-parallel": config.DataParallel(c.g, topo),
		}
		single := config.NewStrategy(c.g)
		for _, op := range c.g.ComputeOps() {
			single.Set(op.ID, config.OnDevice(op, 0))
		}
		starts["single-device"] = single

		for name, s := range starts {
			enum := config.EnumOptions{MaxDegree: 4}
			serialCost, serialBest, serialChecked := Neighborhood(c.g, topo, est, s, enum, taskgraph.Options{}, 1)
			if serialChecked == 0 {
				t.Fatalf("%s/%s: no neighbours checked", c.name, name)
			}
			for _, workers := range []int{2, 3, runtime.NumCPU()} {
				cost, best, checked := Neighborhood(c.g, topo, est, s, enum, taskgraph.Options{}, workers)
				if cost != serialCost || checked != serialChecked {
					t.Errorf("%s/%s workers=%d: (cost %v, checked %d) != serial (%v, %d)",
						c.name, name, workers, cost, checked, serialCost, serialChecked)
				}
				switch {
				case (best == nil) != (serialBest == nil):
					t.Errorf("%s/%s workers=%d: improving nil-ness differs from serial", c.name, name, workers)
				case best != nil && !best.Equal(serialBest):
					t.Errorf("%s/%s workers=%d: improving strategy differs from serial", c.name, name, workers)
				}
			}
		}
	}
}

// TestPolishParallelMatchesSerial runs the full descent on top of the
// parallel Neighborhood: identical local optimum for every Workers
// value.
func TestPolishParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()
	bad := config.NewStrategy(g)
	for _, op := range g.ComputeOps() {
		bad.Set(op.ID, config.OnDevice(op, 0))
	}
	opts := PolishOptions{Enum: config.EnumOptions{MaxDegree: 4}}
	opts.Workers = 1
	serialBest, serialCost := Polish(context.Background(), g, topo, est, bad, opts)
	for _, workers := range []int{2, runtime.NumCPU()} {
		opts.Workers = workers
		best, cost := Polish(context.Background(), g, topo, est, bad, opts)
		if cost != serialCost || !best.Equal(serialBest) {
			t.Errorf("workers=%d: polish (%v) != serial (%v)", workers, cost, serialCost)
		}
	}
}

func TestChainSeedsDecorrelated(t *testing.T) {
	t.Parallel()
	seen := map[int64]bool{}
	for master := int64(0); master < 4; master++ {
		for chain := 0; chain < 64; chain++ {
			s := chainSeed(master, chain)
			if seen[s] {
				t.Fatalf("duplicate chain seed %d (master %d, chain %d)", s, master, chain)
			}
			seen[s] = true
		}
	}
}
