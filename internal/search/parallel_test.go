package search

import (
	"runtime"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
)

// parallelCases are the models of the Workers=1 vs Workers=N
// differential; three distinct architectures (issue requirement: >= 3).
func parallelCases() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"tinyMLP", tinyMLP()},
		{"lenet", models.LeNet(16)},
		{"rnnlm-2step", models.RNNLM(16, 2)},
	}
}

// TestMCMCParallelMatchesSerial is the determinism differential of the
// concurrent runtime: for a fixed seed and iteration budget (Budget ==
// 0, the deterministic regime), the search must return bit-identical
// results no matter how many workers execute the chain pool. Run under
// -race this also certifies the fan-out shares no unsynchronized state.
func TestMCMCParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	for _, c := range parallelCases() {
		for _, seed := range []int64{1, 7} {
			topo := device.NewSingleNode(4, "P100")
			est := perfmodel.NewAnalyticModel()
			opts := DefaultOptions()
			opts.MaxIters = 200
			opts.Seed = seed
			initials := Initials(c.g, topo, seed, true)

			opts.Workers = 1
			serial := MCMC(c.g, topo, est, initials, opts)
			for _, workers := range []int{runtime.NumCPU(), 3} {
				opts.Workers = workers
				pl := MCMC(c.g, topo, est, initials, opts)
				if pl.BestCost != serial.BestCost {
					t.Errorf("%s seed %d workers %d: BestCost %v != serial %v", c.name, seed, workers, pl.BestCost, serial.BestCost)
				}
				if !pl.Best.Equal(serial.Best) {
					t.Errorf("%s seed %d workers %d: Best strategy differs from serial", c.name, seed, workers)
				}
				if pl.Iters != serial.Iters || pl.Accepted != serial.Accepted {
					t.Errorf("%s seed %d workers %d: Iters/Accepted %d/%d != serial %d/%d",
						c.name, seed, workers, pl.Iters, pl.Accepted, serial.Iters, serial.Accepted)
				}
				if pl.SimStats != serial.SimStats {
					t.Errorf("%s seed %d workers %d: SimStats %+v != serial %+v", c.name, seed, workers, pl.SimStats, serial.SimStats)
				}
			}
		}
	}
}

// Shared estimator caches must not perturb the walk either: the
// MeasuringEstimator resolves concurrent misses to the same value, so
// parallel chains sharing one cache still reproduce the serial result.
func TestMCMCParallelSharedMeasuringEstimator(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	opts := DefaultOptions()
	opts.MaxIters = 150
	initials := Initials(g, topo, 1, true)

	run := func(workers int) Result {
		est := perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
		opts.Workers = workers
		return MCMC(g, topo, est, initials, opts)
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	if serial.BestCost != parallel.BestCost || !serial.Best.Equal(parallel.Best) || serial.Iters != parallel.Iters {
		t.Fatalf("shared-estimator parallel run diverged: %v/%d vs %v/%d",
			parallel.BestCost, parallel.Iters, serial.BestCost, serial.Iters)
	}
}

func TestMCMCCancel(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	cancel := make(chan struct{})
	close(cancel) // cancelled before it starts: every chain returns after its initial sim
	opts := DefaultOptions()
	opts.MaxIters = 100000
	opts.Cancel = cancel
	res := MCMC(g, topo, perfmodel.NewAnalyticModel(), Initials(g, topo, 1, false), opts)
	if res.Iters != 0 {
		t.Fatalf("cancelled search still ran %d proposals", res.Iters)
	}
	if res.Best == nil || res.BestCost <= 0 {
		t.Fatalf("cancelled search lost the initial evaluation: %+v", res)
	}
}

func TestMCMCCancelMidFlight(t *testing.T) {
	t.Parallel()
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	cancel := make(chan struct{})
	opts := DefaultOptions()
	opts.MaxIters = 1 << 30 // effectively unbounded: only Cancel can stop it
	opts.Budget = 0
	opts.Cancel = cancel
	opts.Workers = 2
	done := make(chan Result, 1)
	go func() {
		done <- MCMC(g, topo, perfmodel.NewAnalyticModel(), Initials(g, topo, 1, false), opts)
	}()
	time.Sleep(50 * time.Millisecond)
	close(cancel)
	select {
	case res := <-done:
		if res.Best == nil {
			t.Fatal("cancelled search returned no strategy")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("search did not stop after Cancel")
	}
}

// TestExhaustiveParallelMatchesSerial pins the parallel DFS contract:
// the optimum cost is worker-count independent (the shared bound can
// only prune subtrees that cannot contain a strictly better leaf), and
// every explored+pruned accounting still covers the space.
func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	g := models.LeNet(32)
	topo := device.NewSingleNode(2, "P100")
	est := perfmodel.NewAnalyticModel()
	base := ExhaustiveOptions{
		Enum:               config.EnumOptions{MaxDegree: 2},
		MaxCandidatesPerOp: 4,
	}

	base.Workers = 1
	serial := Exhaustive(g, topo, est, base)
	if serial.Best == nil {
		t.Fatal("serial exhaustive found nothing")
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		opts := base
		opts.Workers = workers
		pl := Exhaustive(g, topo, est, opts)
		if pl.BestCost != serial.BestCost {
			t.Errorf("workers=%d: BestCost %v != serial %v", workers, pl.BestCost, serial.BestCost)
		}
		if pl.Best == nil {
			t.Errorf("workers=%d: no strategy returned", workers)
		} else if err := pl.Best.Validate(g, topo); err != nil {
			t.Errorf("workers=%d: invalid strategy: %v", workers, err)
		}
		if pl.SpaceSize != serial.SpaceSize {
			t.Errorf("workers=%d: space size %g != %g", workers, pl.SpaceSize, serial.SpaceSize)
		}
	}
}

func TestChainSeedsDecorrelated(t *testing.T) {
	t.Parallel()
	seen := map[int64]bool{}
	for master := int64(0); master < 4; master++ {
		for chain := 0; chain < 64; chain++ {
			s := chainSeed(master, chain)
			if seen[s] {
				t.Fatalf("duplicate chain seed %d (master %d, chain %d)", s, master, chain)
			}
			seen[s] = true
		}
	}
}
