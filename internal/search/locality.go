package search

// Proposal locality (see docs/ARCHITECTURE.md, "Proposal locality").
//
// PR 9's profiling settled why the 100k-task synthetic roofline sits
// ~100x behind nmt in proposals/sec: under uniform op sampling most
// proposals hit an op whose tasks start near t=0, the delta truncation
// point T0 lands at the head of the timeline, and the re-evaluated
// suffix is genuinely most of the graph. The lever is therefore the
// proposal distribution, not the engine: score each op by where its
// tasks sit in the current timeline (sim.State.SuffixHint) and steer
// the walk toward small-suffix ops.
//
// Determinism: every policy draws from the chain's private RNG stream
// and from state derived only from that chain's own walk, so for a
// fixed (Seed, Locality, ProposalBatch, CostModel) the result is
// bit-identical across Workers values and pool sizes — the same
// contract ProposalBatch carries. The weighted sampler orders ops by
// ascending op ID internally and consumes exactly one Float64 per
// draw, so the draw sequence is independent of how the caller
// enumerated the ops. LocalityUniform consumes RNG exactly like the
// pre-locality walk (one Intn per draft) and is pinned bit-identical
// to it by TestMCMCLocalityContract.
//
// Ergodicity: non-uniform weights are floored at a strictly positive
// minimum, and LocalityMeasured additionally redraws uniformly with
// probability 1/8 (localityEscapeProb), so no op — however early its
// tasks start — is ever starved of proposals.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flexflow/internal/graph"
	"flexflow/internal/sim"
)

// Locality selects the proposal-locality policy of an MCMC search: how
// a chain picks which op to mutate next, given where each op's tasks
// sit in its current timeline (see Options.Locality).
type Locality string

const (
	// LocalityUniform is the classic walk: every op is equally likely.
	// It is the default, and it is bit-identical to a search that
	// predates the Locality option (pinned by TestMCMCLocalityContract).
	LocalityUniform Locality = "uniform"
	// LocalityLateBiased weights each op by the square of its timeline
	// position (1-SuffixHint)², floored at localityMinWeight, so ops
	// whose tasks start late — small re-evaluated suffix — are proposed
	// more often. Weights refresh from the timeline after every accepted
	// move.
	LocalityLateBiased Locality = "late-biased"
	// LocalityStratified splits the ops into four equal-size strata by
	// ascending SuffixHint (latest-starting ops first) and gives the
	// strata geometric selection weight 8:4:2:1, uniform within a
	// stratum. Coarser than late-biased — a misestimated hint moves an
	// op at most one stratum — and every stratum keeps fixed probability
	// mass, so early ops retain a guaranteed share.
	LocalityStratified Locality = "stratified"
	// LocalityMeasured steers on measurement instead of position: each
	// op carries an exponential moving average of the evaluated-suffix
	// sizes (sim.Stats.SuffixTasks) its proposals actually cost, seeded
	// from the op's SuffixHint, and selection weight falls off
	// exponentially with that average (a softmax over -EMA at
	// temperature localityEMATemp times the mean EMA). The sharp
	// falloff matters: measured suffix costs typically spread less than
	// 2x between the cheapest and dearest op, so a merely proportional
	// weighting would be nearly uniform; the softmax concentrates the
	// walk on the genuinely cheapest ops, which position alone cannot
	// identify (the affected set is the op's dependency cone, not a
	// timeline cut). An occasional uniform redraw (probability 1/8)
	// keeps the walk ergodic.
	LocalityMeasured Locality = "measured"
)

const (
	// localityMinWeight floors every op's selection weight: even an op
	// whose tasks start at t=0 keeps a positive proposal probability
	// (ergodicity; the Metropolis walk must be able to reach every
	// strategy).
	localityMinWeight = 0.05
	// localityEscapeProb is LocalityMeasured's uniform escape hatch: the
	// probability a draw ignores the learned weights entirely. The EMA
	// only learns about ops it proposes, so without the escape a
	// mis-seeded op could starve forever.
	localityEscapeProb = 0.125
	// localityEMAAlpha is the EMA step for measured suffix sizes.
	localityEMAAlpha = 0.25
	// localitySeedMargin inflates LocalityMeasured's EMA seeds above the
	// hint × alive-tasks prior. Measured suffix sizes run ~10% above the
	// prior even for the cheapest ops (the truncation bound is the min
	// over the rebuilt ChangeSet, which reaches slightly earlier than
	// the op's own tasks), and an optimistic seed makes every
	// measurement look worse than unexplored territory — the walk then
	// ladders through unmeasured ops, half of which price a full resim.
	// 1.25 keeps seeds pessimistic across the synthetic and real model
	// classes without flattening the prior's ordering.
	localitySeedMargin = 1.25
	// localityEMATemp scales LocalityMeasured's softmax temperature:
	// the weight scale is this fraction of the mean EMA, so an op whose
	// measured suffix sits one scale above the cheapest op is drawn e
	// times less often. Small enough to concentrate on the cheap tail
	// of a sub-2x suffix spread, large enough that measurement noise
	// one EMA step wide does not flip the ordering.
	localityEMATemp = 0.02
	// localityExpClamp caps the softmax exponent so a pathological EMA
	// spread cannot underflow a weight to zero (the sampler requires
	// strictly positive weights); exp(-60) is still a positive, finite
	// probability.
	localityExpClamp = 60.0
)

// Localities lists every recognized policy, in documentation order.
func Localities() []Locality {
	return []Locality{LocalityUniform, LocalityLateBiased, LocalityStratified, LocalityMeasured}
}

// ParseLocality normalizes a policy name: the empty string means
// LocalityUniform (the zero value of Options.Locality), anything else
// must match a constant exactly.
func ParseLocality(s string) (Locality, error) {
	switch Locality(s) {
	case "", LocalityUniform:
		return LocalityUniform, nil
	case LocalityLateBiased, LocalityStratified, LocalityMeasured:
		return Locality(s), nil
	}
	return "", fmt.Errorf("search: unknown locality policy %q (have %v)", s, Localities())
}

// buildCum overwrites cum with the inclusive prefix sums of w and
// returns (cum, total). Every weight must be strictly positive — the
// sampler's invariant; panics otherwise, since weights are built by
// this package and a non-positive one is a bug, not an input error.
func buildCum(w, cum []float64) ([]float64, float64) {
	cum = cum[:0]
	total := 0.0
	for _, x := range w {
		if !(x > 0) {
			panic(fmt.Sprintf("search: locality sampler weight %v is not strictly positive", x))
		}
		total += x
		cum = append(cum, total)
	}
	return cum, total
}

// weightedIndex returns the smallest i with x < cum[i] — the index a
// weighted draw of x ∈ [0, total) selects — clamping float rounding at
// the top end to the last index.
func weightedIndex(cum []float64, x float64) int {
	i := sort.SearchFloat64s(cum, x)
	// SearchFloat64s finds the leftmost i with cum[i] >= x; when x lands
	// exactly on a boundary the draw belongs to the next bucket (each
	// bucket is the half-open [cum[i-1], cum[i])).
	for i < len(cum) && cum[i] == x {
		i++
	}
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

// localityPicker holds one chain's locality state: the op order, the
// per-op timeline hints, the measured-mode EMA, and the cumulative
// weight table the draws binary-search. It is private to the chain —
// never shared — so the walk stays deterministic for every pool size.
type localityPicker struct {
	policy  Locality
	ops     []*graph.Op
	order   []int     // positions into ops, ascending op ID
	inv     []int     // ops position -> order entry (inverse of order)
	hint    []float64 // per order entry: SuffixHint ∈ [0, 1]
	ema     []float64 // per order entry: EMA of measured suffix tasks
	sampled []bool    // per order entry: ema holds a real measurement
	weight  []float64 // per order entry: selection weight (>0)
	cum     []float64 // inclusive prefix sums of weight
	total   float64
	dirty   bool // weights must be rebuilt before the next draw
}

// newLocalityPicker builds the picker for a non-uniform policy over the
// chain's op set, hinted from the chain's starting timeline. Returns
// nil for LocalityUniform: the caller keeps the classic Intn path.
func newLocalityPicker(policy Locality, ops []*graph.Op, st *sim.State) *localityPicker {
	if policy == LocalityUniform || policy == "" {
		return nil
	}
	p := &localityPicker{
		policy: policy,
		ops:    ops,
		order:  make([]int, len(ops)),
		hint:   make([]float64, len(ops)),
		ema:    make([]float64, len(ops)),
		weight: make([]float64, len(ops)),
		cum:    make([]float64, 0, len(ops)),
	}
	for i := range ops {
		p.order[i] = i
	}
	sort.Slice(p.order, func(a, b int) bool {
		return ops[p.order[a]].ID < ops[p.order[b]].ID
	})
	p.inv = make([]int, len(ops))
	for i, pos := range p.order {
		p.inv[pos] = i
	}
	p.refresh(st)
	if policy == LocalityMeasured {
		// Seed the EMA with a *pessimistic* position prior: hint × alive
		// tasks, inflated by localitySeedMargin and clamped at the full
		// task count. Per-op suffix cost is bimodal — ops at nearly
		// identical hints either truncate near their own tail (~hint ×
		// alive tasks) or collapse to a whole-timeline resim — so an
		// optimistic seed turns the walk into an expensive exploration
		// ladder: every measurement lands above some unmeasured seed and
		// the sampler keeps paying full-resim prices to discover which
		// ops are cheap. Seeding above the true cheap-op cost makes
		// measurement monotone: an observed-cheap op drops below every
		// unexplored seed and the walk fixates on the measured-cheap set,
		// leaving the escape draws to fund further exploration.
		alive := float64(st.TG.Alive())
		p.sampled = make([]bool, len(ops))
		for i := range p.ema {
			seed := p.hint[i] * localitySeedMargin * alive
			if seed > alive {
				seed = alive
			}
			p.ema[i] = seed
		}
		p.dirty = true
	}
	return p
}

// refresh recomputes every op's SuffixHint from the chain's current
// timeline and marks the weights for rebuild. Called at chain start and
// after every accepted move (the timeline changed); a full pass is
// O(tasks), far cheaper than the proposals an accepted move implies.
func (p *localityPicker) refresh(st *sim.State) {
	for i, pos := range p.order {
		p.hint[i] = st.SuffixHint(p.ops[pos].ID)
	}
	p.dirty = true
}

// observe folds a measured evaluated-suffix size (tasks) into the EMA
// of the op at position pos in the caller's ops slice. Only
// LocalityMeasured learns from it. The first measurement replaces the
// seed outright — the seed is a deliberately pessimistic prior, and
// blending toward a real sample three EMA steps at a time would keep
// paying the prior's error for several draws per op.
func (p *localityPicker) observe(pos int, suffixTasks float64) {
	if p.policy != LocalityMeasured {
		return
	}
	i := p.inv[pos]
	if !p.sampled[i] {
		p.sampled[i] = true
		p.ema[i] = suffixTasks
	} else {
		p.ema[i] += localityEMAAlpha * (suffixTasks - p.ema[i])
	}
	p.dirty = true
}

// rebuild recomputes the weight and cumulative tables from the current
// hints/EMA under the picker's policy.
func (p *localityPicker) rebuild() {
	switch p.policy {
	case LocalityLateBiased:
		for i, h := range p.hint {
			w := (1 - h) * (1 - h)
			if w < localityMinWeight {
				w = localityMinWeight
			}
			p.weight[i] = w
		}
	case LocalityStratified:
		// Rank ops by ascending hint (latest-starting first), ties by
		// the already-ID-sorted order index so ranking is deterministic.
		rank := make([]int, len(p.order))
		for i := range rank {
			rank[i] = i
		}
		sort.SliceStable(rank, func(a, b int) bool {
			return p.hint[rank[a]] < p.hint[rank[b]]
		})
		// Four equal-size strata with geometric mass 8:4:2:1; each op's
		// weight is its stratum's mass split evenly inside the stratum,
		// so a draw is "pick stratum by mass, then uniform within".
		n := len(rank)
		strata := 4
		if n < strata {
			strata = n
		}
		for r, i := range rank {
			stratum := r * strata / n
			size := float64((stratum+1)*n/strata - stratum*n/strata)
			p.weight[i] = float64(int(1)<<(strata-1-stratum)) / size
		}
	case LocalityMeasured:
		// Softmax over the negated EMA: weight exp(-(ema-min)/scale),
		// scale = localityEMATemp x the mean EMA. Suffix costs spread
		// less than 2x on the graphs that matter, so the falloff must be
		// exponential to concentrate the walk on the cheap tail; the
		// clamp keeps every weight strictly positive. A degenerate
		// all-zero EMA (nothing measured, nothing seeded) means no
		// signal: every op weighs 1.
		min, mean := math.Inf(1), 0.0
		for _, e := range p.ema {
			if e < min {
				min = e
			}
			mean += e
		}
		mean /= float64(len(p.ema))
		scale := localityEMATemp * mean
		for i, e := range p.ema {
			if scale <= 0 {
				p.weight[i] = 1
				continue
			}
			x := (e - min) / scale
			if x > localityExpClamp {
				x = localityExpClamp
			}
			p.weight[i] = math.Exp(-x)
		}
	default:
		panic("search: localityPicker with policy " + string(p.policy))
	}
	p.cum, p.total = buildCum(p.weight, p.cum)
	p.dirty = false
}

// pick draws the next op to mutate and returns its position in the
// caller's ops slice. Non-escape draws consume exactly one Float64;
// LocalityMeasured consumes one extra Float64 deciding the escape
// hatch (plus an Intn when it fires). All draws come from the chain's
// private RNG, so the sequence replays exactly for a fixed seed.
func (p *localityPicker) pick(rng *rand.Rand) int {
	if p.policy == LocalityMeasured && rng.Float64() < localityEscapeProb {
		// Uniform escape, drawn over the ID-sorted order so the choice
		// is independent of how the caller enumerated the ops.
		return p.order[rng.Intn(len(p.order))]
	}
	if p.dirty {
		p.rebuild()
	}
	return p.order[weightedIndex(p.cum, rng.Float64()*p.total)]
}
