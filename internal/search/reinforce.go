package search

import (
	"context"
	"math"
	"math/rand"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/par"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// ReinforceOptions configure the REINFORCE device-placement baseline
// (Mirhoseini et al. [33]): a policy-gradient learner over model-
// parallel placements — one device per operation, no intra-op
// parallelism, which is exactly the search space the paper credits it
// with (Figure 1: parallelism dimension "O").
type ReinforceOptions struct {
	Episodes  int     // placement samples drawn
	BatchSize int     // samples per gradient step
	LR        float64 // policy learning rate
	Seed      int64
	TaskOpts  taskgraph.Options
	// Workers caps the share of the process-wide worker pool a batch's
	// episode rollouts may use (0 = the pool's full bound; see
	// par.SetWorkers). Rollouts follow the same determinism recipe as
	// the MCMC chains: episode e draws from a private RNG seeded by
	// (Seed, e), each rollout samples from the batch-start policy
	// snapshot and owns its task graph and simulator state, and results
	// merge in episode order — so the learner is bit-identical for
	// every Workers value and every pool size.
	//
	// Deprecated: size the shared pool once with par.SetWorkers instead
	// of capping individual searches.
	Workers int
	// OnEvent, when non-nil, receives one progress event per gradient
	// batch (Chain = batch index, Iter = episodes completed).
	OnEvent func(ProgressEvent)
}

// DefaultReinforceOptions mirror the small-scale settings of Section
// 8.2.3 (four GPUs on a single node).
func DefaultReinforceOptions() ReinforceOptions {
	return ReinforceOptions{Episodes: 600, BatchSize: 10, LR: 0.15, Seed: 1}
}

// ReinforceResult reports the best placement the learner found.
type ReinforceResult struct {
	Best     *config.Strategy
	BestCost time.Duration
	Episodes int
}

// Reinforce learns a per-op softmax policy over devices with the
// REINFORCE gradient (reward = negative simulated iteration time,
// baseline = batch mean) and returns the best placement sampled. In the
// paper this took 12-27 hours of real executions; with the simulator as
// reward oracle it finishes in seconds, but the search space is
// unchanged — which is why FlexFlow still beats it (Figure 10a).
//
// Episode rollouts within a gradient batch are independent — each
// samples placements from the batch-start policy — so they fan out over
// the worker pool; the gradient step itself is serial and processes
// episodes in order. Cancelling ctx stops the learner at the next batch
// boundary with the best placement sampled so far.
func Reinforce(ctx context.Context, g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, opts ReinforceOptions) ReinforceResult {
	// Normalize each unset field individually so a caller setting only
	// some options (a Seed, a Workers bound) keeps the rest.
	def := DefaultReinforceOptions()
	if opts.Episodes <= 0 {
		opts.Episodes = def.Episodes
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = def.BatchSize
	}
	if opts.LR == 0 {
		opts.LR = def.LR
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	ops := g.ComputeOps()
	gpus := topo.GPUs()
	logits := make([][]float64, len(ops))
	for i := range logits {
		logits[i] = make([]float64, len(gpus))
	}
	if topo.NumDevices() > 0 {
		topo.Route(0, 0) // force the lazy route build before fanning out
	}

	type episode struct {
		choice []int
		strat  *config.Strategy
		cost   time.Duration
	}
	res := ReinforceResult{BestCost: 1<<62 - 1}

	for batch := 0; res.Episodes < opts.Episodes; batch++ {
		if cancelled(ctx) {
			break
		}
		n := opts.BatchSize
		if rem := opts.Episodes - res.Episodes; n > rem {
			n = rem
		}
		// Snapshot the policy once per batch: every rollout of the
		// batch samples from the same distribution regardless of which
		// worker runs it or in what order.
		probs := make([][]float64, len(ops))
		for i := range logits {
			probs[i] = softmax(logits[i])
		}
		eps := make([]episode, n)
		first := res.Episodes
		par.ForEach(opts.Workers, n, func(k int) {
			rng := rand.New(rand.NewSource(chainSeed(opts.Seed, first+k)))
			choice := make([]int, len(ops))
			s := config.NewStrategy(g)
			for i, op := range ops {
				choice[i] = sampleProbs(probs[i], rng)
				s.Set(op.ID, config.OnDevice(op, gpus[choice[i]]))
			}
			tg := taskgraph.Build(g, topo, s, est, opts.TaskOpts)
			eps[k] = episode{choice: choice, strat: s, cost: sim.NewState(tg).Simulate()}
		})
		// Merge and apply the policy-gradient step serially, in episode
		// order, so ties and the logit trajectory are deterministic.
		mean := 0.0
		for _, e := range eps {
			res.Episodes++
			if e.cost < res.BestCost {
				res.BestCost = e.cost
				res.Best = e.strat.Clone()
			}
			mean += -e.cost.Seconds()
		}
		mean /= float64(n)
		for _, e := range eps {
			adv := -e.cost.Seconds() - mean
			for i := range ops {
				p := softmax(logits[i])
				for d := range p {
					grad := -p[d]
					if d == e.choice[i] {
						grad += 1
					}
					logits[i][d] += opts.LR * adv * grad
				}
			}
		}
		emit(opts.OnEvent, ProgressEvent{
			Algorithm: "reinforce", Chain: batch, Iter: res.Episodes, BestCost: res.BestCost,
		})
	}
	return res
}

func softmax(logits []float64) []float64 {
	max := logits[0]
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		out[i] = math.Exp(l - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sampleProbs draws an index from an already-normalized distribution.
func sampleProbs(p []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if r < acc {
			return i
		}
	}
	return len(p) - 1
}

func sampleSoftmax(logits []float64, rng *rand.Rand) int {
	return sampleProbs(softmax(logits), rng)
}
