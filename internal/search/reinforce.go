package search

import (
	"math"
	"math/rand"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// ReinforceOptions configure the REINFORCE device-placement baseline
// (Mirhoseini et al. [33]): a policy-gradient learner over model-
// parallel placements — one device per operation, no intra-op
// parallelism, which is exactly the search space the paper credits it
// with (Figure 1: parallelism dimension "O").
type ReinforceOptions struct {
	Episodes  int     // placement samples drawn
	BatchSize int     // samples per gradient step
	LR        float64 // policy learning rate
	Seed      int64
	TaskOpts  taskgraph.Options
}

// DefaultReinforceOptions mirror the small-scale settings of Section
// 8.2.3 (four GPUs on a single node).
func DefaultReinforceOptions() ReinforceOptions {
	return ReinforceOptions{Episodes: 600, BatchSize: 10, LR: 0.15, Seed: 1}
}

// ReinforceResult reports the best placement the learner found.
type ReinforceResult struct {
	Best     *config.Strategy
	BestCost time.Duration
	Episodes int
}

// Reinforce learns a per-op softmax policy over devices with the
// REINFORCE gradient (reward = negative simulated iteration time,
// baseline = batch mean) and returns the best placement sampled. In the
// paper this took 12-27 hours of real executions; with the simulator as
// reward oracle it finishes in seconds, but the search space is
// unchanged — which is why FlexFlow still beats it (Figure 10a).
func Reinforce(g *graph.Graph, topo *device.Topology, est perfmodel.Estimator, opts ReinforceOptions) ReinforceResult {
	if opts.Episodes == 0 {
		opts = DefaultReinforceOptions()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ops := g.ComputeOps()
	gpus := topo.GPUs()
	logits := make([][]float64, len(ops))
	for i := range logits {
		logits[i] = make([]float64, len(gpus))
	}

	type episode struct {
		choice []int
		reward float64
	}
	res := ReinforceResult{BestCost: 1<<62 - 1}
	var batch []episode

	for ep := 0; ep < opts.Episodes; ep++ {
		choice := make([]int, len(ops))
		s := config.NewStrategy(g)
		for i, op := range ops {
			choice[i] = sampleSoftmax(logits[i], rng)
			s.Set(op.ID, config.OnDevice(op, gpus[choice[i]]))
		}
		tg := taskgraph.Build(g, topo, s, est, opts.TaskOpts)
		cost := sim.NewState(tg).Simulate()
		res.Episodes++
		if cost < res.BestCost {
			res.BestCost = cost
			res.Best = s.Clone()
		}
		batch = append(batch, episode{choice: choice, reward: -cost.Seconds()})
		if len(batch) < opts.BatchSize {
			continue
		}
		// Policy-gradient step with the batch-mean baseline.
		mean := 0.0
		for _, e := range batch {
			mean += e.reward
		}
		mean /= float64(len(batch))
		for _, e := range batch {
			adv := e.reward - mean
			for i := range ops {
				p := softmax(logits[i])
				for d := range p {
					grad := -p[d]
					if d == e.choice[i] {
						grad += 1
					}
					logits[i][d] += opts.LR * adv * grad
				}
			}
		}
		batch = batch[:0]
	}
	return res
}

func softmax(logits []float64) []float64 {
	max := logits[0]
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		out[i] = math.Exp(l - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func sampleSoftmax(logits []float64, rng *rand.Rand) int {
	p := softmax(logits)
	r := rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if r < acc {
			return i
		}
	}
	return len(p) - 1
}
