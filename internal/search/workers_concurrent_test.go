package search

import (
	"context"
	"sync"
	"testing"

	"flexflow/internal/device"
	"flexflow/internal/perfmodel"
)

// TestWorkersCapConcurrentDifferential pins the deprecated per-call
// Workers cap under the load the strategy server creates: many
// searches with different caps running concurrently on the one
// process-wide pool. Each must reproduce its serial (Workers=1)
// reference bit for bit — strategy, cost, proposal and acceptance
// counts, trace length — and a Workers=1 caller must additionally see
// its chains run inline in order: chain ids in its progress events
// never go backwards, because a cap of one runs the chain fan-out
// serially on the calling goroutine no matter how busy the shared pool
// is.
func TestWorkersCapConcurrentDifferential(t *testing.T) {
	g := tinyMLP()
	topo := device.NewSingleNode(4, "P100")
	est := perfmodel.NewAnalyticModel()

	const callers = 6
	makeOpts := func(i int) Options {
		opts := DefaultOptions()
		opts.MaxIters = 120
		opts.Seed = int64(20 + i)
		return opts
	}

	refs := make([]Result, callers)
	for i := range refs {
		opts := makeOpts(i)
		opts.Workers = 1
		refs[i] = MCMC(context.Background(), g, topo, est, Initials(g, topo, opts.Seed, i%2 == 0), opts)
		if refs[i].Best == nil || refs[i].Iters == 0 {
			t.Fatalf("caller %d: degenerate serial reference: %+v", i, refs[i])
		}
	}

	results := make([]Result, callers)
	violations := make([]int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := makeOpts(i)
			opts.Workers = i % 3 // 0 = full pool bound, 1 = inline serial, 2 = capped pair
			if opts.Workers == 1 {
				last := -1
				opts.OnEvent = func(ev ProgressEvent) {
					if ev.Chain < last {
						violations[i]++
					}
					last = ev.Chain
				}
			}
			results[i] = MCMC(context.Background(), g, topo, est, Initials(g, topo, opts.Seed, i%2 == 0), opts)
		}(i)
	}
	wg.Wait()

	for i := range results {
		workers := i % 3
		if results[i].BestCost != refs[i].BestCost || !results[i].Best.Equal(refs[i].Best) {
			t.Errorf("caller %d (Workers=%d): concurrent best %v diverges from serial reference %v",
				i, workers, results[i].BestCost, refs[i].BestCost)
		}
		if results[i].Iters != refs[i].Iters || results[i].Accepted != refs[i].Accepted {
			t.Errorf("caller %d (Workers=%d): proposals %d/%d accepted diverge from reference %d/%d",
				i, workers, results[i].Iters, results[i].Accepted, refs[i].Iters, refs[i].Accepted)
		}
		if len(results[i].Trace) != len(refs[i].Trace) {
			t.Errorf("caller %d (Workers=%d): trace length %d != reference %d",
				i, workers, len(results[i].Trace), len(refs[i].Trace))
		}
		if violations[i] > 0 {
			t.Errorf("caller %d: Workers=1 progress interleaved across chains %d times", i, violations[i])
		}
	}
}
