package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive knob must default to at least one worker")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 0} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingleton(t *testing.T) {
	ForEach(4, 0, func(i int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEach(8, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestForEachSerialRunsInOrderOnCaller(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) }) // no locking: must be the caller's goroutine
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	ForEach(workers, 64, func(i int) {
		v := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if v > peak {
			peak = v
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent iterations with %d workers", peak, workers)
	}
}
