package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withBound runs the body under a fixed process-wide bound and restores
// the previous bound afterwards. The par tests run sequentially (none
// call t.Parallel), so the global knob is exclusive to each test.
func withBound(t *testing.T, n int, body func()) {
	t.Helper()
	prev := WorkerBound()
	SetWorkers(n)
	defer SetWorkers(prev)
	body()
}

func TestSetWorkersAndWidth(t *testing.T) {
	withBound(t, 5, func() {
		if got := WorkerBound(); got != 5 {
			t.Fatalf("WorkerBound() = %d after SetWorkers(5)", got)
		}
		if got := Width(0); got != 5 {
			t.Fatalf("Width(0) = %d, want the bound", got)
		}
		if got := Width(3); got != 3 {
			t.Fatalf("Width(3) = %d, want the cap", got)
		}
		if got := Width(9); got != 5 {
			t.Fatalf("Width(9) = %d, want the bound (caps never raise it)", got)
		}
	})
	if got := SetWorkers(0); got != runtime.NumCPU() {
		t.Fatalf("SetWorkers(0) = %d, want NumCPU", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, bound := range []int{1, 2, 4, 16} {
		withBound(t, bound, func() {
			for _, limit := range []int{0, 1, 3} {
				const n = 1000
				counts := make([]int32, n)
				ForEach(limit, n, func(i int) {
					atomic.AddInt32(&counts[i], 1)
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("bound=%d limit=%d: index %d ran %d times", bound, limit, i, c)
					}
				}
			}
		})
	}
}

func TestForEachEmptyAndSingleton(t *testing.T) {
	ForEach(4, 0, func(i int) { t.Error("fn called for n=0") })
	ran := false
	ForEach(8, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestForEachSerialRunsInOrderOnCaller(t *testing.T) {
	withBound(t, 8, func() {
		var order []int
		ForEach(1, 5, func(i int) { order = append(order, i) }) // no locking: must be the caller's goroutine
		for i, v := range order {
			if v != i {
				t.Fatalf("serial order = %v", order)
			}
		}
	})
}

func TestForEachBoundsConcurrency(t *testing.T) {
	withBound(t, 8, func() {
		const limit = 3
		var cur, peak int32
		var mu sync.Mutex
		ForEach(limit, 64, func(i int) {
			v := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if v > peak {
				peak = v
			}
			mu.Unlock()
			runtime.Gosched()
			atomic.AddInt32(&cur, -1)
		})
		if peak > limit {
			t.Fatalf("observed %d concurrent iterations with limit %d", peak, limit)
		}
	})
}

// completeWithin fails the test if body does not return in time — the
// deadlock guard of the nesting tests.
func completeWithin(t *testing.T, d time.Duration, body func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		body()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("nested fan-out did not complete: deadlock")
	}
}

// TestNestedForPoolOfOne is the regression test for deadlock-free
// nested submission at the degenerate bound: a pool of one must
// complete three-deep nesting inline, on the calling goroutine, with
// every level's indices in increasing order.
func TestNestedForPoolOfOne(t *testing.T) {
	withBound(t, 1, func() {
		completeWithin(t, 30*time.Second, func() {
			var trace []int // safe: bound 1 means everything runs inline
			For(2, func(a int) {
				trace = append(trace, a)
				For(2, func(b int) {
					trace = append(trace, 10+b)
					For(2, func(c int) {
						trace = append(trace, 100+c)
					})
				})
			})
			want := []int{
				0, 10, 100, 101, 11, 100, 101,
				1, 10, 100, 101, 11, 100, 101,
			}
			if len(trace) != len(want) {
				t.Fatalf("trace length %d, want %d: %v", len(trace), len(want), trace)
			}
			for i := range want {
				if trace[i] != want[i] {
					t.Fatalf("pool-of-one nesting out of order at %d: got %v, want %v", i, trace, want)
				}
			}
		})
	})
}

// TestNestedForSmallPools drives three-deep nesting through pools of
// 2, 3 and 8: every leaf must run exactly once and the whole tree must
// complete — under -race this also certifies the scheduler itself.
func TestNestedForSmallPools(t *testing.T) {
	for _, bound := range []int{2, 3, 8} {
		withBound(t, bound, func() {
			completeWithin(t, 30*time.Second, func() {
				const a, b, c = 3, 4, 5
				var leaves [a * b * c]int32
				For(a, func(i int) {
					For(b, func(j int) {
						For(c, func(k int) {
							atomic.AddInt32(&leaves[(i*b+j)*c+k], 1)
						})
					})
				})
				for i, v := range leaves {
					if v != 1 {
						t.Fatalf("bound=%d: leaf %d ran %d times", bound, i, v)
					}
				}
			})
		})
	}
}

// TestNestedMaxConcurrency asserts the global invariant the pool
// exists for: across a three-deep nested fan-out, the number of
// goroutines concurrently executing loop-body code never exceeds the
// process-wide bound. Body code is instrumented at every level outside
// the nested submission itself, so a goroutine suspended inside a
// nested For (which is helping, not blocking) is counted only through
// whatever body it is actually executing.
func TestNestedMaxConcurrency(t *testing.T) {
	const bound = 3
	withBound(t, bound, func() {
		var cur, peak int32
		track := func() func() {
			v := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if v <= p || atomic.CompareAndSwapInt32(&peak, p, v) {
					break
				}
			}
			runtime.Gosched()
			return func() { atomic.AddInt32(&cur, -1) }
		}
		completeWithin(t, 30*time.Second, func() {
			For(4, func(i int) {
				done := track()
				done()
				For(4, func(j int) {
					done := track()
					done()
					For(8, func(k int) {
						defer track()()
					})
				})
			})
		})
		if peak > bound {
			t.Fatalf("observed %d goroutines in loop bodies with bound %d", peak, bound)
		}
	})
}

// TestForEachPanicDrainsAndRaisesInSubmitter pins the panic contract:
// whichever goroutine executes the panicking body (the submitter for
// index 0, usually a helper for a late index), the loop stops handing
// out indices, drains in-flight bodies, and re-raises the panic in the
// For caller — who can recover without racing leftover bodies.
func TestForEachPanicDrainsAndRaisesInSubmitter(t *testing.T) {
	for _, panicAt := range []int{0, 40} {
		withBound(t, 4, func() {
			var ran atomic.Int32
			func() {
				defer func() {
					if r := recover(); r != "boom" {
						t.Errorf("panicAt=%d: recovered %v, want the body's panic value", panicAt, r)
					}
				}()
				ForEach(0, 64, func(i int) {
					if i == panicAt {
						panic("boom")
					}
					time.Sleep(100 * time.Microsecond)
					ran.Add(1)
				})
			}()
			n1 := ran.Load()
			time.Sleep(20 * time.Millisecond)
			if n2 := ran.Load(); n2 != n1 {
				t.Fatalf("panicAt=%d: bodies still ran after ForEach unwound: %d then %d", panicAt, n1, n2)
			}
			if n1 >= 63 {
				t.Fatalf("panicAt=%d: cancel did not skip unclaimed indices: %d of 63 ran", panicAt, n1)
			}
		})
	}
}

// TestForEachStolenBodyPanicHitsOwningLoop pins the cross-loop case: a
// goroutine that panics while helping with a *different* loop's body
// must not corrupt its own loop — the panic surfaces in the owning
// loop's submitter, and the helper's loop completes every index.
func TestForEachStolenBodyPanicHitsOwningLoop(t *testing.T) {
	withBound(t, 4, func() {
		completeWithin(t, 30*time.Second, func() {
			var outerRan atomic.Int32
			var innerPanicSeen atomic.Int32
			For(4, func(i int) {
				if i == 0 {
					// This body submits a nested loop whose bodies all
					// panic; any of the four pool goroutines may steal
					// them. The panic must come back HERE (the nested
					// loop's submitter), not in the stealer's loop.
					func() {
						defer func() {
							if recover() != nil {
								innerPanicSeen.Add(1)
							}
						}()
						For(8, func(j int) { panic("inner") })
					}()
				}
				time.Sleep(100 * time.Microsecond)
				outerRan.Add(1)
			})
			if innerPanicSeen.Load() != 1 {
				t.Error("nested panic did not surface in the nested loop's submitter")
			}
			if outerRan.Load() != 4 {
				t.Errorf("outer loop lost indices to a stolen-body panic: ran %d of 4", outerRan.Load())
			}
		})
	})
}

// TestSetWorkersResize shrinks and regrows the pool between loops: the
// new bound must govern loops submitted after the change.
func TestSetWorkersResize(t *testing.T) {
	withBound(t, 8, func() {
		For(32, func(i int) {}) // spawn the full helper complement
		SetWorkers(2)
		var cur, peak int32
		For(64, func(i int) {
			v := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if v <= p || atomic.CompareAndSwapInt32(&peak, p, v) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			atomic.AddInt32(&cur, -1)
		})
		if peak > 2 {
			t.Fatalf("pool shrunk to 2 but %d bodies ran concurrently", peak)
		}
		SetWorkers(8)
		covered := make([]int32, 128)
		For(len(covered), func(i int) { atomic.AddInt32(&covered[i], 1) })
		for i, v := range covered {
			if v != 1 {
				t.Fatalf("after regrow, index %d ran %d times", i, v)
			}
		}
	})
}
