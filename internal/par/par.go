// Package par is the worker-pool primitive used by the concurrent
// search runtime and the experiments harness. It deliberately exposes
// only index-based fan-out: callers hand out work by index and write
// results by index, so the concurrency never reorders anything — the
// shape every deterministic parallel loop in this repo follows (the
// repo-wide contract is written down in docs/CONCURRENCY.md).
//
// All loops share one process-wide pool sized by a single global bound
// (SetWorkers; default runtime.NumCPU). Nested submission is
// deadlock-free by construction: For never blocks its goroutine while
// there is claimable work anywhere — the submitting goroutine executes
// pending indices itself (its own loop first, then any other live
// loop), so arbitrarily deep nesting completes even on a pool of one,
// and the total number of goroutines executing loop bodies never
// exceeds the bound, no matter how many fan-out levels are stacked
// (registry runners × experiment cells × MCMC chains × Neighborhood
// sweeps all compose under the one limit instead of multiplying).
//
// Why it cannot deadlock: a goroutine parks only when nothing is
// claimable — every unfinished index is either already in flight or
// belongs to a loop at its width cap. In-flight indices are held by
// goroutines that are either running (and finite loop bodies finish)
// or themselves parked in a nested For — and a nested loop is always a
// strict descendant of the index being executed, so the waits-for
// relation follows the finite fork-join tree and can never form a
// cycle. Width-capped indices cannot be stranded either: the executor
// that frees a cap slot either re-claims atomically under the
// scheduler lock before it can park, or — on the two paths that leave
// the pool instead (a top-level submitter returning, runtime.Goexit) —
// wakes the parked workers. Completion of the last index of a loop
// wakes its submitter. See docs/CONCURRENCY.md for the longer version
// of this argument.
package par

import (
	"runtime"
	"sync"
)

// loop is one For/ForEach invocation: a batch of indices claimed in
// increasing order by the goroutines that execute it. All fields are
// guarded by sched.mu.
type loop struct {
	fn       func(int)
	n        int // total indices
	next     int // next unclaimed index
	done     int // indices finished
	inflight int // indices currently executing
	width    int // max concurrent executors of this loop
	// panicked holds the first panic value raised by a body of this
	// loop (recovered by whichever goroutine ran it); the loop's
	// unclaimed indices are cancelled and the loop's own submitter
	// re-raises it once in-flight bodies drain.
	panicked any
}

// sched is the process-wide scheduler: one bound, one queue of live
// loops, and up to bound-1 helper goroutines that drain it. The
// submitting goroutine of every loop is the remaining executor, which
// is what keeps nested submission deadlock-free.
var sched = struct {
	mu      sync.Mutex
	cond    *sync.Cond
	bound   int     // global parallelism bound (counts the submitter)
	helpers int     // helper goroutines alive (target: bound-1)
	waiters int     // goroutines parked on cond
	loops   []*loop // loops with unclaimed indices, oldest first
}{}

func init() {
	sched.cond = sync.NewCond(&sched.mu)
	sched.bound = runtime.NumCPU()
}

// SetWorkers sets the process-wide worker bound (n <= 0 resets to
// runtime.NumCPU) and returns the effective value. The pool
// contributes at most bound-1 helper goroutines, and the bound counts
// the submitting goroutine: one top-level call tree never executes
// more than bound loop bodies concurrently, however deeply nested,
// and a bound of one runs every loop inline on its caller. Each
// *independent* goroutine concurrently submitting its own top-level
// loop adds itself on top of the helpers (k submitters: at most
// bound-1+k bodies). Resizing applies to new claims, never to bodies
// already executing: shrinking retires helpers as they finish their
// current index (running loops narrow promptly toward the new bound),
// while growing applies only to loops submitted afterwards — a loop's
// width is frozen when it is submitted, so a loop already running
// never widens. Results never depend on the bound — only wall-clock
// time does.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	sched.mu.Lock()
	sched.bound = n
	// Wake parked helpers: surplus ones exit, the rest re-park.
	sched.cond.Broadcast()
	sched.mu.Unlock()
	return n
}

// WorkerBound returns the current process-wide worker bound.
func WorkerBound() int {
	sched.mu.Lock()
	defer sched.mu.Unlock()
	return sched.bound
}

// Width returns the number of goroutines a ForEach call with the given
// per-call limit may occupy: the global bound, further capped by
// limit when limit > 0. Callers sizing work splits (e.g. DFS prefix
// fan-out) should use this, not the raw limit.
func Width(limit int) int {
	b := WorkerBound()
	if limit > 0 && limit < b {
		return limit
	}
	return b
}

// For runs fn(i) for every i in [0, n) on the shared pool, bounded by
// the process-wide SetWorkers limit. Indices are handed out in
// increasing order; fn must be safe to call concurrently and should
// communicate results positionally (results[i] = ...), never by
// appending to shared state. For returns after every call finished.
//
// For may be called from inside fn (nested fan-out): the nested call
// shares the same pool and the same global bound, and the calling
// goroutine helps execute pending indices instead of blocking, so
// nesting can never deadlock and never multiplies parallelism.
//
// If a body panics, the loop stops handing out indices, drains its
// in-flight bodies, and re-raises the first panic value in the
// goroutine that called For — never in an unrelated goroutine that
// happened to execute the body while helping.
//
// With a bound of one (or n == 1) the loop runs on the calling
// goroutine with no synchronization at all, so a serial configuration
// behaves exactly like a plain for loop.
func For(n int, fn func(i int)) {
	ForEach(0, n, fn)
}

// ForEach is For with a per-call width cap: at most min(limit, bound)
// goroutines execute this loop's bodies (limit <= 0 means no extra
// cap). A limit of one runs the loop inline on the caller, in order,
// with no synchronization.
//
// The limit only ever narrows a loop's share of the shared pool; it
// cannot raise parallelism above the process-wide bound. It exists for
// the deprecated per-level Workers knobs — new call sites should use
// For and let SetWorkers govern.
func ForEach(limit, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	sched.mu.Lock()
	width := sched.bound
	if limit > 0 && limit < width {
		width = limit
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		sched.mu.Unlock()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	l := &loop{fn: fn, n: n, width: width}
	sched.loops = append(sched.loops, l)
	spawnHelpersLocked()
	sched.cond.Broadcast()
	// If fn exits the goroutine (runtime.Goexit, e.g. t.FailNow from a
	// caller-run body), the participation loop below unwinds without a
	// panic value: cancel the loop's unclaimed indices and wait out
	// the in-flight ones so no body outlives this call. Body panics
	// never unwind here — runLocked records them on the body's own
	// loop and the re-raise happens at the bottom of this function.
	completed := false
	defer func() {
		if completed {
			return
		}
		sched.mu.Lock()
		cancelLocked(l)
		for l.done < l.n {
			waitLocked()
		}
		sched.mu.Unlock()
	}()
	// Caller-runs: claim from our own loop first, then help any other
	// live loop (in particular loops our in-flight bodies submitted),
	// and park only when nothing anywhere is claimable.
	for l.done < l.n {
		if cl, i, ok := claimLocked(l); ok {
			runLocked(cl, i)
			continue
		}
		waitLocked()
	}
	completed = true
	p := l.panicked
	sched.mu.Unlock()
	if p != nil {
		// Re-raise the first body panic in the submitter — the loop
		// has fully drained, so the caller's recover never races
		// leftover bodies, and a panic from a stolen body surfaced in
		// the loop that owned it, not in whoever happened to run it.
		panic(p)
	}
}

// cancelLocked retires a loop's unclaimed indices: they are counted
// done without running so waiters unblock once in-flight bodies drain.
func cancelLocked(l *loop) {
	if l.next >= l.n {
		return
	}
	skipped := l.n - l.next
	l.next = l.n
	removeLoopLocked(l)
	l.done += skipped
	if l.done == l.n {
		sched.cond.Broadcast()
	}
}

// spawnHelpersLocked brings the helper count up to bound-1. Helpers
// are cheap when idle (parked on the cond), so the pool spawns its
// full complement on first use and lets SetWorkers shrink it.
func spawnHelpersLocked() {
	for sched.helpers < sched.bound-1 {
		sched.helpers++
		go helperLoop()
	}
}

// helperLoop is the body of one pool helper: claim any runnable index,
// execute it, park when idle, exit when the pool shrank. If a body
// kills the goroutine via runtime.Goexit, the deferred census fix
// keeps sched.helpers honest so the next submission spawns a
// replacement.
func helperLoop() {
	retired := false
	defer func() {
		if retired {
			return
		}
		// A body ran runtime.Goexit on this goroutine (runLocked's
		// unwind path released the lock). Uncount the dead helper and
		// wake the pool in case the death stranded claimable work.
		sched.mu.Lock()
		sched.helpers--
		sched.cond.Broadcast()
		sched.mu.Unlock()
	}()
	sched.mu.Lock()
	for {
		if sched.helpers > sched.bound-1 {
			sched.helpers--
			retired = true
			sched.mu.Unlock()
			return
		}
		if l, i, ok := claimLocked(nil); ok {
			runLocked(l, i)
			continue
		}
		waitLocked()
	}
}

// waitLocked parks the goroutine on the scheduler cond, keeping the
// waiter census runLocked consults for its freed-capacity wakeup.
func waitLocked() {
	sched.waiters++
	sched.cond.Wait()
	sched.waiters--
}

// claimLocked picks a runnable index: from own when it still has
// unclaimed capacity, otherwise from the newest-submitted live loop.
// Newest-first is a heuristic, not a lineage guarantee: within one
// call tree the newest loop is the deepest descendant (where a waiting
// submitter's dependencies live), but when independent top-level
// submitters coexist a goroutine can steal a body from an unrelated
// tree and not return to its own (completed) loop until that body
// finishes — a bounded latency cost, never a correctness or deadlock
// one. Returns ok=false when nothing is claimable.
func claimLocked(own *loop) (*loop, int, bool) {
	if own != nil && own.next < own.n && own.inflight < own.width {
		return own, takeLocked(own), true
	}
	for i := len(sched.loops) - 1; i >= 0; i-- {
		l := sched.loops[i]
		if l.next < l.n && l.inflight < l.width {
			return l, takeLocked(l), true
		}
	}
	return nil, 0, false
}

// takeLocked claims the next index of l, removing l from the live list
// once fully claimed.
func takeLocked(l *loop) int {
	i := l.next
	l.next++
	l.inflight++
	if l.next == l.n {
		removeLoopLocked(l)
	}
	return i
}

// removeLoopLocked splices l out of the live-loop list (no-op if it
// was already removed).
func removeLoopLocked(l *loop) {
	for j, x := range sched.loops {
		if x == l {
			sched.loops = append(sched.loops[:j], sched.loops[j+1:]...)
			return
		}
	}
}

// runLocked executes one claimed index. Called with sched.mu held;
// returns with it held. A body panic is recovered here and recorded on
// the body's own loop — whose unclaimed indices are cancelled and
// whose submitter re-raises it after the drain — so execution of the
// claiming goroutine continues normally whether it ran its own loop's
// body or a stolen one. runtime.Goexit is the one unwind that passes
// through: the index is counted complete and the lock released so the
// pool isn't wedged while the goroutine dies.
func runLocked(l *loop, i int) {
	sched.mu.Unlock()
	normal := false
	defer func() {
		r := recover() // nil on normal return and on runtime.Goexit
		sched.mu.Lock()
		if r != nil {
			if l.panicked == nil {
				l.panicked = r
			}
			cancelLocked(l)
			normal = true // panic absorbed; execution resumes
		}
		l.inflight--
		l.done++
		if l.done == l.n {
			sched.cond.Broadcast()
		} else if sched.waiters > 0 && l.next < l.n && l.inflight < l.width {
			// A width-cap slot freed while someone is parked. Usually
			// this goroutine re-claims it immediately, but two exit
			// paths leave the pool instead (a top-level submitter whose
			// own loop just completed; runtime.Goexit) — wake the
			// parked workers so capped-but-unclaimed work is never
			// stranded below its width.
			sched.cond.Broadcast()
		}
		if !normal {
			sched.mu.Unlock()
		}
	}()
	l.fn(i)
	normal = true
}
