// Package par is the worker-pool primitive used by the concurrent
// search runtime and the experiments harness. It deliberately exposes
// only index-based fan-out: callers hand out work by index and write
// results by index, so the concurrency never reorders anything — the
// shape every deterministic parallel loop in this repo follows.
//
// Each ForEach call spins up its own pool; nested calls therefore
// multiply rather than share a global limit (acceptable here because
// the goroutines are CPU-bound and the scheduler time-slices them; a
// single shared pool is a ROADMAP item).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values > 0 are used as-is,
// anything else (the zero value of an Options field) defaults to
// runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 means runtime.NumCPU()). Indices are handed
// out in increasing order; fn must be safe to call concurrently and
// should communicate results positionally (results[i] = ...), never by
// appending to shared state. ForEach returns after every call finished.
//
// With workers == 1 (or n == 1) the loop runs on the calling goroutine
// with no synchronization at all, so a serial configuration behaves
// exactly like a plain for loop.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
