package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachWidthCapsConcurrentSubmitters checks the per-loop width
// cap under contention: independent goroutines each submit a ForEach
// with a different limit onto the one shared pool, and no loop may
// ever have more bodies in flight than its own cap — even while
// helpers steal freely across loops — while the uncapped loop must
// still actually go wide (the caps narrow one loop, not the pool).
func TestForEachWidthCapsConcurrentSubmitters(t *testing.T) {
	prev := WorkerBound()
	SetWorkers(8)
	defer SetWorkers(prev)

	caps := []int{1, 2, 3, 0} // 0 = no per-loop cap (pool bound applies)
	const n = 120
	cur := make([]int64, len(caps))
	maxSeen := make([]int64, len(caps))
	var wg sync.WaitGroup
	for s := range caps {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ForEach(caps[s], n, func(int) {
				c := atomic.AddInt64(&cur[s], 1)
				for {
					m := atomic.LoadInt64(&maxSeen[s])
					if c <= m || atomic.CompareAndSwapInt64(&maxSeen[s], m, c) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond) // dwell so overlap is observable
				atomic.AddInt64(&cur[s], -1)
			})
		}(s)
	}
	wg.Wait()

	for s, limit := range caps {
		bound := int64(limit)
		if limit <= 0 {
			bound = 8
		}
		if maxSeen[s] > bound {
			t.Errorf("loop with cap %d peaked at %d concurrent bodies", limit, maxSeen[s])
		}
	}
	if maxSeen[len(caps)-1] < 2 {
		t.Errorf("uncapped loop never went wide (peak %d); the caps starved the pool", maxSeen[len(caps)-1])
	}
}
