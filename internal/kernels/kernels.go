// Package kernels provides real float32 compute kernels for every
// operator kind. They give the operator graph an executable semantics,
// which lets the test suite prove that SOAP partitioning is semantically
// correct: executing any parallelization strategy task-by-task and
// assembling the shards reproduces the unpartitioned computation
// exactly (see internal/exec).
//
// Each kernel computes an arbitrary hyper-rectangular region of the
// output from full input tensors; a task's computation is the kernel
// applied to the task's output region. Kernels are written so that each
// output element's arithmetic is identical regardless of the region it
// is computed in, making shard assembly bit-exact.
package kernels

import (
	"fmt"
	"math"

	"flexflow/internal/tensor"
)

// Tensor is a dense float32 tensor in row-major layout.
type Tensor struct {
	Dims []int
	Data []float32
}

// NewTensor allocates a zero tensor with the given dimensions.
func NewTensor(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("kernels: non-positive dim %d", d))
		}
		n *= d
	}
	return &Tensor{Dims: append([]int{}, dims...), Data: make([]float32, n)}
}

// FromShape allocates a tensor matching a graph shape.
func FromShape(s tensor.Shape) *Tensor { return NewTensor(s.Sizes()...) }

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Index converts coordinates to a flat offset.
func (t *Tensor) Index(coords ...int) int {
	if len(coords) != len(t.Dims) {
		panic(fmt.Sprintf("kernels: %d coords for %dD tensor", len(coords), len(t.Dims)))
	}
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= t.Dims[i] {
			panic(fmt.Sprintf("kernels: coord %d out of range [0,%d)", c, t.Dims[i]))
		}
		idx = idx*t.Dims[i] + c
	}
	return idx
}

// At reads the element at the coordinates.
func (t *Tensor) At(coords ...int) float32 { return t.Data[t.Index(coords...)] }

// Set writes the element at the coordinates.
func (t *Tensor) Set(v float32, coords ...int) { t.Data[t.Index(coords...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Dims: append([]int{}, t.Dims...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Equal reports element-wise equality within tol.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if len(t.Data) != len(o.Data) {
		return false
	}
	for i := range t.Data {
		d := float64(t.Data[i]) - float64(o.Data[i])
		if math.Abs(d) > tol || math.IsNaN(d) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	var worst float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(o.Data[i]))
		if d > worst || math.IsNaN(d) {
			worst = d
		}
	}
	return worst
}

// PseudoRandomFill fills the tensor with a deterministic pseudo-random
// pattern in [-0.5, 0.5) derived from the seed (xorshift; no math/rand
// allocation per element).
func (t *Tensor) PseudoRandomFill(seed uint64) {
	s := seed*2654435761 + 1
	for i := range t.Data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		t.Data[i] = float32(s%100000)/100000.0 - 0.5
	}
}

// PseudoRandomIDs fills the tensor with deterministic integer ids in
// [0, vocab) stored as floats (token inputs for embedding lookups).
func (t *Tensor) PseudoRandomIDs(seed uint64, vocab int) {
	s := seed*11400714819323198485 + 3
	for i := range t.Data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		t.Data[i] = float32(s % uint64(vocab))
	}
}

// Conv2D computes out[n, co, oh, ow] for the region: a direct
// convolution with bias over input (n, ci, h, w) and weights
// (co, ci, kh, kw) with the given stride and padding.
func Conv2D(out, in, weights, bias *Tensor, region tensor.Region, sh, sw, ph, pw int) {
	ci, ih, iw := in.Dims[1], in.Dims[2], in.Dims[3]
	kh, kw := weights.Dims[2], weights.Dims[3]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for co := region.Iv[1].Lo; co < region.Iv[1].Hi; co++ {
			for oh := region.Iv[2].Lo; oh < region.Iv[2].Hi; oh++ {
				for ow := region.Iv[3].Lo; ow < region.Iv[3].Hi; ow++ {
					acc := bias.Data[co]
					for c := 0; c < ci; c++ {
						for y := 0; y < kh; y++ {
							inY := oh*sh - ph + y
							if inY < 0 || inY >= ih {
								continue
							}
							for x := 0; x < kw; x++ {
								inX := ow*sw - pw + x
								if inX < 0 || inX >= iw {
									continue
								}
								acc += in.At(n, c, inY, inX) * weights.At(co, c, y, x)
							}
						}
					}
					out.Set(acc, n, co, oh, ow)
				}
			}
		}
	}
}

// MaxPool2D computes max pooling over the region.
func MaxPool2D(out, in *Tensor, region tensor.Region, kh, kw, sh, sw, ph, pw int) {
	ih, iw := in.Dims[2], in.Dims[3]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for c := region.Iv[1].Lo; c < region.Iv[1].Hi; c++ {
			for oh := region.Iv[2].Lo; oh < region.Iv[2].Hi; oh++ {
				for ow := region.Iv[3].Lo; ow < region.Iv[3].Hi; ow++ {
					best := float32(math.Inf(-1))
					for y := 0; y < kh; y++ {
						inY := oh*sh - ph + y
						if inY < 0 || inY >= ih {
							continue
						}
						for x := 0; x < kw; x++ {
							inX := ow*sw - pw + x
							if inX < 0 || inX >= iw {
								continue
							}
							if v := in.At(n, c, inY, inX); v > best {
								best = v
							}
						}
					}
					out.Set(best, n, c, oh, ow)
				}
			}
		}
	}
}

// MatMul computes out[n, co] = sum_ci in[n, ci] * w[ci, co] + b[co] over
// the region.
func MatMul(out, in, weights, bias *Tensor, region tensor.Region) {
	ci := in.Dims[1]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for co := region.Iv[1].Lo; co < region.Iv[1].Hi; co++ {
			acc := bias.Data[co]
			for c := 0; c < ci; c++ {
				acc += in.At(n, c) * weights.At(c, co)
			}
			out.Set(acc, n, co)
		}
	}
}

// SoftmaxLinear computes a linear projection followed by a
// softmax over the class dimension. The normalizer is computed over all
// classes regardless of the output region, so channel-partitioned tasks
// produce exactly the same values as the unpartitioned op.
func SoftmaxLinear(out, in, weights, bias *Tensor, region tensor.Region) {
	classes := weights.Dims[1]
	logits := make([]float64, classes)
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		max := math.Inf(-1)
		for co := 0; co < classes; co++ {
			acc := float64(bias.Data[co])
			for c := 0; c < in.Dims[1]; c++ {
				acc += float64(in.At(n, c)) * float64(weights.At(c, co))
			}
			logits[co] = acc
			if acc > max {
				max = acc
			}
		}
		var sum float64
		for co := 0; co < classes; co++ {
			logits[co] = math.Exp(logits[co] - max)
			sum += logits[co]
		}
		for co := region.Iv[1].Lo; co < region.Iv[1].Hi; co++ {
			out.Set(float32(logits[co]/sum), n, co)
		}
	}
}

// Embedding gathers rows of the table (vocab, channels) for the id at
// (n, step) producing out[n, step, channel] over the region.
func Embedding(out, ids, table *Tensor, region tensor.Region) {
	vocab := table.Dims[0]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for s := region.Iv[1].Lo; s < region.Iv[1].Hi; s++ {
			id := int(ids.At(n, s))
			if id < 0 || id >= vocab {
				id = 0
			}
			for c := region.Iv[2].Lo; c < region.Iv[2].Hi; c++ {
				out.Set(table.At(id, c), n, s, c)
			}
		}
	}
}

// RecurrentCell computes one recurrent step,
// h_t[n, j] = tanh(x W_x + h_{t-1} W_h + b)[n, j], over the region.
// x is either 3D (sample, length, channel) sliced at `step`, or 2D
// (sample, channel). prev may be nil for the first step. (The cost model
// prices the op as a full 4-gate LSTM; the numeric semantics use an
// Elman cell — the partitioning-equivalence property being validated is
// independent of cell internals.)
func RecurrentCell(out, x, prev, wx, wh, bias *Tensor, region tensor.Region, step int) {
	xAt := func(n, c int) float32 {
		if len(x.Dims) == 3 {
			return x.At(n, step, c)
		}
		return x.At(n, c)
	}
	cin := wx.Dims[0]
	hidden := wh.Dims[0]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for j := region.Iv[1].Lo; j < region.Iv[1].Hi; j++ {
			acc := bias.Data[j]
			for c := 0; c < cin; c++ {
				acc += xAt(n, c) * wx.At(c, j)
			}
			if prev != nil {
				for c := 0; c < hidden; c++ {
					acc += prev.At(n, c) * wh.At(c, j)
				}
			}
			out.Set(float32(math.Tanh(float64(acc))), n, j)
		}
	}
}

// Attention computes dot-product attention of the query (sample, hidden)
// over memory (sample, srclen, hidden), then projects the context with
// wProj (hidden, hidden): out[n, j] over the region. Score weights wScore
// (hidden, hidden) implement a bilinear score q^T W m.
func Attention(out, query, memory, wScore, wProj *Tensor, region tensor.Region) {
	srcLen, hidden := memory.Dims[1], memory.Dims[2]
	scores := make([]float64, srcLen)
	scored := make([]float64, hidden)
	context := make([]float64, hidden)
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		// Transformed query: q^T W.
		for j := 0; j < hidden; j++ {
			var acc float64
			for c := 0; c < hidden; c++ {
				acc += float64(query.At(n, c)) * float64(wScore.At(c, j))
			}
			scored[j] = acc
		}
		max := math.Inf(-1)
		for s := 0; s < srcLen; s++ {
			var acc float64
			for j := 0; j < hidden; j++ {
				acc += scored[j] * float64(memory.At(n, s, j))
			}
			scores[s] = acc
			if acc > max {
				max = acc
			}
		}
		var sum float64
		for s := 0; s < srcLen; s++ {
			scores[s] = math.Exp(scores[s] - max)
			sum += scores[s]
		}
		for j := 0; j < hidden; j++ {
			var acc float64
			for s := 0; s < srcLen; s++ {
				acc += scores[s] / sum * float64(memory.At(n, s, j))
			}
			context[j] = acc
		}
		for j := region.Iv[1].Lo; j < region.Iv[1].Hi; j++ {
			var acc float64
			for c := 0; c < hidden; c++ {
				acc += context[c] * float64(wProj.At(c, j))
			}
			out.Set(float32(math.Tanh(acc)), n, j)
		}
	}
}

// ConcatChannels copies channel-concatenated 4D inputs into the region.
func ConcatChannels(out *Tensor, ins []*Tensor, region tensor.Region) {
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for c := region.Iv[1].Lo; c < region.Iv[1].Hi; c++ {
			src, off := 0, 0
			for c >= off+ins[src].Dims[1] {
				off += ins[src].Dims[1]
				src++
			}
			for h := region.Iv[2].Lo; h < region.Iv[2].Hi; h++ {
				for w := region.Iv[3].Lo; w < region.Iv[3].Hi; w++ {
					out.Set(ins[src].At(n, c-off, h, w), n, c, h, w)
				}
			}
		}
	}
}

// Add computes element-wise a+b over a 4D region.
func Add(out, a, b *Tensor, region tensor.Region) {
	forEachRegion(region, func(coords []int) {
		out.Set(a.At(coords...)+b.At(coords...), coords...)
	})
}

// ReLU computes max(0, x) over a region of any rank.
func ReLU(out, in *Tensor, region tensor.Region) {
	forEachRegion(region, func(coords []int) {
		v := in.At(coords...)
		if v < 0 {
			v = 0
		}
		out.Set(v, coords...)
	})
}

// Flatten copies a 4D (n, c, h, w) tensor into (n, c*h*w) over the
// output region.
func Flatten(out, in *Tensor, region tensor.Region) {
	h, w := in.Dims[2], in.Dims[3]
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for f := region.Iv[1].Lo; f < region.Iv[1].Hi; f++ {
			c := f / (h * w)
			rem := f % (h * w)
			out.Set(in.At(n, c, rem/w, rem%w), n, f)
		}
	}
}

// Stack copies per-step 2D tensors into (n, step, channel) over the
// region.
func Stack(out *Tensor, steps []*Tensor, region tensor.Region) {
	for n := region.Iv[0].Lo; n < region.Iv[0].Hi; n++ {
		for s := region.Iv[1].Lo; s < region.Iv[1].Hi; s++ {
			for c := region.Iv[2].Lo; c < region.Iv[2].Hi; c++ {
				out.Set(steps[s].At(n, c), n, s, c)
			}
		}
	}
}

// forEachRegion visits every coordinate tuple in the region.
func forEachRegion(region tensor.Region, fn func(coords []int)) {
	rank := region.Rank()
	coords := make([]int, rank)
	for i, iv := range region.Iv {
		coords[i] = iv.Lo
	}
	if region.Empty() {
		return
	}
	for {
		fn(coords)
		d := rank - 1
		for ; d >= 0; d-- {
			coords[d]++
			if coords[d] < region.Iv[d].Hi {
				break
			}
			coords[d] = region.Iv[d].Lo
		}
		if d < 0 {
			return
		}
	}
}
