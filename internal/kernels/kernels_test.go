package kernels

import (
	"math"
	"testing"

	"flexflow/internal/tensor"
)

func reg(iv ...tensor.Interval) tensor.Region { return tensor.Region{Iv: iv} }

func TestTensorBasics(t *testing.T) {
	a := NewTensor(2, 3)
	if a.Len() != 6 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if a.Index(1, 2) != 5 {
		t.Fatalf("Index = %d", a.Index(1, 2))
	}
	a.Fill(2)
	if a.At(0, 0) != 2 {
		t.Fatal("Fill failed")
	}
	b := a.Clone()
	b.Set(9, 0, 0)
	if a.At(0, 0) == 9 {
		t.Fatal("clone aliases original")
	}
	if !a.Equal(a.Clone(), 0) {
		t.Fatal("Equal failed on identical tensors")
	}
	if a.Equal(NewTensor(3, 2), 0) {
		t.Fatal("Equal across sizes")
	}
}

func TestTensorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad-dim":    func() { NewTensor(0) },
		"bad-coords": func() { NewTensor(2, 2).At(1) },
		"oob":        func() { NewTensor(2, 2).At(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPseudoRandomDeterministic(t *testing.T) {
	a := NewTensor(100)
	b := NewTensor(100)
	a.PseudoRandomFill(7)
	b.PseudoRandomFill(7)
	if !a.Equal(b, 0) {
		t.Fatal("same seed differs")
	}
	c := NewTensor(100)
	c.PseudoRandomFill(8)
	if a.Equal(c, 0) {
		t.Fatal("different seeds agree")
	}
	for _, v := range a.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("fill out of range: %v", v)
		}
	}
	ids := NewTensor(50)
	ids.PseudoRandomIDs(3, 10)
	for _, v := range ids.Data {
		if v != float32(int(v)) || v < 0 || v >= 10 {
			t.Fatalf("bad id %v", v)
		}
	}
}

func TestFromShape(t *testing.T) {
	s := tensor.MakeShape(tensor.D("a", 2, tensor.Sample), tensor.D("b", 5, tensor.Parameter))
	ft := FromShape(s)
	if len(ft.Dims) != 2 || ft.Dims[1] != 5 {
		t.Fatalf("dims = %v", ft.Dims)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := NewTensor(1, 1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	w := NewTensor(1, 1, 1, 1)
	w.Set(1, 0, 0, 0, 0)
	b := NewTensor(1)
	out := NewTensor(1, 1, 3, 3)
	Conv2D(out, in, w, b, out2DRegion(out), 1, 1, 0, 0)
	if !out.Equal(in, 0) {
		t.Fatal("1x1 identity convolution changed values")
	}
}

func out2DRegion(t *Tensor) tensor.Region {
	iv := make([]tensor.Interval, len(t.Dims))
	for i, d := range t.Dims {
		iv[i] = tensor.Interval{Lo: 0, Hi: d}
	}
	return tensor.Region{Iv: iv}
}

func TestConv2DKnownValues(t *testing.T) {
	// 2x2 input, 2x2 kernel of ones, no padding: output = sum of inputs.
	in := NewTensor(1, 1, 2, 2)
	in.Data = []float32{1, 2, 3, 4}
	w := NewTensor(1, 1, 2, 2)
	w.Fill(1)
	b := NewTensor(1)
	b.Data[0] = 0.5
	out := NewTensor(1, 1, 1, 1)
	Conv2D(out, in, w, b, out2DRegion(out), 1, 1, 0, 0)
	if out.Data[0] != 10.5 {
		t.Fatalf("conv = %v, want 10.5", out.Data[0])
	}
}

func TestConv2DPadding(t *testing.T) {
	in := NewTensor(1, 1, 2, 2)
	in.Fill(1)
	w := NewTensor(1, 1, 3, 3)
	w.Fill(1)
	b := NewTensor(1)
	out := NewTensor(1, 1, 2, 2)
	Conv2D(out, in, w, b, out2DRegion(out), 1, 1, 1, 1)
	// Corner sees 4 in-bounds inputs.
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("padded corner = %v", out.At(0, 0, 0, 0))
	}
}

func TestMaxPool2D(t *testing.T) {
	in := NewTensor(1, 1, 2, 2)
	in.Data = []float32{1, -2, 3, 0}
	out := NewTensor(1, 1, 1, 1)
	MaxPool2D(out, in, out2DRegion(out), 2, 2, 2, 2, 0, 0)
	if out.Data[0] != 3 {
		t.Fatalf("maxpool = %v", out.Data[0])
	}
}

func TestMatMulKnownValues(t *testing.T) {
	in := NewTensor(1, 2)
	in.Data = []float32{1, 2}
	w := NewTensor(2, 2)
	w.Data = []float32{1, 2, 3, 4} // w[0][*]=1,2; w[1][*]=3,4
	b := NewTensor(2)
	b.Data = []float32{10, 20}
	out := NewTensor(1, 2)
	MatMul(out, in, w, b, out2DRegion(out))
	// out[0] = 1*1+2*3+10 = 17; out[1] = 1*2+2*4+20 = 30.
	if out.Data[0] != 17 || out.Data[1] != 30 {
		t.Fatalf("matmul = %v", out.Data)
	}
}

func TestSoftmaxLinearNormalizes(t *testing.T) {
	in := NewTensor(2, 3)
	in.PseudoRandomFill(1)
	w := NewTensor(3, 4)
	w.PseudoRandomFill(2)
	b := NewTensor(4)
	out := NewTensor(2, 4)
	SoftmaxLinear(out, in, w, b, out2DRegion(out))
	for n := 0; n < 2; n++ {
		var sum float64
		for c := 0; c < 4; c++ {
			v := float64(out.At(n, c))
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax out of (0,1): %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row sums to %v", sum)
		}
	}
	// Partial region equals the same slice of the full computation.
	part := NewTensor(2, 4)
	SoftmaxLinear(part, in, w, b, reg(tensor.Interval{Lo: 0, Hi: 2}, tensor.Interval{Lo: 1, Hi: 3}))
	for n := 0; n < 2; n++ {
		for c := 1; c < 3; c++ {
			if part.At(n, c) != out.At(n, c) {
				t.Fatal("channel-partitioned softmax diverges")
			}
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	ids := NewTensor(1, 2)
	ids.Data = []float32{1, 0}
	table := NewTensor(3, 2)
	table.Data = []float32{10, 11, 20, 21, 30, 31}
	out := NewTensor(1, 2, 2)
	Embedding(out, ids, table, out2DRegion(out))
	if out.At(0, 0, 0) != 20 || out.At(0, 1, 1) != 11 {
		t.Fatalf("embedding = %v", out.Data)
	}
	// Out-of-range ids clamp to row 0.
	ids.Data[0] = 99
	Embedding(out, ids, table, out2DRegion(out))
	if out.At(0, 0, 0) != 10 {
		t.Fatal("oob id not clamped")
	}
}

func TestRecurrentCell(t *testing.T) {
	x := NewTensor(1, 2)
	x.Data = []float32{1, -1}
	wx := NewTensor(2, 1)
	wx.Data = []float32{0.5, 0.25}
	wh := NewTensor(1, 1)
	wh.Data = []float32{0.5}
	b := NewTensor(1)
	out := NewTensor(1, 1)
	// No previous state: tanh(0.5 - 0.25) = tanh(0.25).
	RecurrentCell(out, x, nil, wx, wh, b, out2DRegion(out), 0)
	want := float32(math.Tanh(0.25))
	if out.Data[0] != want {
		t.Fatalf("cell = %v, want %v", out.Data[0], want)
	}
	// With previous state h=1: tanh(0.25 + 0.5).
	prev := NewTensor(1, 1)
	prev.Data[0] = 1
	RecurrentCell(out, x, prev, wx, wh, b, out2DRegion(out), 0)
	want = float32(math.Tanh(0.75))
	if out.Data[0] != want {
		t.Fatalf("cell with state = %v, want %v", out.Data[0], want)
	}
	// 3D sequence input selects the step slice.
	seq := NewTensor(1, 2, 2)
	seq.Data = []float32{9, 9, 1, -1} // step 1 == x
	RecurrentCell(out, seq, prev, wx, wh, b, out2DRegion(out), 1)
	if out.Data[0] != want {
		t.Fatalf("3D cell = %v, want %v", out.Data[0], want)
	}
}

func TestAttentionFocusesOnSimilarKey(t *testing.T) {
	// Memory has two entries; the query matches entry 1 strongly, so the
	// context should be dominated by it.
	q := NewTensor(1, 2)
	q.Data = []float32{5, 0}
	mem := NewTensor(1, 2, 2)
	mem.Data = []float32{0, 1, 1, 0} // entry0=(0,1), entry1=(1,0)
	wScore := NewTensor(2, 2)
	wScore.Data = []float32{1, 0, 0, 1} // identity
	wProj := NewTensor(2, 2)
	wProj.Data = []float32{1, 0, 0, 1}
	out := NewTensor(1, 2)
	Attention(out, q, mem, wScore, wProj, out2DRegion(out))
	// Context ~ entry1 = (1, 0); projected through identity, tanh.
	if out.At(0, 0) <= out.At(0, 1) {
		t.Fatalf("attention did not focus: %v", out.Data)
	}
}

func TestConcatChannelsAndStack(t *testing.T) {
	a := NewTensor(1, 1, 1, 1)
	a.Data[0] = 1
	b := NewTensor(1, 2, 1, 1)
	b.Data = []float32{2, 3}
	out := NewTensor(1, 3, 1, 1)
	ConcatChannels(out, []*Tensor{a, b}, out2DRegion(out))
	if out.Data[0] != 1 || out.Data[1] != 2 || out.Data[2] != 3 {
		t.Fatalf("concat = %v", out.Data)
	}

	s0 := NewTensor(1, 2)
	s0.Data = []float32{1, 2}
	s1 := NewTensor(1, 2)
	s1.Data = []float32{3, 4}
	st := NewTensor(1, 2, 2)
	Stack(st, []*Tensor{s0, s1}, out2DRegion(st))
	if st.At(0, 1, 0) != 3 || st.At(0, 0, 1) != 2 {
		t.Fatalf("stack = %v", st.Data)
	}
}

func TestAddReLUFlatten(t *testing.T) {
	a := NewTensor(1, 1, 1, 2)
	a.Data = []float32{1, -4}
	b := NewTensor(1, 1, 1, 2)
	b.Data = []float32{2, 1}
	out := NewTensor(1, 1, 1, 2)
	Add(out, a, b, out2DRegion(out))
	if out.Data[0] != 3 || out.Data[1] != -3 {
		t.Fatalf("add = %v", out.Data)
	}
	r := NewTensor(1, 1, 1, 2)
	ReLU(r, out, out2DRegion(r))
	if r.Data[0] != 3 || r.Data[1] != 0 {
		t.Fatalf("relu = %v", r.Data)
	}
	fin := NewTensor(1, 2, 2, 2)
	for i := range fin.Data {
		fin.Data[i] = float32(i)
	}
	fout := NewTensor(1, 8)
	Flatten(fout, fin, out2DRegion(fout))
	for i := 0; i < 8; i++ {
		if fout.Data[i] != float32(i) {
			t.Fatalf("flatten = %v", fout.Data)
		}
	}
}

func TestRegionComputeMatchesFull(t *testing.T) {
	// Computing an output in two region halves equals computing it all
	// at once, for a conv with halo-requiring geometry.
	in := NewTensor(2, 3, 8, 8)
	in.PseudoRandomFill(1)
	w := NewTensor(4, 3, 3, 3)
	w.PseudoRandomFill(2)
	b := NewTensor(4)
	b.PseudoRandomFill(3)

	full := NewTensor(2, 4, 8, 8)
	Conv2D(full, in, w, b, out2DRegion(full), 1, 1, 1, 1)

	parts := NewTensor(2, 4, 8, 8)
	top := reg(tensor.Interval{Lo: 0, Hi: 2}, tensor.Interval{Lo: 0, Hi: 4}, tensor.Interval{Lo: 0, Hi: 4}, tensor.Interval{Lo: 0, Hi: 8})
	bot := reg(tensor.Interval{Lo: 0, Hi: 2}, tensor.Interval{Lo: 0, Hi: 4}, tensor.Interval{Lo: 4, Hi: 8}, tensor.Interval{Lo: 0, Hi: 8})
	Conv2D(parts, in, w, b, top, 1, 1, 1, 1)
	Conv2D(parts, in, w, b, bot, 1, 1, 1, 1)
	if !parts.Equal(full, 0) {
		t.Fatal("region-wise conv differs from full conv")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewTensor(3)
	b := NewTensor(3)
	b.Data[1] = 0.5
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}
