package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"flexflow"
)

// The optimize wire format. Exactly one graph source (model or graph)
// and one topology source (cluster, gpus or topology) must be set; the
// inline graph/topology payloads are the formats of
// flexflow.ExportGraph and ExportTopology. See docs/SERVER.md.

// optimizeRequest is the POST /v1/optimize body.
type optimizeRequest struct {
	// Graph source: a model-zoo name (with an optional down-scale
	// factor; 0 builds the paper-scale instance) or an inline graph.
	Model string          `json:"model,omitempty"`
	Scale int             `json:"scale,omitempty"`
	Graph json.RawMessage `json:"graph,omitempty"`

	// Topology source: a built-in cluster ("p100" or "k80") with a node
	// count, a single-node GPU count (with an optional device model,
	// default "P100"), or an inline topology.
	Cluster  string          `json:"cluster,omitempty"`
	Nodes    int             `json:"nodes,omitempty"`
	GPUs     int             `json:"gpus,omitempty"`
	GPUModel string          `json:"gpu_model,omitempty"`
	Topology json.RawMessage `json:"topology,omitempty"`

	// Algorithm is the optimizer registry name (default "mcmc").
	Algorithm string `json:"algorithm,omitempty"`
	// Options tune the search; zero values mean the library defaults.
	Options requestOptions `json:"options"`
	// Initial, when present, seeds the search with a strategy in the
	// ExportStrategy format (validated against the request's graph and
	// topology).
	Initial json.RawMessage `json:"initial,omitempty"`
	// NoCache forces a fresh search: the cache is neither consulted nor
	// coalesced onto, though the fresh result still refreshes it.
	NoCache bool `json:"no_cache,omitempty"`
}

// requestOptions is the wire shape of flexflow.OptimizeOptions plus
// the per-request wall-clock deadline. Durations travel as integer
// milliseconds.
type requestOptions struct {
	MaxIters           int     `json:"max_iters,omitempty"`
	BudgetMS           int64   `json:"budget_ms,omitempty"`
	Beta               float64 `json:"beta,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
	IncludeExpert      bool    `json:"include_expert,omitempty"`
	Workers            int     `json:"workers,omitempty"`
	MaxDegree          int     `json:"max_degree,omitempty"`
	MaxCandidatesPerOp int     `json:"max_candidates_per_op,omitempty"`
	FullSim            bool    `json:"full_sim,omitempty"`
	Locality           string  `json:"locality,omitempty"`
	TimeoutMS          int64   `json:"timeout_ms,omitempty"`
}

// optimizeResponse is the POST /v1/optimize result body (and the SSE
// "result" event payload).
type optimizeResponse struct {
	// Algorithm echoes the optimizer that produced the strategy.
	Algorithm string `json:"algorithm"`
	// Fingerprint is the request's content-addressed cache key (empty
	// when the request was uncacheable).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached reports the strategy was answered from the cache without
	// running a search; Coalesced that this request shared an identical
	// already-running search instead of starting its own.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// TimedOut marks a best-so-far strategy cut short by the request
	// deadline (never cached).
	TimedOut bool `json:"timed_out,omitempty"`
	// BestCostNS is the simulated per-iteration time of the strategy.
	BestCostNS int64 `json:"best_cost_ns"`
	// Iters and SearchTimeNS report the work the search did.
	Iters        int   `json:"iters"`
	SearchTimeNS int64 `json:"search_time_ns"`
	// Strategy is the winning strategy in the ExportStrategy format.
	Strategy json.RawMessage `json:"strategy"`
}

// request is a decoded, validated optimize request.
type request struct {
	wire      optimizeRequest
	prob      flexflow.Problem
	algorithm string
	opts      flexflow.OptimizeOptions
	timeout   time.Duration
}

// maxRequestBytes bounds an optimize request body; inline graphs for
// the zoo's largest models are well under this.
const maxRequestBytes = 16 << 20

// decodeRequest parses and validates the POST /v1/optimize body into a
// runnable request. All errors are client errors (400).
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*request, error) {
	var wire optimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}

	g, err := buildGraph(&wire)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopology(&wire)
	if err != nil {
		return nil, err
	}

	algorithm := wire.Algorithm
	if algorithm == "" {
		algorithm = "mcmc"
	}
	if _, err := flexflow.GetOptimizer(algorithm); err != nil {
		return nil, err
	}

	o := wire.Options
	opts := flexflow.OptimizeOptions{
		MaxIters:           o.MaxIters,
		Budget:             time.Duration(o.BudgetMS) * time.Millisecond,
		Beta:               o.Beta,
		Seed:               o.Seed,
		IncludeExpert:      o.IncludeExpert,
		Workers:            o.Workers,
		MaxDegree:          o.MaxDegree,
		MaxCandidatesPerOp: o.MaxCandidatesPerOp,
		FullSim:            o.FullSim,
		Locality:           o.Locality,
	}
	// Locality is result-affecting (it participates in the fingerprint
	// and so in the cache key); resolve the server default for unset
	// requests and reject unknown policies here as a 400 rather than
	// failing the search after admission.
	if opts.Locality == "" {
		opts.Locality = s.opts.DefaultLocality
	}
	if _, err := flexflow.ParseLocality(opts.Locality); err != nil {
		return nil, err
	}
	if len(wire.Initial) > 0 {
		initial, err := flexflow.ImportStrategy(wire.Initial, g, topo)
		if err != nil {
			return nil, fmt.Errorf("initial strategy: %w", err)
		}
		opts.Initial = initial
	}

	timeout := s.opts.DefaultTimeout
	if o.TimeoutMS > 0 {
		timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}

	return &request{
		wire:      wire,
		prob:      flexflow.Problem{Graph: g, Topology: topo},
		algorithm: algorithm,
		opts:      opts,
		timeout:   timeout,
	}, nil
}

// buildGraph resolves the request's graph source.
func buildGraph(wire *optimizeRequest) (*flexflow.Graph, error) {
	switch {
	case wire.Model != "" && len(wire.Graph) > 0:
		return nil, fmt.Errorf("request names both a model and an inline graph; pick one")
	case wire.Model != "":
		if wire.Scale < 0 {
			return nil, fmt.Errorf("scale must be >= 0, got %d", wire.Scale)
		}
		if wire.Scale > 0 {
			return flexflow.ModelScaled(wire.Model, wire.Scale)
		}
		return flexflow.Model(wire.Model)
	case len(wire.Graph) > 0:
		return flexflow.ImportGraph(wire.Graph)
	default:
		return nil, fmt.Errorf("request needs a graph: set model or graph")
	}
}

// buildTopology resolves the request's topology source.
func buildTopology(wire *optimizeRequest) (*flexflow.Topology, error) {
	sources := 0
	for _, set := range []bool{wire.Cluster != "", wire.GPUs > 0, len(wire.Topology) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("request needs exactly one topology source: cluster, gpus or topology")
	}
	switch {
	case wire.Cluster != "":
		nodes := wire.Nodes
		if nodes <= 0 {
			nodes = 1
		}
		switch wire.Cluster {
		case "p100":
			return flexflow.NewP100Cluster(nodes), nil
		case "k80":
			return flexflow.NewK80Cluster(nodes), nil
		default:
			return nil, fmt.Errorf("unknown cluster %q (have p100, k80)", wire.Cluster)
		}
	case wire.GPUs > 0:
		model := wire.GPUModel
		if model == "" {
			model = "P100"
		}
		return flexflow.NewSingleNode(wire.GPUs, model), nil
	default:
		return flexflow.ImportTopology(wire.Topology)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON {"error": ...} body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
