// Package server implements flexflowd, the strategy service: an HTTP
// front end over the optimizer registry that turns the library's
// Optimize call into a long-running daemon. A request names a problem
// (a model-zoo graph or an inline graph payload, a built-in cluster or
// an inline topology) and an algorithm; the server runs the search
// under a per-request deadline and a per-request share of the one
// process-wide worker pool, streams progress over SSE when asked, and
// fronts everything with a content-addressed strategy cache keyed by
// flexflow.Fingerprint — the repo's determinism contract
// (docs/CONCURRENCY.md) is what makes a cached strategy a faithful
// stand-in for a re-run. docs/SERVER.md documents the endpoints,
// payloads and knobs; cmd/flexflowd is the binary.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flexflow"
)

// Options configure a Server. The zero value serves with the defaults
// noted on each field.
type Options struct {
	// MaxInflight bounds concurrently running searches — the admission
	// control. Requests that would start a search beyond the bound are
	// rejected with 429 and a Retry-After header; cache hits and
	// requests coalesced onto an identical in-flight search are always
	// admitted (<= 0 means 4).
	MaxInflight int
	// DefaultTimeout is the search deadline applied when a request
	// does not name one via options.timeout_ms (0 means 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps the deadline a request may ask for (0 means
	// 10 minutes).
	MaxTimeout time.Duration
	// CacheSize bounds the strategy cache's entry count; least
	// recently used entries are evicted beyond it (0 means 256,
	// negative disables caching).
	CacheSize int
	// DefaultLocality is the MCMC proposal-locality policy applied to
	// requests whose options leave locality unset ("" keeps the library
	// default, uniform). The resolved policy participates in the
	// request fingerprint, so requests served under different defaults
	// never alias in the strategy cache. New validates it with
	// flexflow.ParseLocality.
	DefaultLocality string
}

// Server is the flexflowd HTTP service. Create one with New, mount it
// as an http.Handler, and call Drain on shutdown. Its endpoints:
//
//	POST /v1/optimize   run (or answer from cache) one optimize request
//	GET  /v1/optimizers list the registered algorithm names
//	GET  /healthz       readiness (503 while draining)
//	GET  /metrics       plaintext counters (flexflowd_* )
type Server struct {
	opts Options
	mux  *http.ServeMux
	sem  chan struct{}

	draining atomic.Bool
	wg       sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job   // coalescable in-flight searches, by fingerprint
	running map[*job]struct{} // every in-flight search, for Drain cancellation
	cache   *lruCache

	met metrics
}

// New builds a Server with the given options.
func New(opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = time.Minute
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 10 * time.Minute
	}
	if _, err := flexflow.ParseLocality(opts.DefaultLocality); err != nil {
		panic("server: Options.DefaultLocality: " + err.Error())
	}
	size := opts.CacheSize
	if size == 0 {
		size = 256
	}
	s := &Server{
		opts:    opts,
		sem:     make(chan struct{}, opts.MaxInflight),
		jobs:    map[string]*job{},
		running: map[*job]struct{}{},
	}
	if size > 0 {
		s.cache = newLRUCache(size)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /v1/optimizers", s.handleOptimizers)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting new optimize requests (they get 503, and
// /healthz flips to 503 so load balancers rotate the instance out) and
// waits for in-flight searches to finish. If ctx expires first the
// remaining searches are cancelled — they return their best-so-far
// promptly per the Optimizer contract — and Drain returns ctx.Err()
// after they unwind.
func (s *Server) Drain(ctx context.Context) error {
	// Flag under mu: startJob registers (and wg.Add's) under the same
	// lock, so once the flag is visible no new search can join the
	// WaitGroup and Wait below races with nothing.
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for j := range s.running {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// job is one running search: the single flight every identical request
// coalesces onto. Waiters select on done and then read res/status/err;
// SSE waiters additionally subscribe to the progress fan-out.
type job struct {
	cancel context.CancelFunc
	done   chan struct{}

	// Written once by the runner before done closes.
	res    *optimizeResponse
	status int
	err    error

	mu   sync.Mutex
	subs []chan flexflow.ProgressEvent
}

// subscribe registers a progress listener. The channel is buffered and
// sends are dropped when it is full: progress is a lossy sample; the
// terminal result event is the authoritative outcome.
func (j *job) subscribe() chan flexflow.ProgressEvent {
	ch := make(chan flexflow.ProgressEvent, 64)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return ch
}

// publish fans one optimizer progress event out to every subscriber.
// It is the job's OptimizeOptions.OnEvent callback, so it must be safe
// for concurrent use and must not block — both hold.
func (j *job) publish(ev flexflow.ProgressEvent) {
	j.mu.Lock()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// handleOptimize serves POST /v1/optimize: cache lookup, coalescing
// onto an identical in-flight search, admission control, then either a
// plain JSON response or an SSE stream depending on the Accept header.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	req, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	stream := wantsSSE(r)

	fp, fpErr := flexflow.Fingerprint(req.prob, req.algorithm, req.opts)
	// An uncacheable request (fpErr != nil — e.g. a budget priced by an
	// opaque process-wide CostModel) still runs; it just cannot be
	// answered from or stored into the cache, nor coalesced.
	if fpErr == nil && s.cache != nil && !req.wire.NoCache {
		if resp, ok := s.cache.get(fp); ok {
			s.met.cacheHits.Add(1)
			resp.Cached = true
			if stream {
				streamResult(w, resp)
			} else {
				writeJSON(w, http.StatusOK, resp)
			}
			return
		}
		s.met.cacheMisses.Add(1)
	}

	var j *job
	coalesced := false
	if fpErr == nil && !req.wire.NoCache {
		s.mu.Lock()
		j, coalesced = s.jobs[fp], s.jobs[fp] != nil
		s.mu.Unlock()
	}
	if j == nil {
		select {
		case s.sem <- struct{}{}:
		default:
			s.met.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "optimizer at capacity; retry later")
			return
		}
		j = s.startJob(fp, fpErr == nil && !req.wire.NoCache, fpErr == nil, req)
		if j == nil {
			// Drain won the race after the entry check: give the slot
			// back and bounce.
			<-s.sem
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
	}

	if stream {
		s.streamJob(w, r, j, coalesced)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away. The search keeps running: it still
		// populates the cache and answers any coalesced waiters.
		return
	}
	if j.err != nil {
		writeError(w, j.status, j.err.Error())
		return
	}
	resp := *j.res
	resp.Coalesced = coalesced
	writeJSON(w, http.StatusOK, resp)
}

// startJob launches one search on its own goroutine, detached from any
// single client connection: its lifetime is the per-request deadline,
// not the socket, so a disconnecting leader neither kills coalesced
// waiters nor wastes the nearly-finished result. The caller has
// already acquired an admission slot. Returns nil if Drain raced the
// caller's entry check — registration and wg.Add happen under mu, the
// same lock Drain flags under, so Drain's Wait can never miss a job.
func (s *Server) startJob(fp string, dedup, store bool, req *request) *job {
	ctx, cancel := context.WithTimeout(context.Background(), req.timeout)
	j := &job{cancel: cancel, done: make(chan struct{})}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		cancel()
		return nil
	}
	if dedup {
		s.jobs[fp] = j
	}
	s.running[j] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()

	opts := req.opts
	opts.OnEvent = j.publish

	s.met.jobsTotal.Add(1)
	s.met.inflight.Add(1)
	go func() {
		j.res, j.status, j.err = s.run(ctx, fp, store, req.prob, req.algorithm, opts)
		cancel()
		s.mu.Lock()
		if dedup {
			delete(s.jobs, fp)
		}
		delete(s.running, j)
		s.mu.Unlock()
		<-s.sem
		s.met.inflight.Add(-1)
		s.wg.Done()
		close(j.done)
	}()
	return j
}

// run executes one search and shapes its outcome: a complete result is
// stored in the cache (when store is set); a deadline-cut result is
// returned with timed_out set but never cached, because a wall-clock
// truncation is not the deterministic full-search answer the
// fingerprint promises.
func (s *Server) run(ctx context.Context, fp string, store bool, prob flexflow.Problem, algorithm string, opts flexflow.OptimizeOptions) (*optimizeResponse, int, error) {
	opt, err := flexflow.GetOptimizer(algorithm)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	res, err := opt.Optimize(ctx, prob, opts)
	s.met.proposals.Add(int64(res.Iters))
	s.met.searchNS.Add(int64(res.SearchTime))
	if res.Best == nil {
		if err == nil {
			err = fmt.Errorf("optimizer %q produced no strategy", algorithm)
		}
		status := http.StatusInternalServerError
		if ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		return nil, status, err
	}
	sdata, serr := flexflow.ExportStrategy(prob.Graph, res.Best)
	if serr != nil {
		return nil, http.StatusInternalServerError, serr
	}
	resp := &optimizeResponse{
		Algorithm:    res.Algorithm,
		Fingerprint:  fp,
		BestCostNS:   int64(res.BestCost),
		Iters:        res.Iters,
		SearchTimeNS: int64(res.SearchTime),
		Strategy:     sdata,
	}
	if err != nil {
		resp.TimedOut = true
		return resp, http.StatusOK, nil
	}
	if store && s.cache != nil {
		s.cache.put(fp, *resp)
	}
	return resp, http.StatusOK, nil
}

// handleOptimizers serves GET /v1/optimizers.
func (s *Server) handleOptimizers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"optimizers": flexflow.Optimizers()})
}

// handleHealth serves GET /healthz: 200 while serving, 503 once
// draining so load balancers stop routing here.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
