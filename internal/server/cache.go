package server

import (
	"container/list"
	"sync"
)

// lruCache is the strategy cache: fingerprint -> finished optimize
// response, bounded by entry count with least-recently-used eviction.
// Entries are small (a strategy JSON plus counters), so a count bound
// is an adequate proxy for memory. Only complete, deterministic
// results are stored (see Server.run), which is what entitles a hit to
// stand in for a re-run.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cache slot.
type lruEntry struct {
	key string
	val optimizeResponse
}

// newLRUCache builds a cache bounded to max entries (max >= 1).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached response for key and marks it recently used.
func (c *lruCache) get(key string) (optimizeResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return optimizeResponse{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores a response under key, evicting the least recently used
// entry beyond the bound.
func (c *lruCache) put(key string, val optimizeResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
