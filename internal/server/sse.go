package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"flexflow"
)

// Server-sent events: a POST /v1/optimize with `Accept:
// text/event-stream` answers with a stream of `progress` events (the
// optimizer's ProgressEvent samples, lossily sampled — slow readers
// drop intermediate events, never the outcome) terminated by exactly
// one `result` or `error` event.

// progressJSON is the SSE "progress" event payload.
type progressJSON struct {
	Algorithm  string `json:"algorithm"`
	Chain      int    `json:"chain"`
	Iter       int    `json:"iter"`
	BestCostNS int64  `json:"best_cost_ns"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	Final      bool   `json:"final"`
}

// wantsSSE reports whether the request asked for an event stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// writeEvent writes one SSE frame.
func writeEvent(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// sseHeaders switches the response into an event stream.
func sseHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
}

// streamResult answers an SSE request that needs no live search — a
// cache hit — with a single terminal result event.
func streamResult(w http.ResponseWriter, resp optimizeResponse) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotAcceptable, "response writer does not support streaming")
		return
	}
	sseHeaders(w)
	writeEvent(w, "result", resp)
	fl.Flush()
}

// streamJob follows a running search over SSE: progress events as they
// arrive, then the terminal result or error event when the job
// finishes. A disconnecting client stops the stream but not the
// search.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job, coalesced bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotAcceptable, "response writer does not support streaming")
		return
	}
	events := j.subscribe()
	sseHeaders(w)
	fl.Flush()
	for {
		select {
		case ev := <-events:
			writeEvent(w, "progress", toProgressJSON(ev))
			fl.Flush()
		case <-j.done:
			// Flush progress that raced with completion, then terminate.
			for drained := false; !drained; {
				select {
				case ev := <-events:
					writeEvent(w, "progress", toProgressJSON(ev))
				default:
					drained = true
				}
			}
			if j.err != nil {
				writeEvent(w, "error", map[string]string{"error": j.err.Error()})
			} else {
				resp := *j.res
				resp.Coalesced = coalesced
				writeEvent(w, "result", resp)
			}
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// toProgressJSON converts an optimizer event to its wire shape.
func toProgressJSON(ev flexflow.ProgressEvent) progressJSON {
	return progressJSON{
		Algorithm:  ev.Algorithm,
		Chain:      ev.Chain,
		Iter:       ev.Iter,
		BestCostNS: int64(ev.BestCost),
		ElapsedNS:  int64(ev.Elapsed),
		Final:      ev.Final,
	}
}
