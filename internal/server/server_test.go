package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flexflow"
)

// blockRelease gates the "blocktest" optimizer: it blocks until the
// channel closes (or its context expires), giving tests precise
// control over job lifetime. Each test that uses it installs a fresh
// channel before issuing requests.
var blockRelease chan struct{}

// blockingOptimizer is a test-only optimizer with controllable
// duration. It honors the Optimizer contract: on cancellation it
// returns promptly with a usable best-so-far strategy and ctx.Err().
type blockingOptimizer struct{}

func (blockingOptimizer) Name() string { return "blocktest" }

func (blockingOptimizer) Optimize(ctx context.Context, p flexflow.Problem, o flexflow.OptimizeOptions) (flexflow.Result, error) {
	select {
	case <-blockRelease:
	case <-ctx.Done():
	}
	return flexflow.Result{
		Algorithm:  "blocktest",
		Best:       flexflow.DataParallel(p.Graph, p.Topology),
		BestCost:   time.Millisecond,
		Iters:      1,
		SearchTime: time.Millisecond,
	}, ctx.Err()
}

func init() {
	flexflow.RegisterOptimizer("blocktest", func() flexflow.Optimizer { return blockingOptimizer{} })
}

// optBody builds a small real request: lenet/16 on 2 GPUs, few enough
// proposals to finish in well under a second.
func optBody(algorithm string, seed int64, extra string) string {
	return fmt.Sprintf(`{"model":"lenet","scale":16,"gpus":2,"algorithm":%q,
		"options":{"max_iters":60,"seed":%d,"timeout_ms":30000}%s}`, algorithm, seed, extra)
}

func postJSON(t *testing.T, ts *httptest.Server, body string) (*http.Response, optimizeResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out optimizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

// scrapeMetric reads one flexflowd_* counter off /metrics.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v float64
		if _, err := fmt.Sscanf(sc.Text(), name+" %g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// waitMetric polls a counter until it reaches want (tests that need to
// observe a job mid-flight before acting).
func waitMetric(t *testing.T, ts *httptest.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if scrapeMetric(t, ts, name) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %g", name, want)
}

// TestOptimizeCachesRepeat is the core cache contract: the first
// request runs a search, the identical repeat is answered from the
// cache — same strategy bytes, no second search.
func TestOptimizeCachesRepeat(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	resp, first := postJSON(t, ts, optBody("mcmc", 7, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.Cached || first.Fingerprint == "" || len(first.Strategy) == 0 {
		t.Fatalf("bad first response: cached=%v fp=%q strategy=%d bytes",
			first.Cached, first.Fingerprint, len(first.Strategy))
	}
	g, err := flexflow.ModelScaled("lenet", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flexflow.ImportStrategy(first.Strategy, g, flexflow.NewSingleNode(2, "P100")); err != nil {
		t.Fatalf("returned strategy does not validate: %v", err)
	}

	resp, second := postJSON(t, ts, optBody("mcmc", 7, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Fatal("identical repeat request was not answered from the cache")
	}
	if !bytes.Equal(first.Strategy, second.Strategy) || first.BestCostNS != second.BestCostNS {
		t.Fatal("cached response differs from the original")
	}
	if n := scrapeMetric(t, ts, "flexflowd_jobs_total"); n != 1 {
		t.Fatalf("repeat request re-ran the search: jobs_total = %g", n)
	}
	if h := scrapeMetric(t, ts, "flexflowd_cache_hits_total"); h != 1 {
		t.Fatalf("cache_hits_total = %g", h)
	}
	if e := scrapeMetric(t, ts, "flexflowd_cache_entries"); e != 1 {
		t.Fatalf("cache_entries = %g", e)
	}
	if p := scrapeMetric(t, ts, "flexflowd_proposals_total"); p <= 0 {
		t.Fatalf("proposals_total = %g", p)
	}
}

// TestOptimizeMatchesLibrary is the differential check: the served
// result must be bit-identical to calling the library directly with
// the same options — the determinism the cache is built on.
func TestOptimizeMatchesLibrary(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	resp, got := postJSON(t, ts, optBody("mcmc", 11, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	g, err := flexflow.ModelScaled("lenet", 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := flexflow.NewSingleNode(2, "P100")
	opt, err := flexflow.GetOptimizer("mcmc")
	if err != nil {
		t.Fatal(err)
	}
	want, err := opt.Optimize(context.Background(),
		flexflow.Problem{Graph: g, Topology: topo},
		flexflow.OptimizeOptions{MaxIters: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got.BestCostNS != int64(want.BestCost) {
		t.Fatalf("served best cost %d != library %d", got.BestCostNS, int64(want.BestCost))
	}
	wantStrategy, err := flexflow.ExportStrategy(g, want.Best)
	if err != nil {
		t.Fatal(err)
	}
	// The response encoder re-indents embedded JSON; compare compacted.
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, got.Strategy); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantC, wantStrategy); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
		t.Fatal("served strategy differs from the library's")
	}
}

// TestInlineGraphHitsModelCache asserts the cache is content-addressed,
// not request-shape-addressed: an inline graph+topology payload that
// describes the same problem as a model/gpus request must hit the
// entry the model request populated.
func TestInlineGraphHitsModelCache(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	resp, first := postJSON(t, ts, optBody("mcmc", 5, ""))
	if resp.StatusCode != http.StatusOK || first.Cached {
		t.Fatalf("priming request: status %d cached %v", resp.StatusCode, first.Cached)
	}

	g, err := flexflow.ModelScaled("lenet", 16)
	if err != nil {
		t.Fatal(err)
	}
	gdata, err := flexflow.ExportGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	tdata, err := flexflow.ExportTopology(flexflow.NewSingleNode(2, "P100"))
	if err != nil {
		t.Fatal(err)
	}
	inline := fmt.Sprintf(`{"graph":%s,"topology":%s,"algorithm":"mcmc",
		"options":{"max_iters":60,"seed":5,"timeout_ms":30000}}`, gdata, tdata)
	resp, second := postJSON(t, ts, inline)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline request: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Fatal("inline form of the same problem missed the cache")
	}
	if !bytes.Equal(first.Strategy, second.Strategy) {
		t.Fatal("inline form got a different strategy")
	}
}

// sseEvents posts an optimize request with Accept: text/event-stream
// and returns the parsed (event, data) frames.
func sseEvents(t *testing.T, ts *httptest.Server, body string) [][2]string {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events [][2]string
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, [2]string{event, strings.TrimPrefix(line, "data: ")})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestOptimizeSSE streams a search: at least one progress frame, then
// exactly one terminal result frame; the cached repeat streams a lone
// result frame with cached set.
func TestOptimizeSSE(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	events := sseEvents(t, ts, optBody("mcmc", 21, ""))
	var progress, results int
	var last optimizeResponse
	for _, ev := range events {
		switch ev[0] {
		case "progress":
			progress++
			var p progressJSON
			if err := json.Unmarshal([]byte(ev[1]), &p); err != nil {
				t.Fatalf("bad progress frame %q: %v", ev[1], err)
			}
			if p.Algorithm != "mcmc" {
				t.Fatalf("progress from %q", p.Algorithm)
			}
		case "result":
			results++
			if err := json.Unmarshal([]byte(ev[1]), &last); err != nil {
				t.Fatalf("bad result frame: %v", err)
			}
		default:
			t.Fatalf("unexpected event %q", ev[0])
		}
	}
	if progress == 0 || results != 1 {
		t.Fatalf("streamed %d progress / %d result frames", progress, results)
	}
	if last.Cached || len(last.Strategy) == 0 {
		t.Fatalf("bad streamed result: cached=%v strategy=%d bytes", last.Cached, len(last.Strategy))
	}

	events = sseEvents(t, ts, optBody("mcmc", 21, ""))
	if len(events) != 1 || events[0][0] != "result" {
		t.Fatalf("cached stream sent %d frames, first %q", len(events), events[0][0])
	}
	var cached optimizeResponse
	if err := json.Unmarshal([]byte(events[0][1]), &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("cached SSE repeat not marked cached")
	}
}

// TestConcurrentRequests serves distinct problems concurrently: all
// succeed, each search ran once, and every strategy validates.
func TestConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(New(Options{MaxInflight: 4}))
	defer ts.Close()

	const n = 4
	responses := make([]optimizeResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postJSON(t, ts, optBody("mcmc", int64(100+i), ""))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			responses[i] = out
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	g, err := flexflow.ModelScaled("lenet", 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := flexflow.NewSingleNode(2, "P100")
	seen := map[string]bool{}
	for i, out := range responses {
		if _, err := flexflow.ImportStrategy(out.Strategy, g, topo); err != nil {
			t.Errorf("request %d: invalid strategy: %v", i, err)
		}
		if seen[out.Fingerprint] {
			t.Errorf("request %d: duplicate fingerprint %s", i, out.Fingerprint)
		}
		seen[out.Fingerprint] = true
	}
	if n := scrapeMetric(t, ts, "flexflowd_jobs_total"); n != 4 {
		t.Fatalf("jobs_total = %g", n)
	}
}

// TestAdmissionControl fills the single inflight slot with a blocked
// search and asserts the next distinct request bounces with 429 and a
// Retry-After hint, then completes once the slot frees.
func TestAdmissionControl(t *testing.T) {
	blockRelease = make(chan struct{})
	ts := httptest.NewServer(New(Options{MaxInflight: 1}))
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, optBody("blocktest", 1, ""))
		first <- resp.StatusCode
	}()
	waitMetric(t, ts, "flexflowd_jobs_inflight", 1)

	resp, _ := postJSON(t, ts, optBody("blocktest", 2, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if n := scrapeMetric(t, ts, "flexflowd_jobs_rejected_total"); n != 1 {
		t.Fatalf("jobs_rejected_total = %g", n)
	}

	close(blockRelease)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("blocked request finished with %d", status)
	}
	resp, _ = postJSON(t, ts, optBody("blocktest", 2, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request got %d", resp.StatusCode)
	}
}

// TestCoalesce sends the same uncached request twice concurrently: one
// search runs, both callers get its result, the joiner marked
// coalesced.
func TestCoalesce(t *testing.T) {
	blockRelease = make(chan struct{})
	ts := httptest.NewServer(New(Options{MaxInflight: 2}))
	defer ts.Close()

	type reply struct {
		status int
		out    optimizeResponse
	}
	replies := make(chan reply, 2)
	post := func() {
		resp, out := postJSON(t, ts, optBody("blocktest", 3, ""))
		replies <- reply{resp.StatusCode, out}
	}
	go post()
	waitMetric(t, ts, "flexflowd_jobs_inflight", 1)
	go post()
	// The joiner must attach, not occupy the second slot.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && scrapeMetric(t, ts, "flexflowd_jobs_total") < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(blockRelease)

	coalesced := 0
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("reply %d: status %d", i, r.status)
		}
		if r.out.Coalesced {
			coalesced++
		}
	}
	if n := scrapeMetric(t, ts, "flexflowd_jobs_total"); n != 1 {
		t.Fatalf("identical concurrent requests ran %g searches", n)
	}
	if coalesced != 1 {
		t.Fatalf("%d replies marked coalesced, want 1", coalesced)
	}
}

// TestDeadline cuts a search off at its per-request deadline: the
// caller still gets the best-so-far strategy, marked timed_out, and
// the truncated result is never cached.
func TestDeadline(t *testing.T) {
	blockRelease = make(chan struct{}) // never released: only the deadline ends the search
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	body := `{"model":"lenet","scale":16,"gpus":2,"algorithm":"blocktest",
		"options":{"seed":4,"timeout_ms":100}}`
	start := time.Now()
	resp, out := postJSON(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bite: %v", elapsed)
	}
	if !out.TimedOut || len(out.Strategy) == 0 {
		t.Fatalf("timed-out search: timed_out=%v strategy=%d bytes", out.TimedOut, len(out.Strategy))
	}
	if n := scrapeMetric(t, ts, "flexflowd_cache_entries"); n != 0 {
		t.Fatalf("truncated result was cached: entries = %g", n)
	}
	resp, out = postJSON(t, ts, body)
	if resp.StatusCode != http.StatusOK || out.Cached {
		t.Fatalf("repeat of truncated request: status %d cached %v", resp.StatusCode, out.Cached)
	}
}

// TestDeadlineClamp asserts MaxTimeout bounds what a request may ask
// for: a blocked search requesting a long deadline ends at the clamp.
func TestDeadlineClamp(t *testing.T) {
	blockRelease = make(chan struct{})
	ts := httptest.NewServer(New(Options{MaxTimeout: 100 * time.Millisecond}))
	defer ts.Close()

	body := `{"model":"lenet","scale":16,"gpus":2,"algorithm":"blocktest",
		"options":{"seed":5,"timeout_ms":600000}}`
	start := time.Now()
	resp, out := postJSON(t, ts, body)
	if resp.StatusCode != http.StatusOK || !out.TimedOut {
		t.Fatalf("status %d timed_out %v", resp.StatusCode, out.TimedOut)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("MaxTimeout clamp did not bite: %v", elapsed)
	}
}

// TestDrain exercises graceful shutdown: draining rejects new work and
// flips /healthz, a patient drain waits for the running search, and an
// expiring drain cancels it — the client still gets a best-so-far.
func TestDrain(t *testing.T) {
	blockRelease = make(chan struct{}) // never released: drain must cancel
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan optimizeResponse, 1)
	go func() {
		_, out := postJSON(t, ts, optBody("blocktest", 6, ""))
		done <- out
	}()
	waitMetric(t, ts, "flexflowd_jobs_inflight", 1)

	drained := make(chan error, 1)
	dctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	go func() { drained <- srv.Drain(dctx) }()

	// Draining state is visible immediately.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postJSON(t, ts, optBody("mcmc", 6, ""))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("optimize during drain got %d, want 503", resp.StatusCode)
	}

	if err := <-drained; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
	out := <-done
	if !out.TimedOut || len(out.Strategy) == 0 {
		t.Fatalf("cancelled search's client got timed_out=%v strategy=%d bytes", out.TimedOut, len(out.Strategy))
	}
}

// TestNoCacheForcesRun asserts no_cache bypasses both lookup and
// coalescing but still refreshes the cache.
func TestNoCacheForcesRun(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	postJSON(t, ts, optBody("mcmc", 9, ""))
	resp, out := postJSON(t, ts, optBody("mcmc", 9, `,"no_cache":true`))
	if resp.StatusCode != http.StatusOK || out.Cached {
		t.Fatalf("no_cache repeat: status %d cached %v", resp.StatusCode, out.Cached)
	}
	if n := scrapeMetric(t, ts, "flexflowd_jobs_total"); n != 2 {
		t.Fatalf("no_cache did not force a re-run: jobs_total = %g", n)
	}
	if n := scrapeMetric(t, ts, "flexflowd_cache_entries"); n != 1 {
		t.Fatalf("cache_entries = %g", n)
	}
}

// TestBadRequests drives every request-validation path to a 400.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	cases := map[string]string{
		"empty":             `{}`,
		"bad json":          `{`,
		"unknown field":     `{"model":"lenet","gpus":2,"modle":"x"}`,
		"unknown model":     `{"model":"lenet-9000","gpus":2}`,
		"model and graph":   `{"model":"lenet","graph":{"name":"g","ops":[]},"gpus":2}`,
		"no topology":       `{"model":"lenet","scale":16}`,
		"two topologies":    `{"model":"lenet","scale":16,"gpus":2,"cluster":"p100"}`,
		"unknown cluster":   `{"model":"lenet","scale":16,"cluster":"dgx"}`,
		"unknown algorithm": `{"model":"lenet","scale":16,"gpus":2,"algorithm":"quantum"}`,
		"negative scale":    `{"model":"lenet","scale":-1,"gpus":2}`,
		"bad initial":       `{"model":"lenet","scale":16,"gpus":2,"initial":{"name":"other"}}`,
		"bad inline graph":  `{"graph":{"name":"g","ops":[{"name":"x","kind":"Warp"}]},"gpus":2}`,
	}
	for name, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var msg map[string]string
		json.NewDecoder(resp.Body).Decode(&msg)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, resp.StatusCode, msg)
		}
	}
}

// TestMetaEndpoints covers /healthz and /v1/optimizers.
func TestMetaEndpoints(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/optimizers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Optimizers []string `json:"optimizers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mcmc", "exhaustive", "optcnn", "reinforce", "polish"} {
		found := false
		for _, have := range out.Optimizers {
			if have == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("optimizer %q missing from %v", want, out.Optimizers)
		}
	}
}
