package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics are the server's counters, exposed as plaintext
// `flexflowd_<name> <value>` lines on GET /metrics (the Prometheus
// text exposition shape, hand-rolled to stay dependency-free).
type metrics struct {
	// inflight gauges searches currently running; jobsTotal counts
	// searches ever started (cache hits and coalesced requests start
	// none); rejected counts 429s from admission control.
	inflight  atomic.Int64
	jobsTotal atomic.Int64
	rejected  atomic.Int64
	// cacheHits / cacheMisses count cache lookups (requests with
	// no_cache, or uncacheable ones, perform no lookup).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// proposals and searchNS accumulate every finished search's work;
	// their ratio is the served proposal throughput.
	proposals atomic.Int64
	searchNS  atomic.Int64
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	entries := 0
	if s.cache != nil {
		entries = s.cache.len()
	}
	proposals := s.met.proposals.Load()
	searchSec := float64(s.met.searchNS.Load()) / 1e9
	perSec := 0.0
	if searchSec > 0 {
		perSec = float64(proposals) / searchSec
	}
	fmt.Fprintf(w, "flexflowd_jobs_inflight %d\n", s.met.inflight.Load())
	fmt.Fprintf(w, "flexflowd_jobs_total %d\n", s.met.jobsTotal.Load())
	fmt.Fprintf(w, "flexflowd_jobs_rejected_total %d\n", s.met.rejected.Load())
	fmt.Fprintf(w, "flexflowd_cache_hits_total %d\n", s.met.cacheHits.Load())
	fmt.Fprintf(w, "flexflowd_cache_misses_total %d\n", s.met.cacheMisses.Load())
	fmt.Fprintf(w, "flexflowd_cache_entries %d\n", entries)
	fmt.Fprintf(w, "flexflowd_proposals_total %d\n", proposals)
	fmt.Fprintf(w, "flexflowd_proposals_per_sec %g\n", perSec)
}
