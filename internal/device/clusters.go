package device

import "time"

// Hardware constants for the two clusters in Figure 6 of the paper.
//
// The paper labels its fabrics "100 GB/s" and "56 GB/s"; the physical
// parts (EDR and FDR Infiniband) are 100 Gb/s and 56 Gb/s, so we use the
// byte-rate equivalents. Only the ratios between link classes matter for
// strategy selection, and those are preserved.
const (
	p100GFLOPS = 9300.0 // Tesla P100 peak fp32
	p100MemBW  = 732.0  // GB/s HBM2
	k80GFLOPS  = 2800.0 // one logical K80 GPU (half board) peak fp32
	k80MemBW   = 240.0  // GB/s GDDR5 per logical GPU

	nvlinkBW   = 18.0 // GB/s per direction (P100 NVLink 1.0)
	pcieBW     = 11.0 // GB/s effective PCI-e 3.0 x16
	pcieShared = 7.0  // GB/s effective when the switch is shared (K80 cluster)
	edrIBBW    = 12.0 // GB/s (100 Gb/s EDR Infiniband)
	fdrIBBW    = 6.8  // GB/s (56 Gb/s FDR Infiniband)

	nvlinkLat = 2 * time.Microsecond
	pcieLat   = 5 * time.Microsecond
	ibLat     = 15 * time.Microsecond
)

// NewP100Cluster reproduces the first cluster of Figure 6: nodes compute
// nodes, each with four P100 GPUs pairwise connected by NVLink on the
// same node, a host CPU, and 100 Gb/s EDR Infiniband between nodes.
func NewP100Cluster(nodes int) *Topology {
	t := NewTopology("p100-cluster")
	cpus := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		gpus := make([]int, 4)
		for g := 0; g < 4; g++ {
			gpus[g] = t.AddDevice(Device{
				Kind: GPU, Name: deviceName("p100", n, g), Node: n,
				Model: "P100", PeakGFLOPS: p100GFLOPS, MemBWGBs: p100MemBW, MemGB: 16,
			})
		}
		cpus[n] = t.AddDevice(Device{
			Kind: CPU, Name: deviceName("cpu", n, 0), Node: n,
			Model: "E5-2600", PeakGFLOPS: 600, MemBWGBs: 75,
		})
		// NVLink mesh between the four GPUs of a node.
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				t.AddLink(NVLink, gpus[i], gpus[j], nvlinkBW, nvlinkLat)
			}
		}
		// Each GPU also hangs off the host CPU via PCI-e.
		for i := 0; i < 4; i++ {
			t.AddLink(PCIe, gpus[i], cpus[n], pcieBW, pcieLat)
		}
	}
	// EDR Infiniband between node CPUs (NIC attached to the host).
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			t.AddLink(Infiniband, cpus[a], cpus[b], edrIBBW, ibLat)
		}
	}
	return t
}

// NewK80Cluster reproduces the second cluster of Figure 6: nodes compute
// nodes with four K80 GPUs each. Adjacent GPU pairs (0,1) and (2,3)
// share a dedicated PCI-e switch; all four reach the host CPU through a
// shared (slower) PCI-e switch; nodes connect over 56 Gb/s Infiniband.
// The asymmetry between adjacent and non-adjacent GPUs is what drives
// the placement observation in Section 8.5.
func NewK80Cluster(nodes int) *Topology {
	t := NewTopology("k80-cluster")
	cpus := make([]int, nodes)
	for n := 0; n < nodes; n++ {
		gpus := make([]int, 4)
		for g := 0; g < 4; g++ {
			gpus[g] = t.AddDevice(Device{
				Kind: GPU, Name: deviceName("k80", n, g), Node: n,
				Model: "K80", PeakGFLOPS: k80GFLOPS, MemBWGBs: k80MemBW, MemGB: 12,
			})
		}
		cpus[n] = t.AddDevice(Device{
			Kind: CPU, Name: deviceName("cpu", n, 0), Node: n,
			Model: "E5-2680", PeakGFLOPS: 600, MemBWGBs: 75,
		})
		// Dedicated switch between adjacent GPU pairs.
		t.AddLink(PCIe, gpus[0], gpus[1], pcieBW, pcieLat)
		t.AddLink(PCIe, gpus[2], gpus[3], pcieBW, pcieLat)
		// Shared switch to the host: slower effective bandwidth.
		for i := 0; i < 4; i++ {
			t.AddLink(PCIe, gpus[i], cpus[n], pcieShared, pcieLat)
		}
	}
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			t.AddLink(Infiniband, cpus[a], cpus[b], fdrIBBW, ibLat)
		}
	}
	return t
}

// NewSingleNode builds a single compute node with the given number of
// GPUs of the given model, NVLink-connected, for small experiments.
func NewSingleNode(gpus int, model string) *Topology {
	t := NewTopology("single-node")
	gflops, membw, memGB := p100GFLOPS, p100MemBW, 16.0
	if model == "K80" {
		gflops, membw, memGB = k80GFLOPS, k80MemBW, 12.0
	}
	ids := make([]int, gpus)
	for g := 0; g < gpus; g++ {
		ids[g] = t.AddDevice(Device{
			Kind: GPU, Name: deviceName(model, 0, g), Node: 0,
			Model: model, PeakGFLOPS: gflops, MemBWGBs: membw, MemGB: memGB,
		})
	}
	cpu := t.AddDevice(Device{
		Kind: CPU, Name: "cpu0", Node: 0,
		Model: "host", PeakGFLOPS: 600, MemBWGBs: 75,
	})
	for i := 0; i < gpus; i++ {
		for j := i + 1; j < gpus; j++ {
			t.AddLink(NVLink, ids[i], ids[j], nvlinkBW, nvlinkLat)
		}
		t.AddLink(PCIe, ids[i], cpu, pcieBW, pcieLat)
	}
	return t
}

// ClusterFor returns the paper's evaluation topology containing at least
// numGPUs GPUs of the given model ("P100" or "K80"), sized like the
// experiments in Figure 7 (powers of two, 4 GPUs per node beyond one
// node).
func ClusterFor(model string, numGPUs int) *Topology {
	nodes := (numGPUs + 3) / 4
	if nodes < 1 {
		nodes = 1
	}
	if numGPUs <= 4 {
		return NewSingleNode(numGPUs, model)
	}
	if model == "K80" {
		return NewK80Cluster(nodes)
	}
	return NewP100Cluster(nodes)
}

func deviceName(prefix string, node, idx int) string {
	const digits = "0123456789"
	buf := []byte(prefix + "-n")
	buf = appendInt(buf, node)
	buf = append(buf, "-g"...)
	buf = appendInt(buf, idx)
	_ = digits
	return string(buf)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}
