package device

import (
	"testing"
	"time"
)

func TestKindAndLinkClassString(t *testing.T) {
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind.String mismatch")
	}
	for c, want := range map[LinkClass]string{NVLink: "NVLink", PCIe: "PCI-e", Infiniband: "Infiniband", Loopback: "Loopback"} {
		if c.String() != want {
			t.Fatalf("LinkClass %d = %q, want %q", c, c.String(), want)
		}
	}
	if LinkClass(9).String() != "LinkClass(9)" {
		t.Fatal("unknown LinkClass.String mismatch")
	}
}

func TestAddDeviceAndLink(t *testing.T) {
	topo := NewTopology("test")
	a := topo.AddDevice(Device{Kind: GPU, Name: "g0", Model: "P100", PeakGFLOPS: 9300})
	b := topo.AddDevice(Device{Kind: GPU, Name: "g1", Model: "P100", PeakGFLOPS: 9300})
	if a != 0 || b != 1 {
		t.Fatalf("device IDs %d, %d", a, b)
	}
	id := topo.AddLink(NVLink, a, b, 18, 2*time.Microsecond)
	if id != 0 {
		t.Fatalf("link ID %d", id)
	}
	if topo.NumDevices() != 2 {
		t.Fatalf("NumDevices = %d", topo.NumDevices())
	}
	if got := topo.Device(1).Name; got != "g1" {
		t.Fatalf("Device(1).Name = %q", got)
	}
	l := topo.Links[0]
	if l.Name() != "NVLink(0<->1)" {
		t.Fatalf("link name %q", l.Name())
	}
}

func TestAddLinkPanicsOnUnknownDevice(t *testing.T) {
	topo := NewTopology("test")
	topo.AddDevice(Device{Kind: GPU})
	defer func() {
		if recover() == nil {
			t.Fatal("AddLink to unknown device did not panic")
		}
	}()
	topo.AddLink(NVLink, 0, 5, 18, 0)
}

func TestRouteDirectAndLoopback(t *testing.T) {
	topo := NewTopology("test")
	a := topo.AddDevice(Device{Kind: GPU})
	b := topo.AddDevice(Device{Kind: GPU})
	topo.AddLink(NVLink, a, b, 18, 2*time.Microsecond)

	p := topo.Route(a, b)
	if len(p.Links) != 1 || p.BWGBs != 18 {
		t.Fatalf("Route(a,b) = %+v", p)
	}
	self := topo.Route(a, a)
	if self.BottleneckLink != -1 || len(self.Links) != 0 {
		t.Fatalf("loopback path = %+v", self)
	}
	if self.TransferTime(1<<30) != 0 {
		// loopback bandwidth is effectively infinite and latency zero
		if self.TransferTime(1<<30) > time.Nanosecond {
			t.Fatalf("loopback transfer time = %v", self.TransferTime(1<<30))
		}
	}
}

func TestRoutePrefersHigherBandwidth(t *testing.T) {
	// a --(slow direct)-- b and a --fast-- c --fast-- b. The router
	// maximizes bottleneck bandwidth, so it should go through c.
	topo := NewTopology("test")
	a := topo.AddDevice(Device{Kind: GPU})
	b := topo.AddDevice(Device{Kind: GPU})
	c := topo.AddDevice(Device{Kind: CPU})
	topo.AddLink(PCIe, a, b, 2, time.Microsecond)
	topo.AddLink(NVLink, a, c, 20, time.Microsecond)
	topo.AddLink(NVLink, c, b, 20, time.Microsecond)

	p := topo.Route(a, b)
	if p.BWGBs != 20 || len(p.Links) != 2 {
		t.Fatalf("Route = %+v, want 2-hop 20 GB/s", p)
	}
	if p.Latency != 2*time.Microsecond {
		t.Fatalf("Latency = %v", p.Latency)
	}
}

func TestTransferTime(t *testing.T) {
	p := Path{BWGBs: 10, Latency: time.Microsecond}
	// 10 GB at 10 GB/s = 1 s + 1 µs.
	got := p.TransferTime(10 * 1e9)
	want := time.Second + time.Microsecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	zero := Path{BWGBs: 0, Latency: time.Millisecond}
	if zero.TransferTime(123) != time.Millisecond {
		t.Fatal("zero-bandwidth path should cost its latency")
	}
}

func TestP100ClusterShape(t *testing.T) {
	topo := NewP100Cluster(4)
	if got := len(topo.GPUs()); got != 16 {
		t.Fatalf("P100 cluster GPUs = %d, want 16", got)
	}
	if topo.NumDevices() != 20 { // 16 GPUs + 4 CPUs
		t.Fatalf("NumDevices = %d, want 20", topo.NumDevices())
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Same-node GPUs route over NVLink directly.
	gpus := topo.GPUs()
	p := topo.Route(gpus[0], gpus[1])
	if len(p.Links) != 1 || topo.Links[p.Links[0]].Class != NVLink {
		t.Fatalf("same-node route = %+v", p)
	}
	// Cross-node routes traverse Infiniband and are slower than NVLink.
	cross := topo.Route(gpus[0], gpus[4])
	if cross.BWGBs >= nvlinkBW {
		t.Fatalf("cross-node bandwidth %g >= NVLink %g", cross.BWGBs, nvlinkBW)
	}
	hasIB := false
	for _, lid := range cross.Links {
		if topo.Links[lid].Class == Infiniband {
			hasIB = true
		}
	}
	if !hasIB {
		t.Fatalf("cross-node route has no Infiniband hop: %+v", cross)
	}
}

func TestK80ClusterAsymmetry(t *testing.T) {
	topo := NewK80Cluster(2)
	if got := len(topo.GPUs()); got != 8 {
		t.Fatalf("K80 cluster GPUs = %d, want 8", got)
	}
	gpus := topo.GPUs()
	adj := topo.Route(gpus[0], gpus[1])    // dedicated switch
	nonAdj := topo.Route(gpus[0], gpus[2]) // via shared switch / CPU
	if adj.BWGBs <= nonAdj.BWGBs {
		t.Fatalf("adjacent (%g GB/s) should beat non-adjacent (%g GB/s)", adj.BWGBs, nonAdj.BWGBs)
	}
}

func TestSingleNodeAndClusterFor(t *testing.T) {
	topo := NewSingleNode(4, "P100")
	if len(topo.GPUs()) != 4 {
		t.Fatalf("GPUs = %d", len(topo.GPUs()))
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	k80 := NewSingleNode(2, "K80")
	if k80.Device(0).Model != "K80" {
		t.Fatalf("model = %q", k80.Device(0).Model)
	}

	small := ClusterFor("P100", 2)
	if len(small.GPUs()) != 2 {
		t.Fatalf("ClusterFor(2) GPUs = %d", len(small.GPUs()))
	}
	big := ClusterFor("P100", 32)
	if len(big.GPUs()) != 32 {
		t.Fatalf("ClusterFor(32) GPUs = %d", len(big.GPUs()))
	}
	k := ClusterFor("K80", 64)
	if len(k.GPUs()) != 64 {
		t.Fatalf("ClusterFor K80 64 GPUs = %d", len(k.GPUs()))
	}
	if k.Name != "k80-cluster" {
		t.Fatalf("cluster name %q", k.Name)
	}
}

func TestValidateFailures(t *testing.T) {
	empty := NewTopology("empty")
	if err := empty.Validate(); err == nil {
		t.Fatal("empty topology should fail validation")
	}
	disc := NewTopology("disconnected")
	disc.AddDevice(Device{Kind: GPU})
	disc.AddDevice(Device{Kind: GPU})
	if err := disc.Validate(); err == nil {
		t.Fatal("disconnected topology should fail validation")
	}
}

func TestDeviceNames(t *testing.T) {
	topo := NewP100Cluster(3)
	seen := map[string]bool{}
	for _, d := range topo.Devices {
		if seen[d.Name] {
			t.Fatalf("duplicate device name %q", d.Name)
		}
		seen[d.Name] = true
	}
	if topo.Device(0).Name != "p100-n0-g0" {
		t.Fatalf("name = %q", topo.Device(0).Name)
	}
	// Multi-digit node indices must render correctly.
	big := NewK80Cluster(12)
	last := big.Device(big.NumDevices() - 1)
	if last.Name != "cpu-n11-g0" {
		t.Fatalf("name = %q", last.Name)
	}
}
