// Package device models the parallel machine: compute devices (GPUs,
// CPUs) connected by links (NVLink, PCI-e, Infiniband) into a device
// topology D = (D_N, D_E), as described in Section 3.1 of the paper.
// Each link carries a bandwidth and latency label; the task-graph builder
// treats every hardware connection as a communication device so that
// computation and communication can overlap (Section 5.1).
package device

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes compute device classes.
type Kind uint8

// The device classes of the paper's clusters.
const (
	GPU Kind = iota
	CPU
)

// String names the device class.
func (k Kind) String() string {
	switch k {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Device is a compute device in the topology.
type Device struct {
	ID   int
	Kind Kind
	Name string
	// Node is the index of the compute node (machine) hosting the device.
	Node int
	// Model identifies the hardware generation (e.g. "P100", "K80"); the
	// performance model keys its measurement cache on it.
	Model string
	// PeakGFLOPS is the peak single-precision throughput.
	PeakGFLOPS float64
	// MemBWGBs is the device memory bandwidth in GB/s.
	MemBWGBs float64
	// MemGB is the device memory capacity in GB (0 = unconstrained,
	// e.g. host CPUs in these experiments).
	MemGB float64
}

// LinkClass identifies a hardware connection class.
type LinkClass uint8

// The connection classes of the paper's clusters (Figure 6): NVLink
// and PCIe intra-node, Infiniband across nodes, Loopback for a device
// talking to itself.
const (
	NVLink LinkClass = iota
	PCIe
	Infiniband
	Loopback
)

// String names the connection class.
func (c LinkClass) String() string {
	switch c {
	case NVLink:
		return "NVLink"
	case PCIe:
		return "PCI-e"
	case Infiniband:
		return "Infiniband"
	case Loopback:
		return "Loopback"
	default:
		return fmt.Sprintf("LinkClass(%d)", uint8(c))
	}
}

// Link is a bidirectional hardware connection between two devices.
type Link struct {
	ID      int
	Class   LinkClass
	A, B    int // device IDs
	BWGBs   float64
	Latency time.Duration
}

// Name returns a human-readable label for the link.
func (l Link) Name() string {
	return fmt.Sprintf("%s(%d<->%d)", l.Class, l.A, l.B)
}

// Path is a routed connection between two devices: the sequence of links
// a transfer traverses, plus the effective (bottleneck) bandwidth and
// accumulated latency. A transfer of s bytes over the path takes
// s/Bandwidth + Latency (assumption A2 of the paper, with latency added
// so that small transfers are not free).
type Path struct {
	Links []int // link IDs, in traversal order
	// BottleneckLink is the link on which the transfer is scheduled; two
	// transfers whose paths share their bottleneck serialize there.
	BottleneckLink int
	BWGBs          float64
	Latency        time.Duration
}

// TransferTime returns the modelled time to move size bytes across the path.
func (p Path) TransferTime(size int64) time.Duration {
	if p.BWGBs <= 0 {
		return p.Latency
	}
	sec := float64(size) / (p.BWGBs * 1e9)
	return p.Latency + time.Duration(sec*float64(time.Second))
}

// Topology is the device graph.
type Topology struct {
	Name    string
	Devices []Device
	Links   []Link

	adj map[int][]int // device ID -> link IDs

	// paths caches the routed path for every ordered device pair
	// (computed lazily by Route); key = src*len(Devices)+dst. The
	// atomic flag plus mutex make the lazy build safe under the
	// concurrent search runtime, where many chains share one topology;
	// AddDevice/AddLink themselves are still single-goroutine only.
	paths []Path
	mu    sync.Mutex
	built atomic.Bool
}

// NewTopology creates an empty topology with the given name.
func NewTopology(name string) *Topology {
	return &Topology{Name: name, adj: make(map[int][]int)}
}

// AddDevice appends a device and returns its ID.
func (t *Topology) AddDevice(d Device) int {
	d.ID = len(t.Devices)
	t.Devices = append(t.Devices, d)
	t.built.Store(false)
	return d.ID
}

// AddLink connects devices a and b and returns the link ID.
func (t *Topology) AddLink(class LinkClass, a, b int, bwGBs float64, latency time.Duration) int {
	if a < 0 || a >= len(t.Devices) || b < 0 || b >= len(t.Devices) {
		panic(fmt.Sprintf("device: AddLink(%d, %d) references unknown device", a, b))
	}
	l := Link{ID: len(t.Links), Class: class, A: a, B: b, BWGBs: bwGBs, Latency: latency}
	t.Links = append(t.Links, l)
	t.adj[a] = append(t.adj[a], l.ID)
	t.adj[b] = append(t.adj[b], l.ID)
	t.built.Store(false)
	return l.ID
}

// NumDevices returns the number of compute devices.
func (t *Topology) NumDevices() int { return len(t.Devices) }

// GPUs returns the IDs of all GPU devices, in ID order.
func (t *Topology) GPUs() []int {
	var out []int
	for _, d := range t.Devices {
		if d.Kind == GPU {
			out = append(out, d.ID)
		}
	}
	return out
}

// Device returns the device with the given ID.
func (t *Topology) Device(id int) Device { return t.Devices[id] }

// buildRoutes computes, for every ordered pair of devices, the
// maximum-bottleneck-bandwidth path (ties broken by lower latency) using
// a Floyd–Warshall style relaxation. Topologies are small (tens of
// devices), so O(V^3) is immaterial.
func (t *Topology) buildRoutes() {
	n := len(t.Devices)
	t.paths = make([]Path, n*n)
	type cell struct {
		bw      float64
		lat     time.Duration
		links   []int
		reached bool
	}
	grid := make([]cell, n*n)
	at := func(i, j int) *cell { return &grid[i*n+j] }
	for i := 0; i < n; i++ {
		at(i, i).bw = 1e18 // same device: no transfer needed
		at(i, i).reached = true
	}
	for _, l := range t.Links {
		for _, pair := range [][2]int{{l.A, l.B}, {l.B, l.A}} {
			c := at(pair[0], pair[1])
			if !c.reached || l.BWGBs > c.bw || (l.BWGBs == c.bw && l.Latency < c.lat) {
				c.bw, c.lat, c.links, c.reached = l.BWGBs, l.Latency, []int{l.ID}, true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := at(i, k)
			if !ik.reached || i == k {
				continue
			}
			for j := 0; j < n; j++ {
				if j == k || i == j {
					continue
				}
				kj := at(k, j)
				if !kj.reached {
					continue
				}
				bw := ik.bw
				if kj.bw < bw {
					bw = kj.bw
				}
				lat := ik.lat + kj.lat
				c := at(i, j)
				if !c.reached || bw > c.bw || (bw == c.bw && lat < c.lat) {
					links := make([]int, 0, len(ik.links)+len(kj.links))
					links = append(links, ik.links...)
					links = append(links, kj.links...)
					c.bw, c.lat, c.links, c.reached = bw, lat, links, true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c := at(i, j)
			if i == j {
				t.paths[i*n+j] = Path{BWGBs: c.bw, BottleneckLink: -1}
				continue
			}
			if !c.reached {
				panic(fmt.Sprintf("device: topology %q is disconnected: no path %d -> %d", t.Name, i, j))
			}
			bottleneck := c.links[0]
			for _, lid := range c.links {
				if t.Links[lid].BWGBs < t.Links[bottleneck].BWGBs {
					bottleneck = lid
				}
			}
			t.paths[i*n+j] = Path{Links: c.links, BottleneckLink: bottleneck, BWGBs: c.bw, Latency: c.lat}
		}
	}
	t.built.Store(true)
}

// Route returns the routed path from device src to device dst. For
// src == dst it returns a zero-cost loopback path with BottleneckLink -1.
// Route is safe for concurrent use; the atomic publish of the route
// table makes its one-time lazy construction race-free even when the
// first queries come from parallel search chains.
func (t *Topology) Route(src, dst int) Path {
	if !t.built.Load() {
		t.mu.Lock()
		if !t.built.Load() {
			t.buildRoutes()
		}
		t.mu.Unlock()
	}
	return t.paths[src*len(t.Devices)+dst]
}

// Validate checks structural invariants (connectivity, positive
// bandwidths) and returns an error describing the first violation.
func (t *Topology) Validate() error {
	if len(t.Devices) == 0 {
		return fmt.Errorf("device: topology %q has no devices", t.Name)
	}
	for _, l := range t.Links {
		if l.BWGBs <= 0 {
			return fmt.Errorf("device: link %s has non-positive bandwidth %g", l.Name(), l.BWGBs)
		}
	}
	defer func() { recover() }()
	errCh := make(chan error, 1)
	func() {
		defer func() {
			if r := recover(); r != nil {
				errCh <- fmt.Errorf("%v", r)
			} else {
				errCh <- nil
			}
		}()
		t.buildRoutes()
	}()
	return <-errCh
}
