// Package tensor provides shapes, regions and partitioning math for the
// SOAP search space. A tensor shape is an ordered list of named
// dimensions, each classified as a Sample, Attribute or Parameter
// dimension (Section 4 of the paper). Parallelization configurations
// partition the output tensor of an operation into a grid of regions;
// this package owns all of the interval arithmetic that the task-graph
// builder and the numeric executor rely on.
package tensor

import (
	"fmt"
	"strings"
)

// ElemBytes is the size of one tensor element. The paper's workloads are
// float32 throughout.
const ElemBytes = 4

// DimKind classifies a dimension of an operation's output tensor for the
// purposes of parallelization (Table 1 of the paper).
type DimKind uint8

const (
	// Sample indexes independent training samples (the batch dimension).
	// Partitioning it is data parallelism.
	Sample DimKind = iota
	// Attribute indexes positions within a sample (length, height,
	// width). Partitioning it does not split model parameters but may
	// require halo exchanges.
	Attribute
	// Parameter marks dimensions whose partitioning splits the model
	// parameters (e.g. output channels of a convolution or the output
	// features of a matrix multiplication).
	Parameter
	// Unsplittable marks dimensions that must not be partitioned (e.g.
	// the reduction depth of an attention score, or dimensions the op's
	// kernel cannot tile).
	Unsplittable
)

// String names the dimension kind.
func (k DimKind) String() string {
	switch k {
	case Sample:
		return "sample"
	case Attribute:
		return "attribute"
	case Parameter:
		return "parameter"
	case Unsplittable:
		return "unsplittable"
	default:
		return fmt.Sprintf("DimKind(%d)", uint8(k))
	}
}

// Dim is one dimension of a shape.
type Dim struct {
	Name string
	Size int
	Kind DimKind
}

// Shape is an ordered list of dimensions.
type Shape struct {
	Dims []Dim
}

// MakeShape builds a shape from dims. It panics on non-positive sizes,
// which always indicate a programming error in a model builder.
func MakeShape(dims ...Dim) Shape {
	for _, d := range dims {
		if d.Size <= 0 {
			panic(fmt.Sprintf("tensor: dimension %q has non-positive size %d", d.Name, d.Size))
		}
	}
	return Shape{Dims: dims}
}

// D is shorthand for constructing a Dim.
func D(name string, size int, kind DimKind) Dim { return Dim{Name: name, Size: size, Kind: kind} }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s.Dims) }

// Volume returns the number of elements in the shape.
func (s Shape) Volume() int64 {
	v := int64(1)
	for _, d := range s.Dims {
		v *= int64(d.Size)
	}
	return v
}

// Bytes returns the storage size of the shape in bytes.
func (s Shape) Bytes() int64 { return s.Volume() * ElemBytes }

// Size returns the size of dimension i.
func (s Shape) Size(i int) int { return s.Dims[i].Size }

// Kind returns the classification of dimension i.
func (s Shape) Kind(i int) DimKind { return s.Dims[i].Kind }

// DimIndex returns the index of the dimension with the given name, or -1.
func (s Shape) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Sizes returns the sizes of all dimensions as a slice.
func (s Shape) Sizes() []int {
	out := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.Size
	}
	return out
}

// FullRegion returns the region covering the entire shape.
func (s Shape) FullRegion() Region {
	iv := make([]Interval, len(s.Dims))
	for i, d := range s.Dims {
		iv[i] = Interval{0, d.Size}
	}
	return Region{Iv: iv}
}

// ParallelizableDims returns the indices of dimensions that may be
// partitioned (everything except Unsplittable dims and size-1 dims).
func (s Shape) ParallelizableDims() []int {
	var out []int
	for i, d := range s.Dims {
		if d.Kind != Unsplittable && d.Size > 1 {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two shapes have identical dims.
func (s Shape) Equal(o Shape) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// String renders the shape as name=size pairs in dimension order.
func (s Shape) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = fmt.Sprintf("%s=%d", d.Name, d.Size)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Interval is a half-open index range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Len returns the number of indices in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Empty reports whether the interval contains no indices.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}
}

// Clamp restricts the interval to [0, size).
func (iv Interval) Clamp(size int) Interval {
	return iv.Intersect(Interval{0, size})
}

// String renders the interval in half-open notation.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// Region is a hyper-rectangular sub-tensor: one interval per dimension.
type Region struct {
	Iv []Interval
}

// Rank returns the number of dimensions of the region.
func (r Region) Rank() int { return len(r.Iv) }

// Volume returns the number of elements in the region.
func (r Region) Volume() int64 {
	if len(r.Iv) == 0 {
		return 0
	}
	v := int64(1)
	for _, iv := range r.Iv {
		n := iv.Len()
		if n <= 0 {
			return 0
		}
		v *= int64(n)
	}
	return v
}

// Bytes returns the storage size of the region in bytes.
func (r Region) Bytes() int64 { return r.Volume() * ElemBytes }

// Empty reports whether the region contains no elements.
func (r Region) Empty() bool { return r.Volume() == 0 }

// Intersect returns the element-wise intersection of two regions of the
// same rank. It panics on rank mismatch: regions from different tensor
// spaces must never be intersected.
func (r Region) Intersect(o Region) Region {
	if len(r.Iv) != len(o.Iv) {
		panic(fmt.Sprintf("tensor: intersecting regions of rank %d and %d", len(r.Iv), len(o.Iv)))
	}
	out := Region{Iv: make([]Interval, len(r.Iv))}
	for i := range r.Iv {
		out.Iv[i] = r.Iv[i].Intersect(o.Iv[i])
	}
	return out
}

// Overlaps reports whether two regions share at least one element.
func (r Region) Overlaps(o Region) bool { return !r.Intersect(o).Empty() }

// Contains reports whether o is entirely inside r.
func (r Region) Contains(o Region) bool {
	if len(r.Iv) != len(o.Iv) {
		return false
	}
	for i := range r.Iv {
		if o.Iv[i].Empty() {
			continue
		}
		if o.Iv[i].Lo < r.Iv[i].Lo || o.Iv[i].Hi > r.Iv[i].Hi {
			return false
		}
	}
	return true
}

// Equal reports whether two regions are identical.
func (r Region) Equal(o Region) bool {
	if len(r.Iv) != len(o.Iv) {
		return false
	}
	for i := range r.Iv {
		if r.Iv[i] != o.Iv[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the region.
func (r Region) Clone() Region {
	out := Region{Iv: make([]Interval, len(r.Iv))}
	copy(out.Iv, r.Iv)
	return out
}

// String renders the region as one half-open interval per dimension.
func (r Region) String() string {
	parts := make([]string, len(r.Iv))
	for i, iv := range r.Iv {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "x")
}

// SplitInterval splits [0,size) into deg balanced pieces and returns the
// k-th piece (0-based). Pieces differ in length by at most one, with the
// longer pieces first, matching the paper's "equal size partitions in
// each dimension to guarantee well-balanced workload distributions".
func SplitInterval(size, deg, k int) Interval {
	if deg <= 0 || k < 0 || k >= deg {
		panic(fmt.Sprintf("tensor: SplitInterval(size=%d, deg=%d, k=%d) out of range", size, deg, k))
	}
	q, rem := size/deg, size%deg
	var lo int
	if k < rem {
		lo = k * (q + 1)
	} else {
		lo = rem*(q+1) + (k-rem)*q
	}
	n := q
	if k < rem {
		n = q + 1
	}
	return Interval{lo, lo + n}
}

// GridVolume returns the product of the degrees.
func GridVolume(degrees []int) int {
	v := 1
	for _, d := range degrees {
		v *= d
	}
	return v
}

// GridRegion returns the region owned by the task at flat index k within
// the degree grid applied to shape (row-major order over the grid).
func GridRegion(s Shape, degrees []int, k int) Region {
	if len(degrees) != s.Rank() {
		panic(fmt.Sprintf("tensor: GridRegion degrees rank %d != shape rank %d", len(degrees), s.Rank()))
	}
	coords := GridCoords(degrees, k)
	r := Region{Iv: make([]Interval, s.Rank())}
	for i := range degrees {
		r.Iv[i] = SplitInterval(s.Size(i), degrees[i], coords[i])
	}
	return r
}

// GridCoords converts flat index k into per-dimension grid coordinates
// (row-major: the last dimension varies fastest).
func GridCoords(degrees []int, k int) []int {
	coords := make([]int, len(degrees))
	for i := len(degrees) - 1; i >= 0; i-- {
		coords[i] = k % degrees[i]
		k /= degrees[i]
	}
	if k != 0 {
		panic("tensor: GridCoords flat index out of range")
	}
	return coords
}

// GridIndex converts per-dimension grid coordinates into a flat index.
func GridIndex(degrees, coords []int) int {
	k := 0
	for i := range degrees {
		if coords[i] < 0 || coords[i] >= degrees[i] {
			panic("tensor: GridIndex coordinate out of range")
		}
		k = k*degrees[i] + coords[i]
	}
	return k
}

// Partition returns all grid regions for the degree grid, in flat order.
func Partition(s Shape, degrees []int) []Region {
	n := GridVolume(degrees)
	out := make([]Region, n)
	for k := 0; k < n; k++ {
		out[k] = GridRegion(s, degrees, k)
	}
	return out
}
