package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeShapeAndAccessors(t *testing.T) {
	s := MakeShape(D("sample", 64, Sample), D("channel", 256, Parameter), D("h", 28, Attribute), D("w", 28, Attribute))
	if got := s.Rank(); got != 4 {
		t.Fatalf("Rank = %d, want 4", got)
	}
	if got := s.Volume(); got != 64*256*28*28 {
		t.Fatalf("Volume = %d, want %d", got, 64*256*28*28)
	}
	if got := s.Bytes(); got != 64*256*28*28*4 {
		t.Fatalf("Bytes = %d, want %d", got, 64*256*28*28*4)
	}
	if got := s.DimIndex("h"); got != 2 {
		t.Fatalf("DimIndex(h) = %d, want 2", got)
	}
	if got := s.DimIndex("missing"); got != -1 {
		t.Fatalf("DimIndex(missing) = %d, want -1", got)
	}
	if got := s.Kind(1); got != Parameter {
		t.Fatalf("Kind(1) = %v, want Parameter", got)
	}
	if got := s.Size(3); got != 28 {
		t.Fatalf("Size(3) = %d, want 28", got)
	}
}

func TestMakeShapePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeShape with size 0 did not panic")
		}
	}()
	MakeShape(D("bad", 0, Sample))
}

func TestDimKindString(t *testing.T) {
	cases := map[DimKind]string{
		Sample: "sample", Attribute: "attribute", Parameter: "parameter",
		Unsplittable: "unsplittable", DimKind(99): "DimKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("DimKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestShapeString(t *testing.T) {
	s := MakeShape(D("sample", 2, Sample), D("c", 3, Parameter))
	if got := s.String(); got != "(sample=2, c=3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestShapeEqual(t *testing.T) {
	a := MakeShape(D("s", 2, Sample), D("c", 3, Parameter))
	b := MakeShape(D("s", 2, Sample), D("c", 3, Parameter))
	c := MakeShape(D("s", 2, Sample), D("c", 4, Parameter))
	d := MakeShape(D("s", 2, Sample))
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should not equal c")
	}
	if a.Equal(d) {
		t.Error("a should not equal d")
	}
}

func TestParallelizableDims(t *testing.T) {
	s := MakeShape(
		D("sample", 64, Sample),
		D("one", 1, Attribute),
		D("len", 40, Attribute),
		D("depth", 32, Unsplittable),
		D("channel", 512, Parameter),
	)
	got := s.ParallelizableDims()
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ParallelizableDims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParallelizableDims = %v, want %v", got, want)
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 10}
	if iv.Len() != 7 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if iv.Empty() {
		t.Fatal("non-empty interval reported Empty")
	}
	if !(Interval{5, 5}).Empty() {
		t.Fatal("empty interval not reported Empty")
	}
	got := iv.Intersect(Interval{8, 20})
	if got != (Interval{8, 10}) {
		t.Fatalf("Intersect = %v", got)
	}
	disjoint := iv.Intersect(Interval{20, 30})
	if !disjoint.Empty() {
		t.Fatalf("disjoint Intersect = %v, want empty", disjoint)
	}
	if got := iv.Clamp(5); got != (Interval{3, 5}) {
		t.Fatalf("Clamp = %v", got)
	}
	if s := iv.String(); s != "[3,10)" {
		t.Fatalf("String = %q", s)
	}
}

func TestRegionVolumeAndIntersect(t *testing.T) {
	a := Region{Iv: []Interval{{0, 4}, {0, 6}}}
	b := Region{Iv: []Interval{{2, 8}, {3, 9}}}
	if a.Volume() != 24 {
		t.Fatalf("Volume = %d", a.Volume())
	}
	if a.Bytes() != 96 {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
	x := a.Intersect(b)
	if x.Volume() != 2*3 {
		t.Fatalf("Intersect volume = %d, want 6", x.Volume())
	}
	if !a.Overlaps(b) {
		t.Fatal("a and b should overlap")
	}
	c := Region{Iv: []Interval{{4, 8}, {0, 6}}}
	if a.Overlaps(c) {
		t.Fatal("a and c should not overlap")
	}
	if (Region{}).Volume() != 0 {
		t.Fatal("rank-0 region should have volume 0")
	}
}

func TestRegionIntersectRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-mismatched Intersect did not panic")
		}
	}()
	a := Region{Iv: []Interval{{0, 4}}}
	b := Region{Iv: []Interval{{0, 4}, {0, 4}}}
	a.Intersect(b)
}

func TestRegionContainsEqualClone(t *testing.T) {
	outer := Region{Iv: []Interval{{0, 10}, {0, 10}}}
	inner := Region{Iv: []Interval{{2, 5}, {0, 10}}}
	if !outer.Contains(inner) {
		t.Fatal("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Fatal("inner should not contain outer")
	}
	if !outer.Contains(outer) {
		t.Fatal("region should contain itself")
	}
	if outer.Contains(Region{Iv: []Interval{{0, 10}}}) {
		t.Fatal("rank mismatch Contains should be false")
	}
	cl := inner.Clone()
	if !cl.Equal(inner) {
		t.Fatal("clone not equal")
	}
	cl.Iv[0] = Interval{0, 1}
	if cl.Equal(inner) {
		t.Fatal("mutating clone affected original comparison")
	}
	if inner.Equal(Region{Iv: []Interval{{2, 5}}}) {
		t.Fatal("rank mismatch Equal should be false")
	}
}

func TestRegionString(t *testing.T) {
	r := Region{Iv: []Interval{{0, 2}, {3, 7}}}
	if got := r.String(); got != "[0,2)x[3,7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSplitIntervalBalanced(t *testing.T) {
	// 10 split 3 ways: 4,3,3.
	want := []Interval{{0, 4}, {4, 7}, {7, 10}}
	for k, w := range want {
		if got := SplitInterval(10, 3, k); got != w {
			t.Fatalf("SplitInterval(10,3,%d) = %v, want %v", k, got, w)
		}
	}
	// Exact division.
	if got := SplitInterval(8, 4, 2); got != (Interval{4, 6}) {
		t.Fatalf("SplitInterval(8,4,2) = %v", got)
	}
	// Degree 1 is identity.
	if got := SplitInterval(5, 1, 0); got != (Interval{0, 5}) {
		t.Fatalf("SplitInterval(5,1,0) = %v", got)
	}
}

func TestSplitIntervalPanics(t *testing.T) {
	for _, c := range []struct{ size, deg, k int }{{10, 0, 0}, {10, 3, 3}, {10, 3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitInterval(%d,%d,%d) did not panic", c.size, c.deg, c.k)
				}
			}()
			SplitInterval(c.size, c.deg, c.k)
		}()
	}
}

// Property: splitting any size into any degree yields a disjoint exact
// cover with piece lengths differing by at most one.
func TestSplitIntervalCoverProperty(t *testing.T) {
	f := func(sizeRaw, degRaw uint16) bool {
		size := int(sizeRaw%5000) + 1
		deg := int(degRaw%64) + 1
		if deg > size {
			deg = size
		}
		prevHi := 0
		minLen, maxLen := size+1, 0
		for k := 0; k < deg; k++ {
			iv := SplitInterval(size, deg, k)
			if iv.Lo != prevHi {
				return false // gap or overlap
			}
			prevHi = iv.Hi
			if iv.Len() < minLen {
				minLen = iv.Len()
			}
			if iv.Len() > maxLen {
				maxLen = iv.Len()
			}
		}
		return prevHi == size && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	degrees := []int{2, 3, 4}
	for k := 0; k < 24; k++ {
		coords := GridCoords(degrees, k)
		if got := GridIndex(degrees, coords); got != k {
			t.Fatalf("round trip %d -> %v -> %d", k, coords, got)
		}
	}
}

func TestGridCoordsRowMajor(t *testing.T) {
	degrees := []int{2, 3}
	// Flat index 4 should be row 1, col 1 (last dim fastest).
	coords := GridCoords(degrees, 4)
	if coords[0] != 1 || coords[1] != 1 {
		t.Fatalf("GridCoords = %v, want [1 1]", coords)
	}
}

func TestGridPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GridCoords out of range did not panic")
			}
		}()
		GridCoords([]int{2, 2}, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GridIndex out of range did not panic")
			}
		}()
		GridIndex([]int{2, 2}, []int{2, 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GridRegion rank mismatch did not panic")
			}
		}()
		GridRegion(MakeShape(D("s", 4, Sample)), []int{2, 2}, 0)
	}()
}

// Property: Partition produces a disjoint cover of the full shape.
func TestPartitionDisjointCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rank := 1 + rng.Intn(4)
		dims := make([]Dim, rank)
		degrees := make([]int, rank)
		for i := range dims {
			size := 1 + rng.Intn(20)
			dims[i] = D("d", size, Sample)
			degrees[i] = 1 + rng.Intn(size)
		}
		s := MakeShape(dims...)
		regions := Partition(s, degrees)
		if len(regions) != GridVolume(degrees) {
			t.Fatalf("got %d regions, want %d", len(regions), GridVolume(degrees))
		}
		var total int64
		for i, a := range regions {
			if a.Empty() {
				t.Fatalf("trial %d: empty region %v (degrees %v, shape %v)", trial, a, degrees, s)
			}
			total += a.Volume()
			if !s.FullRegion().Contains(a) {
				t.Fatalf("region %v escapes shape %v", a, s)
			}
			for j := i + 1; j < len(regions); j++ {
				if a.Overlaps(regions[j]) {
					t.Fatalf("regions %d and %d overlap: %v vs %v", i, j, a, regions[j])
				}
			}
		}
		if total != s.Volume() {
			t.Fatalf("partition volumes sum to %d, want %d", total, s.Volume())
		}
	}
}

func TestGridVolume(t *testing.T) {
	if got := GridVolume([]int{2, 3, 4}); got != 24 {
		t.Fatalf("GridVolume = %d", got)
	}
	if got := GridVolume(nil); got != 1 {
		t.Fatalf("GridVolume(nil) = %d", got)
	}
}

func TestFullRegion(t *testing.T) {
	s := MakeShape(D("a", 3, Sample), D("b", 5, Parameter))
	r := s.FullRegion()
	if r.Volume() != s.Volume() {
		t.Fatalf("FullRegion volume = %d, want %d", r.Volume(), s.Volume())
	}
}
