// Package config defines parallelization configurations and strategies
// (Section 4 of the paper). A configuration c_i of operation o_i chooses
// a degree of parallelism for each parallelizable dimension of o_i's
// output tensor and assigns each resulting task to a device; a strategy
// S maps every operation to a configuration.
package config

import (
	"fmt"
	"sort"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Config is a parallelization configuration for one operation.
type Config struct {
	// Degrees holds the parallelism degree for every output dimension
	// (1 for unpartitioned dimensions). len(Degrees) == op.Out.Rank().
	Degrees []int
	// Devices assigns a device ID to each task, indexed by the flat grid
	// index (row-major over Degrees). len(Devices) == product(Degrees).
	Devices []int
}

// NumTasks returns |c|, the number of tasks the config creates.
func (c *Config) NumTasks() int { return tensor.GridVolume(c.Degrees) }

// Clone deep-copies the config.
func (c *Config) Clone() *Config {
	out := &Config{Degrees: make([]int, len(c.Degrees)), Devices: make([]int, len(c.Devices))}
	copy(out.Degrees, c.Degrees)
	copy(out.Devices, c.Devices)
	return out
}

// Equal reports whether two configs are identical.
func (c *Config) Equal(o *Config) bool {
	if o == nil || len(c.Degrees) != len(o.Degrees) || len(c.Devices) != len(o.Devices) {
		return false
	}
	for i := range c.Degrees {
		if c.Degrees[i] != o.Degrees[i] {
			return false
		}
	}
	for i := range c.Devices {
		if c.Devices[i] != o.Devices[i] {
			return false
		}
	}
	return true
}

// String renders the config as its degree vector and device list.
func (c *Config) String() string {
	return fmt.Sprintf("deg=%v dev=%v", c.Degrees, c.Devices)
}

// Validate checks the config against its op and topology.
func (c *Config) Validate(op *graph.Op, topo *device.Topology) error {
	if len(c.Degrees) != op.Out.Rank() {
		return fmt.Errorf("config: op %q degrees rank %d != output rank %d", op.Name, len(c.Degrees), op.Out.Rank())
	}
	for i, d := range c.Degrees {
		if d < 1 {
			return fmt.Errorf("config: op %q degree[%d] = %d", op.Name, i, d)
		}
		if d > op.Out.Size(i) {
			return fmt.Errorf("config: op %q degree[%d] = %d exceeds dim size %d", op.Name, i, d, op.Out.Size(i))
		}
		if d > 1 && op.Out.Kind(i) == tensor.Unsplittable {
			return fmt.Errorf("config: op %q partitions unsplittable dim %d", op.Name, i)
		}
	}
	if len(c.Devices) != c.NumTasks() {
		return fmt.Errorf("config: op %q has %d device assignments for %d tasks", op.Name, len(c.Devices), c.NumTasks())
	}
	for k, dev := range c.Devices {
		if dev < 0 || dev >= topo.NumDevices() {
			return fmt.Errorf("config: op %q task %d assigned to unknown device %d", op.Name, k, dev)
		}
	}
	return nil
}

// Strategy is a parallelization strategy: one config per op, indexed by
// op ID. Input ops may carry a nil config (they produce data wherever
// their consumers need it).
type Strategy struct {
	Configs []*Config
}

// NewStrategy allocates an empty strategy for a graph.
func NewStrategy(g *graph.Graph) *Strategy {
	return &Strategy{Configs: make([]*Config, g.NumOps())}
}

// Config returns the config of the op (nil for unconfigured inputs).
func (s *Strategy) Config(opID int) *Config { return s.Configs[opID] }

// Set replaces the config of an op.
func (s *Strategy) Set(opID int, c *Config) { s.Configs[opID] = c }

// Clone deep-copies the strategy.
func (s *Strategy) Clone() *Strategy {
	out := &Strategy{Configs: make([]*Config, len(s.Configs))}
	for i, c := range s.Configs {
		if c != nil {
			out.Configs[i] = c.Clone()
		}
	}
	return out
}

// Equal reports whether two strategies assign identical configs.
func (s *Strategy) Equal(o *Strategy) bool {
	if len(s.Configs) != len(o.Configs) {
		return false
	}
	for i, c := range s.Configs {
		oc := o.Configs[i]
		if (c == nil) != (oc == nil) {
			return false
		}
		if c != nil && !c.Equal(oc) {
			return false
		}
	}
	return true
}

// Validate checks every config against its op.
func (s *Strategy) Validate(g *graph.Graph, topo *device.Topology) error {
	if len(s.Configs) != g.NumOps() {
		return fmt.Errorf("config: strategy has %d configs for %d ops", len(s.Configs), g.NumOps())
	}
	for _, op := range g.Ops {
		c := s.Configs[op.ID]
		if op.Kind == graph.Input {
			continue
		}
		if c == nil {
			return fmt.Errorf("config: op %q has no config", op.Name)
		}
		if err := c.Validate(op, topo); err != nil {
			return err
		}
	}
	return nil
}

// DevicesUsed returns the sorted set of devices any task is assigned to.
func (s *Strategy) DevicesUsed() []int {
	seen := map[int]bool{}
	for _, c := range s.Configs {
		if c == nil {
			continue
		}
		for _, d := range c.Devices {
			seen[d] = true
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// unit returns an all-ones degree vector for the op.
func unit(op *graph.Op) []int {
	deg := make([]int, op.Out.Rank())
	for i := range deg {
		deg[i] = 1
	}
	return deg
}

// OnDevice builds the trivial config running the whole op as one task on
// the given device.
func OnDevice(op *graph.Op, dev int) *Config {
	return &Config{Degrees: unit(op), Devices: []int{dev}}
}

// SampleParallel builds a config partitioning only the sample dimension
// across the given devices (classic data parallelism for one op). The
// degree is capped at the batch size.
func SampleParallel(op *graph.Op, devices []int) *Config {
	sampleDim := 0 // builders always put sample first
	n := len(devices)
	if max := op.Out.Size(sampleDim); n > max {
		n = max
	}
	deg := unit(op)
	deg[sampleDim] = n
	return &Config{Degrees: deg, Devices: append([]int{}, devices[:n]...)}
}

// ParamParallel builds a config partitioning the first Parameter
// dimension across the devices (classic model parallelism within a
// layer). Falls back to OnDevice if the op has no parameter dimension.
func ParamParallel(op *graph.Op, devices []int) *Config {
	pd := -1
	for i := 0; i < op.Out.Rank(); i++ {
		if op.Out.Kind(i) == tensor.Parameter {
			pd = i
			break
		}
	}
	if pd < 0 {
		return OnDevice(op, devices[0])
	}
	n := len(devices)
	if max := op.Out.Size(pd); n > max {
		n = max
	}
	deg := unit(op)
	deg[pd] = n
	return &Config{Degrees: deg, Devices: append([]int{}, devices[:n]...)}
}

// DataParallel returns the strategy used by existing deep learning
// systems as their default: every op partitioned in the sample dimension
// across all GPUs.
func DataParallel(g *graph.Graph, topo *device.Topology) *Strategy {
	gpus := topo.GPUs()
	s := NewStrategy(g)
	for _, op := range g.ComputeOps() {
		s.Set(op.ID, SampleParallel(op, gpus))
	}
	return s
}

// ModelParallel returns pure model parallelism: each op runs unsplit on
// one GPU, ops distributed round-robin in topological order (Section 2's
// "assigns disjoint subsets of a neural network each to a dedicated
// device").
func ModelParallel(g *graph.Graph, topo *device.Topology) *Strategy {
	gpus := topo.GPUs()
	s := NewStrategy(g)
	for i, op := range g.ComputeOps() {
		s.Set(op.ID, OnDevice(op, gpus[i%len(gpus)]))
	}
	return s
}
