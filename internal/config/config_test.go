package config

import (
	"fmt"
	"math/rand"
	"testing"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

func cnnGraph() *graph.Graph {
	g := graph.New("cnn")
	x := g.Input4D("x", 16, 3, 32, 32)
	c := g.Conv2D("conv", x, 8, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("pool", c, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flat", p)
	g.Dense("fc", f, 10)
	return g
}

func rnnGraph() *graph.Graph {
	g := graph.New("rnn")
	ids := g.InputSeq("tok", 16, 4)
	emb := g.Embedding("emb", ids, 100, 32)
	emb.Layer = 0
	var prev *graph.Op
	for s := 0; s < 4; s++ {
		prev = g.LSTMStep(fmt.Sprintf("l0.t%d", s), emb, prev, s, 64)
		prev.Layer = 1
	}
	sm := g.SoftmaxClassifier("sm", prev, 100)
	sm.Layer = 2
	return g
}

func TestConfigBasics(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	conv := g.Op(1)

	c := SampleParallel(conv, topo.GPUs())
	if c.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d", c.NumTasks())
	}
	if err := c.Validate(conv, topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cl := c.Clone()
	if !cl.Equal(c) {
		t.Fatal("clone not equal")
	}
	cl.Devices[0] = 1
	if cl.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if !c.Equal(c.Clone()) || c.Equal(nil) {
		t.Fatal("Equal misbehaves")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfigValidateFailures(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	conv := g.Op(1)

	cases := []*Config{
		{Degrees: []int{2, 1, 1}, Devices: []int{0, 1}},         // wrong rank
		{Degrees: []int{0, 1, 1, 1}, Devices: []int{0}},         // degree < 1
		{Degrees: []int{32, 1, 1, 1}, Devices: make([]int, 32)}, // exceeds dim
		{Degrees: []int{2, 1, 1, 1}, Devices: []int{0}},         // device count
		{Degrees: []int{2, 1, 1, 1}, Devices: []int{0, 99}},     // unknown device
	}
	for i, c := range cases {
		if err := c.Validate(conv, topo); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	// Unsplittable dim: input channel of the Input op.
	x := g.Op(0)
	bad := &Config{Degrees: []int{1, 3, 1, 1}, Devices: []int{0, 1, 2}}
	if err := bad.Validate(x, topo); err == nil {
		t.Error("unsplittable partition should fail")
	}
}

func TestDataParallelStrategy(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	s := DataParallel(g, topo)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, op := range g.ComputeOps() {
		c := s.Config(op.ID)
		if c.Degrees[0] != 4 {
			t.Fatalf("op %q sample degree = %d, want 4", op.Name, c.Degrees[0])
		}
		for i := 1; i < len(c.Degrees); i++ {
			if c.Degrees[i] != 1 {
				t.Fatalf("op %q non-sample degree %d", op.Name, c.Degrees[i])
			}
		}
	}
	// Batch smaller than GPU count: degree capped.
	small := graph.New("small")
	x := small.Input4D("x", 2, 3, 8, 8)
	small.Conv2D("c", x, 4, 3, 3, 1, 1, 1, 1)
	s2 := DataParallel(small, topo)
	if got := s2.Config(1).Degrees[0]; got != 2 {
		t.Fatalf("capped degree = %d, want 2", got)
	}
}

func TestModelParallelStrategy(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(2, "P100")
	s := ModelParallel(g, topo)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, op := range g.ComputeOps() {
		if s.Config(op.ID).NumTasks() != 1 {
			t.Fatalf("model parallelism should not split op %q", op.Name)
		}
	}
	// Ops should round-robin across both GPUs.
	devs := map[int]bool{}
	for _, op := range g.ComputeOps() {
		devs[s.Config(op.ID).Devices[0]] = true
	}
	if len(devs) != 2 {
		t.Fatalf("model parallelism used %d devices, want 2", len(devs))
	}
}

func TestExpertCNN(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	s := Expert(g, topo)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	conv := g.Op(1)
	fc := g.Op(4)
	if s.Config(conv.ID).Degrees[0] != 4 {
		t.Fatal("expert CNN should data-parallelize conv")
	}
	cfc := s.Config(fc.ID)
	if cfc.Degrees[1] != 4 || cfc.Degrees[0] != 1 {
		t.Fatalf("expert CNN should model-parallelize fc, got %v", cfc)
	}
}

func TestExpertRNN(t *testing.T) {
	g := rnnGraph()
	topo := device.NewP100Cluster(2) // 2 nodes x 4 GPUs
	s := Expert(g, topo)
	if err := s.Validate(g, topo); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every op: one task per node.
	for _, op := range g.ComputeOps() {
		c := s.Config(op.ID)
		if c.Degrees[0] != 2 {
			t.Fatalf("op %q node-parallel degree = %d", op.Name, c.Degrees[0])
		}
		// Tasks land on different nodes.
		if topo.Device(c.Devices[0]).Node == topo.Device(c.Devices[1]).Node {
			t.Fatalf("op %q tasks on same node", op.Name)
		}
	}
	// Same-layer ops share a GPU within each node; different layers differ.
	var lstmDev, smDev int
	for _, op := range g.ComputeOps() {
		switch {
		case op.Kind == graph.LSTM:
			lstmDev = s.Config(op.ID).Devices[0]
		case op.Kind == graph.Softmax:
			smDev = s.Config(op.ID).Devices[0]
		}
	}
	if lstmDev == smDev {
		t.Fatal("expert RNN placed different layers on the same GPU")
	}
}

func TestRandomConfigFeasible(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		for _, op := range g.ComputeOps() {
			c := RandomConfig(op, topo, rng)
			if err := c.Validate(op, topo); err != nil {
				t.Fatalf("trial %d op %q: %v (config %v)", trial, op.Name, err, c)
			}
		}
	}
}

func TestRandomStrategyFeasibleAndVaried(t *testing.T) {
	g := rnnGraph()
	topo := device.NewP100Cluster(2)
	rng := rand.New(rand.NewSource(1))
	a := Random(g, topo, rng)
	b := Random(g, topo, rng)
	if err := a.Validate(g, topo); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(g, topo); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("two random strategies should differ")
	}
	if a.Equal(a.Clone()) == false {
		t.Fatal("clone should be equal")
	}
}

func TestStrategyHelpers(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	s := DataParallel(g, topo)
	used := s.DevicesUsed()
	if len(used) != 4 {
		t.Fatalf("DevicesUsed = %v", used)
	}
	// Missing config fails validation.
	s2 := NewStrategy(g)
	if err := s2.Validate(g, topo); err == nil {
		t.Fatal("empty strategy should fail validation")
	}
	// Wrong length fails.
	s3 := &Strategy{Configs: make([]*Config, 1)}
	if err := s3.Validate(g, topo); err == nil {
		t.Fatal("short strategy should fail validation")
	}
	// Equal with mismatched nils.
	s4 := DataParallel(g, topo)
	s4.Set(1, nil)
	if s.Equal(s4) {
		t.Fatal("strategies with nil mismatch should differ")
	}
	if s.Equal(s3) {
		t.Fatal("length mismatch should differ")
	}
}

func TestEnumerate(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	conv := g.Op(1)
	configs := Enumerate(conv, topo, EnumOptions{})
	if len(configs) == 0 {
		t.Fatal("no configs enumerated")
	}
	seen := map[string]bool{}
	foundHybrid := false
	for _, c := range configs {
		if err := c.Validate(conv, topo); err != nil {
			t.Fatalf("enumerated config invalid: %v (%v)", err, c)
		}
		if c.NumTasks() > 4 {
			t.Fatalf("config exceeds degree cap: %v", c)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c.String()] = true
		if c.Degrees[0] > 1 && c.Degrees[1] > 1 {
			foundHybrid = true
		}
	}
	if !foundHybrid {
		t.Fatal("enumeration missed hybrid sample x channel configs")
	}
	// MaxDegree bound respected.
	small := Enumerate(conv, topo, EnumOptions{MaxDegree: 2})
	for _, c := range small {
		if c.NumTasks() > 2 {
			t.Fatalf("MaxDegree violated: %v", c)
		}
	}
	if len(small) >= len(configs) {
		t.Fatal("MaxDegree should shrink the config set")
	}
}

func TestEnumerateNoParallelDims(t *testing.T) {
	g := graph.New("tiny")
	x := g.InputTensor("x", tensor.MakeShape(
		tensor.D("sample", 1, tensor.Sample), tensor.D("c", 1, tensor.Parameter)))
	mm := g.Dense("fc", x, 1)
	topo := device.NewSingleNode(3, "P100")
	configs := Enumerate(mm, topo, EnumOptions{})
	// Only singleton tasks: one per GPU.
	if len(configs) != 3 {
		t.Fatalf("configs = %d, want 3", len(configs))
	}
}

func TestOnDeviceAndParamParallelFallback(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	pool := g.Op(2) // no parameter dims
	c := ParamParallel(pool, topo.GPUs())
	if c.NumTasks() != 1 {
		t.Fatalf("ParamParallel on weightless op = %v", c)
	}
	d := OnDevice(pool, 2)
	if d.NumTasks() != 1 || d.Devices[0] != 2 {
		t.Fatalf("OnDevice = %v", d)
	}
	// Dense layer with fewer channels than devices: capped.
	g2 := graph.New("cap")
	x := g2.InputTensor("x", tensor.MakeShape(
		tensor.D("sample", 8, tensor.Sample), tensor.D("c", 16, tensor.Attribute)))
	fc := g2.Dense("fc", x, 2)
	c2 := ParamParallel(fc, topo.GPUs())
	if c2.Degrees[1] != 2 {
		t.Fatalf("ParamParallel capped degree = %d, want 2", c2.Degrees[1])
	}
}
