package config

import (
	"encoding/json"
	"fmt"
	"time"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// The graph and topology wire formats: the JSON bodies the strategy
// server (internal/server, cmd/flexflowd) accepts for custom problems,
// and the import/export format of the facade's
// ExportGraph/ImportGraph/ExportTopology/ImportTopology. Like the
// strategy format in serialize.go, ops are referenced by name (not ID)
// so a serialized graph is stable across rebuilds, and every enum is a
// string (the OpKind/DimKind/device Kind/LinkClass String names) so the
// format is self-describing and survives enum renumbering. The
// model-zoo round-trip tests in wire_test.go pin the format for every
// graph the zoo can emit; docs/SERVER.md documents the payloads.

type graphJSON struct {
	Name string   `json:"name"`
	Ops  []opJSON `json:"ops"`
}

type opJSON struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Out    []dimJSON `json:"out"`
	Inputs []string  `json:"inputs,omitempty"`

	KernelH int `json:"kernel_h,omitempty"`
	KernelW int `json:"kernel_w,omitempty"`
	StrideH int `json:"stride_h,omitempty"`
	StrideW int `json:"stride_w,omitempty"`
	PadH    int `json:"pad_h,omitempty"`
	PadW    int `json:"pad_w,omitempty"`

	ConcatDim   int   `json:"concat_dim,omitempty"`
	Step        int   `json:"step,omitempty"`
	InChannels  int   `json:"in_channels,omitempty"`
	Layer       int   `json:"layer"`
	WeightElems int64 `json:"weight_elems,omitempty"`
}

type dimJSON struct {
	Name string `json:"name"`
	Size int    `json:"size"`
	Kind string `json:"kind"`
}

// opKindByName maps OpKind.String() names back to kinds; built from the
// kinds themselves so it can never drift from the String method.
var opKindByName = func() map[string]graph.OpKind {
	m := make(map[string]graph.OpKind, graph.NumOpKinds)
	for k := 0; k < graph.NumOpKinds; k++ {
		m[graph.OpKind(k).String()] = graph.OpKind(k)
	}
	return m
}()

// dimKindByName maps DimKind.String() names back to kinds.
var dimKindByName = map[string]tensor.DimKind{
	tensor.Sample.String():       tensor.Sample,
	tensor.Attribute.String():    tensor.Attribute,
	tensor.Parameter.String():    tensor.Parameter,
	tensor.Unsplittable.String(): tensor.Unsplittable,
}

// MarshalGraph encodes an operator graph as JSON. Op names must be
// unique — they are the wire format's cross-references (inputs name
// their producers), exactly like the strategy format.
func MarshalGraph(g *graph.Graph) ([]byte, error) {
	out := graphJSON{Name: g.Name, Ops: make([]opJSON, 0, g.NumOps())}
	seen := make(map[string]bool, g.NumOps())
	for _, op := range g.Ops {
		if seen[op.Name] {
			return nil, fmt.Errorf("config: duplicate op name %q prevents graph serialization", op.Name)
		}
		seen[op.Name] = true
		oj := opJSON{
			Name:    op.Name,
			Kind:    op.Kind.String(),
			KernelH: op.KernelH, KernelW: op.KernelW,
			StrideH: op.StrideH, StrideW: op.StrideW,
			PadH: op.PadH, PadW: op.PadW,
			ConcatDim: op.ConcatDim, Step: op.Step,
			InChannels: op.InChannels, Layer: op.Layer,
			WeightElems: op.WeightElems,
		}
		for _, d := range op.Out.Dims {
			oj.Out = append(oj.Out, dimJSON{Name: d.Name, Size: d.Size, Kind: d.Kind.String()})
		}
		for _, in := range op.Inputs {
			oj.Inputs = append(oj.Inputs, in.Name)
		}
		out.Ops = append(out.Ops, oj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalGraph decodes a graph written by MarshalGraph and validates
// it (graph.Validate: topological input order, shape/region
// consistency), so a hand-written or corrupted payload is rejected with
// an error instead of crashing a later build.
func UnmarshalGraph(data []byte) (*graph.Graph, error) {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("config: decoding graph: %w", err)
	}
	if in.Name == "" {
		return nil, fmt.Errorf("config: graph has no name")
	}
	g := graph.New(in.Name)
	byName := make(map[string]*graph.Op, len(in.Ops))
	for _, oj := range in.Ops {
		if oj.Name == "" {
			return nil, fmt.Errorf("config: graph %q has an unnamed op", in.Name)
		}
		if _, dup := byName[oj.Name]; dup {
			return nil, fmt.Errorf("config: graph %q has duplicate op name %q", in.Name, oj.Name)
		}
		kind, ok := opKindByName[oj.Kind]
		if !ok {
			return nil, fmt.Errorf("config: op %q has unknown kind %q", oj.Name, oj.Kind)
		}
		if len(oj.Out) == 0 {
			return nil, fmt.Errorf("config: op %q has no output shape", oj.Name)
		}
		dims := make([]tensor.Dim, len(oj.Out))
		for i, dj := range oj.Out {
			dk, ok := dimKindByName[dj.Kind]
			if !ok {
				return nil, fmt.Errorf("config: op %q dim %q has unknown kind %q", oj.Name, dj.Name, dj.Kind)
			}
			if dj.Size <= 0 {
				return nil, fmt.Errorf("config: op %q dim %q has non-positive size %d", oj.Name, dj.Name, dj.Size)
			}
			dims[i] = tensor.D(dj.Name, dj.Size, dk)
		}
		op := &graph.Op{
			Kind: kind, Name: oj.Name,
			Out:     tensor.MakeShape(dims...),
			KernelH: oj.KernelH, KernelW: oj.KernelW,
			StrideH: oj.StrideH, StrideW: oj.StrideW,
			PadH: oj.PadH, PadW: oj.PadW,
			ConcatDim: oj.ConcatDim, Step: oj.Step,
			InChannels: oj.InChannels, Layer: oj.Layer,
			WeightElems: oj.WeightElems,
		}
		for _, name := range oj.Inputs {
			producer, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("config: op %q consumes op %q that does not precede it", oj.Name, name)
			}
			op.Inputs = append(op.Inputs, producer)
		}
		g.Append(op)
		byName[oj.Name] = op
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("config: decoded graph invalid: %w", err)
	}
	return g, nil
}

type topoJSON struct {
	Name    string       `json:"name"`
	Devices []deviceJSON `json:"devices"`
	Links   []linkJSON   `json:"links"`
}

type deviceJSON struct {
	Kind       string  `json:"kind"`
	Name       string  `json:"name"`
	Node       int     `json:"node"`
	Model      string  `json:"model,omitempty"`
	PeakGFLOPS float64 `json:"peak_gflops,omitempty"`
	MemBWGBs   float64 `json:"mem_bw_gbs,omitempty"`
	MemGB      float64 `json:"mem_gb,omitempty"`
}

type linkJSON struct {
	Class     string  `json:"class"`
	A         int     `json:"a"`
	B         int     `json:"b"`
	BWGBs     float64 `json:"bw_gbs"`
	LatencyNs int64   `json:"latency_ns,omitempty"`
}

// deviceKindByName and linkClassByName invert the String names of the
// device enums for decoding.
var (
	deviceKindByName = map[string]device.Kind{
		device.GPU.String(): device.GPU,
		device.CPU.String(): device.CPU,
	}
	linkClassByName = map[string]device.LinkClass{
		device.NVLink.String():     device.NVLink,
		device.PCIe.String():       device.PCIe,
		device.Infiniband.String(): device.Infiniband,
		device.Loopback.String():   device.Loopback,
	}
)

// MarshalTopology encodes a device topology as JSON. Device and link
// IDs are positional (array index), so the format carries no redundant
// numbering to drift out of sync.
func MarshalTopology(t *device.Topology) ([]byte, error) {
	out := topoJSON{Name: t.Name}
	for _, d := range t.Devices {
		out.Devices = append(out.Devices, deviceJSON{
			Kind: d.Kind.String(), Name: d.Name, Node: d.Node, Model: d.Model,
			PeakGFLOPS: d.PeakGFLOPS, MemBWGBs: d.MemBWGBs, MemGB: d.MemGB,
		})
	}
	for _, l := range t.Links {
		out.Links = append(out.Links, linkJSON{
			Class: l.Class.String(), A: l.A, B: l.B,
			BWGBs: l.BWGBs, LatencyNs: int64(l.Latency),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalTopology decodes a topology written by MarshalTopology and
// validates it (device.Validate: non-empty, positive bandwidths,
// connectivity), so a disconnected or nonsense machine is rejected at
// the wire instead of panicking inside the simulator's route build.
func UnmarshalTopology(data []byte) (*device.Topology, error) {
	var in topoJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("config: decoding topology: %w", err)
	}
	if in.Name == "" {
		return nil, fmt.Errorf("config: topology has no name")
	}
	t := device.NewTopology(in.Name)
	for i, dj := range in.Devices {
		kind, ok := deviceKindByName[dj.Kind]
		if !ok {
			return nil, fmt.Errorf("config: device %d has unknown kind %q", i, dj.Kind)
		}
		t.AddDevice(device.Device{
			Kind: kind, Name: dj.Name, Node: dj.Node, Model: dj.Model,
			PeakGFLOPS: dj.PeakGFLOPS, MemBWGBs: dj.MemBWGBs, MemGB: dj.MemGB,
		})
	}
	for i, lj := range in.Links {
		class, ok := linkClassByName[lj.Class]
		if !ok {
			return nil, fmt.Errorf("config: link %d has unknown class %q", i, lj.Class)
		}
		if lj.A < 0 || lj.A >= len(in.Devices) || lj.B < 0 || lj.B >= len(in.Devices) {
			return nil, fmt.Errorf("config: link %d connects unknown devices %d<->%d", i, lj.A, lj.B)
		}
		t.AddLink(class, lj.A, lj.B, lj.BWGBs, time.Duration(lj.LatencyNs))
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("config: decoded topology invalid: %w", err)
	}
	return t, nil
}
