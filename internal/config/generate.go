package config

import (
	"math/rand"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Expert returns the expert-designed strategy the paper benchmarks
// against (Section 8.2.1):
//
//   - For CNNs, Krizhevsky's "one weird trick" [27]: data parallelism
//     for convolutional and pooling layers, switching to model
//     parallelism (parameter-dimension partitioning) for
//     densely-connected layers.
//   - For RNNs, the GNMT scheme [42]: data parallelism across compute
//     nodes (each node processes a batch shard) combined with model
//     parallelism inside each node — operations with the same layer
//     depth are placed on the same GPU of the node.
//
// Whether a graph "is an RNN" is decided by the presence of LSTM ops.
func Expert(g *graph.Graph, topo *device.Topology) *Strategy {
	for _, op := range g.Ops {
		if op.Kind == graph.LSTM {
			return expertRNN(g, topo)
		}
	}
	return expertCNN(g, topo)
}

func expertCNN(g *graph.Graph, topo *device.Topology) *Strategy {
	gpus := topo.GPUs()
	s := NewStrategy(g)
	for _, op := range g.ComputeOps() {
		switch op.Kind {
		case graph.MatMul, graph.Softmax:
			s.Set(op.ID, ParamParallel(op, gpus))
		default:
			s.Set(op.ID, SampleParallel(op, gpus))
		}
	}
	return s
}

func expertRNN(g *graph.Graph, topo *device.Topology) *Strategy {
	gpus := topo.GPUs()
	// Group GPUs by node, preserving ID order.
	byNode := map[int][]int{}
	var nodes []int
	for _, id := range gpus {
		n := topo.Device(id).Node
		if _, ok := byNode[n]; !ok {
			nodes = append(nodes, n)
		}
		byNode[n] = append(byNode[n], id)
	}
	s := NewStrategy(g)
	for _, op := range g.ComputeOps() {
		layer := op.Layer
		if layer < 0 {
			layer = 0
		}
		// One task per node (sample-dim data parallelism across nodes),
		// placed on the GPU matching the op's layer within that node.
		n := len(nodes)
		if max := op.Out.Size(0); n > max {
			n = max
		}
		deg := unit(op)
		deg[0] = n
		devs := make([]int, n)
		for i := 0; i < n; i++ {
			nodeGPUs := byNode[nodes[i]]
			devs[i] = nodeGPUs[layer%len(nodeGPUs)]
		}
		s.Set(op.ID, &Config{Degrees: deg, Devices: devs})
	}
	return s
}

// RandomConfig draws a random parallelization configuration for the op:
// a random total parallelism degree (a power of two up to the GPU
// count), randomly factored across the op's parallelizable dimensions,
// with each task assigned to a uniformly random GPU. This is the
// proposal building block of the MCMC search (Section 6.2) and the
// random initial strategies of Section 8.1.
func RandomConfig(op *graph.Op, topo *device.Topology, rng *rand.Rand) *Config {
	return RandomConfigRestricted(op, topo, rng, nil)
}

// RandomConfigRestricted is RandomConfig limited to partitioning
// dimensions whose kind is allowed (nil allows everything). Search-space
// ablations use it to emulate narrower systems: {Sample} is the space
// data parallelism lives in, {Sample, Parameter} adds intra-op model
// parallelism but no attribute partitioning.
func RandomConfigRestricted(op *graph.Op, topo *device.Topology, rng *rand.Rand, allowed map[tensor.DimKind]bool) *Config {
	gpus := topo.GPUs()
	deg := unit(op)
	dims := op.ParallelDims()
	if allowed != nil {
		var filtered []int
		for _, d := range dims {
			if allowed[op.Out.Kind(d)] {
				filtered = append(filtered, d)
			}
		}
		dims = filtered
	}
	if len(dims) > 0 {
		// Choose a power-of-two total degree <= len(gpus).
		maxLog := 0
		for 1<<(maxLog+1) <= len(gpus) {
			maxLog++
		}
		total := 1 << rng.Intn(maxLog+1)
		// Factor `total` over the dims by repeatedly assigning factors
		// of 2 to random dims with remaining capacity.
		for total > 1 {
			candidates := candidateDims(op, dims, deg)
			if len(candidates) == 0 {
				break
			}
			d := candidates[rng.Intn(len(candidates))]
			deg[d] *= 2
			total /= 2
		}
	}
	n := tensor.GridVolume(deg)
	devs := make([]int, n)
	for i := range devs {
		devs[i] = gpus[rng.Intn(len(gpus))]
	}
	return &Config{Degrees: deg, Devices: devs}
}

// candidateDims lists dims that can absorb another factor of 2.
func candidateDims(op *graph.Op, dims []int, deg []int) []int {
	var out []int
	for _, d := range dims {
		if deg[d]*2 <= op.Out.Size(d) {
			out = append(out, d)
		}
	}
	return out
}

// Random returns a fully random strategy (used as a search start point).
func Random(g *graph.Graph, topo *device.Topology, rng *rand.Rand) *Strategy {
	s := NewStrategy(g)
	for _, op := range g.ComputeOps() {
		s.Set(op.ID, RandomConfig(op, topo, rng))
	}
	return s
}

// EnumOptions bounds config enumeration for exhaustive search
// (Section 8.4). Full enumeration over arbitrary device assignments is
// astronomically large, so enumeration restricts assignments to
// round-robin layouts over the GPU list starting at every offset —
// the canonical layouts the MCMC search converges to in practice.
type EnumOptions struct {
	// MaxDegree caps the total parallelism degree (defaults to #GPUs).
	MaxDegree int
}

// Enumerate lists the feasible configurations of op under the options.
// Degrees enumerate all factorizations of every power of two up to
// MaxDegree across the op's parallelizable dimensions.
func Enumerate(op *graph.Op, topo *device.Topology, opts EnumOptions) []*Config {
	gpus := topo.GPUs()
	maxDeg := opts.MaxDegree
	if maxDeg <= 0 || maxDeg > len(gpus) {
		maxDeg = len(gpus)
	}
	var degreeVectors [][]int
	var recur func(deg []int, dimIdx int, remaining int)
	dims := op.ParallelDims()
	recur = func(deg []int, dimIdx, remaining int) {
		if dimIdx == len(dims) {
			cp := make([]int, len(deg))
			copy(cp, deg)
			degreeVectors = append(degreeVectors, cp)
			return
		}
		d := dims[dimIdx]
		for f := 1; f <= remaining && f <= op.Out.Size(d); f *= 2 {
			deg[d] = f
			recur(deg, dimIdx+1, remaining/f)
			deg[d] = 1
		}
	}
	recur(unit(op), 0, maxDeg)

	var out []*Config
	for _, deg := range degreeVectors {
		n := tensor.GridVolume(deg)
		if n == 1 {
			// Singleton tasks: one config per GPU.
			for _, gpu := range gpus {
				out = append(out, &Config{Degrees: deg, Devices: []int{gpu}})
			}
			continue
		}
		// Round-robin layouts from each starting offset. Offsets beyond
		// the task count are redundant only when n >= len(gpus).
		offsets := len(gpus)
		for start := 0; start < offsets; start++ {
			devs := make([]int, n)
			for k := 0; k < n; k++ {
				devs[k] = gpus[(start+k)%len(gpus)]
			}
			out = append(out, &Config{Degrees: deg, Devices: devs})
		}
	}
	return out
}
