package config

import (
	"bytes"
	"testing"

	"flexflow/internal/device"
	"flexflow/internal/models"
)

// TestGraphWireRoundTripModelZoo pins the server's graph wire format
// for every graph the model zoo can emit: each model marshals, decodes
// back into a structurally identical graph (op-by-op field equality,
// consumer wiring, aggregate weight/FLOP counts), and re-marshals to
// the identical bytes, so the format cannot silently lose a field some
// model relies on.
func TestGraphWireRoundTripModelZoo(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			spec, err := models.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			g := spec.BuildScaled(16)
			data, err := MarshalGraph(g)
			if err != nil {
				t.Fatalf("MarshalGraph: %v", err)
			}
			got, err := UnmarshalGraph(data)
			if err != nil {
				t.Fatalf("UnmarshalGraph: %v", err)
			}
			if got.Name != g.Name {
				t.Fatalf("name %q != %q", got.Name, g.Name)
			}
			if got.NumOps() != g.NumOps() {
				t.Fatalf("%d ops != %d", got.NumOps(), g.NumOps())
			}
			for i, want := range g.Ops {
				op := got.Op(i)
				if op.ID != want.ID || op.Kind != want.Kind || op.Name != want.Name {
					t.Fatalf("op %d: %v != %v", i, op, want)
				}
				if !op.Out.Equal(want.Out) {
					t.Fatalf("op %q: out %v != %v", op.Name, op.Out, want.Out)
				}
				if len(op.Inputs) != len(want.Inputs) {
					t.Fatalf("op %q: %d inputs != %d", op.Name, len(op.Inputs), len(want.Inputs))
				}
				for j := range op.Inputs {
					if op.Inputs[j].ID != want.Inputs[j].ID {
						t.Fatalf("op %q input %d: id %d != %d", op.Name, j, op.Inputs[j].ID, want.Inputs[j].ID)
					}
				}
				if op.KernelH != want.KernelH || op.KernelW != want.KernelW ||
					op.StrideH != want.StrideH || op.StrideW != want.StrideW ||
					op.PadH != want.PadH || op.PadW != want.PadW {
					t.Fatalf("op %q: geometry differs", op.Name)
				}
				if op.ConcatDim != want.ConcatDim || op.Step != want.Step ||
					op.InChannels != want.InChannels || op.Layer != want.Layer ||
					op.WeightElems != want.WeightElems {
					t.Fatalf("op %q: metadata differs (%d/%d/%d/%d/%d vs %d/%d/%d/%d/%d)",
						op.Name, op.ConcatDim, op.Step, op.InChannels, op.Layer, op.WeightElems,
						want.ConcatDim, want.Step, want.InChannels, want.Layer, want.WeightElems)
				}
				if len(got.Consumers(op)) != len(g.Consumers(want)) {
					t.Fatalf("op %q: %d consumers != %d", op.Name, len(got.Consumers(op)), len(g.Consumers(want)))
				}
			}
			if got.TotalWeights() != g.TotalWeights() {
				t.Fatalf("weights %d != %d", got.TotalWeights(), g.TotalWeights())
			}
			if got.TotalFLOPs() != g.TotalFLOPs() {
				t.Fatalf("flops %d != %d", got.TotalFLOPs(), g.TotalFLOPs())
			}
			again, err := MarshalGraph(got)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("marshal -> unmarshal -> marshal is not a fixed point")
			}
		})
	}
}

// TestGraphWireLayerAnnotationsSurvive guards the one field a naive
// wire format would drop: the model-assigned Layer index the expert
// baseline depends on. NMT annotates layers, so at least one decoded
// op must carry a non-negative Layer.
func TestGraphWireLayerAnnotationsSurvive(t *testing.T) {
	spec, err := models.Get("nmt")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(16)
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	annotated := false
	for i, op := range g.Ops {
		if got.Op(i).Layer != op.Layer {
			t.Fatalf("op %q: layer %d != %d", op.Name, got.Op(i).Layer, op.Layer)
		}
		if op.Layer >= 0 {
			annotated = true
		}
	}
	if !annotated {
		t.Fatal("nmt has no layer annotations; the guard is vacuous")
	}
}

// TestStrategyAgainstDecodedGraph ties the two wire formats together:
// a strategy exported against the original graph must import cleanly
// against the decoded graph, because both formats key ops by name.
func TestStrategyAgainstDecodedGraph(t *testing.T) {
	spec, err := models.Get("lenet")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.BuildScaled(16)
	topo := device.NewSingleNode(4, "P100")
	s := DataParallel(g, topo)
	sdata, err := MarshalStrategy(g, s)
	if err != nil {
		t.Fatal(err)
	}
	gdata, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalGraph(gdata)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalStrategy(sdata, decoded, topo)
	if err != nil {
		t.Fatalf("strategy does not import against the decoded graph: %v", err)
	}
	if !got.Equal(s) {
		t.Fatal("imported strategy differs")
	}
}

// TestTopologyWireRoundTrip pins the topology wire format for the
// built-in machines: single nodes and both paper clusters round-trip
// to identical bytes, and routed paths agree before and after.
func TestTopologyWireRoundTrip(t *testing.T) {
	topos := []*device.Topology{
		device.NewSingleNode(1, "P100"),
		device.NewSingleNode(4, "P100"),
		device.NewSingleNode(4, "K80"),
		device.NewP100Cluster(2),
		device.NewK80Cluster(2),
	}
	for _, topo := range topos {
		t.Run(topo.Name, func(t *testing.T) {
			data, err := MarshalTopology(topo)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalTopology(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != topo.Name || got.NumDevices() != topo.NumDevices() || len(got.Links) != len(topo.Links) {
				t.Fatalf("shape mismatch: %s/%d/%d vs %s/%d/%d",
					got.Name, got.NumDevices(), len(got.Links), topo.Name, topo.NumDevices(), len(topo.Links))
			}
			for i := range topo.Devices {
				if got.Devices[i] != topo.Devices[i] {
					t.Fatalf("device %d: %+v != %+v", i, got.Devices[i], topo.Devices[i])
				}
			}
			for i := range topo.Links {
				if got.Links[i] != topo.Links[i] {
					t.Fatalf("link %d: %+v != %+v", i, got.Links[i], topo.Links[i])
				}
			}
			for src := 0; src < topo.NumDevices(); src++ {
				for dst := 0; dst < topo.NumDevices(); dst++ {
					a, b := topo.Route(src, dst), got.Route(src, dst)
					if a.BWGBs != b.BWGBs || a.Latency != b.Latency || a.BottleneckLink != b.BottleneckLink {
						t.Fatalf("route %d->%d differs: %+v vs %+v", src, dst, a, b)
					}
				}
			}
			again, err := MarshalTopology(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("marshal -> unmarshal -> marshal is not a fixed point")
			}
		})
	}
}

// TestGraphWireRejectsCorruption exercises the decode-side validation:
// payloads with unknown kinds, duplicate or dangling names, or
// non-positive sizes are rejected with errors, never panics.
func TestGraphWireRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"no name":        `{"ops":[]}`,
		"unknown kind":   `{"name":"g","ops":[{"name":"x","kind":"Warp","out":[{"name":"sample","size":4,"kind":"sample"}]}]}`,
		"unknown dim":    `{"name":"g","ops":[{"name":"x","kind":"Input","out":[{"name":"sample","size":4,"kind":"spatial"}]}]}`,
		"bad size":       `{"name":"g","ops":[{"name":"x","kind":"Input","out":[{"name":"sample","size":0,"kind":"sample"}]}]}`,
		"no shape":       `{"name":"g","ops":[{"name":"x","kind":"Input"}]}`,
		"unnamed op":     `{"name":"g","ops":[{"kind":"Input","out":[{"name":"sample","size":4,"kind":"sample"}]}]}`,
		"dangling input": `{"name":"g","ops":[{"name":"x","kind":"Activation","inputs":["missing"],"out":[{"name":"sample","size":4,"kind":"sample"}]}]}`,
		"duplicate op": `{"name":"g","ops":[
			{"name":"x","kind":"Input","out":[{"name":"sample","size":4,"kind":"sample"}]},
			{"name":"x","kind":"Input","out":[{"name":"sample","size":4,"kind":"sample"}]}]}`,
	}
	for name, payload := range cases {
		if _, err := UnmarshalGraph([]byte(payload)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestTopologyWireRejectsCorruption is the topology-side analogue:
// unknown enums, dangling link endpoints and disconnected machines are
// decode errors.
func TestTopologyWireRejectsCorruption(t *testing.T) {
	gpu := `{"kind":"GPU","name":"gpu0","node":0,"model":"P100","peak_gflops":9300,"mem_bw_gbs":732,"mem_gb":16}`
	cases := map[string]string{
		"bad json":      `{`,
		"no name":       `{"devices":[],"links":[]}`,
		"no devices":    `{"name":"t","devices":[],"links":[]}`,
		"unknown kind":  `{"name":"t","devices":[{"kind":"TPU","name":"d0"}],"links":[]}`,
		"unknown class": `{"name":"t","devices":[` + gpu + `,` + gpu + `],"links":[{"class":"Carrier","a":0,"b":1,"bw_gbs":10}]}`,
		"dangling link": `{"name":"t","devices":[` + gpu + `],"links":[{"class":"NVLink","a":0,"b":7,"bw_gbs":10}]}`,
		"zero bw":       `{"name":"t","devices":[` + gpu + `,` + gpu + `],"links":[{"class":"NVLink","a":0,"b":1,"bw_gbs":0}]}`,
		"disconnected":  `{"name":"t","devices":[` + gpu + `,` + gpu + `],"links":[]}`,
	}
	for name, payload := range cases {
		if _, err := UnmarshalTopology([]byte(payload)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
