package config

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Property: RandomConfig is always valid, its tasks' regions partition
// the output tensor exactly, and serialization round-trips, for random
// seeds and random device counts.
func TestRandomConfigProperties(t *testing.T) {
	g := rnnGraph()
	f := func(seed int64, gpuRaw uint8) bool {
		gpus := int(gpuRaw%7) + 2 // 2..8 GPUs
		topo := device.NewSingleNode(gpus, "P100")
		rng := rand.New(rand.NewSource(seed))
		s := Random(g, topo, rng)
		if err := s.Validate(g, topo); err != nil {
			t.Logf("invalid strategy: %v", err)
			return false
		}
		for _, op := range g.ComputeOps() {
			c := s.Config(op.ID)
			var vol int64
			regions := tensor.Partition(op.Out, c.Degrees)
			for _, r := range regions {
				vol += r.Volume()
			}
			if vol != op.Out.Volume() {
				t.Logf("op %q: regions cover %d of %d", op.Name, vol, op.Out.Volume())
				return false
			}
		}
		data, err := MarshalStrategy(g, s)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		back, err := UnmarshalStrategy(data, g, topo)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: enumerated configs are exactly the valid ones the search
// could pick — all valid, all within the degree cap, no duplicates.
func TestEnumerateProperties(t *testing.T) {
	g := cnnGraph()
	f := func(gpuRaw, capRaw uint8) bool {
		gpus := int(gpuRaw%6) + 2
		maxDeg := int(capRaw%4) + 1
		topo := device.NewSingleNode(gpus, "P100")
		for _, op := range g.ComputeOps() {
			seen := map[string]bool{}
			for _, c := range Enumerate(op, topo, EnumOptions{MaxDegree: maxDeg}) {
				if err := c.Validate(op, topo); err != nil {
					t.Logf("op %q: %v", op.Name, err)
					return false
				}
				if c.NumTasks() > maxDeg {
					t.Logf("op %q: %d tasks over cap %d", op.Name, c.NumTasks(), maxDeg)
					return false
				}
				key := c.String()
				if seen[key] {
					t.Logf("op %q: duplicate %s", op.Name, key)
					return false
				}
				seen[key] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: weight slicing conserves parameters — Slices * Elems equals
// the op's weight count (up to integer division remainder) and
// Slices * Replicas equals the task count, for every random config.
func TestWeightSlicingConservation(t *testing.T) {
	g := rnnGraph()
	topo := device.NewSingleNode(8, "P100")
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		for _, op := range g.ComputeOps() {
			if !op.HasWeights() {
				continue
			}
			c := RandomConfig(op, topo, rng)
			w := op.Weights(c.Degrees)
			if w.Slices*w.Replicas != c.NumTasks() {
				t.Fatalf("op %q cfg %v: slices*replicas = %d, tasks = %d",
					op.Name, c.Degrees, w.Slices*w.Replicas, c.NumTasks())
			}
			total := w.Elems * int64(w.Slices)
			if total > op.WeightElems || total < op.WeightElems-int64(w.Slices) {
				t.Fatalf("op %q: sliced weights %d vs total %d", op.Name, total, op.WeightElems)
			}
		}
	}
}

func TestGraphForProperties(t *testing.T) {
	// Keep the helper graphs themselves honest.
	if err := cnnGraph().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := rnnGraph().Validate(); err != nil {
		t.Fatal(err)
	}
	_ = graph.New
}
