package config

import (
	"encoding/json"
	"fmt"

	"flexflow/internal/device"
	"flexflow/internal/graph"
)

// The wire format names ops rather than relying on op IDs, so a saved
// strategy survives graph rebuilds as long as op names are stable (the
// model builders guarantee unique names). This is what cmd/flexflow
// -export/-import read and write.

type strategyJSON struct {
	Graph   string       `json:"graph"`
	Configs []configJSON `json:"configs"`
}

type configJSON struct {
	Op      string `json:"op"`
	Degrees []int  `json:"degrees"`
	Devices []int  `json:"devices"`
}

// MarshalStrategy encodes a strategy for the graph as JSON.
func MarshalStrategy(g *graph.Graph, s *Strategy) ([]byte, error) {
	if len(s.Configs) != g.NumOps() {
		return nil, fmt.Errorf("config: strategy has %d configs for %d ops", len(s.Configs), g.NumOps())
	}
	out := strategyJSON{Graph: g.Name}
	seen := map[string]bool{}
	for _, op := range g.ComputeOps() {
		if seen[op.Name] {
			return nil, fmt.Errorf("config: duplicate op name %q prevents serialization", op.Name)
		}
		seen[op.Name] = true
		c := s.Config(op.ID)
		if c == nil {
			return nil, fmt.Errorf("config: op %q has no config", op.Name)
		}
		out.Configs = append(out.Configs, configJSON{Op: op.Name, Degrees: c.Degrees, Devices: c.Devices})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalStrategy decodes a strategy and validates it against the
// graph and topology. The graph name must match; every compute op must
// receive exactly one config.
func UnmarshalStrategy(data []byte, g *graph.Graph, topo *device.Topology) (*Strategy, error) {
	var in strategyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("config: decoding strategy: %w", err)
	}
	if in.Graph != g.Name {
		return nil, fmt.Errorf("config: strategy is for graph %q, not %q", in.Graph, g.Name)
	}
	byName := map[string]*graph.Op{}
	for _, op := range g.ComputeOps() {
		byName[op.Name] = op
	}
	s := NewStrategy(g)
	for _, cj := range in.Configs {
		op, ok := byName[cj.Op]
		if !ok {
			return nil, fmt.Errorf("config: strategy references unknown op %q", cj.Op)
		}
		if s.Config(op.ID) != nil {
			return nil, fmt.Errorf("config: duplicate config for op %q", cj.Op)
		}
		c := &Config{Degrees: cj.Degrees, Devices: cj.Devices}
		if err := c.Validate(op, topo); err != nil {
			return nil, err
		}
		s.Set(op.ID, c)
	}
	if err := s.Validate(g, topo); err != nil {
		return nil, err
	}
	return s, nil
}
