package config

import (
	"strings"
	"testing"

	"flexflow/internal/device"
	"flexflow/internal/graph"
)

func TestStrategyRoundTrip(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	s := Expert(g, topo)

	data, err := MarshalStrategy(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"graph\": \"cnn\"") {
		t.Fatalf("payload missing graph name: %s", data)
	}
	got, err := UnmarshalStrategy(data, g, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatal("round trip changed the strategy")
	}
}

func TestMarshalStrategyErrors(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")

	// Missing config.
	if _, err := MarshalStrategy(g, NewStrategy(g)); err == nil {
		t.Fatal("empty strategy marshalled")
	}
	// Wrong length.
	if _, err := MarshalStrategy(g, &Strategy{Configs: make([]*Config, 1)}); err == nil {
		t.Fatal("short strategy marshalled")
	}
	// Duplicate op names.
	dup := graph.New("dup")
	x := dup.Input4D("x", 4, 3, 8, 8)
	dup.Conv2D("conv", x, 4, 3, 3, 1, 1, 1, 1)
	dup.Conv2D("conv", dup.Op(1), 4, 3, 3, 1, 1, 1, 1)
	if _, err := MarshalStrategy(dup, DataParallel(dup, topo)); err == nil {
		t.Fatal("duplicate names marshalled")
	}
}

func TestUnmarshalStrategyErrors(t *testing.T) {
	g := cnnGraph()
	topo := device.NewSingleNode(4, "P100")
	good, _ := MarshalStrategy(g, DataParallel(g, topo))

	cases := map[string][]byte{
		"garbage":     []byte("{not json"),
		"wrong-graph": []byte(strings.Replace(string(good), "\"cnn\"", "\"other\"", 1)),
		"unknown-op":  []byte(strings.Replace(string(good), "\"conv\"", "\"missing\"", 1)),
		"bad-device":  []byte(strings.Replace(string(good), "\"devices\": [\n        0,", "\"devices\": [\n        99,", 1)),
	}
	for name, data := range cases {
		if _, err := UnmarshalStrategy(data, g, topo); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Duplicate config entry.
	var payload strings.Builder
	payload.WriteString(`{"graph":"cnn","configs":[`)
	first := true
	for _, op := range g.ComputeOps() {
		entry := `{"op":"` + op.Name + `","degrees":[`
		for i := 0; i < op.Out.Rank(); i++ {
			if i > 0 {
				entry += ","
			}
			entry += "1"
		}
		entry += `],"devices":[0]}`
		if !first {
			payload.WriteString(",")
		}
		payload.WriteString(entry)
		first = false
	}
	// Repeat the first compute op.
	repeat := g.ComputeOps()[0]
	entry := `,{"op":"` + repeat.Name + `","degrees":[1,1,1,1],"devices":[0]}`
	payload.WriteString(entry)
	payload.WriteString("]}")
	if _, err := UnmarshalStrategy([]byte(payload.String()), g, topo); err == nil {
		t.Error("duplicate config decoded without error")
	}
}
