package perfmodel

import (
	"sync"
	"testing"
	"time"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

func testOp(t *testing.T) (*graph.Graph, *graph.Op) {
	t.Helper()
	g := graph.New("perf")
	x := g.Input4D("x", 16, 8, 32, 32)
	conv := g.Conv2D("conv", x, 32, 3, 3, 1, 1, 1, 1)
	return g, conv
}

func p100() device.Device {
	return device.Device{Model: "P100", PeakGFLOPS: 9300, MemBWGBs: 732}
}

func k80() device.Device {
	return device.Device{Model: "K80", PeakGFLOPS: 2800, MemBWGBs: 240}
}

func TestPassString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" || Update.String() != "upd" {
		t.Fatal("Pass.String mismatch")
	}
	if Pass(9).String() != "Pass(9)" {
		t.Fatal("unknown Pass.String mismatch")
	}
}

func TestAnalyticModelScaling(t *testing.T) {
	_, conv := testOp(t)
	m := NewAnalyticModel()
	dev := p100()

	full := m.ExecTime(conv, conv.Out.FullRegion(), dev, Forward)
	half := conv.Out.FullRegion()
	half.Iv[0] = tensor.Interval{Lo: 0, Hi: 8}
	halfT := m.ExecTime(conv, half, dev, Forward)

	if full <= 0 || halfT <= 0 {
		t.Fatalf("non-positive times: %v, %v", full, halfT)
	}
	if halfT >= full {
		t.Fatalf("half region (%v) should be faster than full (%v)", halfT, full)
	}
	// Backward is more expensive than forward.
	bwd := m.ExecTime(conv, conv.Out.FullRegion(), dev, Backward)
	if bwd <= full {
		t.Fatalf("backward (%v) should exceed forward (%v)", bwd, full)
	}
	// Slower device takes longer.
	slow := m.ExecTime(conv, conv.Out.FullRegion(), k80(), Forward)
	if slow <= full {
		t.Fatalf("K80 (%v) should be slower than P100 (%v)", slow, full)
	}
}

func TestAnalyticModelDeterminism(t *testing.T) {
	_, conv := testOp(t)
	m := NewAnalyticModel()
	dev := p100()
	a := m.ExecTime(conv, conv.Out.FullRegion(), dev, Forward)
	b := m.ExecTime(conv, conv.Out.FullRegion(), dev, Forward)
	if a != b {
		t.Fatalf("analytic model is not deterministic: %v vs %v", a, b)
	}
}

func TestAnalyticUpdatePass(t *testing.T) {
	_, conv := testOp(t)
	m := NewAnalyticModel()
	// Update cost scales with weight shard size (region = shard extent).
	small := tensor.Region{Iv: []tensor.Interval{{Lo: 0, Hi: 1000}}}
	large := tensor.Region{Iv: []tensor.Interval{{Lo: 0, Hi: 100000000}}}
	a := m.ExecTime(conv, small, p100(), Update)
	b := m.ExecTime(conv, large, p100(), Update)
	if b <= a {
		t.Fatalf("larger update (%v) should cost more than smaller (%v)", b, a)
	}
}

func TestAnalyticZeroFlopsOps(t *testing.T) {
	g := graph.New("z")
	x := g.Input4D("x", 2, 3, 8, 8)
	m := NewAnalyticModel()
	if d := m.ExecTime(x, x.Out.FullRegion(), p100(), Forward); d != 0 {
		t.Fatalf("input op time = %v, want 0", d)
	}
}

func TestAnalyticPanicsOnNilOp(t *testing.T) {
	m := NewAnalyticModel()
	defer func() {
		if recover() == nil {
			t.Fatal("nil op did not panic")
		}
	}()
	m.ExecTime(nil, tensor.Region{}, p100(), Forward)
}

func TestMemoryBoundOps(t *testing.T) {
	g := graph.New("mem")
	x := g.Input4D("x", 64, 64, 56, 56)
	a := g.Activation("relu", x)
	m := &AnalyticModel{} // no launch overhead for a clean ratio
	dev := p100()
	got := m.ExecTime(a, a.Out.FullRegion(), dev, Forward)
	// Element-wise ops should be memory-bound: time ~ 2*bytes/bw, far
	// above flops/peak.
	bytes := float64(2 * a.Out.Bytes())
	memSec := bytes / (dev.MemBWGBs * 1e9)
	if got < time.Duration(memSec*float64(time.Second)) {
		t.Fatalf("activation %v is faster than memory bound %v", got, time.Duration(memSec*float64(time.Second)))
	}
}

func TestMeasuringEstimatorCaches(t *testing.T) {
	_, conv := testOp(t)
	calls := 0
	meas := func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
		calls++
		return time.Duration(calls) * time.Millisecond // drifting clock
	}
	e := NewMeasuringEstimator(meas, 3)
	dev := p100()

	first := e.ExecTime(conv, conv.Out.FullRegion(), dev, Forward)
	if calls != 3 {
		t.Fatalf("measurer called %d times, want 3 (repeats)", calls)
	}
	if first != 2*time.Millisecond { // avg of 1,2,3 ms
		t.Fatalf("first = %v, want 2ms", first)
	}
	second := e.ExecTime(conv, conv.Out.FullRegion(), dev, Forward)
	if calls != 3 {
		t.Fatalf("cache miss on identical signature (calls=%d)", calls)
	}
	if second != first {
		t.Fatalf("cached value changed: %v vs %v", second, first)
	}
	hits, misses := e.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
	if e.DistinctSignatures() != 1 {
		t.Fatalf("signatures = %d", e.DistinctSignatures())
	}
}

func TestMeasuringEstimatorKeying(t *testing.T) {
	_, conv := testOp(t)
	e := NewMeasuringEstimator(func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
		return time.Millisecond
	}, 1)
	dev := p100()
	full := conv.Out.FullRegion()
	e.ExecTime(conv, full, dev, Forward)

	// Different pass -> new signature.
	e.ExecTime(conv, full, dev, Backward)
	// Different device model -> new signature.
	e.ExecTime(conv, full, k80(), Forward)
	// Different output size -> new signature.
	half := conv.Out.FullRegion()
	half.Iv[0] = tensor.Interval{Lo: 0, Hi: 8}
	e.ExecTime(conv, half, dev, Forward)
	// Same size but different offset -> same signature (A1).
	shifted := conv.Out.FullRegion()
	shifted.Iv[0] = tensor.Interval{Lo: 8, Hi: 16}
	before := e.DistinctSignatures()
	e.ExecTime(conv, shifted, dev, Forward)
	if e.DistinctSignatures() != before {
		t.Fatal("offset-only change created a new signature")
	}
	if e.DistinctSignatures() != 4 {
		t.Fatalf("signatures = %d, want 4", e.DistinctSignatures())
	}
	if len(e.SignatureSummary()) != 4 {
		t.Fatalf("summary length = %d", len(e.SignatureSummary()))
	}
}

func TestMeasuringEstimatorRepeatsFloor(t *testing.T) {
	e := NewMeasuringEstimator(func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
		return time.Millisecond
	}, 0)
	if e.repeats != 1 {
		t.Fatalf("repeats = %d, want 1", e.repeats)
	}
}

func TestMeasuringEstimatorConcurrency(t *testing.T) {
	_, conv := testOp(t)
	e := NewMeasuringEstimator(func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
		return time.Millisecond
	}, 1)
	dev := p100()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if d := e.ExecTime(conv, conv.Out.FullRegion(), dev, Forward); d != time.Millisecond {
					t.Errorf("got %v", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	if e.DistinctSignatures() != 1 {
		t.Fatalf("signatures = %d", e.DistinctSignatures())
	}
}

// The paper's observation: an NMT-scale model with hundreds of ops uses
// only a handful of distinct signatures per device, so profiling is
// cheap. Verify the cache collapses repeated LSTM steps.
func TestFewDistinctSignaturesAcrossUnrolledSteps(t *testing.T) {
	g := graph.New("rnn")
	ids := g.InputSeq("tok", 16, 20)
	emb := g.Embedding("emb", ids, 1000, 64)
	var prev *graph.Op
	for s := 0; s < 20; s++ {
		prev = g.LSTMStep("l", emb, prev, s, 128)
	}
	e := NewMeasuringEstimator(func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
		return time.Millisecond
	}, 1)
	dev := p100()
	for _, op := range g.ComputeOps() {
		e.ExecTime(op, op.Out.FullRegion(), dev, Forward)
	}
	// The 20 LSTM steps collapse to two signatures: step 0 has no prev
	// state input, so it reads different input bytes than steps 1-19
	// and must not alias their cached measurement (the signature folds
	// input-region extents in precisely so that every task mapping to a
	// key measures the same value — the property the concurrent search
	// chains' determinism rests on). Expect 3 signatures total:
	// embedding + first LSTM step + the 19 steady-state steps.
	if got := e.DistinctSignatures(); got != 3 {
		t.Fatalf("distinct signatures = %d, want 3", got)
	}
}

// TestExecTimeCacheHitAllocFree guards the ROADMAP fix this cache key
// exists for: a MeasuringEstimator hit — the overwhelmingly common case
// during a search, ~3.5% of whole-search time before the lengths-only
// input signature — must not allocate. A regression here (e.g. keyFor
// materializing graph.InputRegions again) fails this test rather than
// silently slowing every task-graph build.
func TestExecTimeCacheHitAllocFree(t *testing.T) {
	g, conv := testOp(t)
	_ = g
	e := NewMeasuringEstimator(NewAnalyticModel().ExecTime, 1)
	dev := p100()
	region := conv.Out.FullRegion()
	for _, pass := range []Pass{Forward, Backward, Update} {
		e.ExecTime(conv, region, dev, pass) // warm the cache
		allocs := testing.AllocsPerRun(200, func() {
			e.ExecTime(conv, region, dev, pass)
		})
		if allocs != 0 {
			t.Errorf("%v cache hit allocates %.1f per op, want 0", pass, allocs)
		}
	}
}
