// Package perfmodel estimates the execution time of DNN operator tasks
// on devices. It substitutes for the cuDNN/cuBLAS micro-benchmarks the
// paper runs on real GPUs (docs/ARCHITECTURE.md): the AnalyticModel is a
// roofline-style device model standing in for the hardware, and the
// MeasuringEstimator reproduces FlexFlow's actual mechanism — measure an
// operation once per (kind, output size, device kind), cache the result,
// and reuse it for every task with the same signature (Section 5.1:
// "A task's exeTime is cached, and all future tasks with the same
// operation type and output size will use the cached value").
package perfmodel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/tensor"
)

// Pass distinguishes the training phases a task can belong to.
type Pass uint8

// The training phases: Forward and Backward propagation, plus Update,
// which applies accumulated gradients to a weight shard.
const (
	Forward Pass = iota
	Backward
	Update
)

// String abbreviates the pass name ("fwd", "bwd", "upd").
func (p Pass) String() string {
	switch p {
	case Forward:
		return "fwd"
	case Backward:
		return "bwd"
	case Update:
		return "upd"
	default:
		return fmt.Sprintf("Pass(%d)", uint8(p))
	}
}

// Estimator predicts how long a task computing the given output region
// of op takes on dev. Implementations must be deterministic: the
// simulator assumes task times are predictable (assumption A1).
type Estimator interface {
	ExecTime(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration
}

// efficiency is the fraction of peak FLOPs an op kind sustains; dense
// GEMM-like kernels run near peak, memory-bound elementwise ops far
// from it. These stand in for the measured kernel efficiencies of
// cuDNN/cuBLAS.
var efficiency = map[graph.OpKind]float64{
	graph.Conv2D:     0.62,
	graph.MatMul:     0.72,
	graph.Softmax:    0.68,
	graph.LSTM:       0.58,
	graph.Attention:  0.55,
	graph.Pool2D:     0.25,
	graph.Embedding:  0.10,
	graph.Concat:     0.08,
	graph.Add:        0.10,
	graph.Activation: 0.10,
	graph.Flatten:    0.08,
	graph.Stack:      0.08,
}

// AnalyticModel is the synthetic hardware: a roofline model combining
// compute time (FLOPs over effective throughput), memory time (bytes
// moved over memory bandwidth) and a fixed kernel-launch overhead.
type AnalyticModel struct {
	// LaunchOverhead is the per-kernel fixed cost. The paper's simulator
	// assumes it is negligible (A4); the runtime emulator adds a larger
	// one to create realistic simulator/hardware divergence.
	LaunchOverhead time.Duration
}

// NewAnalyticModel returns the default synthetic hardware model.
func NewAnalyticModel() *AnalyticModel {
	return &AnalyticModel{LaunchOverhead: 4 * time.Microsecond}
}

var _ Estimator = (*AnalyticModel)(nil)

// ExecTime implements Estimator.
func (m *AnalyticModel) ExecTime(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
	if op == nil {
		panic("perfmodel: ExecTime on nil op")
	}
	if pass == Update {
		// SGD update: read + write each weight element once.
		bytes := float64(out.Volume() * tensor.ElemBytes * 3)
		sec := bytes / (dev.MemBWGBs * 1e9)
		return m.LaunchOverhead + time.Duration(sec*float64(time.Second))
	}
	var flops int64
	switch pass {
	case Forward:
		flops = op.ForwardFLOPs(out)
	case Backward:
		flops = op.BackwardFLOPs(out)
	}
	if flops == 0 {
		return 0
	}
	eff := efficiency[op.Kind]
	if eff == 0 {
		eff = 0.3
	}
	computeSec := float64(flops) / (dev.PeakGFLOPS * 1e9 * eff)

	bytes := float64(out.Bytes())
	for _, r := range graph.InputRegions(op, out) {
		bytes += float64(r.Bytes())
	}
	if op.HasWeights() {
		bytes += float64(op.WeightBytes())
	}
	if pass == Backward {
		bytes *= 2
	}
	memSec := bytes / (dev.MemBWGBs * 1e9)

	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return m.LaunchOverhead + time.Duration(sec*float64(time.Second))
}

// cacheKey identifies an operator task signature. Execution time depends
// only on op kind, output size per dimension, input region extents,
// reduction depth, kernel geometry and the device model — never on
// tensor contents (A1).
//
// The input extents matter for more than accuracy: the cache is shared
// by concurrent search chains, and first-writer-wins on a key whose
// tasks could measure *different* values (same kind and output size,
// different input geometry — adjacent RNN steps, halo-clipped conv
// tasks) would make the cached value scheduling-dependent, breaking the
// search layer's worker-count determinism contract. With the inputs
// folded into the key, every task mapping to a key measures the same
// value, so fill order is irrelevant.
type cacheKey struct {
	kind             graph.OpKind
	pass             Pass
	model            string
	inChannels       int
	kernelH, kernelW int
	sizes            [4]int32 // output region extents, padded with zeros
	inputs           uint64   // FNV-1a over the input regions' extents
}

func keyFor(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) cacheKey {
	k := cacheKey{
		kind: op.Kind, pass: pass, model: dev.Model,
		inChannels: op.InChannels, kernelH: op.KernelH, kernelW: op.KernelW,
	}
	// Extents are order-sensitive but regions from the same op kind
	// always order dims the same way; offsets don't matter (A1).
	n := out.Rank()
	if n > len(k.sizes) {
		n = len(k.sizes)
	}
	for i := 0; i < n; i++ {
		k.sizes[i] = int32(out.Iv[i].Len())
	}
	if pass != Update {
		// Update cost depends only on the output (weight-shard) volume.
		// The lengths-only walk hashes the same sequence a materialized
		// graph.InputRegions call would, without allocating — this is
		// the estimator's cache-hit path, queried once per task on
		// every task-graph build (TestExecTimeCacheHitAllocFree).
		k.inputs = graph.InputRegionsSig(op, out)
	}
	return k
}

// Measurer runs a task signature on the hardware and reports its elapsed
// time. In the paper this is a real kernel launch repeated several
// times; here it is the runtime emulator's noisy clock (or, in tests,
// any function). It is called once per distinct signature.
type Measurer func(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration

// MeasuringEstimator measures each distinct task signature once (taking
// the average of Repeats runs) and serves every later query from its
// cache. This is the mechanism that makes building a task graph cost
// "tens of milliseconds" instead of a full profiling sweep.
type MeasuringEstimator struct {
	measure Measurer
	repeats int

	mu    sync.Mutex
	cache map[cacheKey]time.Duration

	hits, misses int64
}

// NewMeasuringEstimator wraps a measurer with a signature cache.
// repeats < 1 is treated as 1.
func NewMeasuringEstimator(m Measurer, repeats int) *MeasuringEstimator {
	if repeats < 1 {
		repeats = 1
	}
	return &MeasuringEstimator{measure: m, repeats: repeats, cache: make(map[cacheKey]time.Duration)}
}

var _ Estimator = (*MeasuringEstimator)(nil)

// ExecTime implements Estimator.
func (e *MeasuringEstimator) ExecTime(op *graph.Op, out tensor.Region, dev device.Device, pass Pass) time.Duration {
	key := keyFor(op, out, dev, pass)
	e.mu.Lock()
	if d, ok := e.cache[key]; ok {
		e.hits++
		e.mu.Unlock()
		return d
	}
	e.misses++
	e.mu.Unlock()

	// Measure outside the lock; concurrent misses on the same key just
	// measure twice and agree on the average.
	var total time.Duration
	for i := 0; i < e.repeats; i++ {
		total += e.measure(op, out, dev, pass)
	}
	d := total / time.Duration(e.repeats)

	e.mu.Lock()
	e.cache[key] = d
	e.mu.Unlock()
	return d
}

// Stats returns cache hit/miss counters (for the profiling-cost claims
// in Section 5).
func (e *MeasuringEstimator) Stats() (hits, misses int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses
}

// DistinctSignatures returns how many unique task signatures have been
// measured — the paper's observation (1): real DNNs use a small number
// of distinct operators.
func (e *MeasuringEstimator) DistinctSignatures() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// SignatureSummary returns a sorted human-readable listing of the cache,
// used by cmd/experiments to show what would be profiled on hardware.
func (e *MeasuringEstimator) SignatureSummary() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.cache))
	for k, v := range e.cache {
		out = append(out, fmt.Sprintf("%v/%v %s sizes=%v cin=%d k=%dx%d: %v",
			k.kind, k.pass, k.model, k.sizes, k.inChannels, k.kernelH, k.kernelW, v))
	}
	sort.Strings(out)
	return out
}
