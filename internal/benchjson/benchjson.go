// Package benchjson turns `go test -bench` output into the repo's
// BENCH_*.json trajectory files: one JSON artifact per PR recording the
// benchmark results of that change (and optionally the pre-change
// baseline), so performance wins and regressions stay visible across
// the PR sequence instead of living in commit messages. The schema and
// the regeneration workflow are documented in docs/EXPERIMENTS.md; the
// committed files are schema-checked by lint_bench_test.go and CI's
// bench-smoke step emits one per run.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the current BENCH_*.json schema version.
const SchemaVersion = 1

// ThroughputMetric is the custom metric name every trajectory file must
// carry (reported by BenchmarkProposalThroughput): the proposals priced
// per core-second, the paper's Table 4 claim as a single number.
const ThroughputMetric = "proposals/sec/core"

// Entry is one benchmark's results.
type Entry struct {
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the reported B/op (0 when -benchmem was off).
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is the reported allocs/op (0 when -benchmem was off).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom metrics (b.ReportMetric) by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is one BENCH_*.json trajectory artifact.
type File struct {
	// Schema is the file format version (SchemaVersion).
	Schema int `json:"schema"`
	// PR labels the change the file belongs to (e.g. "pr6").
	PR string `json:"pr"`
	// GoOS/GoArch/CPU echo the `go test -bench` header lines, so a
	// trajectory comparison knows when hardware changed under it.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Note is free-form context (what changed, why these benchmarks).
	Note string `json:"note,omitempty"`
	// Baseline records the pre-change results of the benchmarks the PR
	// claims to move, keyed like Benchmarks.
	Baseline map[string]Entry `json:"baseline,omitempty"`
	// Benchmarks records the post-change results, keyed by benchmark
	// name with the -GOMAXPROCS suffix stripped.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX/nmt-4" -> "BenchmarkX/nmt"). A trailing
// -N is only stripped when N is all digits, so model names containing
// dashes ("inception-v3") survive.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// Parse reads `go test -bench` output and returns the benchmark results
// plus the goos/goarch/cpu header values. Non-benchmark lines (PASS,
// ok, test logs) are ignored; a benchmark appearing twice keeps the
// last run.
func Parse(r io.Reader) (benchmarks map[string]Entry, goos, goarch, cpu string, err error) {
	benchmarks = map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, perr := strconv.ParseInt(fields[1], 10, 64)
		if perr != nil {
			continue
		}
		e := Entry{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, perr := strconv.ParseFloat(fields[i], 64)
			if perr != nil {
				return nil, "", "", "", fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		benchmarks[stripProcs(fields[0])] = e
	}
	return benchmarks, goos, goarch, cpu, sc.Err()
}

// Validate checks the trajectory-file invariants the lint test and CI
// enforce: current schema, a PR label, at least one benchmark, and a
// recorded proposals/sec/core throughput metric.
func (f *File) Validate() error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("benchjson: schema %d, want %d", f.Schema, SchemaVersion)
	}
	if f.PR == "" {
		return fmt.Errorf("benchjson: missing pr label")
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmarks recorded")
	}
	for name, e := range f.Benchmarks {
		if e.NsPerOp <= 0 {
			return fmt.Errorf("benchjson: %s: ns_per_op %v", name, e.NsPerOp)
		}
	}
	for _, e := range f.Benchmarks {
		if e.Metrics[ThroughputMetric] > 0 {
			return nil
		}
	}
	return fmt.Errorf("benchjson: no benchmark reports the %s metric", ThroughputMetric)
}

// Delta pairs one benchmark's results across two trajectory files.
// InOld/InNew distinguish a genuinely missing side from a zero entry
// (benchmarks come and go as the tracked set evolves).
type Delta struct {
	Name         string
	Old, New     Entry
	InOld, InNew bool
}

// PctNs returns the relative ns/op change in percent (negative =
// improvement), and false when either side is missing or the old value
// is zero.
func (d Delta) PctNs() (float64, bool) { return pct(d.Old.NsPerOp, d.New.NsPerOp, d.InOld && d.InNew) }

// PctBytes is PctNs for the B/op column.
func (d Delta) PctBytes() (float64, bool) {
	return pct(d.Old.BytesPerOp, d.New.BytesPerOp, d.InOld && d.InNew)
}

// PctAllocs is PctNs for the allocs/op column.
func (d Delta) PctAllocs() (float64, bool) {
	return pct(d.Old.AllocsPerOp, d.New.AllocsPerOp, d.InOld && d.InNew)
}

func pct(old, new float64, both bool) (float64, bool) {
	if !both || old == 0 {
		return 0, false
	}
	return (new - old) / old * 100, true
}

// Compare pairs the benchmarks of two trajectory files by name and
// returns the union, sorted by name — the per-benchmark delta view
// `benchdump -compare` prints.
func Compare(old, new *File) []Delta {
	names := map[string]bool{}
	for n := range old.Benchmarks {
		names[n] = true
	}
	for n := range new.Benchmarks {
		names[n] = true
	}
	out := make([]Delta, 0, len(names))
	for n := range names {
		d := Delta{Name: n}
		d.Old, d.InOld = entryAt(old.Benchmarks, n)
		d.New, d.InNew = entryAt(new.Benchmarks, n)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func entryAt(m map[string]Entry, name string) (Entry, bool) {
	e, ok := m[name]
	return e, ok
}

// Load reads and validates a BENCH_*.json file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Write marshals the file as stable, human-diffable JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
