package benchjson

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: flexflow
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDeltaSimulation/inception-v3-4         	    1178	   1109916 ns/op	  142020 B/op	    7275 allocs/op
BenchmarkDeltaSimulation/nmt-4                  	    3450	    342427 ns/op	   64908 B/op	    2732 allocs/op
BenchmarkProposalThroughput-4                   	      78	  16259758 ns/op	      3936 proposals/sec/core	 3447778 B/op	  119136 allocs/op
PASS
ok  	flexflow	4.921s
`

func TestParse(t *testing.T) {
	benchmarks, goos, goarch, cpu, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if goos != "linux" || goarch != "amd64" || !strings.Contains(cpu, "Xeon") {
		t.Fatalf("header = %q %q %q", goos, goarch, cpu)
	}
	if len(benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(benchmarks), benchmarks)
	}
	// The -GOMAXPROCS suffix is stripped; dashes in model names are not.
	nmt, ok := benchmarks["BenchmarkDeltaSimulation/nmt"]
	if !ok {
		t.Fatalf("missing nmt entry: %v", benchmarks)
	}
	if nmt.Iterations != 3450 || nmt.NsPerOp != 342427 || nmt.BytesPerOp != 64908 || nmt.AllocsPerOp != 2732 {
		t.Fatalf("nmt entry = %+v", nmt)
	}
	if _, ok := benchmarks["BenchmarkDeltaSimulation/inception-v3"]; !ok {
		t.Fatalf("inception-v3 name mangled: %v", benchmarks)
	}
	tp := benchmarks["BenchmarkProposalThroughput"]
	if tp.Metrics[ThroughputMetric] != 3936 {
		t.Fatalf("throughput entry = %+v", tp)
	}
}

func TestValidate(t *testing.T) {
	good := &File{
		Schema: SchemaVersion,
		PR:     "pr6",
		Benchmarks: map[string]Entry{
			"BenchmarkProposalThroughput": {
				Iterations: 1, NsPerOp: 10,
				Metrics: map[string]float64{ThroughputMetric: 100},
			},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*File){
		"bad schema":    func(f *File) { f.Schema = 2 },
		"no pr":         func(f *File) { f.PR = "" },
		"no benchmarks": func(f *File) { f.Benchmarks = nil },
		"no throughput": func(f *File) {
			f.Benchmarks = map[string]Entry{"BenchmarkX": {Iterations: 1, NsPerOp: 10}}
		},
		"zero ns/op": func(f *File) {
			f.Benchmarks["BenchmarkProposalThroughput"] = Entry{Iterations: 1}
		},
	} {
		f := &File{
			Schema: good.Schema,
			PR:     good.PR,
			Benchmarks: map[string]Entry{
				"BenchmarkProposalThroughput": good.Benchmarks["BenchmarkProposalThroughput"],
			},
		}
		mutate(f)
		if err := f.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-4":                          "BenchmarkX",
		"BenchmarkX-16":                         "BenchmarkX",
		"BenchmarkX":                            "BenchmarkX",
		"BenchmarkDeltaSimulation/inception-v3": "BenchmarkDeltaSimulation/inception-v3",
		"BenchmarkX/sub-case":                   "BenchmarkX/sub-case",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	old := &File{Benchmarks: map[string]Entry{
		"BenchmarkA":    {NsPerOp: 100, BytesPerOp: 2000, AllocsPerOp: 10},
		"BenchmarkGone": {NsPerOp: 50},
	}}
	new := &File{Benchmarks: map[string]Entry{
		"BenchmarkA":   {NsPerOp: 50, BytesPerOp: 1000, AllocsPerOp: 40},
		"BenchmarkNew": {NsPerOp: 7},
	}}
	deltas := Compare(old, new)
	names := make([]string, len(deltas))
	for i, d := range deltas {
		names[i] = d.Name
	}
	want := []string{"BenchmarkA", "BenchmarkGone", "BenchmarkNew"}
	if len(names) != len(want) {
		t.Fatalf("got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted union %v, want %v", names, want)
		}
	}

	a := deltas[0]
	if !a.InOld || !a.InNew {
		t.Fatalf("BenchmarkA should be on both sides: %+v", a)
	}
	if p, ok := a.PctNs(); !ok || p != -50 {
		t.Errorf("PctNs = %v,%v, want -50,true", p, ok)
	}
	if p, ok := a.PctBytes(); !ok || p != -50 {
		t.Errorf("PctBytes = %v,%v, want -50,true", p, ok)
	}
	if p, ok := a.PctAllocs(); !ok || p != 300 {
		t.Errorf("PctAllocs = %v,%v, want +300,true", p, ok)
	}

	gone, fresh := deltas[1], deltas[2]
	if !gone.InOld || gone.InNew {
		t.Errorf("BenchmarkGone sides wrong: %+v", gone)
	}
	if _, ok := gone.PctNs(); ok {
		t.Error("one-sided delta reported a percentage")
	}
	if fresh.InOld || !fresh.InNew {
		t.Errorf("BenchmarkNew sides wrong: %+v", fresh)
	}
	// Zero-valued old columns (e.g. -benchmem off in the old run) must
	// not divide by zero.
	zero := Delta{InOld: true, InNew: true, New: Entry{BytesPerOp: 5}}
	if _, ok := zero.PctBytes(); ok {
		t.Error("zero old value reported a percentage")
	}
}

// TestCompareEdgeCases covers the shapes real trajectory files produce
// that the happy-path TestCompare does not: files with nil benchmark
// maps on either side, zero-iteration baseline entries (a bench run
// that crashed mid-suite still parses), and entries with no metrics
// map at all. None of these may panic or report a percentage computed
// from a missing side.
func TestCompareEdgeCases(t *testing.T) {
	// Nil maps on both sides: an empty union, not a panic.
	if deltas := Compare(&File{}, &File{}); len(deltas) != 0 {
		t.Fatalf("nil-map compare produced %v", deltas)
	}
	// One side entirely missing its map.
	deltas := Compare(&File{}, &File{Benchmarks: map[string]Entry{
		"BenchmarkOnly": {Iterations: 3, NsPerOp: 42},
	}})
	if len(deltas) != 1 || deltas[0].InOld || !deltas[0].InNew {
		t.Fatalf("one-sided compare = %+v", deltas)
	}
	if _, ok := deltas[0].PctNs(); ok {
		t.Error("PctNs reported for a benchmark with no old side")
	}
	if _, ok := deltas[0].PctAllocs(); ok {
		t.Error("PctAllocs reported for a benchmark with no old side")
	}

	// Zero-iteration baseline entries: ns/op is zero, so every pct on
	// that column must decline rather than divide by zero; columns with
	// data on both sides still report.
	old := &File{Benchmarks: map[string]Entry{
		"BenchmarkCrashed": {Iterations: 0, AllocsPerOp: 12},
	}}
	new := &File{Benchmarks: map[string]Entry{
		"BenchmarkCrashed": {Iterations: 10, NsPerOp: 100, AllocsPerOp: 6},
	}}
	d := Compare(old, new)[0]
	if !d.InOld || !d.InNew {
		t.Fatalf("zero-iteration entry lost a side: %+v", d)
	}
	if _, ok := d.PctNs(); ok {
		t.Error("PctNs reported against a zero-ns baseline")
	}
	if p, ok := d.PctAllocs(); !ok || p != -50 {
		t.Errorf("PctAllocs = %v,%v, want -50,true", p, ok)
	}

	// Entries without metrics maps compare fine; a lookup on the nil
	// map is just absent data.
	if d.Old.Metrics[ThroughputMetric] != 0 || d.New.Metrics[ThroughputMetric] != 0 {
		t.Error("missing metrics maps should read as zero")
	}
}

// TestValidateBaselineShapes pins what Validate does and does not gate
// about baselines: the Benchmarks side must be well-formed (positive
// ns/op, throughput metric present), while Baseline entries are
// historical record — zero-iteration or zero-ns baselines load fine, so
// a trajectory file can faithfully record a baseline taken before a
// benchmark reported a given column. The improvement claims themselves
// are gated by lint_bench_test.go, not here.
func TestValidateBaselineShapes(t *testing.T) {
	f := &File{
		Schema: SchemaVersion,
		PR:     "pr9",
		Baseline: map[string]Entry{
			"BenchmarkProposalThroughput": {}, // zero everything
			"BenchmarkNoMetrics":          {Iterations: 1, NsPerOp: 5},
		},
		Benchmarks: map[string]Entry{
			"BenchmarkProposalThroughput": {
				Iterations: 1, NsPerOp: 10,
				Metrics: map[string]float64{ThroughputMetric: 100},
			},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("degenerate baseline entries must not fail validation: %v", err)
	}
	// The same degenerate entry on the Benchmarks side must fail.
	f.Benchmarks["BenchmarkBad"] = Entry{}
	if err := f.Validate(); err == nil {
		t.Fatal("zero ns/op benchmark entry accepted")
	}
}
