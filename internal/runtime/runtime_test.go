package runtime

import (
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/graph"
	"flexflow/internal/perfmodel"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

func buildTG(t *testing.T) *taskgraph.TaskGraph {
	t.Helper()
	g := graph.New("cnn")
	x := g.Input4D("x", 32, 16, 32, 32)
	c := g.Conv2D("c1", x, 32, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("p1", c, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("f", p)
	g.Dense("fc", f, 128)
	topo := device.NewSingleNode(4, "P100")
	return taskgraph.Build(g, topo, config.DataParallel(g, topo), perfmodel.NewAnalyticModel(), taskgraph.Options{})
}

func TestExecuteRunsAllTasks(t *testing.T) {
	tg := buildTG(t)
	r := Execute(tg, DefaultOptions(1))
	if r.TasksRun != tg.Alive() {
		t.Fatalf("ran %d of %d tasks", r.TasksRun, tg.Alive())
	}
	if r.Makespan <= 0 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	if len(r.BusyTime) != tg.Topo.NumDevices()+len(tg.Topo.Links) {
		t.Fatalf("busy slots = %d", len(r.BusyTime))
	}
}

func TestExecuteDeterministicPerSeed(t *testing.T) {
	tg := buildTG(t)
	a := Execute(tg, DefaultOptions(42))
	b := Execute(tg, DefaultOptions(42))
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", a.Makespan, b.Makespan)
	}
	c := Execute(tg, DefaultOptions(43))
	if c.Makespan == a.Makespan {
		t.Fatal("different seeds should perturb the makespan")
	}
}

func TestExecuteSlowerThanIdealSimulation(t *testing.T) {
	// With dispatch overhead and bandwidth inefficiency, the emulated
	// hardware must be slower than the idealized simulator (A2/A4 say
	// the simulator underestimates).
	tg := buildTG(t)
	simulated := sim.NewState(tg).Simulate()
	real := Execute(tg, Options{Seed: 1, DispatchOverhead: 10 * time.Microsecond, BandwidthEfficiency: 0.8})
	if real.Makespan <= simulated {
		t.Fatalf("emulated time %v not above simulated %v", real.Makespan, simulated)
	}
}

func TestExecuteNoOverheadMatchesSimulator(t *testing.T) {
	// With all divergence knobs off, the emulator and the simulator
	// implement the same FIFO semantics and must agree exactly.
	tg := buildTG(t)
	simulated := sim.NewState(tg).Simulate()
	real := Execute(tg, Options{Seed: 1})
	if real.Makespan != simulated {
		t.Fatalf("no-noise emulation %v != simulation %v", real.Makespan, simulated)
	}
}

func TestSimulatorWithin30PercentOfEmulation(t *testing.T) {
	// The Figure 11 claim at unit scale: for the default emulator
	// settings, the relative difference between simulated and "real"
	// time stays under 30%.
	tg := buildTG(t)
	simulated := sim.NewState(tg).Simulate()
	mean, _ := Measure(tg, DefaultOptions(7), 5)
	rel := float64(mean-simulated) / float64(mean)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.30 {
		t.Fatalf("simulator off by %.1f%% (sim %v, real %v)", rel*100, simulated, mean)
	}
}

func TestMeasureStatistics(t *testing.T) {
	tg := buildTG(t)
	mean, std := Measure(tg, DefaultOptions(3), 8)
	if mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
	if std <= 0 || std > mean/2 {
		t.Fatalf("std = %v (mean %v)", std, mean)
	}
	// n < 1 behaves as a single run.
	m1, s1 := Measure(tg, DefaultOptions(3), 0)
	if m1 <= 0 || s1 != 0 {
		t.Fatalf("single run: mean %v std %v", m1, s1)
	}
}

func TestBandwidthEfficiencyDefaults(t *testing.T) {
	tg := buildTG(t)
	// Zero efficiency is treated as 1 (no scaling) rather than dividing
	// by zero.
	r := Execute(tg, Options{Seed: 1, BandwidthEfficiency: 0})
	if r.Makespan <= 0 {
		t.Fatal("zero-efficiency option mishandled")
	}
}

func TestDependencyOrderInEmulation(t *testing.T) {
	// Spot-check FIFO + dependency semantics with a handmade diamond.
	topo := device.NewTopology("t")
	d0 := topo.AddDevice(device.Device{Kind: device.GPU})
	d1 := topo.AddDevice(device.Device{Kind: device.GPU})
	topo.AddLink(device.NVLink, d0, d1, 10, 0)
	u := time.Millisecond
	a := &taskgraph.Task{Kind: taskgraph.Compute, Device: d0, Link: -1, Exe: u}
	b := &taskgraph.Task{Kind: taskgraph.Compute, Device: d0, Link: -1, Exe: u}
	c := &taskgraph.Task{Kind: taskgraph.Compute, Device: d1, Link: -1, Exe: u}
	d := &taskgraph.Task{Kind: taskgraph.Compute, Device: d1, Link: -1, Exe: u}
	taskgraph.Connect(a, b)
	taskgraph.Connect(a, c)
	taskgraph.Connect(b, d)
	taskgraph.Connect(c, d)
	tg := taskgraph.Manual(topo, []*taskgraph.Task{a, b, c, d})
	r := Execute(tg, Options{Seed: 1})
	// a then {b, c} in parallel then d: 3 ms.
	if r.Makespan != 3*u {
		t.Fatalf("diamond makespan = %v, want 3ms", r.Makespan)
	}
}
