// Package runtime emulates the FlexFlow distributed runtime (Section 7)
// executing a task graph on "real" hardware. It plays the role the
// Legion-based GPU runtime plays in the paper: the ground truth that the
// execution simulator is validated against (Figure 11).
//
// The emulator deliberately violates the simulator's assumptions in the
// ways real machines do:
//
//   - A1 (predictable task times): task durations get multiplicative
//     log-normal noise, seeded per run.
//   - A2 (fully-utilizable bandwidth): transfers achieve only a fraction
//     of nominal link bandwidth, and per-transfer protocol overhead is
//     added.
//   - A4 (negligible runtime overhead): every task pays a dispatch
//     overhead the simulator does not model.
//
// Scheduling remains FIFO per device (A3 holds on real GPUs). The
// resulting "measured" times differ from simulated ones by bounded,
// realistic amounts — which is exactly the regime Figure 11 evaluates.
package runtime

import (
	"container/heap"
	"math"
	"math/rand"
	"time"

	"flexflow/internal/taskgraph"
)

// Options configure the hardware emulation.
type Options struct {
	// Seed drives the per-task noise (different seeds = different runs).
	Seed int64
	// NoiseStdDev is the sigma of the log-normal duration noise
	// (0.06 means task times vary by roughly +-6%).
	NoiseStdDev float64
	// DispatchOverhead is the per-task runtime cost invisible to the
	// simulator.
	DispatchOverhead time.Duration
	// BandwidthEfficiency scales communication: a transfer predicted to
	// take t runs in t/BandwidthEfficiency before noise.
	BandwidthEfficiency float64
}

// DefaultOptions model a well-tuned cluster: ~6% duration jitter, 6µs
// dispatch overhead, 88% achieved bandwidth.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                seed,
		NoiseStdDev:         0.06,
		DispatchOverhead:    6 * time.Microsecond,
		BandwidthEfficiency: 0.88,
	}
}

// Report is the outcome of one emulated iteration.
type Report struct {
	Makespan time.Duration
	// BusyTime per resource (devices then links), for utilization plots.
	BusyTime []time.Duration
	// TasksRun counts executed tasks.
	TasksRun int
}

// Execute runs one training iteration of the task graph on the emulated
// hardware and reports the measured wall-clock time.
func Execute(tg *taskgraph.TaskGraph, opts Options) Report {
	if opts.BandwidthEfficiency <= 0 {
		opts.BandwidthEfficiency = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	numDevices := tg.Topo.NumDevices()
	numRes := numDevices + len(tg.Topo.Links)

	// Perturbed duration per task, drawn in task-ID order for
	// reproducibility independent of scheduling order.
	a := tg.Adj()
	dur := make(map[int]time.Duration, len(tg.Tasks))
	for _, t := range tg.Tasks {
		if !tg.Live(t) {
			continue
		}
		d := t.Exe
		if t.Kind == taskgraph.Comm {
			d = time.Duration(float64(d) / opts.BandwidthEfficiency)
		}
		if opts.NoiseStdDev > 0 {
			factor := math.Exp(rng.NormFloat64() * opts.NoiseStdDev)
			d = time.Duration(float64(d) * factor)
		}
		dur[t.ID] = d + opts.DispatchOverhead
	}

	// Event-driven FIFO execution: tasks become ready when all inputs
	// complete; each resource runs its ready tasks in arrival order.
	// Adjacency rows hold live slots only, so no dead filters needed.
	pq := &evHeap{}
	remaining := make(map[int]int, len(tg.Tasks))
	alive := 0
	for _, t := range tg.Tasks {
		if !tg.Live(t) {
			continue
		}
		alive++
		n := len(a.In[t.Slot])
		remaining[t.ID] = n
		if n == 0 {
			heap.Push(pq, evHeapItem{0, t.ID, t})
		}
	}

	resFree := make([]time.Duration, numRes)
	busy := make([]time.Duration, numRes)
	endAt := make(map[int]time.Duration, alive)
	var makespan time.Duration
	run := 0
	for pq.Len() > 0 {
		e := heap.Pop(pq).(evHeapItem)
		res := e.t.ScheduleKey(numDevices)
		start := e.ready
		if resFree[res] > start {
			start = resFree[res]
		}
		end := start + dur[e.t.ID]
		resFree[res] = end
		busy[res] += dur[e.t.ID]
		endAt[e.t.ID] = end
		if end > makespan {
			makespan = end
		}
		run++
		for _, ss := range a.Out[e.t.Slot] {
			succ := a.Task[ss]
			remaining[succ.ID]--
			if remaining[succ.ID] == 0 {
				ready := time.Duration(0)
				for _, ps := range a.In[ss] {
					if end := endAt[int(a.ID[ps])]; end > ready {
						ready = end
					}
				}
				heap.Push(pq, evHeapItem{ready, succ.ID, succ})
			}
		}
	}
	if run != alive {
		panic("runtime: not all tasks executed (cyclic task graph?)")
	}
	return Report{Makespan: makespan, BusyTime: busy, TasksRun: run}
}

// Measure runs n emulated iterations with distinct seeds and returns the
// mean and standard deviation of the measured per-iteration time — the
// "real execution time" axis of Figure 11.
func Measure(tg *taskgraph.TaskGraph, base Options, n int) (mean, std time.Duration) {
	if n < 1 {
		n = 1
	}
	times := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		o := base
		o.Seed = base.Seed + int64(i)*7919
		r := Execute(tg, o)
		times[i] = float64(r.Makespan)
		sum += times[i]
	}
	m := sum / float64(n)
	var varsum float64
	for _, t := range times {
		varsum += (t - m) * (t - m)
	}
	return time.Duration(m), time.Duration(math.Sqrt(varsum / float64(n)))
}

type evHeapItem = struct {
	ready time.Duration
	id    int
	t     *taskgraph.Task
}

type evHeap []evHeapItem

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].id < h[j].id
}
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(evHeapItem)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
