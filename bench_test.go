// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact; see docs/EXPERIMENTS.md's registry map) plus substrate
// micro-benchmarks for the components the paper's claims rest on: task
// graph construction, the full vs delta simulation algorithms (Table 4's
// subject), and the search loop.
//
// Run everything:
//
//	go test -bench=. -benchmem
package flexflow

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/device"
	"flexflow/internal/experiments"
	"flexflow/internal/graph"
	"flexflow/internal/models"
	"flexflow/internal/perfmodel"
	"flexflow/internal/runtime"
	"flexflow/internal/search"
	"flexflow/internal/sim"
	"flexflow/internal/taskgraph"
)

// benchScale keeps benchmark iterations fast while exercising the same
// code paths as the paper-scale runs.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:         "bench",
		ModelFactor:  8,
		DeviceCounts: []int{1, 4},
		SearchIters:  60,
		SearchBudget: 5 * time.Second,
		Seed:         1,
	}
}

func benchGraph(b *testing.B, name string, factor int) *graph.Graph {
	b.Helper()
	spec, err := models.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return spec.BuildScaled(factor)
}

func newEstimator() perfmodel.Estimator {
	return perfmodel.NewMeasuringEstimator(perfmodel.NewAnalyticModel().ExecTime, 1)
}

// --- Per-figure / per-table benchmarks -------------------------------

func BenchmarkTable1ParallelizableDims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table1(); len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig7 measures one Figure 7 cell: baselines + search for one
// model on one cluster size.
func BenchmarkFig7(b *testing.B) {
	for _, model := range []string{"alexnet", "inception-v3", "resnet-101", "rnntc", "rnnlm", "nmt"} {
		b.Run(model, func(b *testing.B) {
			s := benchScale()
			for i := 0; i < b.N; i++ {
				experiments.Fig7(context.Background(), s, []string{model}, []string{"P100"})
			}
		})
	}
}

func BenchmarkFig8NMT(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(context.Background(), s, 4)
	}
}

func BenchmarkFig9EndToEnd(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig9(context.Background(), s, 4)
	}
}

func BenchmarkFig10aVsReinforce(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig10a(context.Background(), s)
	}
}

func BenchmarkFig10bVsOptCNN(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig10b(context.Background(), s, 4)
	}
}

func BenchmarkFig11SimulatorAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig11(s, 3)
	}
}

func BenchmarkFig12SearchCurves(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig12(context.Background(), s, 4)
	}
}

// BenchmarkTable4 is the paper's headline simulator ablation: the same
// search with the full vs the delta simulation algorithm.
func BenchmarkTable4(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"full-sim", true}, {"delta-sim", false}} {
		b.Run(mode.name, func(b *testing.B) {
			g := benchGraph(b, "rnnlm", 8)
			topo := device.ClusterFor("P100", 4)
			for i := 0; i < b.N; i++ {
				est := newEstimator()
				opts := search.DefaultOptions()
				opts.MaxIters = 60
				opts.FullSim = mode.full
				search.MCMC(context.Background(), g, topo, est, []*config.Strategy{config.DataParallel(g, topo)}, opts)
			}
		})
	}
}

func BenchmarkFig13CaseInception(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.CaseStudy(context.Background(), s, "inception-v3")
	}
}

func BenchmarkFig14CaseNMT(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.CaseStudy(context.Background(), s, "nmt")
	}
}

// --- Concurrent runtime benchmarks ------------------------------------

// mcmcBenchInitials builds an 8-chain initial set (data parallelism plus
// seeded random strategies) so the chain pool has enough independent
// work to spread across cores.
func mcmcBenchInitials(g *graph.Graph, topo *device.Topology) []*config.Strategy {
	rng := rand.New(rand.NewSource(1))
	initials := []*config.Strategy{config.DataParallel(g, topo)}
	for len(initials) < 8 {
		initials = append(initials, config.Random(g, topo, rng))
	}
	return initials
}

func benchMCMC(b *testing.B, workers int) {
	g := benchGraph(b, "rnnlm", 8)
	topo := device.NewSingleNode(4, "P100")
	initials := mcmcBenchInitials(g, topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := newEstimator()
		opts := search.DefaultOptions()
		opts.MaxIters = 60
		opts.Workers = workers
		search.MCMC(context.Background(), g, topo, est, initials, opts)
	}
}

// BenchmarkMCMCSerial and BenchmarkMCMCParallel run the identical
// 8-chain search with one worker vs all CPUs; the parallel run returns
// bit-identical results (see search's determinism contract), so the
// ratio of these two is pure speedup.
func BenchmarkMCMCSerial(b *testing.B)   { benchMCMC(b, 1) }
func BenchmarkMCMCParallel(b *testing.B) { benchMCMC(b, 0) }

// BenchmarkExperimentsSuite runs a representative slice of the registry
// (the per-data-point sweeps the harness fans out) serially vs across
// the worker pool, tracking the suite-level speedup in the bench
// trajectory. The optimality and case-study runners are excluded — their
// cost is dominated by one exhaustive DFS and an 8x-budget search, which
// BenchmarkMCMC* and the search package's own tests already cover.
func BenchmarkExperimentsSuite(b *testing.B) {
	ids := []string{"table1", "fig7", "fig8", "fig9", "fig11", "table4", "profiling"}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			s := benchScale()
			s.Workers = mode.workers
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					if _, err := experiments.Run(context.Background(), id, s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// benchNeighborhood sweeps the full one-op neighbour set of data
// parallelism on rnnlm — the Polish inner loop — with a fixed worker
// count. Serial and parallel return bit-identical results (see
// TestNeighborhoodParallelMatchesSerial), so the ratio of the two
// benchmarks below is pure speedup.
func benchNeighborhood(b *testing.B, workers int) {
	g := benchGraph(b, "rnnlm", 8)
	topo := device.NewSingleNode(4, "P100")
	est := newEstimator()
	s := config.DataParallel(g, topo)
	enum := config.EnumOptions{MaxDegree: 4}
	// Warm the estimator cache so both variants measure the sweep, not
	// first-touch profiling.
	search.Neighborhood(g, topo, est, s, enum, taskgraph.Options{}, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.Neighborhood(g, topo, est, s, enum, taskgraph.Options{}, workers)
	}
}

func BenchmarkNeighborhoodSerial(b *testing.B)   { benchNeighborhood(b, 1) }
func BenchmarkNeighborhoodParallel(b *testing.B) { benchNeighborhood(b, 0) }

// BenchmarkChainSetup measures what it costs to stand up one MCMC chain
// (task graph + simulated timeline), the per-chain setup the Plan/State
// split exists to shrink: "build-per-chain" is the old path (every
// chain runs Build + Simulate itself), "shared-plan" is the new one
// (chains clone a structural Instance and a base-timeline State from a
// Plan compiled once). Run with -benchmem: the allocs/op gap is the
// acceptance criterion.
func BenchmarkChainSetup(b *testing.B) {
	g := benchGraph(b, "nmt", 8)
	topo := device.NewSingleNode(4, "P100")
	est := newEstimator()
	s := config.DataParallel(g, topo)
	b.Run("build-per-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tg := taskgraph.Build(g, topo, s.Clone(), est, taskgraph.Options{})
			sim.NewState(tg).Simulate()
		}
	})
	b.Run("shared-plan", func(b *testing.B) {
		plan := taskgraph.Compile(g, topo, s.Clone(), est, taskgraph.Options{})
		base := sim.NewState(plan.Base())
		base.Simulate()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst := plan.Instance()
			st := base.CloneFor(inst)
			_ = st.Makespan // the chain's starting cost, no Simulate needed
		}
	})
}

// BenchmarkChainSetupSynth100k is BenchmarkChainSetup at the synthetic
// 100k-task roofline (see internal/models/synth.go): with copy-on-write
// instances the shared-plan cost is dominated by the timeline clone and
// stays far under the per-chain Build+Simulate, no matter the scale.
func BenchmarkChainSetupSynth100k(b *testing.B) {
	g := benchGraph(b, "synth-100k", 1)
	topo := device.NewSingleNode(4, "P100")
	est := newEstimator()
	s := config.DataParallel(g, topo)
	b.Run("build-per-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tg := taskgraph.Build(g, topo, s.Clone(), est, taskgraph.Options{})
			sim.NewState(tg).Simulate()
		}
	})
	b.Run("shared-plan", func(b *testing.B) {
		plan := taskgraph.Compile(g, topo, s.Clone(), est, taskgraph.Options{})
		base := sim.NewState(plan.Base())
		base.Simulate()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst := plan.Instance()
			st := base.CloneFor(inst)
			_ = st.Makespan
		}
	})
}

// --- Substrate micro-benchmarks ---------------------------------------

// BenchmarkTaskGraphBuild measures BUILDTASKGRAPH (Algorithm 1 line 2).
func BenchmarkTaskGraphBuild(b *testing.B) {
	for _, model := range []string{"inception-v3", "nmt"} {
		b.Run(model, func(b *testing.B) {
			g := benchGraph(b, model, 8)
			topo := device.NewSingleNode(4, "P100")
			s := config.DataParallel(g, topo)
			est := newEstimator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				taskgraph.Build(g, topo, s, est, taskgraph.Options{})
			}
		})
	}
}

// BenchmarkFullSimulation measures Algorithm 1's timeline construction.
func BenchmarkFullSimulation(b *testing.B) {
	for _, model := range []string{"inception-v3", "nmt"} {
		b.Run(model, func(b *testing.B) {
			g := benchGraph(b, model, 8)
			topo := device.NewSingleNode(4, "P100")
			tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), newEstimator(), taskgraph.Options{})
			st := sim.NewState(tg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Simulate()
			}
		})
	}
}

// BenchmarkDeltaSimulation measures Algorithm 2: one config change,
// incremental re-simulation, and the revert. The proposal sequence
// (random op, random candidate, the original config to revert to) is
// generated before the timer starts, so ns/op and allocs/op measure
// ReplaceConfig+ApplyDelta only — not the RNG or config cloning of the
// harness.
func BenchmarkDeltaSimulation(b *testing.B) {
	for _, c := range []struct {
		model  string
		factor int
	}{
		{"inception-v3", 8},
		{"nmt", 8},
		// The synthetic 50k-task class (factor 1 = full size): the delta
		// algorithm's per-proposal cost must stay local to the mutated op
		// even when the surrounding graph is two orders of magnitude
		// bigger than the paper's models.
		{"synth-50k", 1},
	} {
		model, factor := c.model, c.factor
		b.Run(model, func(b *testing.B) {
			g := benchGraph(b, model, factor)
			topo := device.NewSingleNode(4, "P100")
			tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), newEstimator(), taskgraph.Options{})
			st := sim.NewState(tg)
			st.Simulate()
			rng := rand.New(rand.NewSource(1))
			ops := g.ComputeOps()
			type proposal struct {
				opID     int
				cfg, old *config.Config
			}
			// Every iteration reverts, so each proposal's "old" config is
			// the op's original one regardless of cycling order.
			props := make([]proposal, 256)
			for i := range props {
				op := ops[rng.Intn(len(ops))]
				props[i] = proposal{
					opID: op.ID,
					cfg:  config.RandomConfig(op, topo, rng),
					old:  tg.Strat.Config(op.ID).Clone(),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := props[i%len(props)]
				st.ApplyDelta(tg.ReplaceConfig(p.opID, p.cfg))
				st.ApplyDelta(tg.ReplaceConfig(p.opID, p.old))
			}
		})
	}
}

// BenchmarkProposalThroughput is the tracked search-throughput artifact
// (see docs/EXPERIMENTS.md's BENCH_*.json trajectory): it prices a
// pre-generated, op-grouped proposal batch through search.EvaluateBatch
// against one shared plan and base timeline — the delta-simulator hot
// path as the MCMC/Neighborhood inner loops drive it — and reports
// proposals/sec/core as a custom metric. The batch runs on one
// goroutine, so proposals per wall-second here are proposals per
// core-second.
func BenchmarkProposalThroughput(b *testing.B) { benchProposalThroughput(b, "nmt", 8) }

// BenchmarkProposalThroughputSynth50k is the same artifact at the
// synthetic 50k-task class: steady-state proposal pricing against a
// graph far past the paper's model sizes, where the copy-on-write
// instance and the delta simulator carry the whole load.
func BenchmarkProposalThroughputSynth50k(b *testing.B) { benchProposalThroughput(b, "synth-50k", 1) }

func benchProposalThroughput(b *testing.B, model string, factor int) {
	g := benchGraph(b, model, factor)
	topo := device.NewSingleNode(4, "P100")
	est := newEstimator()
	plan := taskgraph.Compile(g, topo, config.DataParallel(g, topo), est, taskgraph.Options{})
	base := sim.NewState(plan.Base())
	base.Simulate()

	rng := rand.New(rand.NewSource(1))
	ops := g.ComputeOps()
	const batch = 64
	props := make([]search.Proposal, 0, batch)
	for len(props) < batch {
		// Four candidates per op (grouped, so same-op proposals chain
		// without reverts), skipping candidates equal to the original.
		op := ops[(len(props)/4)%len(ops)]
		cand := config.RandomConfig(op, topo, rng)
		if cand.Equal(plan.Base().Strat.Config(op.ID)) {
			continue
		}
		props = append(props, search.Proposal{OpID: op.ID, Cfg: cand})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.EvaluateBatch(plan, base, props)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "proposals/sec/core")
	}
}

// BenchmarkMCMCProposalBatch is the Options.ProposalBatch sweep behind
// the measured default (search.DefaultProposalBatch): one single-chain
// delta-mode MCMC walk per op at each batch size, on the small and the
// 50k-task synthetic class, with the default Beta (so acceptance rates
// are the realistic search regime, not a degenerate all-reject walk).
// Each batch size is its own deterministic walk, so ns/op differences
// are pure batching overhead/benefit: a round's later drafts are priced
// against the pre-move point and discarded when an earlier draft wins.
// The sweep is recorded in BENCH_pr9.json; re-run it (docs/EXPERIMENTS
// .md) before moving the default.
func BenchmarkMCMCProposalBatch(b *testing.B) {
	for _, c := range []struct {
		model  string
		factor int
		iters  int
	}{
		{"synth-2k", 1, 400},
		{"synth-50k", 1, 24},
	} {
		g := benchGraph(b, c.model, c.factor)
		topo := device.NewSingleNode(4, "P100")
		initials := []*config.Strategy{config.DataParallel(g, topo)}
		for _, batch := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/batch=%d", c.model, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					est := newEstimator()
					opts := search.DefaultOptions()
					opts.MaxIters = c.iters
					opts.ProposalBatch = batch
					res := search.MCMC(context.Background(), g, topo, est, initials, opts)
					if res.Best == nil || res.Iters == 0 {
						b.Fatalf("batch=%d: degenerate search: %+v", batch, res)
					}
				}
			})
		}
	}
}

// BenchmarkMCMCLocality is the proposal-locality sweep behind
// Options.Locality (the PR 10 trajectory artifact, gated by
// TestBenchPR10LocalityImproves): one single-chain delta-mode MCMC walk
// per policy on the synthetic 50k- and 100k-task classes, every policy
// at the same iteration budget from the same data-parallel start. Each
// run reports two custom metrics next to ns/op: best-makespan-us (the
// search quality the walk reached) and suffix-tasks/proposal (the mean
// evaluated-suffix size the delta simulator paid per proposal — the
// quantity locality-aware sampling exists to shrink). The acceptance
// comparison is within-file across policies: a non-uniform policy must
// either beat uniform's makespan >=1.3x at the equal budget, or match
// its quality while re-evaluating >=1.3x fewer suffix tasks.
func BenchmarkMCMCLocality(b *testing.B) {
	for _, c := range []struct {
		model string
		iters int
	}{
		{"synth-50k", 240},
		{"synth-100k", 240},
	} {
		g := benchGraph(b, c.model, 1)
		topo := device.NewSingleNode(4, "P100")
		initials := []*config.Strategy{config.DataParallel(g, topo)}
		for _, loc := range []search.Locality{search.LocalityUniform, search.LocalityLateBiased, search.LocalityMeasured} {
			b.Run(fmt.Sprintf("%s/locality=%s", c.model, loc), func(b *testing.B) {
				var best time.Duration
				var suffix, iters int64
				for i := 0; i < b.N; i++ {
					est := newEstimator()
					opts := search.DefaultOptions()
					opts.MaxIters = c.iters
					opts.Locality = loc
					res := search.MCMC(context.Background(), g, topo, est, initials, opts)
					if res.Best == nil || res.Iters == 0 {
						b.Fatalf("locality=%s: degenerate search: %+v", loc, res)
					}
					best = res.BestCost
					suffix += res.SimStats.SuffixTasks
					iters += int64(res.Iters)
				}
				b.ReportMetric(float64(best.Microseconds()), "best-makespan-us")
				b.ReportMetric(float64(suffix)/float64(iters), "suffix-tasks/proposal")
			})
		}
	}
}

// BenchmarkRuntimeEmulation measures one "real" iteration of the
// distributed-runtime emulator.
func BenchmarkRuntimeEmulation(b *testing.B) {
	g := benchGraph(b, "inception-v3", 8)
	topo := device.NewSingleNode(4, "P100")
	tg := taskgraph.Build(g, topo, config.DataParallel(g, topo), newEstimator(), taskgraph.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.Execute(tg, runtime.DefaultOptions(int64(i)))
	}
}

// BenchmarkMeasuringEstimator shows the signature cache collapsing
// repeated queries (the "tens of milliseconds" profiling claim).
func BenchmarkMeasuringEstimator(b *testing.B) {
	g := benchGraph(b, "nmt", 8)
	topo := device.NewSingleNode(4, "P100")
	analytic := perfmodel.NewAnalyticModel()
	est := perfmodel.NewMeasuringEstimator(analytic.ExecTime, 1)
	dev := topo.Device(0)
	ops := g.ComputeOps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i%len(ops)]
		est.ExecTime(op, op.Out.FullRegion(), dev, perfmodel.Forward)
	}
}
