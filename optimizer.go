package flexflow

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"flexflow/internal/config"
	"flexflow/internal/search"
	"flexflow/internal/taskgraph"
)

// Problem bundles everything a strategy optimizer consumes: the operator
// graph to parallelize, the device topology to parallelize it over, and
// the performance model that prices tasks. Estimator may be nil, in
// which case NewEstimator() is used.
type Problem struct {
	Graph     *Graph
	Topology  *Topology
	Estimator Estimator
}

// ProgressEvent is one streaming progress sample from a running
// optimizer; see OptimizeOptions.OnEvent.
type ProgressEvent = search.ProgressEvent

// OptimizeOptions configure one Optimize call. The zero value works for
// every registered optimizer; fields an algorithm does not use are
// ignored.
type OptimizeOptions struct {
	// MaxIters caps the algorithm's unit of work: MCMC proposals per
	// initial strategy, REINFORCE episodes, polish descent rounds
	// (0 = the algorithm's default).
	MaxIters int
	// Budget caps MCMC search time per chain in deterministic virtual
	// time: proposals are priced by the active cost model (Cost, the
	// profile installed via SetCostProfile, or the built-in defaults),
	// so a budgeted run executes a fixed proposal count and replays
	// exactly (0 = none). Wall-clock limits belong to the context —
	// pass a context.WithTimeout/WithDeadline context to Optimize.
	Budget time.Duration
	// Beta is the MCMC Metropolis-Hastings temperature (0 = default 15).
	Beta float64
	// Seed makes randomized optimizers reproducible (0 = default 1).
	Seed int64
	// IncludeExpert adds the expert-designed strategy to MCMC's initial
	// candidates alongside data parallelism and a random strategy.
	IncludeExpert bool
	// Workers caps this Optimize call's share of the process-wide
	// worker pool — MCMC chains, exhaustive DFS subtrees, REINFORCE
	// episode rollouts, Neighborhood sweeps (0 = the pool's full
	// bound). Results are identical for every value and every pool
	// size.
	//
	// Deprecated: size the shared pool once with SetWorkers instead of
	// capping individual calls; see docs/CONCURRENCY.md.
	Workers int
	// Initial seeds the search with an existing strategy: MCMC runs a
	// single chain from it, polish descends from it. When nil, MCMC
	// uses the paper's default initial candidates and polish starts
	// from data parallelism.
	Initial *Strategy
	// MaxDegree bounds per-dimension partitioning degrees wherever an
	// optimizer enumerates candidate configurations (exhaustive,
	// optcnn, polish); 0 means the algorithm's default.
	MaxDegree int
	// MaxCandidatesPerOp truncates each op's candidate list in the
	// exhaustive search (0 = default 6; the paper's study likewise
	// restricts the enumerated space to stay tractable).
	MaxCandidatesPerOp int
	// FullSim makes every MCMC proposal run the full simulation
	// algorithm instead of the delta algorithm (the Table 4 ablation).
	FullSim bool
	// Locality selects MCMC's proposal-locality policy: "" or "uniform"
	// (the classic walk, bit-identical to earlier releases),
	// "late-biased", "stratified", or "measured" — the non-uniform
	// policies steer proposals toward ops whose tasks sit late in the
	// chain's current timeline, where the delta simulator re-evaluates
	// the least (see docs/ARCHITECTURE.md, "Proposal locality"). The
	// policy changes the resulting strategy, so it participates in
	// Fingerprint. Unknown names fail Optimize with an error. Ignored in
	// FullSim mode and by the non-MCMC algorithms.
	Locality string
	// Cost explicitly prices proposals for the virtual-time Budget,
	// overriding the installed cost profile (see SetCostProfile). Nil
	// uses the profile installed process-wide, falling back to the
	// built-in order-of-magnitude defaults. It sits at the top of the
	// cost precedence chain: built-in defaults → installed profile →
	// per-model override → this field.
	Cost CostModel
	// OnEvent, when non-nil, streams progress: best-so-far cost,
	// proposal/episode count and the emitting chain id, as the search
	// runs. Called concurrently from optimizer goroutines — the
	// callback must be safe for concurrent use and must not block.
	OnEvent func(ProgressEvent)
}

// Result is the outcome of an Optimize call.
type Result struct {
	// Algorithm is the registry name of the optimizer that produced it.
	Algorithm string
	// Best is the best strategy discovered. On a cancelled run it holds
	// the best strategy found before cancellation, and may be nil if
	// the optimizer was cancelled before evaluating anything.
	Best *Strategy
	// BestCost is the simulated per-iteration time of Best.
	BestCost time.Duration
	// Iters counts the algorithm's work units: MCMC proposals,
	// exhaustive leaves simulated, REINFORCE episodes, polish rounds.
	Iters int
	// SearchTime is the wall clock spent.
	SearchTime time.Duration
}

// Optimizer is the uniform contract over the paper's strategy-search
// algorithms. Implementations honor context cancellation by returning
// promptly with the best strategy found so far (and ctx.Err()), and
// stream progress through OptimizeOptions.OnEvent.
type Optimizer interface {
	// Name returns the registry name of the algorithm.
	Name() string
	// Optimize searches for a parallelization strategy for the problem.
	// A non-nil error with a non-nil Result.Best means the search was
	// interrupted but still produced a usable best-so-far strategy.
	Optimize(ctx context.Context, p Problem, opts OptimizeOptions) (Result, error)
}

var (
	optimizersMu sync.RWMutex
	optimizers   = map[string]func() Optimizer{}
)

// RegisterOptimizer makes an optimizer constructible by name through
// GetOptimizer. The built-in algorithms ("mcmc", "exhaustive", "optcnn",
// "reinforce", "polish") register themselves at init; callers may plug
// in additional implementations. Registering a duplicate name or a nil
// constructor panics, mirroring database/sql.Register.
func RegisterOptimizer(name string, ctor func() Optimizer) {
	optimizersMu.Lock()
	defer optimizersMu.Unlock()
	if ctor == nil {
		panic("flexflow: RegisterOptimizer with nil constructor")
	}
	if _, dup := optimizers[name]; dup {
		panic(fmt.Sprintf("flexflow: RegisterOptimizer called twice for %q", name))
	}
	optimizers[name] = ctor
}

// GetOptimizer returns a new instance of the named optimizer, or an
// error naming the registered alternatives.
func GetOptimizer(name string) (Optimizer, error) {
	optimizersMu.RLock()
	ctor, ok := optimizers[name]
	optimizersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("flexflow: unknown optimizer %q (have %v)", name, Optimizers())
	}
	return ctor(), nil
}

// Optimizers lists the registered optimizer names, sorted.
func Optimizers() []string {
	optimizersMu.RLock()
	defer optimizersMu.RUnlock()
	out := make([]string, 0, len(optimizers))
	for name := range optimizers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterOptimizer("mcmc", func() Optimizer { return mcmcOptimizer{} })
	RegisterOptimizer("exhaustive", func() Optimizer { return exhaustiveOptimizer{} })
	RegisterOptimizer("optcnn", func() Optimizer { return optcnnOptimizer{} })
	RegisterOptimizer("reinforce", func() Optimizer { return reinforceOptimizer{} })
	RegisterOptimizer("polish", func() Optimizer { return polishOptimizer{} })
}

// checkProblem validates the shared preconditions and fills the
// estimator default.
func checkProblem(p Problem) (Problem, error) {
	if p.Graph == nil || p.Topology == nil {
		return p, fmt.Errorf("flexflow: Problem needs a Graph and a Topology")
	}
	if p.Estimator == nil {
		p.Estimator = NewEstimator()
	}
	return p, nil
}

// enumFor derives the candidate-enumeration bound shared by the
// enumerating optimizers.
func enumFor(p Problem, o OptimizeOptions, defaultMaxDegree int) config.EnumOptions {
	max := o.MaxDegree
	if max <= 0 {
		max = defaultMaxDegree
	}
	if n := len(p.Topology.GPUs()); max > n && n > 0 {
		max = n
	}
	return config.EnumOptions{MaxDegree: max}
}

// mcmcOptimizer is the paper's execution optimizer (Section 6): MCMC
// over the SOAP space with the delta simulator as cost oracle.
type mcmcOptimizer struct{}

func (mcmcOptimizer) Name() string { return "mcmc" }

func (mcmcOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	p, err := checkProblem(p)
	if err != nil {
		return Result{Algorithm: "mcmc"}, err
	}
	opts := search.DefaultOptions()
	if o.MaxIters > 0 {
		opts.MaxIters = o.MaxIters
	}
	if o.Budget > 0 {
		opts.Budget = o.Budget
	}
	if o.Beta > 0 {
		opts.Beta = o.Beta
	}
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	opts.Workers = o.Workers
	opts.FullSim = o.FullSim
	loc, err := search.ParseLocality(o.Locality)
	if err != nil {
		return Result{Algorithm: "mcmc"}, err
	}
	opts.Locality = loc
	opts.Cost = o.Cost
	opts.OnEvent = o.OnEvent
	var initials []*Strategy
	if o.Initial != nil {
		initials = []*Strategy{o.Initial.Clone()}
	} else {
		initials = search.Initials(p.Graph, p.Topology, opts.Seed, o.IncludeExpert)
	}
	res := search.MCMC(ctx, p.Graph, p.Topology, p.Estimator, initials, opts)
	return Result{
		Algorithm: "mcmc", Best: res.Best, BestCost: res.BestCost,
		Iters: res.Iters, SearchTime: res.SearchTime,
	}, ctx.Err()
}

// exhaustiveOptimizer is the Section 8.4 optimality baseline: pruned
// depth-first search over a restricted candidate space. Exponential —
// only sensible for small models and low MaxDegree.
type exhaustiveOptimizer struct{}

func (exhaustiveOptimizer) Name() string { return "exhaustive" }

func (exhaustiveOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	p, err := checkProblem(p)
	if err != nil {
		return Result{Algorithm: "exhaustive"}, err
	}
	maxCands := o.MaxCandidatesPerOp
	if maxCands <= 0 {
		maxCands = 6
	}
	start := time.Now()
	res := search.Exhaustive(ctx, p.Graph, p.Topology, p.Estimator, search.ExhaustiveOptions{
		Enum:               enumFor(p, o, 2),
		MaxCandidatesPerOp: maxCands,
		Workers:            o.Workers,
		OnEvent:            o.OnEvent,
	})
	out := Result{
		Algorithm: "exhaustive", Iters: int(res.Explored), SearchTime: time.Since(start),
	}
	if res.Best != nil {
		out.Best, out.BestCost = res.Best, res.BestCost
	}
	return out, ctx.Err()
}

// optcnnOptimizer is the OptCNN baseline (Section 8.2.3): a dynamic
// program over linear graphs under a no-inter-op-parallelism cost model,
// greedily linearized on non-linear graphs.
type optcnnOptimizer struct{}

func (optcnnOptimizer) Name() string { return "optcnn" }

func (optcnnOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	p, err := checkProblem(p)
	if err != nil {
		return Result{Algorithm: "optcnn"}, err
	}
	start := time.Now()
	enum := config.EnumOptions{MaxDegree: o.MaxDegree}
	s, err := search.OptCNN(ctx, p.Graph, p.Topology, p.Estimator, enum)
	if err != nil {
		return Result{Algorithm: "optcnn", SearchTime: time.Since(start)}, err
	}
	cost, _ := search.Evaluate(p.Graph, p.Topology, p.Estimator, s, taskgraph.Options{})
	emitFinal(o.OnEvent, "optcnn", cost)
	return Result{
		Algorithm: "optcnn", Best: s, BestCost: cost,
		Iters: p.Graph.NumOps(), SearchTime: time.Since(start),
	}, nil
}

// reinforceOptimizer is the REINFORCE device-placement baseline: a
// policy-gradient learner over whole-op placements.
type reinforceOptimizer struct{}

func (reinforceOptimizer) Name() string { return "reinforce" }

func (reinforceOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	p, err := checkProblem(p)
	if err != nil {
		return Result{Algorithm: "reinforce"}, err
	}
	opts := search.DefaultReinforceOptions()
	if o.MaxIters > 0 {
		opts.Episodes = o.MaxIters
	}
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	opts.Workers = o.Workers
	opts.OnEvent = o.OnEvent
	start := time.Now()
	res := search.Reinforce(ctx, p.Graph, p.Topology, p.Estimator, opts)
	out := Result{Algorithm: "reinforce", Iters: res.Episodes, SearchTime: time.Since(start)}
	if res.Best != nil {
		out.Best, out.BestCost = res.Best, res.BestCost
	}
	return out, ctx.Err()
}

// polishOptimizer hill-climbs a strategy (Initial, or data parallelism)
// to a local optimum over one-op deviations — the Section 8.4 local-
// optimality construction as a standalone optimizer.
type polishOptimizer struct{}

func (polishOptimizer) Name() string { return "polish" }

func (polishOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	p, err := checkProblem(p)
	if err != nil {
		return Result{Algorithm: "polish"}, err
	}
	init := o.Initial
	if init == nil {
		init = DataParallel(p.Graph, p.Topology)
	}
	start := time.Now()
	rounds := 0
	onEvent := o.OnEvent
	counting := func(ev ProgressEvent) {
		rounds++
		if onEvent != nil {
			onEvent(ev)
		}
	}
	best, cost := search.Polish(ctx, p.Graph, p.Topology, p.Estimator, init, search.PolishOptions{
		Enum:      enumFor(p, o, 4),
		MaxRounds: o.MaxIters,
		Workers:   o.Workers,
		OnEvent:   counting,
	})
	emitFinal(onEvent, "polish", cost)
	return Result{
		Algorithm: "polish", Best: best, BestCost: cost,
		Iters: rounds, SearchTime: time.Since(start),
	}, ctx.Err()
}

// emitFinal sends the terminal event of single-shot optimizers.
func emitFinal(cb func(ProgressEvent), algo string, cost time.Duration) {
	if cb != nil {
		cb(ProgressEvent{Algorithm: algo, BestCost: cost, Final: true})
	}
}
