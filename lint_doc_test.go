package flexflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedDocComments is the doc lint gate CI runs: every exported
// top-level identifier in every package of the module — functions,
// methods on exported types, types, and const/var specs — must carry a
// doc comment, so `go doc` and pkg.go.dev output stays
// self-explanatory. Grouped const/var declarations may document the
// group instead of each spec.
func TestExportedDocComments(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	report := func(fset *token.FileSet, pos token.Pos, what string) {
		p := fset.Position(pos)
		rel, err := filepath.Rel(root, p.Filename)
		if err != nil {
			rel = p.Filename
		}
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s has no doc comment", rel, p.Line, what))
	}

	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				lintFile(fset, file, report)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Error(m)
	}
	if len(missing) > 0 {
		t.Logf("%d exported identifiers without doc comments; document them (grouped const/var blocks may document the group)", len(missing))
	}
}

// lintFile reports every exported top-level declaration of one parsed
// file that lacks a doc comment.
func lintFile(fset *token.FileSet, file *ast.File, report func(*token.FileSet, token.Pos, string)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods on unexported receiver types are not part of the
			// documented surface.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			if d.Doc == nil {
				kind := "function " + d.Name.Name
				if d.Recv != nil {
					kind = "method " + d.Name.Name
				}
				report(fset, d.Pos(), kind)
			}
		case *ast.GenDecl:
			lintGenDecl(fset, d, report)
		}
	}
}

// lintGenDecl checks the specs of one const/var/type declaration: a
// doc on the declaration covers grouped const/var specs, while each
// exported type needs a doc of its own (on the decl or the spec).
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(*token.FileSet, token.Pos, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			s := spec.(*ast.TypeSpec)
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(fset, s.Pos(), "type "+s.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		for _, spec := range d.Specs {
			s := spec.(*ast.ValueSpec)
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(fset, name.Pos(), d.Tok.String()+" "+name.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
