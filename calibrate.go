package flexflow

import (
	"context"

	"flexflow/internal/calib"
	"flexflow/internal/search"
)

// Virtual-time calibration. Budgeted searches (OptimizeOptions.Budget)
// charge every proposal a deterministic virtual cost so budgeted runs
// replay bit-identically; how closely a virtual second tracks a wall
// second depends on the cost model doing the charging. Calibrate
// measures real proposal costs on this machine and fits a CostProfile;
// SetCostProfile installs it process-wide; Save/LoadCostProfile persist
// it across runs (`flexflow -calibrate` / `-cost-profile` on the CLI).
// Costs resolve through a fixed precedence chain: built-in defaults →
// installed profile → the profile's per-model override → an explicit
// OptimizeOptions.Cost.

// CostProfile is a fitted virtual-time cost profile: per-simulation-
// mode affine models (base + perTask·N) plus per-model overrides,
// persisted as versioned JSON. A CostProfile is a CostModel.
type CostProfile = calib.Profile

// CalibrateOptions configure a Calibrate run; the zero value measures a
// small model-zoo spread at quick scale.
type CalibrateOptions = calib.Options

// CostModel prices one optimizer proposal in deterministic virtual
// time; see OptimizeOptions.Cost and SetCostProfile.
type CostModel = search.CostModel

// DefaultCostProfile returns the built-in cost profile: the
// order-of-magnitude constants budgets are priced with when nothing
// has been calibrated. Useful as a baseline to compare a fitted
// profile against.
func DefaultCostProfile() *CostProfile { return calib.Default() }

// Calibrate micro-benchmarks real proposal costs (delta and full
// simulation, across the configured models) and returns a fitted
// CostProfile. It is a wall-clock measurement: run it on an otherwise
// idle machine, then persist the result with SaveCostProfile and
// install it with SetCostProfile.
func Calibrate(ctx context.Context, opts CalibrateOptions) (*CostProfile, error) {
	return calib.Calibrate(ctx, opts)
}

// SetCostProfile installs the profile that prices proposals for every
// search whose OptimizeOptions.Cost is nil, returning the previously
// installed profile (nil means the built-in order-of-magnitude
// defaults were in effect). Passing nil restores the built-in
// defaults. Each search resolves its cost model once at start, so for
// a fixed profile budgeted runs stay bit-identical across invocations
// and pool sizes.
func SetCostProfile(p *CostProfile) *CostProfile {
	// The search package holds the single source of truth; a typed nil
	// must become an untyped nil so "no profile" round-trips cleanly.
	var prev CostModel
	if p == nil {
		prev = search.SetDefaultCostModel(nil)
	} else {
		prev = search.SetDefaultCostModel(p)
	}
	pp, _ := prev.(*CostProfile)
	return pp
}

// ActiveCostProfile returns the installed cost profile, or nil when
// budgets are priced by the built-in defaults (or by a custom
// CostModel installed directly with the search layer).
func ActiveCostProfile() *CostProfile {
	p, _ := search.ActiveCostModel().(*CostProfile)
	return p
}

// LoadCostProfile reads and validates a profile written by
// SaveCostProfile. It returns an error — and no profile — for a
// missing or corrupt file or a schema-version mismatch; callers that
// want to proceed on the built-in defaults can treat the error as a
// warning and skip SetCostProfile.
func LoadCostProfile(path string) (*CostProfile, error) {
	return calib.Load(path)
}

// SaveCostProfile persists a profile as versioned JSON at path
// (atomically: temp file + rename).
func SaveCostProfile(p *CostProfile, path string) error {
	return calib.Save(p, path)
}

// InstallCostProfile loads the profile at path, installs it
// process-wide (SetCostProfile), and returns a description of what now
// prices budgets. When the file is missing, corrupt or version-skewed
// it leaves the previously active pricing untouched and returns the
// built-in-defaults description plus the reason as a warning — budgets
// still work, just with order-of-magnitude costs. Both CLIs route
// their -cost-profile flags through this.
func InstallCostProfile(path string) (string, error) {
	prof, warn := calib.LoadOrDefault(path)
	if warn != nil {
		return prof.Describe(), warn
	}
	SetCostProfile(prof)
	return prof.Describe(), nil
}
