package flexflow

import (
	"os"
	"runtime"
	"testing"
)

// TestMain widens the process-wide worker pool for the whole root test
// binary when the host is nearly serial (single-core CI runners): the
// registry tests, the parallel benchmarks and the examples then
// exercise real concurrency under -race instead of degenerating to
// inline loops. Results are pool-size independent either way — that is
// the contract docs/CONCURRENCY.md pins — so this only changes what
// the race detector gets to see.
func TestMain(m *testing.M) {
	if runtime.NumCPU() < 4 {
		SetWorkers(4)
	}
	os.Exit(m.Run())
}
