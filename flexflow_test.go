package flexflow

import (
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph("facade-cnn")
	x := g.Input4D("images", 16, 3, 16, 16)
	c := g.Conv2D("conv", x, 16, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("flat", c)
	g.Dense("fc", f, 32)

	topo := NewSingleNode(4, "P100")
	dp := DataParallel(g, topo)
	dpTime, m := Simulate(g, topo, dp)
	if dpTime <= 0 || m.NumTasks == 0 {
		t.Fatalf("simulate: %v, %+v", dpTime, m)
	}

	res := Search(g, topo, SearchOptions{MaxIters: 150, Budget: 5 * time.Second})
	if res.Best == nil || res.BestCost <= 0 {
		t.Fatalf("search: %+v", res)
	}
	if res.BestCost > dpTime {
		t.Fatalf("search result %v worse than data parallelism %v", res.BestCost, dpTime)
	}
	if err := VerifyStrategy(g, res.Best); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if cp := CriticalPath(g, topo, res.Best); res.BestCost < cp {
		t.Fatalf("best cost %v below critical path %v", res.BestCost, cp)
	}
	if real := EmulateHardware(g, topo, res.Best, 1); real <= 0 {
		t.Fatalf("emulate: %v", real)
	}
}

func TestFacadeModels(t *testing.T) {
	g, err := Model("lenet")
	if err != nil || g.NumOps() == 0 {
		t.Fatalf("Model: %v, %v", g, err)
	}
	if _, err := Model("unknown"); err == nil {
		t.Fatal("unknown model did not error")
	}
	small, err := ModelScaled("nmt", 16)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumOps() == 0 {
		t.Fatal("empty scaled model")
	}
	if _, err := ModelScaled("unknown", 2); err == nil {
		t.Fatal("unknown scaled model did not error")
	}
}

func TestFacadeBaselines(t *testing.T) {
	g, _ := ModelScaled("lenet", 4)
	topo := NewSingleNode(2, "P100")
	for name, s := range map[string]*Strategy{
		"dp":     DataParallel(g, topo),
		"mp":     ModelParallel(g, topo),
		"expert": ExpertDesigned(g, topo),
	} {
		if err := s.Validate(g, topo); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, _ := Simulate(g, topo, s)
		if d <= 0 {
			t.Fatalf("%s: zero time", name)
		}
	}
}

func TestFacadeClusters(t *testing.T) {
	if n := len(NewP100Cluster(2).GPUs()); n != 8 {
		t.Fatalf("P100 cluster GPUs = %d", n)
	}
	if n := len(NewK80Cluster(3).GPUs()); n != 12 {
		t.Fatalf("K80 cluster GPUs = %d", n)
	}
	if NewEstimator() == nil {
		t.Fatal("nil estimator")
	}
}
