package flexflow

import (
	"path/filepath"
	"testing"

	"flexflow/internal/benchjson"
)

// TestBenchTrajectoryFiles is the BENCH_*.json gate CI runs: every
// committed trajectory file must parse and satisfy the schema
// (internal/benchjson: schema version, PR label, benchmarks, a
// proposals/sec/core metric), at least one file must exist so the
// per-PR trajectory never silently stops, and a file that records a
// baseline must show at least one of those benchmarks improving —
// recording a baseline is a performance claim, and the claim must hold
// in the committed numbers.
func TestBenchTrajectoryFiles(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed (see docs/EXPERIMENTS.md)")
	}
	for _, file := range files {
		f, err := benchjson.Load(file)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if len(f.Baseline) == 0 {
			continue
		}
		improved := false
		for name, base := range f.Baseline {
			cur, ok := f.Benchmarks[name]
			if !ok {
				continue
			}
			if cur.NsPerOp < base.NsPerOp || (base.AllocsPerOp > 0 && cur.AllocsPerOp < base.AllocsPerOp) {
				improved = true
				break
			}
		}
		if !improved {
			t.Errorf("%s: baseline recorded but no shared benchmark improves ns_per_op or allocs_per_op", file)
		}
	}
}

// TestBenchPR6DeltaSimImproves pins this PR's acceptance criterion in
// the committed artifact: the CSR hot-path flattening must show
// BenchmarkDeltaSimulation/nmt improving ns/op or allocs/op over the
// pre-PR baseline recorded in the same file.
func TestBenchPR6DeltaSimImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr6.json")
	if err != nil {
		t.Fatal(err)
	}
	const name = "BenchmarkDeltaSimulation/nmt"
	base, ok := f.Baseline[name]
	if !ok {
		t.Fatalf("%s missing from baseline", name)
	}
	cur, ok := f.Benchmarks[name]
	if !ok {
		t.Fatalf("%s missing from benchmarks", name)
	}
	if cur.NsPerOp >= base.NsPerOp && cur.AllocsPerOp >= base.AllocsPerOp {
		t.Fatalf("%s: current %+v does not improve on baseline %+v", name, cur, base)
	}
}
