package flexflow

import (
	"path/filepath"
	"testing"

	"flexflow/internal/benchjson"
)

// TestBenchTrajectoryFiles is the BENCH_*.json gate CI runs: every
// committed trajectory file must parse and satisfy the schema
// (internal/benchjson: schema version, PR label, benchmarks, a
// proposals/sec/core metric), at least one file must exist so the
// per-PR trajectory never silently stops, and a file that records a
// baseline must show at least one of those benchmarks improving —
// recording a baseline is a performance claim, and the claim must hold
// in the committed numbers.
func TestBenchTrajectoryFiles(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed (see docs/EXPERIMENTS.md)")
	}
	for _, file := range files {
		f, err := benchjson.Load(file)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if len(f.Baseline) == 0 {
			continue
		}
		improved := false
		for name, base := range f.Baseline {
			cur, ok := f.Benchmarks[name]
			if !ok {
				continue
			}
			if cur.NsPerOp < base.NsPerOp || (base.AllocsPerOp > 0 && cur.AllocsPerOp < base.AllocsPerOp) {
				improved = true
				break
			}
		}
		if !improved {
			t.Errorf("%s: baseline recorded but no shared benchmark improves ns_per_op or allocs_per_op", file)
		}
	}
}

// TestBenchPR6DeltaSimImproves pins this PR's acceptance criterion in
// the committed artifact: the CSR hot-path flattening must show
// BenchmarkDeltaSimulation/nmt improving ns/op or allocs/op over the
// pre-PR baseline recorded in the same file.
func TestBenchPR6DeltaSimImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr6.json")
	if err != nil {
		t.Fatal(err)
	}
	const name = "BenchmarkDeltaSimulation/nmt"
	base, ok := f.Baseline[name]
	if !ok {
		t.Fatalf("%s missing from baseline", name)
	}
	cur, ok := f.Benchmarks[name]
	if !ok {
		t.Fatalf("%s missing from benchmarks", name)
	}
	if cur.NsPerOp >= base.NsPerOp && cur.AllocsPerOp >= base.AllocsPerOp {
		t.Fatalf("%s: current %+v does not improve on baseline %+v", name, cur, base)
	}
}

// TestBenchPR8ChainSetupImproves pins the copy-on-write acceptance
// criterion in the committed artifact: BENCH_pr8.json must show
// BenchmarkChainSetup/shared-plan allocating at least 5x fewer bytes
// per op than the pre-CoW baseline recorded in the same file (Instance
// no longer deep-copies the CSR), and must carry the synthetic
// >=50k-task scale cases the PR adds to the tracked set.
func TestBenchPR8ChainSetupImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}
	const name = "BenchmarkChainSetup/shared-plan"
	base, ok := f.Baseline[name]
	if !ok {
		t.Fatalf("%s missing from baseline", name)
	}
	cur, ok := f.Benchmarks[name]
	if !ok {
		t.Fatalf("%s missing from benchmarks", name)
	}
	if base.BytesPerOp <= 0 || cur.BytesPerOp <= 0 {
		t.Fatalf("%s: bytes/op not recorded (baseline %v, current %v) — run with -benchmem", name, base.BytesPerOp, cur.BytesPerOp)
	}
	if cur.BytesPerOp*5 > base.BytesPerOp {
		t.Fatalf("%s: %v B/op is not a >=5x reduction of the baseline %v B/op", name, cur.BytesPerOp, base.BytesPerOp)
	}
	for _, scale := range []string{
		"BenchmarkDeltaSimulation/synth-50k",
		"BenchmarkProposalThroughputSynth50k",
	} {
		if _, ok := f.Benchmarks[scale]; !ok {
			t.Errorf("%s missing from benchmarks: the >=50k-task scale cases are part of the tracked set", scale)
		}
	}
}

// TestBenchPR9SparseTimingImproves pins the sparse-timing-state
// acceptance criteria in the committed artifact: BENCH_pr9.json must
// show (a) BenchmarkChainSetupSynth100k/shared-plan allocating at least
// 5x fewer bytes per op than the deep-copy baseline recorded in the
// same file (CloneFor now shares timing pages copy-on-write), (b)
// BenchmarkDeltaSimulation/synth-50k at least 1.5x faster in ns/op than
// its in-file baseline, and (c) the ProposalBatch sweep behind the
// pinned search.DefaultProposalBatch present in the tracked set with
// batch=1 the measured winner on both synthetic classes.
func TestBenchPR9SparseTimingImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr9.json")
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string) (base, cur benchjson.Entry) {
		t.Helper()
		base, ok := f.Baseline[name]
		if !ok {
			t.Fatalf("%s missing from baseline", name)
		}
		cur, ok = f.Benchmarks[name]
		if !ok {
			t.Fatalf("%s missing from benchmarks", name)
		}
		return base, cur
	}

	clone := "BenchmarkChainSetupSynth100k/shared-plan"
	base, cur := check(clone)
	if base.BytesPerOp <= 0 || cur.BytesPerOp <= 0 {
		t.Fatalf("%s: bytes/op not recorded (baseline %v, current %v) — run with -benchmem", clone, base.BytesPerOp, cur.BytesPerOp)
	}
	if cur.BytesPerOp*5 > base.BytesPerOp {
		t.Fatalf("%s: %v B/op is not a >=5x reduction of the baseline %v B/op", clone, cur.BytesPerOp, base.BytesPerOp)
	}

	delta := "BenchmarkDeltaSimulation/synth-50k"
	base, cur = check(delta)
	if cur.NsPerOp*1.5 > base.NsPerOp {
		t.Fatalf("%s: %v ns/op is not a >=1.5x improvement of the baseline %v ns/op", delta, cur.NsPerOp, base.NsPerOp)
	}

	for _, model := range []string{"synth-2k", "synth-50k"} {
		winner, ok := f.Benchmarks["BenchmarkMCMCProposalBatch/"+model+"/batch=1"]
		if !ok {
			t.Errorf("ProposalBatch sweep missing batch=1 on %s", model)
			continue
		}
		for _, batch := range []string{"4", "8", "16"} {
			name := "BenchmarkMCMCProposalBatch/" + model + "/batch=" + batch
			e, ok := f.Benchmarks[name]
			if !ok {
				t.Errorf("%s missing from benchmarks: the sweep is part of the tracked set", name)
				continue
			}
			if e.NsPerOp < winner.NsPerOp {
				t.Errorf("%s (%v ns/op) beats batch=1 (%v ns/op): the pinned default no longer matches the committed sweep", name, e.NsPerOp, winner.NsPerOp)
			}
		}
	}
}

// TestBenchPR10LocalityImproves pins the locality-aware proposal
// acceptance criteria in the committed artifact: BENCH_pr10.json must
// record the full uniform/late-biased/measured sweep on both synthetic
// classes, and on synth-50k at least one non-uniform policy must beat
// uniform by the PR's bar — either >=1.3x better best-makespan at the
// same iteration budget, or equal-quality search (best makespan within
// 5% of uniform) at >=1.3x fewer evaluated suffix tasks per proposal.
// The numbers are the committed ones (regenerated per
// docs/EXPERIMENTS.md), not re-measured in CI.
func TestBenchPR10LocalityImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr10.json")
	if err != nil {
		t.Fatal(err)
	}
	const (
		makespanMetric = "best-makespan-us"
		suffixMetric   = "suffix-tasks/proposal"
	)
	entry := func(model, locality string) benchjson.Entry {
		t.Helper()
		name := "BenchmarkMCMCLocality/" + model + "/locality=" + locality
		e, ok := f.Benchmarks[name]
		if !ok {
			t.Fatalf("%s missing from benchmarks: the locality sweep is the tracked set", name)
		}
		for _, m := range []string{makespanMetric, suffixMetric} {
			if e.Metrics[m] <= 0 {
				t.Fatalf("%s: metric %s not recorded", name, m)
			}
		}
		return e
	}
	for _, model := range []string{"synth-50k", "synth-100k"} {
		for _, locality := range []string{"uniform", "late-biased", "measured"} {
			entry(model, locality)
		}
	}

	uniform := entry("synth-50k", "uniform")
	passed := false
	for _, locality := range []string{"late-biased", "measured"} {
		e := entry("synth-50k", locality)
		fasterToQuality := uniform.Metrics[makespanMetric] >= 1.3*e.Metrics[makespanMetric]
		equalQuality := e.Metrics[makespanMetric] <= 1.05*uniform.Metrics[makespanMetric]
		cheaperSuffix := uniform.Metrics[suffixMetric] >= 1.3*e.Metrics[suffixMetric]
		if fasterToQuality || (equalQuality && cheaperSuffix) {
			passed = true
		}
	}
	if !passed {
		t.Fatalf("no non-uniform policy meets the bar on synth-50k: need >=1.3x better %s, or %s within 5%% of uniform at >=1.3x fewer %s (uniform: makespan %v, suffix %v)",
			makespanMetric, makespanMetric, suffixMetric,
			uniform.Metrics[makespanMetric], uniform.Metrics[suffixMetric])
	}
}
