package flexflow

import (
	"path/filepath"
	"testing"

	"flexflow/internal/benchjson"
)

// TestBenchTrajectoryFiles is the BENCH_*.json gate CI runs: every
// committed trajectory file must parse and satisfy the schema
// (internal/benchjson: schema version, PR label, benchmarks, a
// proposals/sec/core metric), at least one file must exist so the
// per-PR trajectory never silently stops, and a file that records a
// baseline must show at least one of those benchmarks improving —
// recording a baseline is a performance claim, and the claim must hold
// in the committed numbers.
func TestBenchTrajectoryFiles(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json trajectory files committed (see docs/EXPERIMENTS.md)")
	}
	for _, file := range files {
		f, err := benchjson.Load(file)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if len(f.Baseline) == 0 {
			continue
		}
		improved := false
		for name, base := range f.Baseline {
			cur, ok := f.Benchmarks[name]
			if !ok {
				continue
			}
			if cur.NsPerOp < base.NsPerOp || (base.AllocsPerOp > 0 && cur.AllocsPerOp < base.AllocsPerOp) {
				improved = true
				break
			}
		}
		if !improved {
			t.Errorf("%s: baseline recorded but no shared benchmark improves ns_per_op or allocs_per_op", file)
		}
	}
}

// TestBenchPR6DeltaSimImproves pins this PR's acceptance criterion in
// the committed artifact: the CSR hot-path flattening must show
// BenchmarkDeltaSimulation/nmt improving ns/op or allocs/op over the
// pre-PR baseline recorded in the same file.
func TestBenchPR6DeltaSimImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr6.json")
	if err != nil {
		t.Fatal(err)
	}
	const name = "BenchmarkDeltaSimulation/nmt"
	base, ok := f.Baseline[name]
	if !ok {
		t.Fatalf("%s missing from baseline", name)
	}
	cur, ok := f.Benchmarks[name]
	if !ok {
		t.Fatalf("%s missing from benchmarks", name)
	}
	if cur.NsPerOp >= base.NsPerOp && cur.AllocsPerOp >= base.AllocsPerOp {
		t.Fatalf("%s: current %+v does not improve on baseline %+v", name, cur, base)
	}
}

// TestBenchPR8ChainSetupImproves pins the copy-on-write acceptance
// criterion in the committed artifact: BENCH_pr8.json must show
// BenchmarkChainSetup/shared-plan allocating at least 5x fewer bytes
// per op than the pre-CoW baseline recorded in the same file (Instance
// no longer deep-copies the CSR), and must carry the synthetic
// >=50k-task scale cases the PR adds to the tracked set.
func TestBenchPR8ChainSetupImproves(t *testing.T) {
	f, err := benchjson.Load("BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}
	const name = "BenchmarkChainSetup/shared-plan"
	base, ok := f.Baseline[name]
	if !ok {
		t.Fatalf("%s missing from baseline", name)
	}
	cur, ok := f.Benchmarks[name]
	if !ok {
		t.Fatalf("%s missing from benchmarks", name)
	}
	if base.BytesPerOp <= 0 || cur.BytesPerOp <= 0 {
		t.Fatalf("%s: bytes/op not recorded (baseline %v, current %v) — run with -benchmem", name, base.BytesPerOp, cur.BytesPerOp)
	}
	if cur.BytesPerOp*5 > base.BytesPerOp {
		t.Fatalf("%s: %v B/op is not a >=5x reduction of the baseline %v B/op", name, cur.BytesPerOp, base.BytesPerOp)
	}
	for _, scale := range []string{
		"BenchmarkDeltaSimulation/synth-50k",
		"BenchmarkProposalThroughputSynth50k",
	} {
		if _, ok := f.Benchmarks[scale]; !ok {
			t.Errorf("%s missing from benchmarks: the >=50k-task scale cases are part of the tracked set", scale)
		}
	}
}
