// BenchmarkServerOptimize lives outside the root package
// (internal/server imports flexflow, so an in-package benchmark would
// be an import cycle) and measures the strategy server end to end over
// a real HTTP round trip. "cold" forces a fresh search on every
// request with no_cache; "cached" answers every repeat of an identical
// request from the content-addressed strategy cache. The gap between
// the two is what the cache buys a repeat caller.
package flexflow_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"flexflow/internal/server"
)

func benchServerPost(b *testing.B, ts *httptest.Server, body []byte) (cached bool) {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Cached     bool            `json:"cached"`
		BestCostNS int64           `json:"best_cost_ns"`
		Strategy   json.RawMessage `json:"strategy"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		b.Fatal(err)
	}
	if out.BestCostNS <= 0 || len(out.Strategy) == 0 {
		b.Fatalf("degenerate response: %s", raw)
	}
	return out.Cached
}

func BenchmarkServerOptimize(b *testing.B) {
	req := func(noCache bool) []byte {
		raw, err := json.Marshal(map[string]any{
			"model": "lenet", "scale": 16, "gpus": 2,
			"options":  map[string]any{"max_iters": 60, "seed": 7, "timeout_ms": 60000},
			"no_cache": noCache,
		})
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	b.Run("cold", func(b *testing.B) {
		ts := httptest.NewServer(server.New(server.Options{}))
		defer ts.Close()
		body := req(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if benchServerPost(b, ts, body) {
				b.Fatal("no_cache request answered from the cache")
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		ts := httptest.NewServer(server.New(server.Options{}))
		defer ts.Close()
		body := req(false)
		benchServerPost(b, ts, body) // prime the cache with the one real search
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !benchServerPost(b, ts, body) {
				b.Fatal("identical repeat request re-ran the search")
			}
		}
	})
}
