package flexflow

import (
	"strings"
	"testing"
	"time"

	"flexflow/internal/calib"
	"flexflow/internal/search"
)

// fpGraph builds the small fixed graph the fingerprint tests key on.
func fpGraph() *Graph {
	g := NewGraph("fp-test")
	x := g.Input4D("images", 8, 3, 16, 16)
	c := g.Conv2D("conv1", x, 8, 3, 3, 1, 1, 1, 1)
	p := g.Pool2D("pool1", c, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flat", p)
	g.Dense("fc", f, 10)
	return g
}

// TestFingerprintStable pins the cache-key layout: the fingerprint of
// a fixed problem must be this exact digest, on every machine, forever
// — until the layout (or FingerprintVersion) changes deliberately. A
// failure here means every persisted cache key just got invalidated;
// update the constant only if that is the intent.
func TestFingerprintStable(t *testing.T) {
	// v2 layout: the opts line gained locality=<policy> (and the
	// version tag moved to 2), re-pinned deliberately in the PR that
	// added Options.Locality.
	const want = "96c95078caf282e60aac2ae43d5b54362754442c201e5d6b938fab1d610538c5"
	got, err := Fingerprint(Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}, "mcmc",
		OptimizeOptions{MaxIters: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fingerprint drifted:\n got  %s\n want %s\nthe cache-key layout changed — if deliberate, bump FingerprintVersion and re-pin", got, want)
	}
	// The Locality option is result-affecting, so a set policy pins its
	// own digest — and "" vs "uniform" are the same walk by contract,
	// so they must share a key (the normalization the opts line hashes).
	gotLate, err := Fingerprint(Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}, "mcmc",
		OptimizeOptions{MaxIters: 100, Seed: 7, Locality: "late-biased"})
	if err != nil {
		t.Fatal(err)
	}
	if gotLate == want {
		t.Fatal("locality=late-biased shares the default key; the policy is result-affecting and must not alias")
	}
	gotUniform, err := Fingerprint(Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}, "mcmc",
		OptimizeOptions{MaxIters: 100, Seed: 7, Locality: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if gotUniform != want {
		t.Fatalf("locality=uniform must alias the unset default (same walk):\n got  %s\n want %s", gotUniform, want)
	}
}

// TestFingerprintDeterministic asserts two independently built but
// identical problems fingerprint identically — the property that makes
// the key content-addressed rather than object-addressed.
func TestFingerprintDeterministic(t *testing.T) {
	opts := OptimizeOptions{MaxIters: 50, Seed: 3, Workers: 1}
	a, err := Fingerprint(Problem{Graph: fpGraph(), Topology: NewSingleNode(2, "P100")}, "mcmc", opts)
	if err != nil {
		t.Fatal(err)
	}
	// A different Workers cap and an OnEvent callback must not change
	// the key: neither affects the search result.
	opts2 := opts
	opts2.Workers = 7
	opts2.OnEvent = func(ProgressEvent) {}
	b, err := Fingerprint(Problem{Graph: fpGraph(), Topology: NewSingleNode(2, "P100")}, "mcmc", opts2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical problems fingerprint differently: %s vs %s", a, b)
	}
}

// TestFingerprintCollisions mutates every key component in turn and
// asserts the digest moves: graph structure, graph content (a kernel
// size), topology, algorithm, and each result-affecting option. This
// is the collision test that pins *what is in* the key.
func TestFingerprintCollisions(t *testing.T) {
	baseProblem := func() Problem {
		return Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}
	}
	baseOpts := OptimizeOptions{MaxIters: 100, Seed: 7}
	base, err := Fingerprint(baseProblem(), "mcmc", baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"base": base}
	check := func(label string, p Problem, algo string, opts OptimizeOptions) {
		t.Helper()
		got, err := Fingerprint(p, algo, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for prev, fp := range seen {
			if fp == got {
				t.Errorf("%s collides with %s: %s", label, prev, got)
			}
		}
		seen[label] = got
	}

	biggerKernel := func() Problem {
		g := NewGraph("fp-test")
		x := g.Input4D("images", 8, 3, 16, 16)
		c := g.Conv2D("conv1", x, 8, 5, 5, 1, 1, 2, 2)
		p := g.Pool2D("pool1", c, 2, 2, 2, 2, 0, 0)
		f := g.Flatten("flat", p)
		g.Dense("fc", f, 10)
		return Problem{Graph: g, Topology: NewSingleNode(4, "P100")}
	}
	extraOp := func() Problem {
		g := fpGraph()
		g.Activation("relu", g.Op(g.NumOps()-1))
		return Problem{Graph: g, Topology: NewSingleNode(4, "P100")}
	}

	check("kernel size", biggerKernel(), "mcmc", baseOpts)
	check("extra op", extraOp(), "mcmc", baseOpts)
	check("gpu count", Problem{Graph: fpGraph(), Topology: NewSingleNode(2, "P100")}, "mcmc", baseOpts)
	check("gpu model", Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "K80")}, "mcmc", baseOpts)
	check("algorithm", baseProblem(), "exhaustive", baseOpts)
	check("iters", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 101, Seed: 7})
	check("seed", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 8})
	check("beta", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Beta: 20})
	check("expert", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, IncludeExpert: true})
	check("fullsim", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, FullSim: true})
	check("budget", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Budget: time.Second})
	check("budget length", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Budget: 2 * time.Second})
	check("maxdegree", baseProblem(), "optcnn", OptimizeOptions{MaxDegree: 2})
	check("maxcandidates", baseProblem(), "exhaustive", OptimizeOptions{MaxCandidatesPerOp: 3})
	check("locality late-biased", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Locality: "late-biased"})
	check("locality stratified", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Locality: "stratified"})
	check("locality measured", baseProblem(), "mcmc", OptimizeOptions{MaxIters: 100, Seed: 7, Locality: "measured"})
	g := fpGraph()
	topo := NewSingleNode(4, "P100")
	check("initial", Problem{Graph: g, Topology: topo}, "mcmc",
		OptimizeOptions{MaxIters: 100, Seed: 7, Initial: DataParallel(g, topo)})

	if _, err := Fingerprint(baseProblem(), "mcmc", OptimizeOptions{Locality: "nope"}); err == nil {
		t.Error("unknown locality fingerprinted without error")
	}
}

// TestFingerprintMeasuredEMAExcluded pins why the measured policy's
// per-op EMA is absent from the fingerprint: it is derived per-chain
// runtime state, not an input. The EMA *is* result-affecting — it
// steers the walk — but it is computed deterministically from inputs
// the key already hashes (graph, topology, seed, the policy itself),
// so hashing it would add nothing and would make the key depend on
// having already run the search. The test asserts both halves: a
// measured run leaves the fingerprint untouched, and two measured runs
// with equal fingerprints produce bit-identical strategies (the cache
// soundness the exclusion rests on).
func TestFingerprintMeasuredEMAExcluded(t *testing.T) {
	p := Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}
	opts := OptimizeOptions{MaxIters: 120, Seed: 7, Locality: "measured"}

	before, err := Fingerprint(p, "mcmc", opts)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		res, err := opt.Optimize(t.Context(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	after, err := Fingerprint(p, "mcmc", opts)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("running a measured search changed the fingerprint: %s -> %s", before, after)
	}
	b := run()
	if a.BestCost != b.BestCost || !a.Best.Equal(b.Best) {
		t.Fatalf("equal-fingerprint measured runs diverged: %v vs %v", a.BestCost, b.BestCost)
	}
}

// TestFingerprintCostProfile pins the budget-pricing leg: for budgeted
// requests the installed cost profile participates in the key (a
// different profile means a different proposal count, hence a
// different result), unbudgeted requests ignore it, and a custom
// CostModel implementation is an explicit "uncacheable" error rather
// than a silently wrong key.
func TestFingerprintCostProfile(t *testing.T) {
	p := Problem{Graph: fpGraph(), Topology: NewSingleNode(4, "P100")}
	budgeted := OptimizeOptions{MaxIters: 100, Seed: 7, Budget: time.Second}

	defBudgeted, err := Fingerprint(p, "mcmc", budgeted)
	if err != nil {
		t.Fatal(err)
	}

	fitted := calib.Default()
	fitted.Source = "test-fitted"
	fitted.Modes[calib.ModeDelta] = calib.Params{BaseNS: 1000, PerTaskNS: 10}
	prev := SetCostProfile(fitted)
	defer SetCostProfile(prev)

	fittedBudgeted, err := Fingerprint(p, "mcmc", budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if fittedBudgeted == defBudgeted {
		t.Fatal("installed profile does not participate in a budgeted key")
	}

	unbudgeted := OptimizeOptions{MaxIters: 100, Seed: 7}
	a, err := Fingerprint(p, "mcmc", unbudgeted)
	if err != nil {
		t.Fatal(err)
	}
	SetCostProfile(nil)
	b, err := Fingerprint(p, "mcmc", unbudgeted)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cost profile leaked into an unbudgeted key")
	}

	if _, err := Fingerprint(p, "mcmc", OptimizeOptions{Budget: time.Second, Cost: opaqueCost{}}); err == nil {
		t.Fatal("custom CostModel fingerprinted without error")
	} else if !strings.Contains(err.Error(), "CostModel") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// opaqueCost is a CostModel the fingerprint cannot inspect.
type opaqueCost struct{}

// ProposalCost implements search.CostModel with a fixed price.
func (opaqueCost) ProposalCost(string, int, bool) time.Duration { return time.Microsecond }

var _ search.CostModel = opaqueCost{}
