package flexflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// registryProblem is a model small enough that even the exhaustive
// optimizer (and VerifyStrategy's real float32 kernels) finish fast.
func registryProblem() Problem {
	g := NewGraph("registry-cnn")
	x := g.Input4D("x", 8, 2, 8, 8)
	c := g.Conv2D("conv", x, 4, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("flat", c)
	g.Dense("fc", f, 8)
	return Problem{Graph: g, Topology: NewSingleNode(2, "P100")}
}

// TestOptimizerRegistry drives every registered algorithm through the
// unified API: each must return a valid, numerically correct strategy,
// and each must honor an already-cancelled context by returning
// promptly with an error or a best-so-far strategy.
func TestOptimizerRegistry(t *testing.T) {
	names := Optimizers()
	if len(names) < 5 {
		t.Fatalf("registered optimizers = %v, want at least the five built-ins", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opt, err := GetOptimizer(name)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Name() != name {
				t.Fatalf("Name() = %q, registered as %q", opt.Name(), name)
			}
			p := registryProblem()
			res, err := opt.Optimize(context.Background(), p, OptimizeOptions{MaxIters: 80, Seed: 1})
			if err != nil {
				t.Fatalf("Optimize: %v", err)
			}
			if res.Algorithm != name {
				t.Fatalf("Result.Algorithm = %q", res.Algorithm)
			}
			if res.Best == nil || res.BestCost <= 0 {
				t.Fatalf("degenerate result %+v", res)
			}
			if err := res.Best.Validate(p.Graph, p.Topology); err != nil {
				t.Fatalf("invalid strategy: %v", err)
			}
			if err := VerifyStrategy(p.Graph, res.Best); err != nil {
				t.Fatalf("strategy not numerically equivalent: %v", err)
			}

			// An already-cancelled context must return promptly, with
			// an error or a usable best-so-far strategy.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res, err = opt.Optimize(ctx, p, OptimizeOptions{MaxIters: 1 << 20, Seed: 1})
			if err == nil && res.Best == nil {
				t.Fatal("cancelled Optimize returned neither error nor strategy")
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("cancelled Optimize took %v", elapsed)
			}
		})
	}
}

func TestGetOptimizerUnknown(t *testing.T) {
	if _, err := GetOptimizer("simulated-annealing"); err == nil {
		t.Fatal("unknown optimizer did not error")
	}
}

func TestOptimizeRejectsEmptyProblem(t *testing.T) {
	for _, name := range Optimizers() {
		opt, err := GetOptimizer(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(context.Background(), Problem{}, OptimizeOptions{}); err == nil {
			t.Fatalf("%s: empty problem did not error", name)
		}
	}
}

// TestOptimizerProgressStreaming exercises the OnEvent path through the
// facade: events must arrive, carry the right algorithm, and end with
// the returned best cost on a Final event.
func TestOptimizerProgressStreaming(t *testing.T) {
	p := registryProblem()
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []ProgressEvent
	res, err := opt.Optimize(context.Background(), p, OptimizeOptions{
		MaxIters: 100, Seed: 1,
		OnEvent: func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	bestSeen := time.Duration(1<<62 - 1)
	finals := 0
	for _, ev := range events {
		if ev.Algorithm != "mcmc" {
			t.Fatalf("event algorithm %q", ev.Algorithm)
		}
		if ev.Final {
			finals++
			if ev.BestCost < bestSeen {
				bestSeen = ev.BestCost
			}
		}
	}
	if finals == 0 {
		t.Fatal("no final events")
	}
	if bestSeen != res.BestCost {
		t.Fatalf("best final event %v != result %v", bestSeen, res.BestCost)
	}
}

// exampleProblem is the tiny model the Example functions share: small
// enough that every optimizer finishes in milliseconds, large enough
// that the search space is non-trivial.
func exampleProblem() Problem {
	g := NewGraph("mlp")
	x := g.Input4D("images", 8, 2, 8, 8)
	c := g.Conv2D("conv", x, 4, 3, 3, 1, 1, 1, 1)
	f := g.Flatten("flat", c)
	g.Dense("fc", f, 8)
	return Problem{Graph: g, Topology: NewSingleNode(2, "P100")}
}

// ExampleGetOptimizer runs the paper's MCMC execution optimizer on a
// small model. The search seeds its initial candidates with data
// parallelism, so the result is never worse than the data-parallel
// baseline — and for a fixed Seed it is bit-identical run to run,
// regardless of the worker-pool size.
func ExampleGetOptimizer() {
	p := exampleProblem()
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := opt.Optimize(context.Background(), p, OptimizeOptions{MaxIters: 80, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	dp, _ := Simulate(p.Graph, p.Topology, DataParallel(p.Graph, p.Topology))
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("at least as fast as data parallelism:", res.BestCost <= dp)
	// Output:
	// algorithm: mcmc
	// at least as fast as data parallelism: true
}

// ExampleOptimizer shows the contract every registered algorithm
// honors: context-driven cancellation, streaming progress through
// OptimizeOptions.OnEvent (called concurrently — use synchronized
// state), and a usable best strategy on success.
func ExampleOptimizer() {
	p := exampleProblem()
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		fmt.Println(err)
		return
	}
	var events atomic.Int32
	res, err := opt.Optimize(context.Background(), p, OptimizeOptions{
		MaxIters: 60,
		Seed:     1,
		OnEvent:  func(ProgressEvent) { events.Add(1) },
	})
	fmt.Println("err:", err)
	fmt.Println("streamed progress:", events.Load() > 0)
	fmt.Println("found a strategy:", res.Best != nil && res.BestCost > 0)
	// Output:
	// err: <nil>
	// streamed progress: true
	// found a strategy: true
}

// baselineOptimizer is the custom Optimizer of the
// ExampleRegisterOptimizer below: it "searches" by returning the
// data-parallel baseline. A real implementation should honor ctx by
// returning its best-so-far strategy promptly when cancelled.
type baselineOptimizer struct{}

// Name implements Optimizer.
func (baselineOptimizer) Name() string { return "baseline" }

// Optimize implements Optimizer.
func (baselineOptimizer) Optimize(ctx context.Context, p Problem, o OptimizeOptions) (Result, error) {
	if p.Graph == nil || p.Topology == nil {
		return Result{Algorithm: "baseline"}, errors.New("baseline: Problem needs a Graph and a Topology")
	}
	s := DataParallel(p.Graph, p.Topology)
	cost, _ := Simulate(p.Graph, p.Topology, s)
	return Result{Algorithm: "baseline", Best: s, BestCost: cost, Iters: 1}, ctx.Err()
}

// registerBaselineOnce keeps the example rerunnable (go test -count>1
// shares one process, and duplicate registration panics by contract).
var registerBaselineOnce sync.Once

// ExampleRegisterOptimizer plugs a custom algorithm into the registry
// next to the built-ins; anything constructed by GetOptimizer is
// driven through the exact same Optimize contract.
func ExampleRegisterOptimizer() {
	registerBaselineOnce.Do(func() {
		RegisterOptimizer("baseline", func() Optimizer { return baselineOptimizer{} })
	})
	p := exampleProblem()
	opt, err := GetOptimizer("baseline")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := opt.Optimize(context.Background(), p, OptimizeOptions{})
	fmt.Println("err:", err)
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("valid strategy:", res.Best.Validate(p.Graph, p.Topology) == nil)
	// Output:
	// err: <nil>
	// algorithm: baseline
	// valid strategy: true
}

// ExampleSetWorkers sizes the process-wide worker pool that every
// optimizer and the experiments harness share. The bound changes only
// wall-clock time — results are bit-identical for every pool size —
// so set it once at startup (or leave the all-CPUs default).
func ExampleSetWorkers() {
	prev := WorkerBound()
	defer SetWorkers(prev)
	SetWorkers(2) // cap the whole process at two workers
	fmt.Println("pool bound:", WorkerBound())
	// Output:
	// pool bound: 2
}

// ExampleCalibrate fits a cost profile from real proposal timings —
// the measurement `flexflow -calibrate` runs. The tiny batch sizes
// here keep the example fast; defaults (or a larger spread of Models)
// give a steadier fit. The fitted profile prices the virtual-time
// Budget, so a persisted profile makes a virtual budget of N seconds
// track wall-clock N seconds on the calibrated machine.
func ExampleCalibrate() {
	prof, err := Calibrate(context.Background(), CalibrateOptions{
		Models:         []string{"lenet"},
		Scale:          16,
		Batches:        1,
		DeltaProposals: 40,
		FullProposals:  5,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("valid profile:", prof.Validate() == nil)
	fmt.Println("has per-model override:", prof.Models["lenet"] != nil)
	fmt.Println("full costs at least as much as delta:",
		prof.ProposalCost("lenet", 500, true) >= prof.ProposalCost("lenet", 500, false))
	// Output:
	// valid profile: true
	// has per-model override: true
	// full costs at least as much as delta: true
}

// ExampleSetCostProfile installs a cost profile process-wide: every
// budgeted search whose OptimizeOptions.Cost is nil prices proposals
// through it from then on (in practice the profile comes from
// Calibrate or LoadCostProfile). For a fixed profile, budgeted runs
// stay bit-identical across invocations and pool sizes.
func ExampleSetCostProfile() {
	prof := DefaultCostProfile() // stand-in for a Calibrate/LoadCostProfile result
	prev := SetCostProfile(prof)
	defer SetCostProfile(prev)

	p := exampleProblem()
	opt, err := GetOptimizer("mcmc")
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := opt.Optimize(context.Background(), p, OptimizeOptions{
		Budget: 2 * time.Millisecond, // virtual time, priced by the profile
		Seed:   1,
	})
	fmt.Println("err:", err)
	fmt.Println("installed:", ActiveCostProfile() == prof)
	fmt.Println("budgeted run found a strategy:", res.Best != nil && res.Iters > 0)
	// Output:
	// err: <nil>
	// installed: true
	// budgeted run found a strategy: true
}

// TestSearchShimStillWorks pins the deprecated path: flexflow.Search and
// SearchOptions.Cancel keep functioning as a shim over the "mcmc"
// optimizer.
func TestSearchShimStillWorks(t *testing.T) {
	p := registryProblem()
	res := Search(p.Graph, p.Topology, SearchOptions{MaxIters: 100, Seed: 1})
	if res.Best == nil || res.BestCost <= 0 || res.Iters == 0 {
		t.Fatalf("shim search degenerate: %+v", res)
	}

	// The shim must agree with the optimizer it wraps (same seed, same
	// deterministic walk).
	opt, _ := GetOptimizer("mcmc")
	direct, err := opt.Optimize(context.Background(), p, OptimizeOptions{MaxIters: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != direct.BestCost || !res.Best.Equal(direct.Best) {
		t.Fatalf("shim diverged from optimizer: %v vs %v", res.BestCost, direct.BestCost)
	}

	cancel := make(chan struct{})
	close(cancel)
	got := Search(p.Graph, p.Topology, SearchOptions{MaxIters: 1 << 20, Cancel: cancel})
	if got.Iters != 0 {
		t.Fatalf("pre-closed Cancel still ran %d proposals", got.Iters)
	}
	if got.Best == nil {
		t.Fatal("cancelled shim lost the initial evaluation")
	}
}
