module flexflow

go 1.24
