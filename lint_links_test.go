package flexflow

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches one inline markdown link or image: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// TestDocRelativeLinks is the docs link-check gate CI runs: every
// relative link in README.md and docs/*.md must resolve to a file or
// directory in the repo, so the documentation never silently decays
// into pointers at renamed or deleted targets (the stale-DESIGN.md
// failure mode). External URLs and in-page anchors are out of scope.
func TestDocRelativeLinks(t *testing.T) {
	files, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "README.md")

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			checked++
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s): %v", file, m[1], resolved, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found — the checker is likely miswired")
	}
}
