package flexflow

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"flexflow/internal/graph"
	"flexflow/internal/search"
)

// The strategy-cache fingerprint. An optimize request is fully
// determined by (graph, topology, algorithm, the result-affecting
// options, and — for budgeted runs — the cost profile pricing the
// budget): the repo-wide determinism contract (docs/CONCURRENCY.md)
// guarantees the same inputs reproduce the same strategy bit for bit,
// which is what makes a content-addressed strategy cache sound.
// Fingerprint hashes exactly those inputs; the server (internal/server)
// keys its cache on the result. The byte layout below is pinned by
// TestFingerprintStable — changing it invalidates every persisted cache
// key, so the test forces that to be a deliberate, reviewed act.

// FingerprintVersion tags the fingerprint layout. It participates in
// the hash, so bumping it (when the walk below changes shape) migrates
// every cached key at once instead of aliasing old entries. v2 added
// the result-affecting Locality option to the opts line.
const FingerprintVersion = 2

// Fingerprint returns the content-addressed cache key of an optimize
// request: a hex SHA-256 over the graph structure (including every
// op's input-region signature, the same walk the estimator cache
// keys on), the topology, the algorithm name, and the
// result-affecting options. Requests with equal fingerprints produce
// bit-identical strategies, so a cached result can stand in for a
// re-run (the strategy server's cache rests on this).
//
// Deliberately excluded — they never change the resulting strategy:
// Workers (a wall-clock knob; results are pool-size independent),
// OnEvent, and the cost model when Budget == 0 (the virtual clock only
// gates work when a budget charges it; the half-time stopping criterion
// is scale-invariant). A budgeted request is only fingerprintable when
// its pricing is inspectable: a nil Cost resolves to the installed
// CostProfile (or the built-in defaults), an explicit *CostProfile is
// hashed as its JSON, and any other custom CostModel implementation
// returns an error — callers should treat that as "uncacheable" and
// run the search.
func Fingerprint(p Problem, algorithm string, opts OptimizeOptions) (string, error) {
	if p.Graph == nil || p.Topology == nil {
		return "", fmt.Errorf("flexflow: Fingerprint needs a Graph and a Topology")
	}
	h := sha256.New()
	fmt.Fprintf(h, "fingerprint/v%d\n", FingerprintVersion)

	writeGraph(h, p.Graph)
	writeTopology(h, p.Topology)

	fmt.Fprintf(h, "algo %s\n", algorithm)
	// Locality is hashed in normalized form: "" and "uniform" are the
	// same walk by contract, so they must share a cache key. The
	// measured policy's per-op EMA is deliberately NOT an input here —
	// it is per-chain runtime state derived deterministically from the
	// hashed inputs (seed, policy, graph, topology), never supplied by
	// the caller, so two requests with equal fingerprints still evolve
	// identical EMAs and produce the same strategy.
	loc, err := search.ParseLocality(opts.Locality)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "opts iters=%d budget=%d beta=%g seed=%d expert=%t maxdeg=%d maxcand=%d fullsim=%t locality=%s\n",
		opts.MaxIters, int64(opts.Budget), opts.Beta, opts.Seed,
		opts.IncludeExpert, opts.MaxDegree, opts.MaxCandidatesPerOp, opts.FullSim, loc)

	if opts.Initial != nil {
		data, err := ExportStrategy(p.Graph, opts.Initial)
		if err != nil {
			return "", fmt.Errorf("flexflow: fingerprinting Initial: %w", err)
		}
		fmt.Fprintf(h, "initial %d\n", len(data))
		h.Write(data)
	} else {
		io.WriteString(h, "initial none\n")
	}

	if opts.Budget > 0 {
		prof, err := resolveCostProfile(opts.Cost)
		if err != nil {
			return "", err
		}
		data, err := json.Marshal(prof)
		if err != nil {
			return "", fmt.Errorf("flexflow: fingerprinting cost profile: %w", err)
		}
		fmt.Fprintf(h, "cost %d\n", len(data))
		h.Write(data)
	} else {
		io.WriteString(h, "cost unbudgeted\n")
	}

	return hex.EncodeToString(h.Sum(nil)), nil
}

// resolveCostProfile mirrors the search layer's pricing precedence for
// hashing purposes: an explicit *CostProfile wins, a nil Cost falls
// back to the installed profile and then the built-in defaults, and a
// custom CostModel implementation is opaque — there is nothing stable
// to hash — so it is an error.
func resolveCostProfile(cm CostModel) (*CostProfile, error) {
	switch {
	case cm == nil:
		if p := ActiveCostProfile(); p != nil {
			return p, nil
		}
		if active := search.ActiveCostModel(); active != nil {
			return nil, fmt.Errorf("flexflow: cannot fingerprint a budgeted request priced by a custom CostModel (%T)", active)
		}
		return DefaultCostProfile(), nil
	default:
		if p, ok := cm.(*CostProfile); ok {
			return p, nil
		}
		return nil, fmt.Errorf("flexflow: cannot fingerprint a budgeted request priced by a custom CostModel (%T)", cm)
	}
}

// writeGraph folds the graph into the hash: name, then per op every
// field the builders and the simulator consume, plus the op's
// input-region signature over its full output (graph.InputRegionsSig —
// the exact lengths-walk the estimator keys its measurement cache on),
// so two graphs that would simulate differently can never collide on a
// structural coincidence.
func writeGraph(w io.Writer, g *Graph) {
	fmt.Fprintf(w, "graph %q ops=%d\n", g.Name, g.NumOps())
	for _, op := range g.Ops {
		fmt.Fprintf(w, "op %d kind=%d name=%q layer=%d weights=%d inch=%d step=%d concat=%d k=%d,%d s=%d,%d p=%d,%d in=[",
			op.ID, op.Kind, op.Name, op.Layer, op.WeightElems, op.InChannels, op.Step, op.ConcatDim,
			op.KernelH, op.KernelW, op.StrideH, op.StrideW, op.PadH, op.PadW)
		for _, in := range op.Inputs {
			fmt.Fprintf(w, "%d,", in.ID)
		}
		io.WriteString(w, "] out=[")
		for _, d := range op.Out.Dims {
			fmt.Fprintf(w, "%s:%d:%d,", d.Name, d.Size, d.Kind)
		}
		fmt.Fprintf(w, "] sig=%x\n", graph.InputRegionsSig(op, op.Out.FullRegion()))
	}
}

// writeTopology folds the topology into the hash: every device and
// link field that feeds the performance model or the router.
func writeTopology(w io.Writer, t *Topology) {
	fmt.Fprintf(w, "topo %q devices=%d links=%d\n", t.Name, len(t.Devices), len(t.Links))
	for _, d := range t.Devices {
		fmt.Fprintf(w, "dev %d kind=%d name=%q node=%d model=%q gflops=%g membw=%g mem=%g\n",
			d.ID, d.Kind, d.Name, d.Node, d.Model, d.PeakGFLOPS, d.MemBWGBs, d.MemGB)
	}
	for _, l := range t.Links {
		fmt.Fprintf(w, "link %d class=%d a=%d b=%d bw=%g lat=%d\n",
			l.ID, l.Class, l.A, l.B, l.BWGBs, int64(l.Latency))
	}
}
