// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints its rows plus notes naming
// the paper numbers whose shape it reproduces; docs/EXPERIMENTS.md maps
// every experiment ID to its paper artifact, invocation and output
// shape.
//
// ^C cancels the in-flight searches; the experiments cut short report
// whatever their searches had found at that point.
//
// Search budgets are charged in deterministic virtual time;
// -cost-profile loads a fitted calibration profile (written by
// `flexflow -calibrate`) so virtual budgets track wall clock, and every
// rendered table carries a note naming the profile that priced its
// searches. A missing or invalid profile falls back to the built-in
// defaults with a warning.
//
// Examples:
//
//	experiments -list
//	experiments -exp fig8
//	experiments -exp all               # every runner across the worker pool
//	experiments -exp fig7 -full        # paper-scale (slow)
//	experiments -exp all -workers 1    # serial (identical tables, more wall clock)
//	experiments -exp table4 -cost-profile profile.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"flexflow"
	"flexflow/internal/experiments"
	"flexflow/internal/par"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment ID, or \"all\"")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		full        = flag.Bool("full", false, "paper-scale settings (slow); default is quick scale")
		workers     = flag.Int("workers", 0, "size of the process-wide worker pool shared by runners, data points and search chains (0 = all CPUs)")
		costProfile = flag.String("cost-profile", "", "virtual-time cost profile JSON (from `flexflow -calibrate`) pricing every search budget")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	// One knob, one pool: runners, cells, chains and sweeps all nest on
	// the shared pool under this single bound.
	par.SetWorkers(*workers)

	// Which cost model prices the virtual search budgets — recorded on
	// every table so results name the profile that produced them.
	costDesc := flexflow.DefaultCostProfile().Describe()
	if *costProfile != "" {
		desc, warn := flexflow.InstallCostProfile(*costProfile)
		costDesc = desc
		if warn != nil {
			fmt.Fprintf(os.Stderr, "warning: %v; budgets fall back to the built-in cost defaults\n", warn)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	tables, err := experiments.Run(ctx, *exp, scale)
	if err != nil && len(tables) == 0 {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range tables {
		t.Notes = append(t.Notes, "cost profile: "+costDesc)
		fmt.Println(t.Render())
	}
	fmt.Printf("%s finished in %v at scale %q\n", strings.ToLower(*exp), time.Since(start).Round(time.Millisecond), scale.Name)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted: searches were cut short; tables show best-so-far results")
		os.Exit(130) // match cmd/flexflow: report, then signal the interrupt
	}
}
