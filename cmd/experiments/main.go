// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints its rows plus notes naming
// the paper numbers whose shape it reproduces; DESIGN.md maps experiment
// IDs to paper artifacts.
//
// ^C cancels the in-flight searches; the experiments cut short report
// whatever their searches had found at that point.
//
// Examples:
//
//	experiments -list
//	experiments -exp fig8
//	experiments -exp all               # every runner across the worker pool
//	experiments -exp fig7 -full        # paper-scale (slow)
//	experiments -exp all -workers 1    # serial (identical tables, more wall clock)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"flexflow/internal/experiments"
	"flexflow/internal/par"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID, or \"all\"")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "paper-scale settings (slow); default is quick scale")
		workers = flag.Int("workers", 0, "size of the process-wide worker pool shared by runners, data points and search chains (0 = all CPUs)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	// One knob, one pool: runners, cells, chains and sweeps all nest on
	// the shared pool under this single bound.
	par.SetWorkers(*workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	tables, err := experiments.Run(ctx, *exp, scale)
	if err != nil && len(tables) == 0 {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	fmt.Printf("%s finished in %v at scale %q\n", strings.ToLower(*exp), time.Since(start).Round(time.Millisecond), scale.Name)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted: searches were cut short; tables show best-so-far results")
		os.Exit(130) // match cmd/flexflow: report, then signal the interrupt
	}
}
