// Command benchdump converts `go test -bench` output into a BENCH_*.json
// trajectory file (schema: internal/benchjson, documented in
// docs/EXPERIMENTS.md), or validates an existing one.
//
// Typical regeneration of the per-PR artifact:
//
//	go test -run '^$' -bench 'DeltaSimulation|ProposalThroughput' -benchmem . > /tmp/bench.txt
//	go run ./cmd/benchdump -pr pr7 -baseline BENCH_pr6.json -o BENCH_pr7.json /tmp/bench.txt
//
// With -baseline pointing at the previous PR's file, its benchmark
// results are carried over as this file's baseline, chaining the
// trajectory. CI validation:
//
//	go run ./cmd/benchdump -validate BENCH_pr6.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flexflow/internal/benchjson"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		pr       = flag.String("pr", "", "PR label recorded in the file (required unless -validate)")
		baseline = flag.String("baseline", "", "baseline source: a previous BENCH_*.json (its benchmarks carry over) or raw `go test -bench` output")
		note     = flag.String("note", "", "free-form note recorded in the file")
		validate = flag.String("validate", "", "validate an existing BENCH_*.json and exit")
	)
	flag.Parse()
	if err := run(*out, *pr, *baseline, *note, *validate, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

func run(out, pr, baseline, note, validate string, args []string) error {
	if validate != "" {
		f, err := benchjson.Load(validate)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (pr %s, %d benchmarks, %d baseline entries)\n",
			validate, f.PR, len(f.Benchmarks), len(f.Baseline))
		return nil
	}
	if pr == "" {
		return fmt.Errorf("-pr is required")
	}
	var in io.Reader = os.Stdin
	if len(args) == 1 {
		fh, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer fh.Close()
		in = fh
	} else if len(args) > 1 {
		return fmt.Errorf("at most one input file, got %d", len(args))
	}
	benchmarks, goos, goarch, cpu, err := benchjson.Parse(in)
	if err != nil {
		return err
	}
	f := &benchjson.File{
		Schema:     benchjson.SchemaVersion,
		PR:         pr,
		GoOS:       goos,
		GoArch:     goarch,
		CPU:        cpu,
		Note:       note,
		Benchmarks: benchmarks,
	}
	if baseline != "" {
		f.Baseline, err = loadBaseline(baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if err := f.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	return f.Write(w)
}

// loadBaseline reads the baseline benchmarks from a previous validated
// BENCH_*.json (chaining the trajectory) or from raw bench output (the
// pre-change run of the benchmarks a PR claims to move).
func loadBaseline(path string) (map[string]benchjson.Entry, error) {
	if strings.HasSuffix(path, ".json") {
		prev, err := benchjson.Load(path)
		if err != nil {
			return nil, err
		}
		return prev.Benchmarks, nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	benchmarks, _, _, _, err := benchjson.Parse(fh)
	if err != nil {
		return nil, err
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return benchmarks, nil
}
