// Command benchdump converts `go test -bench` output into a BENCH_*.json
// trajectory file (schema: internal/benchjson, documented in
// docs/EXPERIMENTS.md), or validates an existing one.
//
// Typical regeneration of the per-PR artifact:
//
//	go test -run '^$' -bench 'DeltaSimulation|ProposalThroughput' -benchmem . > /tmp/bench.txt
//	go run ./cmd/benchdump -pr pr7 -baseline BENCH_pr6.json -o BENCH_pr7.json /tmp/bench.txt
//
// With -baseline pointing at the previous PR's file, its benchmark
// results are carried over as this file's baseline, chaining the
// trajectory. CI validation:
//
//	go run ./cmd/benchdump -validate BENCH_pr6.json
//
// Comparing two points of the trajectory (per-benchmark ns/op, B/op and
// allocs/op deltas; negative percentages are improvements):
//
//	go run ./cmd/benchdump -compare BENCH_pr7.json BENCH_pr8.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"flexflow/internal/benchjson"
)

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		pr       = flag.String("pr", "", "PR label recorded in the file (required unless -validate/-compare)")
		baseline = flag.String("baseline", "", "baseline source: a previous BENCH_*.json (its benchmarks carry over) or raw `go test -bench` output")
		note     = flag.String("note", "", "free-form note recorded in the file")
		validate = flag.String("validate", "", "validate an existing BENCH_*.json and exit")
		compare  = flag.Bool("compare", false, "compare two BENCH_*.json files (old new) and print per-benchmark deltas")
	)
	flag.Parse()
	if *compare {
		if err := runCompare(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *pr, *baseline, *note, *validate, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

// runCompare prints the per-benchmark movement between two trajectory
// files: one row per benchmark in either file, with old -> new values
// and the relative change for ns/op, B/op and allocs/op.
func runCompare(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("-compare takes exactly two files (old new), got %d", len(args))
	}
	old, err := benchjson.Load(args[0])
	if err != nil {
		return err
	}
	new, err := benchjson.Load(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("comparing %s (%s) -> %s (%s)\n", args[0], old.PR, args[1], new.PR)
	if old.CPU != new.CPU && old.CPU != "" && new.CPU != "" {
		fmt.Printf("warning: CPU changed between runs: %q vs %q\n", old.CPU, new.CPU)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tns/op\tB/op\tallocs/op")
	for _, d := range benchjson.Compare(old, new) {
		switch {
		case !d.InOld:
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", d.Name,
				newOnly(d.New.NsPerOp), newOnly(d.New.BytesPerOp), newOnly(d.New.AllocsPerOp))
		case !d.InNew:
			fmt.Fprintf(w, "%s\t(removed)\t\t\n", d.Name)
		default:
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", d.Name,
				col(d.Old.NsPerOp, d.New.NsPerOp, d.PctNs),
				col(d.Old.BytesPerOp, d.New.BytesPerOp, d.PctBytes),
				col(d.Old.AllocsPerOp, d.New.AllocsPerOp, d.PctAllocs))
		}
	}
	return w.Flush()
}

func col(old, new float64, pct func() (float64, bool)) string {
	if p, ok := pct(); ok {
		return fmt.Sprintf("%.0f -> %.0f (%+.1f%%)", old, new, p)
	}
	return fmt.Sprintf("%.0f -> %.0f", old, new)
}

func newOnly(v float64) string { return fmt.Sprintf("(new) %.0f", v) }

func run(out, pr, baseline, note, validate string, args []string) error {
	if validate != "" {
		f, err := benchjson.Load(validate)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (pr %s, %d benchmarks, %d baseline entries)\n",
			validate, f.PR, len(f.Benchmarks), len(f.Baseline))
		return nil
	}
	if pr == "" {
		return fmt.Errorf("-pr is required")
	}
	var in io.Reader = os.Stdin
	if len(args) == 1 {
		fh, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer fh.Close()
		in = fh
	} else if len(args) > 1 {
		return fmt.Errorf("at most one input file, got %d", len(args))
	}
	benchmarks, goos, goarch, cpu, err := benchjson.Parse(in)
	if err != nil {
		return err
	}
	f := &benchjson.File{
		Schema:     benchjson.SchemaVersion,
		PR:         pr,
		GoOS:       goos,
		GoArch:     goarch,
		CPU:        cpu,
		Note:       note,
		Benchmarks: benchmarks,
	}
	if baseline != "" {
		f.Baseline, err = loadBaseline(baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if err := f.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	return f.Write(w)
}

// loadBaseline reads the baseline benchmarks from a previous validated
// BENCH_*.json (chaining the trajectory) or from raw bench output (the
// pre-change run of the benchmarks a PR claims to move).
func loadBaseline(path string) (map[string]benchjson.Entry, error) {
	if strings.HasSuffix(path, ".json") {
		prev, err := benchjson.Load(path)
		if err != nil {
			return nil, err
		}
		return prev.Benchmarks, nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	benchmarks, _, _, _, err := benchjson.Parse(fh)
	if err != nil {
		return nil, err
	}
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return benchmarks, nil
}
