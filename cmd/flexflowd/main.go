// Command flexflowd serves the FlexFlow execution optimizer over HTTP:
// POST a graph (a model-zoo name or an inline graph payload) and a
// topology to /v1/optimize and get back the best parallelization
// strategy any registered algorithm finds, as JSON or as a live SSE
// progress stream. Identical requests are answered from a
// content-addressed strategy cache without re-running the search —
// sound because every search is deterministic (docs/CONCURRENCY.md) —
// and concurrent requests share the one process-wide worker pool under
// admission control. docs/SERVER.md documents the API.
//
// SIGINT/SIGTERM drain gracefully: new optimize requests are rejected,
// running searches get -drain-timeout to finish (then are cancelled and
// return their best-so-far), and the listener shuts down.
//
// Examples:
//
//	flexflowd -addr :8080
//	flexflowd -addr :8080 -max-inflight 8 -default-timeout 2m
//	flexflowd -cost-profile profile.json -workers 16
//
//	curl -s localhost:8080/v1/optimize -d '{"model":"lenet","scale":16,"gpus":4,"options":{"max_iters":500}}'
//	curl -sN -H 'Accept: text/event-stream' localhost:8080/v1/optimize -d '{"model":"nmt","cluster":"p100","nodes":4}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexflow"
	"flexflow/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		maxInflight    = flag.Int("max-inflight", 4, "max concurrently running searches; beyond it requests get 429")
		defaultTimeout = flag.Duration("default-timeout", time.Minute, "search deadline for requests that set no timeout_ms")
		maxTimeout     = flag.Duration("max-timeout", 10*time.Minute, "upper clamp on per-request deadlines")
		cacheSize      = flag.Int("cache-size", 256, "strategy cache entries (0 default, negative disables)")
		workers        = flag.Int("workers", 0, "size of the process-wide worker pool (0 = all CPUs)")
		costProfile    = flag.String("cost-profile", "", "fitted cost profile JSON to price virtual-time budgets (see flexflow -calibrate)")
		locality       = flag.String("locality", "", "default MCMC proposal-locality policy for requests that set none (uniform, late-biased, stratified, measured)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long running searches get to finish on shutdown")
		pprofAddr      = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	if *workers > 0 {
		flexflow.SetWorkers(*workers)
	}
	if *costProfile != "" {
		p, err := flexflow.LoadCostProfile(*costProfile)
		if err != nil {
			log.Fatalf("flexflowd: -cost-profile: %v", err)
		}
		flexflow.SetCostProfile(p)
		log.Printf("flexflowd: installed cost profile %s (fitted %s)", *costProfile, p.FittedAt)
	}

	if *pprofAddr != "" {
		// Profiling gets its own listener and mux, so the endpoints never
		// ride on the public API address and stay off unless asked for.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("flexflowd: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("flexflowd: pprof listener: %v", err)
			}
		}()
	}

	if _, err := flexflow.ParseLocality(*locality); err != nil {
		log.Fatalf("flexflowd: -locality: %v", err)
	}
	srv := server.New(server.Options{
		MaxInflight:     *maxInflight,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		CacheSize:       *cacheSize,
		DefaultLocality: *locality,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("flexflowd: listening on %s (workers=%d, max-inflight=%d)", *addr, flexflow.WorkerBound(), *maxInflight)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("flexflowd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("flexflowd: draining (up to %s)...", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("flexflowd: drain cut short: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("flexflowd: shutdown: %v", err)
	}
	fmt.Println("flexflowd: bye")
}
