// Command flexflow searches for a parallelization strategy for one of
// the paper's benchmark DNNs on a chosen cluster and reports what it
// found, comparing against the data-parallel and expert baselines. The
// -algo flag selects any registered optimizer — the paper's MCMC search
// or one of its baselines — behind the same flow; -progress streams
// best-so-far improvements live; ^C cancels the search and reports the
// best strategy found so far.
//
// Budgeted searches (-budget) are charged in deterministic virtual
// time; -calibrate measures real proposal costs for -model on this
// machine and writes a fitted cost profile, and -cost-profile loads one
// so virtual seconds track wall seconds (a missing or invalid profile
// falls back to the built-in defaults with a warning).
//
// Examples:
//
//	flexflow -model nmt -cluster p100 -gpus 16 -iters 2000
//	flexflow -model inception-v3 -cluster k80 -gpus 4 -scale 8 -verbose
//	flexflow -model lenet -scale 16 -algo exhaustive -gpus 2
//	flexflow -model rnnlm -algo reinforce -progress
//	flexflow -calibrate -model lenet -scale 16 -cost-profile profile.json
//	flexflow -cost-profile profile.json -model nmt -budget 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"flexflow"
)

func main() {
	var (
		model    = flag.String("model", "inception-v3", "benchmark model (alexnet, inception-v3, resnet-101, rnntc, rnnlm, nmt, lenet)")
		cluster  = flag.String("cluster", "p100", "cluster type: p100 or k80")
		gpus     = flag.Int("gpus", 4, "number of GPUs")
		scale    = flag.Int("scale", 8, "model scale divisor (1 = paper-scale batch/steps)")
		algo     = flag.String("algo", "mcmc", "optimizer: "+strings.Join(flexflow.Optimizers(), ", "))
		iters    = flag.Int("iters", 1000, "MCMC proposals per initial strategy (episodes for reinforce, rounds for polish)")
		budget   = flag.Duration("budget", 30*time.Second, "virtual-time search budget per chain (deterministic; 0 = none)")
		seed     = flag.Int64("seed", 1, "search seed")
		locality = flag.String("locality", "", "MCMC proposal-locality policy: "+strings.Join(flexflow.Localities(), ", ")+" (default uniform)")
		workers  = flag.Int("workers", 0, "size of the process-wide worker pool all search parallelism shares (0 = all CPUs; results are identical for any value)")
		progress = flag.Bool("progress", false, "stream best-so-far improvements while the search runs")
		verbose  = flag.Bool("verbose", false, "print the per-op configuration of the best strategy")
		export   = flag.String("export", "", "write the best strategy to this JSON file")
		importF  = flag.String("import", "", "evaluate a previously exported strategy instead of searching")
		timeline = flag.Bool("timeline", false, "render the best strategy's schedule as an ASCII Gantt chart")
		memCheck = flag.Bool("mem", false, "report per-device memory footprint of the best strategy")

		calibrate    = flag.Bool("calibrate", false, "measure proposal costs for -model at -scale, write the fitted cost profile to -cost-profile, and exit")
		costProfile  = flag.String("cost-profile", "", "virtual-time cost profile JSON: loaded before searching, or the output path with -calibrate (default cost-profile.json)")
		calibBatches = flag.Int("calib-batches", 0, "timed batches per calibration point (0 = default)")
	)
	flag.Parse()

	// One knob, one pool: every fan-out level inside the optimizer
	// (chains, subtrees, sweeps) shares this bound instead of
	// multiplying per level.
	flexflow.SetWorkers(*workers)

	// ^C cancels the context; every optimizer returns promptly with the
	// best strategy it had found, and the report below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *calibrate {
		path := *costProfile
		if path == "" {
			path = "cost-profile.json"
		}
		prof, err := flexflow.Calibrate(ctx, flexflow.CalibrateOptions{
			Models:  []string{*model},
			Scale:   *scale,
			GPUs:    *gpus,
			Batches: *calibBatches,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := flexflow.SaveCostProfile(prof, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cost profile (%s) written to %s\n", prof.Describe(), path)
		return
	}
	if *costProfile != "" {
		desc, warn := flexflow.InstallCostProfile(*costProfile)
		if warn != nil {
			fmt.Fprintf(os.Stderr, "warning: %v; budgets fall back to the built-in cost defaults\n", warn)
		} else {
			fmt.Printf("cost profile: %s\n", desc)
		}
	}

	g, err := flexflow.ModelScaled(*model, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var topo *flexflow.Topology
	switch strings.ToLower(*cluster) {
	case "p100":
		if *gpus <= 4 {
			topo = flexflow.NewSingleNode(*gpus, "P100")
		} else {
			topo = flexflow.NewP100Cluster((*gpus + 3) / 4)
		}
	case "k80":
		if *gpus <= 4 {
			topo = flexflow.NewSingleNode(*gpus, "K80")
		} else {
			topo = flexflow.NewK80Cluster((*gpus + 3) / 4)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown cluster %q (want p100 or k80)\n", *cluster)
		os.Exit(1)
	}

	fmt.Printf("model: %s\n", g)
	fmt.Printf("cluster: %s with %d GPUs\n\n", topo.Name, len(topo.GPUs()))

	dp := flexflow.DataParallel(g, topo)
	dpTime, dpMetrics := flexflow.Simulate(g, topo, dp)
	fmt.Printf("data parallelism:   %-12v (%.1f MB transfers/iter)\n", dpTime, float64(dpMetrics.CommBytes)/1e6)

	ex := flexflow.ExpertDesigned(g, topo)
	exTime, exMetrics := flexflow.Simulate(g, topo, ex)
	fmt.Printf("expert-designed:    %-12v (%.1f MB transfers/iter)\n", exTime, float64(exMetrics.CommBytes)/1e6)

	var res flexflow.Result
	interrupted := false
	if *importF != "" {
		data, err := os.ReadFile(*importF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s, err := flexflow.ImportStrategy(data, g, topo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cost, _ := flexflow.Simulate(g, topo, s)
		res = flexflow.Result{Best: s, BestCost: cost}
		fmt.Printf("imported strategy:  %-12v (from %s)\n", cost, *importF)
	} else {
		opt, err := flexflow.GetOptimizer(*algo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := flexflow.OptimizeOptions{
			MaxIters: *iters, Budget: *budget, Seed: *seed, IncludeExpert: true,
			Locality: *locality,
		}
		if *progress {
			// Events arrive concurrently from the optimizer's workers;
			// serialize the printing and only report improvements.
			var mu sync.Mutex
			best := time.Duration(1<<62 - 1)
			opts.OnEvent = func(ev flexflow.ProgressEvent) {
				mu.Lock()
				defer mu.Unlock()
				if ev.BestCost < best {
					best = ev.BestCost
					fmt.Printf("progress: %s chain %d iter %d best %v\n", ev.Algorithm, ev.Chain, ev.Iter, ev.BestCost)
				}
			}
		}
		res, err = opt.Optimize(ctx, flexflow.Problem{Graph: g, Topology: topo}, opts)
		if err != nil {
			interrupted = true
			if res.Best == nil {
				fmt.Fprintf(os.Stderr, "search aborted before finding any strategy: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("search interrupted (%v): reporting the best strategy found so far\n", err)
		}
		fmt.Printf("search (%s): %d iterations in %v\n", res.Algorithm, res.Iters, res.SearchTime)
	}
	_, ffMetrics := flexflow.Simulate(g, topo, res.Best)
	fmt.Printf("found strategy:     %-12v (%.1f MB transfers/iter)\n\n", res.BestCost, float64(ffMetrics.CommBytes)/1e6)
	fmt.Printf("speedup vs data parallelism: %.2fx\n", float64(dpTime)/float64(res.BestCost))
	fmt.Printf("speedup vs expert-designed:  %.2fx\n", float64(exTime)/float64(res.BestCost))

	if *export != "" {
		data, err := flexflow.ExportStrategy(g, res.Best)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("strategy exported to %s\n", *export)
	}
	if *timeline {
		fmt.Println()
		fmt.Print(flexflow.RenderTimeline(g, topo, res.Best, 100, false))
	}
	if *memCheck {
		fmt.Println("\nper-device memory footprint:")
		fp := flexflow.MemoryFootprint(g, topo, res.Best, flexflow.MemoryModel{})
		for id := 0; id < topo.NumDevices(); id++ {
			if b, ok := fp[id]; ok {
				d := topo.Device(id)
				fmt.Printf("  %-14s %8.2f MB (capacity %.0f GB)\n", d.Name, float64(b)/1e6, d.MemGB)
			}
		}
		if err := flexflow.CheckMemory(g, topo, res.Best, flexflow.MemoryModel{}); err != nil {
			fmt.Printf("  WARNING: %v\n", err)
		} else {
			fmt.Println("  strategy fits on every device")
		}
	}

	if *verbose {
		fmt.Println("\nbest strategy (per op):")
		type row struct{ name, cfg string }
		var rows []row
		for _, op := range g.ComputeOps() {
			rows = append(rows, row{op.Name, res.Best.Config(op.ID).String()})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		for _, r := range rows {
			fmt.Printf("  %-28s %s\n", r.name, r.cfg)
		}
	}
	if interrupted {
		os.Exit(130) // conventional exit code for SIGINT, after reporting
	}
}
