// Portability demo (Section 3.1): the same model searched on two
// different machines yields different strategies, with no application
// changes — the property the paper argues manual placement can't give
// you. The asymmetric K80 cluster (adjacent GPUs share a fast switch)
// pushes the optimizer toward co-locating communicating ops on adjacent
// GPUs, while the NVLink-mesh P100 node does not care.
//
//	go run ./examples/portability
package main

import (
	"context"
	"fmt"
	"time"

	"flexflow"
)

func main() {
	g, err := flexflow.ModelScaled("rnntc", 8)
	if err != nil {
		panic(err)
	}
	fmt.Println(g)

	machines := []struct {
		name string
		topo *flexflow.Topology
	}{
		{"4x P100, NVLink mesh", flexflow.NewSingleNode(4, "P100")},
		{"4x K80, asymmetric PCI-e", flexflow.NewSingleNode(4, "K80")},
		{"8x P100 over 2 nodes", flexflow.NewP100Cluster(2)},
	}
	opt, err := flexflow.GetOptimizer("mcmc")
	if err != nil {
		panic(err)
	}
	for _, m := range machines {
		dpTime, _ := flexflow.Simulate(g, m.topo, flexflow.DataParallel(g, m.topo))
		res, err := opt.Optimize(context.Background(), flexflow.Problem{Graph: g, Topology: m.topo},
			flexflow.OptimizeOptions{
				MaxIters: 1200,
				Budget:   15 * time.Second,
				Seed:     3,
			})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s:\n", m.name)
		fmt.Printf("  data parallelism: %v/iter\n", dpTime)
		fmt.Printf("  found strategy:   %v/iter (%.2fx), %d GPUs used\n",
			res.BestCost, float64(dpTime)/float64(res.BestCost), len(res.Best.DevicesUsed()))
	}
	fmt.Println("\nthe same program, three machines, three different strategies —")
	fmt.Println("re-run the optimizer instead of re-tuning the model by hand.")
}
