// NMT walkthrough: reproduce the Figure 14 case study — search for a
// strategy for the neural machine translation model on four P100 GPUs
// and inspect how different layers end up parallelized differently
// (the paper's Section 8.5 observations: small layers shrink onto few
// GPUs, the parameter-heavy softmax splits its channel dimension, and
// recurrent layers combine intra- and inter-op parallelism).
//
//	go run ./examples/nmt
package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"flexflow"
)

func main() {
	// A reduced NMT (batch 16, 10 unroll steps) keeps the demo under a
	// minute; pass factor 1 logic via cmd/flexflow for paper scale.
	g, err := flexflow.ModelScaled("nmt", 4)
	if err != nil {
		panic(err)
	}
	topo := flexflow.NewSingleNode(4, "P100")
	fmt.Println(g)

	dpTime, dpM := flexflow.Simulate(g, topo, flexflow.DataParallel(g, topo))
	exTime, _ := flexflow.Simulate(g, topo, flexflow.ExpertDesigned(g, topo))

	// The unified optimizer API: cancelling the context (here a plain
	// wall-clock deadline) stops the search with the best found so far,
	// while Budget bounds deterministic virtual search time per chain.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	opt, err := flexflow.GetOptimizer("mcmc")
	if err != nil {
		panic(err)
	}
	res, err := opt.Optimize(ctx, flexflow.Problem{Graph: g, Topology: topo}, flexflow.OptimizeOptions{
		MaxIters:      4000,
		Budget:        30 * time.Second,
		IncludeExpert: true,
	})
	if err != nil && res.Best == nil {
		panic(err)
	}
	_, ffM := flexflow.Simulate(g, topo, res.Best)

	fmt.Printf("\nper-iteration time:\n")
	fmt.Printf("  data parallelism:  %v\n", dpTime)
	fmt.Printf("  expert (GNMT-style): %v\n", exTime)
	fmt.Printf("  flexflow:          %v  (%.2fx vs data parallelism)\n",
		res.BestCost, float64(dpTime)/float64(res.BestCost))
	fmt.Printf("parameter sync traffic: %.1f MB -> %.1f MB per iteration\n",
		float64(dpM.SyncBytes)/1e6, float64(ffM.SyncBytes)/1e6)

	// Summarize the strategy per layer group, Figure-14 style.
	fmt.Println("\nper-layer parallelization (degrees over output dims):")
	groups := map[string][]string{}
	var names []string
	for _, op := range g.ComputeOps() {
		key := op.Name
		if i := strings.IndexByte(key, '.'); i >= 0 {
			key = key[:i]
		}
		c := res.Best.Config(op.ID)
		desc := fmt.Sprintf("%v", c.Degrees)
		if _, ok := groups[key]; !ok {
			names = append(names, key)
		}
		groups[key] = append(groups[key], desc)
	}
	sort.Strings(names)
	for _, key := range names {
		// Most steps of a layer share a config; show the mode.
		counts := map[string]int{}
		for _, d := range groups[key] {
			counts[d]++
		}
		best, n := "", 0
		for d, c := range counts {
			if c > n {
				best, n = d, c
			}
		}
		fmt.Printf("  %-14s x%-3d typical degrees %s\n", key, len(groups[key]), best)
	}
}
