// Quickstart: define a small CNN, describe the machine, and let the
// execution optimizer find a parallelization strategy for it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"flexflow"
)

func main() {
	// 1. The operator graph (Section 3.1): ops are nodes, tensors edges.
	g := flexflow.NewGraph("quickstart-cnn")
	x := g.Input4D("images", 64, 3, 32, 32)
	c1 := g.Conv2D("conv1", x, 32, 3, 3, 1, 1, 1, 1)
	p1 := g.Pool2D("pool1", c1, 2, 2, 2, 2, 0, 0)
	c2 := g.Conv2D("conv2", p1, 64, 3, 3, 1, 1, 1, 1)
	p2 := g.Pool2D("pool2", c2, 2, 2, 2, 2, 0, 0)
	f := g.Flatten("flatten", p2)
	d := g.Dense("fc1", f, 512)
	g.SoftmaxClassifier("classifier", d, 10)
	fmt.Println(g)

	// 2. The device topology: a single machine with four P100 GPUs.
	topo := flexflow.NewSingleNode(4, "P100")

	// All search parallelism (MCMC chains, neighbour sweeps, nested
	// fan-out of any depth) shares one process-wide worker pool;
	// SetWorkers sizes it. The default is all CPUs, and the pool size
	// only changes wall-clock time — results are bit-identical for any
	// value (see docs/CONCURRENCY.md).
	flexflow.SetWorkers(0)

	// 3. Baselines: what existing frameworks would do.
	dp := flexflow.DataParallel(g, topo)
	dpTime, dpM := flexflow.Simulate(g, topo, dp)
	fmt.Printf("\ndata parallelism:  %v/iteration, %.2f MB moved\n", dpTime, float64(dpM.CommBytes)/1e6)

	// 4. The execution optimizer: every search algorithm is an Optimizer
	// constructed by name; "mcmc" is the paper's MCMC walk over the SOAP
	// space with the execution simulator as cost oracle. ^C cancels the
	// context and returns the best strategy found so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt, err := flexflow.GetOptimizer("mcmc")
	if err != nil {
		panic(err)
	}
	res, err := opt.Optimize(ctx, flexflow.Problem{Graph: g, Topology: topo},
		flexflow.OptimizeOptions{MaxIters: 1500})
	if err != nil && res.Best == nil {
		panic(err)
	}
	_, ffM := flexflow.Simulate(g, topo, res.Best)
	fmt.Printf("flexflow strategy: %v/iteration, %.2f MB moved (found in %v, %d proposals)\n",
		res.BestCost, float64(ffM.CommBytes)/1e6, res.SearchTime, res.Iters)
	fmt.Printf("speedup: %.2fx\n", float64(dpTime)/float64(res.BestCost))

	// 5. Safety net: the found strategy computes exactly what the
	// unpartitioned graph computes (real float32 kernels, forward pass).
	if err := flexflow.VerifyStrategy(g, res.Best); err != nil {
		panic(err)
	}
	fmt.Println("numeric equivalence of the found strategy: verified")
}
