// Simulator accuracy demo (the Figure 11 experiment in miniature):
// predict several strategies' iteration times with the execution
// simulator, "measure" them on the emulated distributed runtime, and
// check both the <30% error bound and order preservation.
//
//	go run ./examples/simulator
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"flexflow"
	"flexflow/internal/config"
	"flexflow/internal/device"
)

func main() {
	g, err := flexflow.ModelScaled("inception-v3", 8)
	if err != nil {
		panic(err)
	}
	topo := device.NewP100Cluster(2) // 8 GPUs over 2 nodes
	rng := rand.New(rand.NewSource(7))

	type point struct {
		name      string
		simulated float64
		measured  float64
	}
	var points []point
	strategies := map[string]*flexflow.Strategy{
		"data-parallel": config.DataParallel(g, topo),
		"expert":        config.Expert(g, topo),
		"random-1":      config.Random(g, topo, rng),
		"random-2":      config.Random(g, topo, rng),
		"random-3":      config.Random(g, topo, rng),
	}
	// Include an optimizer-found strategy: the accuracy bound has to
	// hold on the strategies the search actually visits, not just on
	// hand-picked baselines.
	if opt, err := flexflow.GetOptimizer("optcnn"); err == nil {
		if res, err := opt.Optimize(context.Background(),
			flexflow.Problem{Graph: g, Topology: topo}, flexflow.OptimizeOptions{}); err == nil {
			strategies["optcnn"] = res.Best
		}
	}
	for name, s := range strategies {
		simT, _ := flexflow.Simulate(g, topo, s)
		realT := flexflow.EmulateHardware(g, topo, s, 42)
		points = append(points, point{name, simT.Seconds(), realT.Seconds()})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].simulated < points[j].simulated })

	fmt.Println("strategy        simulated(s)  measured(s)  rel.err")
	worst := 0.0
	for _, p := range points {
		rel := (p.measured - p.simulated) / p.measured
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
		fmt.Printf("%-14s  %.6f      %.6f     %.1f%%\n", p.name, p.simulated, p.measured, rel*100)
	}
	fmt.Printf("\nworst relative error: %.1f%% (paper bound: 30%%)\n", worst*100)

	ordered := sort.SliceIsSorted(points, func(i, j int) bool { return points[i].measured < points[j].measured })
	fmt.Printf("simulated ordering preserves measured ordering: %v\n", ordered)
}
